//! Prometheus text exposition (version 0.0.4).

use std::fmt::Write as _;

use crate::registry::RegistrySnapshot;

use super::fmt_us;

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn type_line(out: &mut String, emitted: &mut Vec<String>, name: &str, kind: &str) {
    if !emitted.iter().any(|n| n == name) {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        emitted.push(name.to_string());
    }
}

/// Renders a registry snapshot in the Prometheus text format.
///
/// Output is fully deterministic: metrics are sorted by name then
/// labels, and every float uses plain fixed-point formatting.
pub fn prometheus_text(snapshot: &RegistrySnapshot) -> String {
    let mut out = String::new();
    let mut emitted: Vec<String> = Vec::new();

    for ((name, labels), value) in &snapshot.counters {
        type_line(&mut out, &mut emitted, name, "counter");
        let _ = writeln!(out, "{name}{} {value}", label_block(labels, None));
    }
    for ((name, labels), value) in &snapshot.gauges {
        type_line(&mut out, &mut emitted, name, "gauge");
        let _ = writeln!(out, "{name}{} {value}", label_block(labels, None));
    }
    for ((name, labels), hist) in &snapshot.histograms {
        type_line(&mut out, &mut emitted, name, "histogram");
        for (bound, cum) in hist.cumulative_buckets() {
            let le = match bound {
                Some(us) => fmt_us(us),
                None => "+Inf".to_string(),
            };
            let _ = writeln!(
                out,
                "{name}_bucket{} {cum}",
                label_block(labels, Some(("le", &le)))
            );
        }
        let _ = writeln!(
            out,
            "{name}_sum{} {}",
            label_block(labels, None),
            fmt_us(hist.sum_us)
        );
        let _ = writeln!(
            out,
            "{name}_count{} {}",
            label_block(labels, None),
            hist.count
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use fluidmem_sim::SimDuration;

    #[test]
    fn snapshot_format_is_pinned() {
        let reg = Registry::new();
        reg.counter("fluidmem_monitor_events_total", &[("event", "fault")])
            .add(3);
        reg.gauge("fluidmem_lru_resident_pages", &[]).set(42);
        let text = prometheus_text(&reg.snapshot());
        assert_eq!(
            text,
            "# TYPE fluidmem_monitor_events_total counter\n\
             fluidmem_monitor_events_total{event=\"fault\"} 3\n\
             # TYPE fluidmem_lru_resident_pages gauge\n\
             fluidmem_lru_resident_pages 42\n"
        );
    }

    #[test]
    fn histogram_emits_buckets_sum_count() {
        let reg = Registry::new();
        reg.histogram("lat_us", &[("path", "READ_PAGE")])
            .observe(SimDuration::from_nanos(300));
        let text = prometheus_text(&reg.snapshot());
        assert!(text.starts_with("# TYPE lat_us histogram\n"));
        assert!(text.contains("lat_us_bucket{path=\"READ_PAGE\",le=\"0.25\"} 0\n"));
        assert!(text.contains("lat_us_bucket{path=\"READ_PAGE\",le=\"0.5\"} 1\n"));
        assert!(text.contains("lat_us_bucket{path=\"READ_PAGE\",le=\"+Inf\"} 1\n"));
        assert!(text.contains("lat_us_sum{path=\"READ_PAGE\"} 0.3\n"));
        assert!(text.ends_with("lat_us_count{path=\"READ_PAGE\"} 1\n"));
    }

    #[test]
    fn type_line_appears_once_per_family() {
        let reg = Registry::new();
        reg.counter("ops", &[("op", "get")]).inc();
        reg.counter("ops", &[("op", "put")]).inc();
        let text = prometheus_text(&reg.snapshot());
        assert_eq!(text.matches("# TYPE ops counter").count(), 1);
    }
}
