//! JSON-lines export: one self-describing record per metric and span,
//! for appending to `results/` files and post-processing with standard
//! tooling.

use std::fmt::Write as _;

use crate::registry::RegistrySnapshot;
use crate::span::{SpanKind, SpanRecord};

use super::{fmt_us, json_escape};

fn labels_json(labels: &[(String, String)]) -> String {
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Renders a registry snapshot (and optionally spans) as JSON lines.
///
/// Line order is deterministic: counters, gauges, histograms (each
/// sorted by key), then spans in `(start, seq)` order.
pub fn jsonl(snapshot: &RegistrySnapshot, spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for ((name, labels), value) in &snapshot.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"labels\":{},\"value\":{value}}}",
            json_escape(name),
            labels_json(labels)
        );
    }
    for ((name, labels), value) in &snapshot.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"labels\":{},\"value\":{value}}}",
            json_escape(name),
            labels_json(labels)
        );
    }
    for ((name, labels), h) in &snapshot.histograms {
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"labels\":{},\"count\":{},\
             \"mean_us\":{},\"stdev_us\":{},\"p50_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            json_escape(name),
            labels_json(labels),
            h.count,
            fmt_us(h.mean_us),
            fmt_us(h.stdev_us),
            fmt_us(h.p50_us),
            fmt_us(h.p99_us),
            fmt_us(h.max_us),
        );
    }
    for s in spans {
        let kind = match s.kind {
            SpanKind::Complete => "span",
            SpanKind::Instant => "instant",
        };
        let _ = writeln!(
            out,
            "{{\"type\":\"{kind}\",\"track\":\"{}\",\"name\":\"{}\",\"start_us\":{},\"dur_us\":{}}}",
            json_escape(s.track),
            json_escape(&s.name),
            fmt_us(s.start.as_nanos() as f64 / 1_000.0),
            fmt_us((s.end.as_nanos() - s.start.as_nanos()) as f64 / 1_000.0),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::span::SpanRecorder;
    use fluidmem_sim::{SimDuration, SimInstant};

    #[test]
    fn snapshot_format_is_pinned() {
        let reg = Registry::new();
        reg.counter("ops", &[("op", "get")]).add(2);
        reg.gauge("depth", &[]).set(-1);
        let spans = SpanRecorder::new();
        spans.enable();
        spans.record_at(
            "kv",
            "read",
            SimInstant::EPOCH,
            SimInstant::EPOCH + SimDuration::from_micros(3),
            Vec::new,
        );
        let text = jsonl(&reg.snapshot(), &spans.records());
        assert_eq!(
            text,
            "{\"type\":\"counter\",\"name\":\"ops\",\"labels\":{\"op\":\"get\"},\"value\":2}\n\
             {\"type\":\"gauge\",\"name\":\"depth\",\"labels\":{},\"value\":-1}\n\
             {\"type\":\"span\",\"track\":\"kv\",\"name\":\"read\",\"start_us\":0,\"dur_us\":3}\n"
        );
    }

    #[test]
    fn every_line_is_valid_json() {
        let reg = Registry::new();
        reg.histogram("lat", &[("p", "x")])
            .observe(SimDuration::from_micros(7));
        let text = jsonl(&reg.snapshot(), &[]);
        for line in text.lines() {
            super::super::jsonchk::parse(line).unwrap();
        }
    }
}
