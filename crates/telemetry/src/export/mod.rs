//! Exporters: Prometheus text exposition, Chrome trace-event JSON, and
//! JSON-lines records for `results/`.

mod chrome;
mod jsonchk;
mod jsonl;
mod prometheus;

pub use chrome::{chrome_trace, validate_chrome_trace};
pub use jsonl::jsonl;
pub use prometheus::prometheus_text;

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a microsecond quantity with up to three decimals, trimming
/// trailing zeros ("1", "0.25", "12.5"). Deterministic: plain decimal,
/// never scientific notation.
pub(crate) fn fmt_us(v: f64) -> String {
    let s = format!("{v:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn fmt_us_trims() {
        assert_eq!(fmt_us(1.0), "1");
        assert_eq!(fmt_us(0.25), "0.25");
        assert_eq!(fmt_us(12.5), "12.5");
        assert_eq!(fmt_us(0.0), "0");
    }
}
