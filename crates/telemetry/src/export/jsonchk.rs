//! A dependency-free JSON parser, just big enough to validate that an
//! exported Chrome trace is well-formed before a human feeds it to
//! Perfetto. Used by the exporter snapshot tests and by the bench
//! binaries' `--trace` smoke path.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object.
    Object(BTreeMap<String, Json>),
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: &str) -> String {
        format!("{message} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| self.err("bad utf8"))?;
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one multi-byte UTF-8 scalar. Decoding just
                    // this scalar (not `from_utf8` on the whole remaining
                    // input) keeps string parsing linear.
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let c = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .and_then(|s| std::str::from_utf8(s).ok())
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("bad utf8"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// A description of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

/// Validates the Chrome-trace shape; returns the duration-event count.
pub fn validate_trace(text: &str) -> Result<usize, String> {
    let doc = parse(text)?;
    let Json::Object(top) = doc else {
        return Err("top level must be an object".to_string());
    };
    let Some(Json::Array(events)) = top.get("traceEvents") else {
        return Err("missing traceEvents array".to_string());
    };
    let mut durations = 0;
    for (i, e) in events.iter().enumerate() {
        let Json::Object(obj) = e else {
            return Err(format!("traceEvents[{i}] is not an object"));
        };
        let Some(Json::String(ph)) = obj.get("ph") else {
            return Err(format!("traceEvents[{i}] lacks a ph"));
        };
        if !matches!(obj.get("name"), Some(Json::String(_))) {
            return Err(format!("traceEvents[{i}] lacks a name"));
        }
        if ph == "X" {
            if !matches!(obj.get("ts"), Some(Json::Number(_)))
                || !matches!(obj.get("dur"), Some(Json::Number(_)))
            {
                return Err(format!("traceEvents[{i}] lacks ts/dur"));
            }
            durations += 1;
        }
    }
    Ok(durations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\n","d":null,"e":true}}"#).unwrap();
        let Json::Object(top) = doc else { panic!() };
        assert_eq!(
            top["a"],
            Json::Array(vec![
                Json::Number(1.0),
                Json::Number(2.5),
                Json::Number(-300.0)
            ])
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn trace_shape_checks() {
        assert!(validate_trace("[1]").is_err());
        assert!(validate_trace("{\"traceEvents\":1}").is_err());
        assert_eq!(
            validate_trace("{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\",\"ts\":0,\"dur\":1}]}"),
            Ok(1)
        );
        assert!(validate_trace("{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\"}]}").is_err());
    }
}
