//! Chrome trace-event JSON (the `chrome://tracing` / Perfetto format).
//!
//! Spans become `ph: "X"` complete events and markers become `ph: "i"`
//! instant events. Each span track maps to a stable `tid` (named via
//! `thread_name` metadata events), so loading the file in Perfetto shows
//! the monitor's critical path on one row and the async KV flights /
//! kernel TLB shootdowns overlapping it on their own rows — the Fig. 2
//! structure, visible.

use std::fmt::Write as _;

use crate::consts::TRACK_TIDS;
use crate::span::{SpanKind, SpanRecord};

use super::jsonchk;
use super::{fmt_us, json_escape};

fn tid_of(track: &str, extra: &mut Vec<String>) -> u64 {
    if let Some(&(_, tid)) = TRACK_TIDS.iter().find(|(name, _)| *name == track) {
        return tid;
    }
    if let Some(pos) = extra.iter().position(|t| t == track) {
        return TRACK_TIDS.len() as u64 + 1 + pos as u64;
    }
    extra.push(track.to_string());
    TRACK_TIDS.len() as u64 + extra.len() as u64
}

/// Renders completed spans as a Chrome trace-event JSON document.
///
/// `ts`/`dur` are microseconds of virtual time since the simulation
/// epoch. Output is deterministic for a given span list.
pub fn chrome_trace(records: &[SpanRecord]) -> String {
    let mut extra_tracks: Vec<String> = Vec::new();
    let mut events: Vec<String> = Vec::new();

    // Metadata: name the process and every track that appears.
    events.push(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"fluidmem\"}}"
            .to_string(),
    );
    let mut seen_tracks: Vec<&str> = Vec::new();
    for r in records {
        if !seen_tracks.contains(&r.track) {
            seen_tracks.push(r.track);
        }
    }
    // Assign extra-track tids in first-appearance order, then declare
    // the threads sorted by tid (well-known tracks first).
    let mut declared: Vec<(u64, &str)> = seen_tracks
        .iter()
        .map(|t| (tid_of(t, &mut extra_tracks), *t))
        .collect();
    declared.sort();
    for (tid, track) in declared {
        events.push(format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            json_escape(track)
        ));
    }

    for r in records {
        let tid = tid_of(r.track, &mut extra_tracks);
        let ts = fmt_us(r.start.as_nanos() as f64 / 1_000.0);
        let mut args = String::new();
        if !r.args.is_empty() {
            let body: Vec<String> = r
                .args
                .iter()
                .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
                .collect();
            args = format!(",\"args\":{{{}}}", body.join(","));
        }
        match r.kind {
            SpanKind::Complete => {
                let dur = fmt_us((r.end.as_nanos() - r.start.as_nanos()) as f64 / 1_000.0);
                events.push(format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
                     \"name\":\"{}\"{args}}}",
                    json_escape(&r.name)
                ));
            }
            SpanKind::Instant => {
                events.push(format!(
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\
                     \"name\":\"{}\"{args}}}",
                    json_escape(&r.name)
                ));
            }
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        let _ = write!(out, "{e}");
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

/// Validates that `text` parses as JSON and has the Chrome trace shape
/// (a top-level object with a `traceEvents` array of event objects, each
/// carrying `ph` and `name`). Returns the number of duration (`"X"`)
/// events.
///
/// # Errors
///
/// A human-readable description of the first structural problem.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    jsonchk::validate_trace(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanRecorder;
    use fluidmem_sim::{SimDuration, SimInstant};

    fn t(us: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_micros(us)
    }

    #[test]
    fn snapshot_format_is_pinned() {
        let r = SpanRecorder::new();
        r.enable();
        r.record_at("monitor", "fault", t(1), t(4), || {
            vec![("vpn", "0x10".to_string())]
        });
        r.instant("monitor", "wake", t(4));
        let json = chrome_trace(&r.records());
        assert_eq!(
            json,
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n\
             {\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"fluidmem\"}},\n\
             {\"ph\":\"M\",\"pid\":1,\"tid\":2,\"name\":\"thread_name\",\"args\":{\"name\":\"monitor\"}},\n\
             {\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":1,\"dur\":3,\"name\":\"fault\",\"args\":{\"vpn\":\"0x10\"}},\n\
             {\"ph\":\"i\",\"pid\":1,\"tid\":2,\"ts\":4,\"s\":\"t\",\"name\":\"wake\"}\n\
             ]}\n"
        );
    }

    #[test]
    fn output_validates() {
        let r = SpanRecorder::new();
        r.enable();
        r.record_at("kv", "read", t(0), t(10), Vec::new);
        r.record_at("monitor", "fault \"quoted\"", t(2), t(3), Vec::new);
        let json = chrome_trace(&r.records());
        assert_eq!(validate_chrome_trace(&json), Ok(2));
    }

    #[test]
    fn unknown_tracks_get_stable_tids() {
        let r = SpanRecorder::new();
        r.enable();
        r.record_at("custom-a", "x", t(0), t(1), Vec::new);
        r.record_at("custom-b", "y", t(1), t(2), Vec::new);
        let json = chrome_trace(&r.records());
        assert!(json.contains("\"tid\":7"));
        assert!(json.contains("\"tid\":8"));
        assert_eq!(validate_chrome_trace(&json), Ok(2));
    }
}
