//! `fluidmem-telemetry` — the unified metrics and tracing subsystem.
//!
//! The paper's entire evaluation (Table I code-path latencies, Table II
//! ablations, Figure 3 CDFs) is an observability exercise, so this crate
//! makes observability first-class instead of scattering ad-hoc counter
//! structs across crates:
//!
//! * a **metrics [`Registry`]** of labeled [`Counter`]s, [`Gauge`]s, and
//!   log-bucketed virtual-time [`Histogram`]s. Instruments are
//!   `Arc`-backed handles resolved once at registration, so they are
//!   cheap enough to live in the fault hot path; the fixed bucket scheme
//!   (see [`consts`]) makes histogram merges exact;
//! * **hierarchical [spans](SpanRecorder)** over [`SimClock`] virtual
//!   time, organized into tracks (`monitor`, `kv`, `kernel`, …) so the
//!   async-read bottom half visibly overlaps `UFFD_REMAP` — the §V-B
//!   structure Table II's optimizations exploit;
//! * **exporters**: Prometheus text exposition
//!   ([`Telemetry::export_prometheus`]), Chrome trace-event JSON
//!   ([`Telemetry::export_chrome_trace`], loadable in Perfetto), and
//!   JSON lines ([`Telemetry::export_jsonl`]) for `results/`.
//!
//! All exports are byte-deterministic for a given seed, so traces and
//! metric dumps can be snapshot-tested and diffed across runs.
//!
//! # Example
//!
//! ```
//! use fluidmem_sim::{SimClock, SimDuration};
//! use fluidmem_telemetry::{consts, Telemetry};
//!
//! let clock = SimClock::new();
//! let tele = Telemetry::new(clock.clone());
//! let faults = tele
//!     .registry()
//!     .counter(consts::MONITOR_EVENTS, &[(consts::LABEL_EVENT, "fault")]);
//!
//! tele.enable_spans();
//! let span = tele.begin(consts::TRACK_MONITOR, "fault");
//! faults.inc();
//! clock.advance(SimDuration::from_micros(12));
//! tele.end(span);
//!
//! assert!(tele.export_prometheus().contains("fluidmem_monitor_events_total"));
//! assert_eq!(fluidmem_telemetry::validate_chrome_trace(&tele.export_chrome_trace()), Ok(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod consts;
mod export;
mod registry;
mod span;

pub use export::{chrome_trace, jsonl, prometheus_text, validate_chrome_trace};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricKey, Registry, RegistrySnapshot,
};
pub use span::{SpanId, SpanKind, SpanRecord, SpanRecorder};

use fluidmem_sim::{SimClock, SimInstant};

/// The bundled telemetry handle every instrumented component holds: a
/// metrics registry, a span recorder, and the virtual clock that stamps
/// spans.
///
/// Clones share all underlying state, exactly like [`SimClock`] itself.
/// A default handle (spans disabled) is cheap enough to embed
/// unconditionally; components expose an `attach_telemetry` /
/// `instrument` hook to swap in a shared, exported handle.
#[derive(Clone, Debug)]
pub struct Telemetry {
    registry: Registry,
    spans: SpanRecorder,
    clock: SimClock,
}

impl Telemetry {
    /// Creates a telemetry handle over `clock` with spans disabled.
    pub fn new(clock: SimClock) -> Self {
        Telemetry {
            registry: Registry::new(),
            spans: SpanRecorder::new(),
            clock,
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The span recorder.
    pub fn spans(&self) -> &SpanRecorder {
        &self.spans
    }

    /// The clock spans are stamped against.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Starts recording spans.
    pub fn enable_spans(&self) {
        self.spans.enable();
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn spans_enabled(&self) -> bool {
        self.spans.is_enabled()
    }

    /// Opens a span on `track` starting now.
    #[inline]
    pub fn begin(&self, track: &'static str, name: &str) -> SpanId {
        self.spans.begin_at(track, name, self.clock.now(), Vec::new)
    }

    /// Opens a span with lazily-built annotations (the closure only runs
    /// when spans are enabled).
    #[inline]
    pub fn begin_with<F>(&self, track: &'static str, name: &str, args: F) -> SpanId
    where
        F: FnOnce() -> Vec<(&'static str, String)>,
    {
        self.spans.begin_at(track, name, self.clock.now(), args)
    }

    /// Closes a span now.
    #[inline]
    pub fn end(&self, id: SpanId) {
        self.spans.end_at(id, self.clock.now());
    }

    /// Closes a span at an explicit instant (e.g. the guest wake time,
    /// when post-wake work has already advanced the clock).
    #[inline]
    pub fn end_at(&self, id: SpanId, at: SimInstant) {
        self.spans.end_at(id, at);
    }

    /// Records a complete span with a known interval (async flights).
    #[inline]
    pub fn record_span(&self, track: &'static str, name: &str, start: SimInstant, end: SimInstant) {
        self.spans.record_at(track, name, start, end, Vec::new);
    }

    /// Records a zero-duration marker now.
    #[inline]
    pub fn instant(&self, track: &'static str, name: &str) {
        self.spans.instant(track, name, self.clock.now());
    }

    /// Records a zero-duration marker at an explicit instant.
    #[inline]
    pub fn instant_at(&self, track: &'static str, name: &str, at: SimInstant) {
        self.spans.instant(track, name, at);
    }

    /// Renders every registered metric in the Prometheus text format.
    pub fn export_prometheus(&self) -> String {
        prometheus_text(&self.registry.snapshot())
    }

    /// Renders recorded spans as Chrome trace-event JSON.
    pub fn export_chrome_trace(&self) -> String {
        chrome_trace(&self.spans.records())
    }

    /// Renders metrics and spans as JSON lines.
    pub fn export_jsonl(&self) -> String {
        jsonl(&self.registry.snapshot(), &self.spans.records())
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(SimClock::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_sim::SimDuration;

    #[test]
    fn clones_share_state() {
        let t = Telemetry::default();
        let u = t.clone();
        t.registry().counter("c", &[]).inc();
        assert_eq!(u.registry().counter("c", &[]).get(), 1);
        u.enable_spans();
        assert!(t.spans_enabled());
    }

    #[test]
    fn span_roundtrip_through_exports() {
        let clock = SimClock::new();
        let t = Telemetry::new(clock.clone());
        t.enable_spans();
        let fault = t.begin(consts::TRACK_MONITOR, "fault");
        clock.advance(SimDuration::from_micros(10));
        t.end(fault);
        let json = t.export_chrome_trace();
        assert_eq!(validate_chrome_trace(&json), Ok(1));
        assert!(t.export_jsonl().contains("\"type\":\"span\""));
    }
}
