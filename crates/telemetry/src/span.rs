//! Hierarchical spans over virtual time.
//!
//! A span is a named interval on a *track* (a virtual thread in the
//! Chrome-trace sense: `monitor`, `kv`, `kernel`, …). Because the
//! simulation is single-threaded per track and advances one shared
//! virtual clock, spans on one track nest properly by containment — the
//! Chrome trace viewer (and Perfetto) reconstructs the hierarchy from
//! the intervals alone. Cross-track spans (an async KV read's flight
//! recorded on the `kv` track while `UFFD_REMAP` runs on `monitor`)
//! *overlap* in time, which is exactly the §V-B structure Table II's
//! optimizations exploit and what the trace exists to show.
//!
//! Completed spans live in a bounded ring: long runs drop the oldest
//! spans instead of growing without limit.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use fluidmem_sim::SimInstant;

use crate::consts::SPAN_RING_CAPACITY;

/// Identifies an open span returned by a `begin` call.
///
/// The id is `NONE` when recording is disabled, making the matching
/// `end` a no-op — begin/end pairs can stay in hot paths unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u64);

impl SpanId {
    /// The id handed out while recording is disabled.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this id refers to a live span.
    pub fn is_live(self) -> bool {
        self.0 != 0
    }
}

/// How a record should be rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A duration event (`ph: "X"` in Chrome trace terms).
    Complete,
    /// A zero-duration marker (`ph: "i"`), e.g. the guest wake.
    Instant,
}

/// One completed span (or instant marker).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name (e.g. `"fault"`, `"UFFD_REMAP"`).
    pub name: String,
    /// Track (virtual thread) the span belongs to.
    pub track: &'static str,
    /// Start of the interval.
    pub start: SimInstant,
    /// End of the interval (equal to `start` for instants).
    pub end: SimInstant,
    /// Duration or instant.
    pub kind: SpanKind,
    /// Free-form `key=value` annotations.
    pub args: Vec<(&'static str, String)>,
    /// Monotonic sequence number (records are exported in `(start, seq)`
    /// order, which makes exports deterministic).
    pub seq: u64,
}

#[derive(Debug)]
struct OpenSpan {
    id: u64,
    name: String,
    track: &'static str,
    start: SimInstant,
    args: Vec<(&'static str, String)>,
}

#[derive(Debug)]
struct RecorderCore {
    next_id: u64,
    seq: u64,
    capacity: usize,
    open: Vec<OpenSpan>,
    done: VecDeque<SpanRecord>,
    dropped: u64,
}

impl Default for RecorderCore {
    fn default() -> Self {
        RecorderCore {
            next_id: 1,
            seq: 0,
            capacity: SPAN_RING_CAPACITY,
            open: Vec::new(),
            done: VecDeque::new(),
            dropped: 0,
        }
    }
}

impl RecorderCore {
    fn push_done(&mut self, mut record: SpanRecord) {
        record.seq = self.seq;
        self.seq += 1;
        if self.done.len() >= self.capacity {
            self.done.pop_front();
            self.dropped += 1;
        }
        self.done.push_back(record);
    }
}

/// A bounded recorder of virtual-time spans.
///
/// Clones share the same ring. Disabled recorders cost one relaxed
/// atomic load per call and allocate nothing.
#[derive(Clone, Debug, Default)]
pub struct SpanRecorder {
    enabled: Arc<AtomicBool>,
    core: Arc<Mutex<RecorderCore>>,
}

impl SpanRecorder {
    /// Creates a disabled recorder with the default ring capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off (existing records are kept).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether spans are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Caps the ring at `capacity` completed spans (oldest are dropped).
    pub fn set_capacity(&self, capacity: usize) {
        let mut core = self.core.lock().expect("span lock");
        core.capacity = capacity.max(1);
        while core.done.len() > core.capacity {
            core.done.pop_front();
            core.dropped += 1;
        }
    }

    /// How many completed spans were dropped by the ring.
    pub fn dropped(&self) -> u64 {
        self.core.lock().expect("span lock").dropped
    }

    /// Opens a span on `track` starting at `start`. The `args` closure is
    /// only evaluated when recording is enabled.
    pub fn begin_at<F>(&self, track: &'static str, name: &str, start: SimInstant, args: F) -> SpanId
    where
        F: FnOnce() -> Vec<(&'static str, String)>,
    {
        if !self.is_enabled() {
            return SpanId::NONE;
        }
        let mut core = self.core.lock().expect("span lock");
        let id = core.next_id;
        core.next_id += 1;
        core.open.push(OpenSpan {
            id,
            name: name.to_string(),
            track,
            start,
            args: args(),
        });
        SpanId(id)
    }

    /// Closes an open span at `end`. Unknown or `NONE` ids are ignored.
    pub fn end_at(&self, id: SpanId, end: SimInstant) {
        if !id.is_live() {
            return;
        }
        let mut core = self.core.lock().expect("span lock");
        let Some(pos) = core.open.iter().rposition(|s| s.id == id.0) else {
            return;
        };
        let open = core.open.swap_remove(pos);
        core.push_done(SpanRecord {
            name: open.name,
            track: open.track,
            start: open.start,
            end: end.max(open.start),
            kind: SpanKind::Complete,
            args: open.args,
            seq: 0,
        });
    }

    /// Records a complete span with a known interval (async flights whose
    /// completion time is decided at issue).
    pub fn record_at<F>(
        &self,
        track: &'static str,
        name: &str,
        start: SimInstant,
        end: SimInstant,
        args: F,
    ) where
        F: FnOnce() -> Vec<(&'static str, String)>,
    {
        if !self.is_enabled() {
            return;
        }
        let mut core = self.core.lock().expect("span lock");
        core.push_done(SpanRecord {
            name: name.to_string(),
            track,
            start,
            end: end.max(start),
            kind: SpanKind::Complete,
            args: args(),
            seq: 0,
        });
    }

    /// Records a zero-duration instant marker.
    pub fn instant(&self, track: &'static str, name: &str, at: SimInstant) {
        if !self.is_enabled() {
            return;
        }
        let mut core = self.core.lock().expect("span lock");
        core.push_done(SpanRecord {
            name: name.to_string(),
            track,
            start: at,
            end: at,
            kind: SpanKind::Instant,
            args: Vec::new(),
            seq: 0,
        });
    }

    /// Completed spans sorted by `(start, seq)` — the deterministic
    /// export order.
    pub fn records(&self) -> Vec<SpanRecord> {
        let core = self.core.lock().expect("span lock");
        let mut v: Vec<SpanRecord> = core.done.iter().cloned().collect();
        v.sort_by_key(|r| (r.start, r.seq));
        v
    }

    /// Drops all completed and open spans.
    pub fn clear(&self) {
        let mut core = self.core.lock().expect("span lock");
        core.open.clear();
        core.done.clear();
        core.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_sim::SimDuration;

    fn t(us: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_micros(us)
    }

    #[test]
    fn disabled_recorder_is_free_and_silent() {
        let r = SpanRecorder::new();
        let mut evaluated = false;
        let id = r.begin_at("monitor", "fault", t(0), || {
            evaluated = true;
            vec![]
        });
        assert_eq!(id, SpanId::NONE);
        assert!(!evaluated, "args closure must not run while disabled");
        r.end_at(id, t(1));
        assert!(r.records().is_empty());
    }

    #[test]
    fn begin_end_records_interval() {
        let r = SpanRecorder::new();
        r.enable();
        let id = r.begin_at("monitor", "fault", t(1), || vec![("vpn", "0x10".into())]);
        r.end_at(id, t(5));
        let recs = r.records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].name, "fault");
        assert_eq!(recs[0].start, t(1));
        assert_eq!(recs[0].end, t(5));
        assert_eq!(recs[0].args[0].1, "0x10");
    }

    #[test]
    fn ring_caps_and_counts_drops() {
        let r = SpanRecorder::new();
        r.enable();
        r.set_capacity(2);
        for i in 0..5 {
            r.record_at("kv", "op", t(i), t(i + 1), Vec::new);
        }
        assert_eq!(r.records().len(), 2);
        assert_eq!(r.dropped(), 3);
        assert_eq!(r.records()[0].start, t(3), "oldest were dropped");
    }

    #[test]
    fn records_sorted_by_start_then_seq() {
        let r = SpanRecorder::new();
        r.enable();
        // The outer span ends after the inner one, so it completes later
        // but starts earlier.
        let outer = r.begin_at("monitor", "outer", t(0), Vec::new);
        let inner = r.begin_at("monitor", "inner", t(1), Vec::new);
        r.end_at(inner, t(2));
        r.end_at(outer, t(3));
        let names: Vec<String> = r.records().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["outer", "inner"]);
    }

    #[test]
    fn instant_markers_have_zero_duration() {
        let r = SpanRecorder::new();
        r.enable();
        r.instant("monitor", "wake", t(7));
        let recs = r.records();
        assert_eq!(recs[0].kind, SpanKind::Instant);
        assert_eq!(recs[0].start, recs[0].end);
    }

    #[test]
    fn end_never_precedes_start() {
        let r = SpanRecorder::new();
        r.enable();
        let id = r.begin_at("monitor", "x", t(5), Vec::new);
        r.end_at(id, t(1));
        assert_eq!(r.records()[0].end, t(5));
    }
}
