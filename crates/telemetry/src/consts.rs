//! The single source of truth for metric names, label keys, span track
//! names, and the histogram bucket scheme.
//!
//! Bench binaries, tests, and the instrumented crates all reference these
//! constants instead of scattering string-typed metric names — renaming a
//! metric is a one-line change here, and exporter snapshot tests pin the
//! wire format.

/// Monitor event counter (labeled by [`LABEL_EVENT`]): faults, zero
/// fills, remote reads, steals, retries, …
pub const MONITOR_EVENTS: &str = "fluidmem_monitor_events_total";

/// Key-value store operation counter (labeled by [`LABEL_STORE`] and
/// [`LABEL_OP`]).
pub const STORE_OPS: &str = "fluidmem_store_ops_total";

/// Key-value store operation latency histogram (labeled by
/// [`LABEL_STORE`] and [`LABEL_OP`]): full client-observed round trips,
/// including any overlapped flight time.
pub const STORE_OP_LATENCY_US: &str = "fluidmem_store_op_latency_us";

/// Swap-subsystem event counter (labeled by [`LABEL_EVENT`]): major
/// faults, kswapd runs, readahead hits, reclaims, …
pub const SWAP_EVENTS: &str = "fluidmem_swap_events_total";

/// Block-device operation counter (labeled by [`LABEL_DEVICE`] and
/// [`LABEL_OP`]).
pub const BLOCK_OPS: &str = "fluidmem_block_ops_total";

/// Coordination-service event counter (labeled by [`LABEL_EVENT`]).
pub const COORD_EVENTS: &str = "fluidmem_coord_events_total";

/// Guest-VM event counter (labeled by [`LABEL_EVENT`]): balloon
/// operations, service requests, …
pub const VM_EVENTS: &str = "fluidmem_vm_events_total";

/// Host-agent event counter (labeled by [`LABEL_EVENT`], and by
/// [`LABEL_VM`] for per-VM decisions): arbiter rebalances, capacity
/// grants/shrinks, balloon clamps, membership events.
pub const HOST_EVENTS: &str = "fluidmem_host_events_total";

/// The DRAM capacity the host arbiter currently grants a VM's LRU
/// (gauge, labeled by [`LABEL_VM`]).
pub const HOST_VM_CAPACITY_PAGES: &str = "fluidmem_host_vm_capacity_pages";

/// Rebalance windows in which a VM with a p99 fault-latency SLO was
/// observed over its target (counter, labeled by [`LABEL_VM`]) — the
/// signal the `slo_guarded` arbiter policy throttles on.
pub const HOST_SLO_VIOLATIONS: &str = "fluidmem_host_slo_violations_total";

/// Slab nodes allocated by the monitor's LRU buffer, live + free-listed
/// (gauge): the structure's standing memory footprint.
pub const LRU_SLAB_NODES: &str = "fluidmem_lru_slab_nodes";

/// Bitmap chunks allocated by the monitor's page tracker (gauge), each
/// covering a 4096-page window.
pub const TRACKER_CHUNKS: &str = "fluidmem_tracker_chunks";

/// Operations currently parked in the monitor's in-flight table (gauge):
/// the pipeline's live occupancy, bounded by the configured depth.
pub const INFLIGHT_PARKED_OPS: &str = "fluidmem_inflight_parked_ops";

/// Pages currently resident in the monitor's LRU buffer (gauge).
pub const LRU_RESIDENT_PAGES: &str = "fluidmem_lru_resident_pages";

/// The monitor's configured LRU capacity (gauge).
pub const LRU_CAPACITY_PAGES: &str = "fluidmem_lru_capacity_pages";

/// Pages waiting on the asynchronous write list (gauge).
pub const WRITE_LIST_PENDING: &str = "fluidmem_write_list_pending_pages";

/// Free headroom in the monitor's LRU buffer (`capacity − resident`,
/// gauge) — the quantity the background reclaimer's watermarks watch.
pub const LRU_HEADROOM_PAGES: &str = "fluidmem_lru_headroom_pages";

/// Compressed bytes currently charged to the monitor's compressed
/// local tier (gauge) — the occupancy its demotion watermarks watch.
pub const TIER_POOL_BYTES: &str = "fluidmem_tier_pool_bytes";

/// Pages currently held in the monitor's compressed local tier (gauge).
pub const TIER_POOL_PAGES: &str = "fluidmem_tier_pool_pages";

/// Per-code-path latency histogram (labeled by [`LABEL_PATH`]) — the
/// registry-backed source of the paper's Table I.
pub const CODEPATH_LATENCY_US: &str = "fluidmem_codepath_latency_us";

/// Guest-observed fault latency histogram (labeled by
/// [`LABEL_RESOLUTION`]).
pub const FAULT_LATENCY_US: &str = "fluidmem_fault_latency_us";

/// Refault-distance histogram: evictions that elapsed between a page
/// leaving the LRU and faulting back in (shadow-entry tracking). The
/// distance is a page count, recorded via
/// [`Histogram::observe_value`](crate::Histogram::observe_value) — the
/// bucket bounds read as plain counts, not nanoseconds.
pub const REFAULT_DISTANCE_PAGES: &str = "fluidmem_refault_distance_pages";

/// The monitor's estimated working-set size in pages (gauge), derived
/// from refault distances.
pub const WSS_ESTIMATE_PAGES: &str = "fluidmem_wss_estimate_pages";

/// Speculative prefetch reads issued to the store (counter) — the
/// denominator of the prefetch accuracy panel.
pub const PREFETCH_ISSUED: &str = "fluidmem_prefetch_issued_total";

/// Prefetched pages the guest actually touched (counter): first guest
/// access to an installed page, plus demand faults that adopted a
/// still-in-flight speculative read.
pub const PREFETCH_HITS: &str = "fluidmem_prefetch_hits_total";

/// Prefetched pages that were evicted, unmapped, or discarded before the
/// guest ever touched them (counter) — pure wasted remote reads.
pub const PREFETCH_WASTED: &str = "fluidmem_prefetch_wasted_total";

/// Prefetch timeliness histogram: virtual time from a speculative read's
/// issue to the guest's first touch of the page. Small values mean the
/// prefetcher barely ran ahead of demand (adopted in flight); large
/// values mean pages sat idle in the LRU.
pub const PREFETCH_TIMELINESS_US: &str = "fluidmem_prefetch_timeliness_us";

/// Cluster-layer operation counter (labeled by [`LABEL_NODE`] and
/// [`LABEL_OP`]): per-store-node reads, writes, deletes, and retryable
/// errors as routed by the consistent-hash cluster.
pub const CLUSTER_OPS: &str = "fluidmem_cluster_ops_total";

/// Cluster-layer event counter (labeled by [`LABEL_EVENT`]): node
/// joins/leaves/expirations, migration starts/flips/aborts/retargets.
pub const CLUSTER_EVENTS: &str = "fluidmem_cluster_events_total";

/// Migration copier page counter (labeled by [`LABEL_OP`]): `copied` for
/// first-pass pages, `recopied` for pages re-sent off the dirty-key log.
pub const CLUSTER_MIGRATION_PAGES: &str = "fluidmem_cluster_migration_pages_total";

/// Ring imbalance across store nodes, in permille (gauge):
/// `(max partitions on a node − mean) / mean × 1000`, `0` when balanced.
pub const CLUSTER_RING_IMBALANCE_PERMILLE: &str = "fluidmem_cluster_ring_imbalance_permille";

/// Label key for event-style counters.
pub const LABEL_EVENT: &str = "event";
/// Label key naming a key-value store backend.
pub const LABEL_STORE: &str = "store";
/// Label key naming a block device.
pub const LABEL_DEVICE: &str = "device";
/// Label key naming an operation.
pub const LABEL_OP: &str = "op";
/// Label key naming a monitor code path (Table I row).
pub const LABEL_PATH: &str = "path";
/// Label key naming a fault resolution kind.
pub const LABEL_RESOLUTION: &str = "resolution";
/// Label key naming a guest VM (multi-VM hosting).
pub const LABEL_VM: &str = "vm";
/// Label key naming an arbiter policy.
pub const LABEL_POLICY: &str = "policy";
/// Label key naming a cluster store node.
pub const LABEL_NODE: &str = "node";

/// Span track for the guest / workload side.
pub const TRACK_GUEST: &str = "guest";
/// Span track for the monitor's fault-handling thread.
pub const TRACK_MONITOR: &str = "monitor";
/// Span track for key-value store transport activity (async flights).
pub const TRACK_KV: &str = "kv";
/// Span track for kernel-side work (TLB shootdowns, kswapd).
pub const TRACK_KERNEL: &str = "kernel";
/// Span track for the host agent (arbiter rebalances, VM membership).
pub const TRACK_HOST: &str = "host";
/// Span track for the cluster layer (migration copier batches).
pub const TRACK_CLUSTER: &str = "cluster";

/// Stable Chrome-trace thread ids per track, in display order. Unlisted
/// tracks are assigned ids after these, in first-use order.
pub const TRACK_TIDS: [(&str, u64); 6] = [
    (TRACK_GUEST, 1),
    (TRACK_MONITOR, 2),
    (TRACK_KV, 3),
    (TRACK_KERNEL, 4),
    (TRACK_HOST, 5),
    (TRACK_CLUSTER, 6),
];

/// Number of finite histogram buckets. Bucket `i` has upper bound
/// [`bucket_bound_ns`]`(i)`; one extra `+Inf` bucket catches the rest.
pub const HIST_BUCKETS: usize = 40;

/// Upper bound of the first histogram bucket, in nanoseconds. Bounds
/// double per bucket (250 ns, 500 ns, 1 µs, … ≈ 76 h), so two histograms
/// recorded under the same scheme merge exactly, bucket by bucket.
pub const HIST_FIRST_BOUND_NS: u64 = 250;

/// Per-histogram cap on retained percentile samples; past it, spans are
/// systematically subsampled so memory stays bounded while percentiles
/// remain representative (the scheme the Table I profiler has always
/// used).
pub const HIST_SAMPLE_CAP: u64 = 1 << 18;

/// Default capacity of the span ring buffer (completed spans retained).
pub const SPAN_RING_CAPACITY: usize = 1 << 16;

/// The inclusive upper bound of histogram bucket `i`, in nanoseconds.
#[inline]
pub const fn bucket_bound_ns(i: usize) -> u64 {
    HIST_FIRST_BOUND_NS << i
}

/// The bucket index a latency of `ns` nanoseconds falls into;
/// [`HIST_BUCKETS`] means the `+Inf` overflow bucket.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    let mut i = 0;
    while i < HIST_BUCKETS {
        if ns <= bucket_bound_ns(i) {
            return i;
        }
        i += 1;
    }
    HIST_BUCKETS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_double() {
        assert_eq!(bucket_bound_ns(0), 250);
        assert_eq!(bucket_bound_ns(1), 500);
        assert_eq!(bucket_bound_ns(2), 1_000);
        assert_eq!(bucket_bound_ns(12), 1_024_000);
    }

    #[test]
    fn index_is_monotone_and_clamped() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(250), 0);
        assert_eq!(bucket_index(251), 1);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS);
        let mut last = 0;
        for ns in [1u64, 300, 1_000, 50_000, 10_000_000, 1 << 60] {
            let i = bucket_index(ns);
            assert!(i >= last);
            last = i;
        }
    }
}
