//! The metrics registry: labeled counters, gauges, and log-bucketed
//! virtual-time histograms.
//!
//! Instruments are cheap handles (`Arc` underneath) resolved once at
//! registration time, so hot paths touch an atomic (counters, gauges) or
//! one short mutex section (histograms) — never a name lookup. The
//! registry itself only holds the shared handles for export; exporters
//! iterate a `BTreeMap`, which makes every export byte-deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fluidmem_sim::stats::{Sample, Summary};
use fluidmem_sim::SimDuration;

use crate::consts::{bucket_bound_ns, bucket_index, HIST_BUCKETS, HIST_SAMPLE_CAP};

/// A metric's identity: name plus sorted `(key, value)` labels.
pub type MetricKey = (String, Vec<(String, String)>);

fn metric_key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    let mut l: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    l.sort();
    (name.to_string(), l)
}

/// A monotonically increasing counter handle.
///
/// Detached counters ([`Counter::new`]) work standalone; adopting them
/// into a [`Registry`] makes the same handle exportable.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a detached counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Creates a detached gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    /// Exact streaming moments, in microseconds.
    summary: Summary,
    /// Bounded systematic subsample for precise percentiles.
    sample: Sample,
    /// Total observations ever recorded (drives the subsampling).
    recorded: u64,
    /// Log-bucketed counts under the fixed [`crate::consts`] scheme;
    /// the last slot is the `+Inf` overflow bucket.
    buckets: Vec<u64>,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            summary: Summary::new(),
            sample: Sample::new(),
            recorded: 0,
            buckets: vec![0; HIST_BUCKETS + 1],
        }
    }
}

/// A latency histogram over virtual time.
///
/// The bucket scheme is fixed (see [`crate::consts`]) so two histograms
/// merge exactly; means and standard deviations are exact (streaming
/// moments), and percentiles come from a bounded systematic subsample —
/// the same retention scheme the Table I profiler has always used, so a
/// registry-backed profile reports identical numbers.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<Mutex<HistogramCore>>);

impl Histogram {
    /// Creates a detached, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency observation.
    pub fn observe(&self, d: SimDuration) {
        let mut c = self.0.lock().expect("histogram lock");
        c.summary.record_duration(d);
        c.recorded += 1;
        let n = c.recorded;
        if n <= HIST_SAMPLE_CAP || n.is_multiple_of(1 + n / HIST_SAMPLE_CAP) {
            c.sample.record_duration(d);
        }
        let b = bucket_index(d.as_nanos());
        c.buckets[b] += 1;
    }

    /// Records one unit-less observation (a page count, a queue depth).
    ///
    /// The value lands in the same log-bucketed scheme as latencies, one
    /// unit per nanosecond slot, so the bucket bounds read as plain
    /// counts. Metrics recorded this way must say so in their name/docs
    /// (e.g. [`crate::consts::REFAULT_DISTANCE_PAGES`]); mixing units in
    /// one histogram would make its summary meaningless.
    pub fn observe_value(&self, v: u64) {
        self.observe(SimDuration::from_nanos(v));
    }

    /// A point-in-time copy of the histogram's statistics.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = self.0.lock().expect("histogram lock");
        let mut sample = c.sample.clone();
        HistogramSnapshot {
            count: c.summary.count(),
            sum_us: c.summary.mean() * c.summary.count() as f64,
            mean_us: c.summary.mean(),
            stdev_us: c.summary.stdev(),
            min_us: c.summary.min(),
            max_us: c.summary.max(),
            p50_us: sample.percentile(0.5),
            p99_us: sample.percentile(0.99),
            buckets: c.buckets.clone(),
        }
    }

    /// Drops all recorded observations.
    pub fn reset(&self) {
        *self.0.lock().expect("histogram lock") = HistogramCore::default();
    }
}

/// A point-in-time view of one [`Histogram`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations (µs).
    pub sum_us: f64,
    /// Exact mean (µs).
    pub mean_us: f64,
    /// Exact sample standard deviation (µs).
    pub stdev_us: f64,
    /// Smallest observation (µs).
    pub min_us: f64,
    /// Largest observation (µs).
    pub max_us: f64,
    /// Median from the percentile subsample (µs).
    pub p50_us: f64,
    /// 99th percentile from the percentile subsample (µs).
    pub p99_us: f64,
    /// Per-bucket counts; the last slot is `+Inf`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Cumulative bucket counts paired with their upper bounds in
    /// microseconds (`None` for the `+Inf` bucket), as Prometheus
    /// exposition wants them.
    pub fn cumulative_buckets(&self) -> Vec<(Option<f64>, u64)> {
        let mut cum = 0u64;
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                cum += c;
                let bound = if i < HIST_BUCKETS {
                    Some(bucket_bound_ns(i) as f64 / 1_000.0)
                } else {
                    None
                };
                (bound, cum)
            })
            .collect()
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<MetricKey, Counter>,
    gauges: BTreeMap<MetricKey, Gauge>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

/// The shared metrics registry.
///
/// Clones share the same underlying maps. Instruments obtained twice
/// under the same name and labels are the same handle.
///
/// # Example
///
/// ```
/// use fluidmem_telemetry::Registry;
///
/// let reg = Registry::new();
/// let faults = reg.counter("faults_total", &[("kind", "minor")]);
/// faults.inc();
/// assert_eq!(reg.counter("faults_total", &[("kind", "minor")]).get(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Registry {
    inner: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates a counter under `name` and `labels`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = metric_key(name, labels);
        let mut inner = self.inner.lock().expect("registry lock");
        inner.counters.entry(key).or_default().clone()
    }

    /// Gets or creates a gauge.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = metric_key(name, labels);
        let mut inner = self.inner.lock().expect("registry lock");
        inner.gauges.entry(key).or_default().clone()
    }

    /// Gets or creates a histogram.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = metric_key(name, labels);
        let mut inner = self.inner.lock().expect("registry lock");
        inner.histograms.entry(key).or_default().clone()
    }

    /// Registers an *existing* counter handle (and its accumulated
    /// value) under `name`/`labels`, replacing any previous registration.
    /// Lets components instrument themselves after construction without
    /// losing counts.
    pub fn adopt_counter(&self, name: &str, labels: &[(&str, &str)], counter: &Counter) {
        let key = metric_key(name, labels);
        let mut inner = self.inner.lock().expect("registry lock");
        inner.counters.insert(key, counter.clone());
    }

    /// Registers an existing gauge handle.
    pub fn adopt_gauge(&self, name: &str, labels: &[(&str, &str)], gauge: &Gauge) {
        let key = metric_key(name, labels);
        let mut inner = self.inner.lock().expect("registry lock");
        inner.gauges.insert(key, gauge.clone());
    }

    /// Registers an existing histogram handle.
    pub fn adopt_histogram(&self, name: &str, labels: &[(&str, &str)], histogram: &Histogram) {
        let key = metric_key(name, labels);
        let mut inner = self.inner.lock().expect("registry lock");
        inner.histograms.insert(key, histogram.clone());
    }

    /// A deterministic point-in-time copy of every registered metric,
    /// sorted by name then labels.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().expect("registry lock");
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A deterministic copy of a [`Registry`]'s contents for export.
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    /// Counters, sorted by key.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauges, sorted by key.
    pub gauges: Vec<(MetricKey, i64)>,
    /// Histograms, sorted by key.
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_is_same_handle() {
        let reg = Registry::new();
        let a = reg.counter("x", &[("l", "1")]);
        let b = reg.counter("x", &[("l", "1")]);
        a.add(3);
        assert_eq!(b.get(), 3);
        let other = reg.counter("x", &[("l", "2")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    fn label_order_does_not_matter() {
        let reg = Registry::new();
        reg.counter("x", &[("a", "1"), ("b", "2")]).inc();
        assert_eq!(reg.counter("x", &[("b", "2"), ("a", "1")]).get(), 1);
    }

    #[test]
    fn adopted_counter_keeps_its_value() {
        let reg = Registry::new();
        let c = Counter::new();
        c.add(7);
        reg.adopt_counter("pre", &[], &c);
        assert_eq!(reg.counter("pre", &[]).get(), 7);
        c.inc();
        assert_eq!(reg.snapshot().counters[0].1, 8);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_moments_are_exact() {
        let h = Histogram::new();
        for us in [10u64, 20, 30] {
            h.observe(SimDuration::from_micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert!((s.mean_us - 20.0).abs() < 1e-9);
        assert!((s.stdev_us - 10.0).abs() < 1e-9);
        assert!((s.sum_us - 60.0).abs() < 1e-9);
        assert_eq!(s.min_us, 10.0);
        assert_eq!(s.max_us, 30.0);
    }

    #[test]
    fn histogram_buckets_accumulate_and_merge_exactly() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.observe(SimDuration::from_nanos(100)); // bucket 0
        a.observe(SimDuration::from_micros(1)); // 1000 ns -> bucket 2
        b.observe(SimDuration::from_micros(1));
        let (sa, sb) = (a.snapshot(), b.snapshot());
        assert_eq!(sa.buckets[0], 1);
        assert_eq!(sa.buckets[2], 1);
        assert_eq!(sb.buckets[2], 1);
        // Fixed scheme: merging is element-wise addition.
        let merged: Vec<u64> = sa
            .buckets
            .iter()
            .zip(&sb.buckets)
            .map(|(x, y)| x + y)
            .collect();
        assert_eq!(merged[2], 2);
        let cum = sa.cumulative_buckets();
        assert_eq!(cum.last().unwrap().1, 2, "+Inf bucket is cumulative total");
        assert!(cum.last().unwrap().0.is_none());
    }

    #[test]
    fn histogram_reset_clears() {
        let h = Histogram::new();
        h.observe(SimDuration::from_micros(5));
        h.reset();
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn snapshot_is_sorted() {
        let reg = Registry::new();
        reg.counter("zzz", &[]).inc();
        reg.counter("aaa", &[]).inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counters[0].0 .0, "aaa");
        assert_eq!(snap.counters[1].0 .0, "zzz");
    }
}
