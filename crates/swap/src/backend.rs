//! `SwapBackedMemory`: the swap-based `MemoryBackend`.

use std::collections::{BTreeMap, HashMap, VecDeque};

use fluidmem_block::BlockDevice;
use fluidmem_mem::{
    AccessCounters, AccessOutcome, AccessReport, CapacityError, FrameId, MemoryBackend, PageClass,
    PageContents, PageTable, PhysicalMemory, PteFlags, Region, VirtAddr, Vpn,
};
use fluidmem_sim::{SimClock, SimDuration, SimInstant, SimRng};

use crate::config::{DiskCacheMode, SwapConfig};
use crate::lru::TwoListLru;
use crate::slots::SlotAllocator;
use crate::stats::{SwapCounters, SwapStats};

/// The balloon driver's maximum inflation leaves this much resident
/// (64 MB, per the paper's Table III "Max VM balloon size" row).
const BALLOON_FLOOR_PAGES: u64 = 20_480;

#[derive(Debug, Clone, Copy)]
struct SwappedInfo {
    slot: u64,
    /// Pending background writeback; a refault must wait for it.
    write_completes: Option<SimInstant>,
}

/// A VM memory system using the guest kernel's swap subsystem over a
/// block device — the partial-disaggregation baseline (Infiniswap /
/// NVMeoF remote paging, paper §II and §VI-A).
///
/// Two devices are involved: the **swap device** (DRAM, NVMeoF, or SSD)
/// receives anonymous pages, and the **filesystem device** (always the
/// local SSD) receives reclaimed file-backed pages — because swap simply
/// cannot hold them, the §II limitation at the heart of the paper.
///
/// # Example
///
/// ```
/// use fluidmem_block::PmemDevice;
/// use fluidmem_mem::{MemoryBackend, PageClass};
/// use fluidmem_sim::{SimClock, SimRng};
/// use fluidmem_swap::{SwapBackedMemory, SwapConfig};
///
/// let clock = SimClock::new();
/// let swap_dev = PmemDevice::new(4096, clock.clone(), SimRng::seed_from_u64(1));
/// let fs_dev = PmemDevice::new(4096, clock.clone(), SimRng::seed_from_u64(2));
/// let mut vm = SwapBackedMemory::new(
///     SwapConfig::paper_default(256), // 1 MB of "DRAM"
///     Box::new(swap_dev),
///     Box::new(fs_dev),
///     clock,
///     SimRng::seed_from_u64(3),
/// );
/// let region = vm.map_region(512, PageClass::Anonymous); // 2x overcommit
/// for i in 0..512 {
///     vm.access(region.page(i), true); // forces swapping
/// }
/// assert!(vm.resident_pages() <= 256);
/// ```
pub struct SwapBackedMemory {
    config: SwapConfig,
    clock: SimClock,
    rng: SimRng,
    swap_dev: Box<dyn BlockDevice>,
    fs_dev: Box<dyn BlockDevice>,
    pt: PageTable,
    frames: PhysicalMemory,
    /// start-vpn → region, for page-class lookup on faults.
    regions: BTreeMap<u64, Region>,
    next_vpn: u64,
    lru: TwoListLru,
    slots: SlotAllocator,
    /// Anonymous pages currently on the swap device.
    swapped_out: HashMap<Vpn, SwappedInfo>,
    /// Resident pages whose swap-slot copy is still valid (clean).
    clean_slot: HashMap<Vpn, u64>,
    /// Readahead pages: resident in a frame but not yet mapped.
    swap_cache: HashMap<Vpn, FrameId>,
    swap_cache_order: VecDeque<Vpn>,
    /// File-backed pages' filesystem blocks.
    fs_blocks: HashMap<Vpn, u64>,
    next_fs_block: u64,
    /// Whether faults carry KVM vCPU exit costs.
    from_vm: bool,
    label: String,
    counters: AccessCounters,
    stats: SwapCounters,
}

impl SwapBackedMemory {
    /// Creates a swap-backed memory over the given devices.
    pub fn new(
        config: SwapConfig,
        swap_dev: Box<dyn BlockDevice>,
        fs_dev: Box<dyn BlockDevice>,
        clock: SimClock,
        rng: SimRng,
    ) -> Self {
        config.validate();
        let label = format!("Swap/{}", swap_dev.name());
        let dram = config.dram_pages;
        SwapBackedMemory {
            slots: SlotAllocator::new(swap_dev.capacity_blocks()),
            config,
            clock,
            rng,
            swap_dev,
            fs_dev,
            pt: PageTable::new(),
            frames: PhysicalMemory::new(dram),
            regions: BTreeMap::new(),
            next_vpn: 0x10_000,
            lru: TwoListLru::new(),
            swapped_out: HashMap::new(),
            clean_slot: HashMap::new(),
            swap_cache: HashMap::new(),
            swap_cache_order: VecDeque::new(),
            fs_blocks: HashMap::new(),
            next_fs_block: 0,
            from_vm: true,
            label,
            counters: AccessCounters::default(),
            stats: SwapCounters::new(),
        }
    }

    /// Disables per-fault KVM exit costs (for bare-process baselines).
    pub fn set_from_vm(&mut self, from_vm: bool) {
        self.from_vm = from_vm;
    }

    /// Swap-subsystem counters.
    pub fn swap_stats(&self) -> SwapStats {
        self.stats.snapshot()
    }

    /// Registers the swap counters and both block devices' counters in
    /// a shared telemetry registry.
    pub fn attach_telemetry(&mut self, telemetry: &fluidmem_telemetry::Telemetry) {
        self.stats.register(telemetry.registry());
        self.swap_dev.instrument(telemetry.registry());
        self.fs_dev.instrument(telemetry.registry());
    }

    /// The swap configuration in use.
    pub fn config(&self) -> &SwapConfig {
        &self.config
    }

    /// Pages currently written out to the swap device.
    pub fn swapped_out_pages(&self) -> u64 {
        self.swapped_out.len() as u64
    }

    fn class_of(&self, vpn: Vpn) -> PageClass {
        let (_, region) = self
            .regions
            .range(..=vpn.raw())
            .next_back()
            .unwrap_or_else(|| panic!("access to unmapped address {vpn}"));
        assert!(region.contains(vpn), "access to unmapped address {vpn}");
        region.class()
    }

    fn charge(&mut self, model: &fluidmem_sim::LatencyModel) {
        let d = model.sample(&mut self.rng);
        self.clock.advance(d);
    }

    fn charge_fault_entry(&mut self) {
        let mut d = self.config.costs.fault_entry.sample(&mut self.rng);
        if self.from_vm {
            d += self.config.costs.vm_exit.sample(&mut self.rng);
        }
        self.clock.advance(d);
    }

    fn writeback_cache_tax(&mut self) {
        if self.config.cache_mode == DiskCacheMode::Writeback {
            let d = self.config.costs.writeback_cache_copy.sample(&mut self.rng);
            self.clock.advance(d);
        }
    }

    fn fs_block_of(&mut self, vpn: Vpn) -> u64 {
        if let Some(&b) = self.fs_blocks.get(&vpn) {
            return b;
        }
        let b = self.next_fs_block % self.fs_dev.capacity_blocks();
        self.next_fs_block += 1;
        self.fs_blocks.insert(vpn, b);
        b
    }

    /// Drops one clean swap-cache page (free reclaim). Returns `true` if
    /// one was dropped.
    fn shrink_swap_cache(&mut self) -> bool {
        while let Some(vpn) = self.swap_cache_order.pop_front() {
            if let Some(frame) = self.swap_cache.remove(&vpn) {
                self.frames.free(frame);
                // Its clean device copy remains; it is simply swapped out
                // again.
                let slot = self.slots.slot_of(vpn).expect("cached page kept its slot");
                self.swapped_out.insert(
                    vpn,
                    SwappedInfo {
                        slot,
                        write_completes: None,
                    },
                );
                return true;
            }
        }
        false
    }

    /// Reclaims one resident page. `direct` means the faulting thread
    /// pays for scans and dirty writeback synchronously.
    fn reclaim_one(&mut self, direct: bool) -> bool {
        // Swap-cache pages are the cheapest victims.
        if self.shrink_swap_cache() {
            return true;
        }
        let costs = self.config.costs.reclaim_scan.clone();
        let pt = &mut self.pt;
        let mut scanned = 0u32;
        let victim = self.lru.pick_victim(|vpn| {
            scanned += 1;
            let referenced = pt.has_flags(vpn, PteFlags::REFERENCED);
            pt.clear_flags(vpn, PteFlags::REFERENCED);
            referenced
        });
        if direct {
            for _ in 0..scanned {
                let d = costs.sample(&mut self.rng);
                self.clock.advance(d);
            }
        }
        let Some(vpn) = victim else {
            return false;
        };
        let entry = self.pt.unmap(vpn).expect("LRU tracks only mapped pages");
        let dirty = entry.flags.contains(PteFlags::DIRTY);
        let contents = self.frames.free(entry.frame);
        match self.class_of(vpn) {
            PageClass::Anonymous => {
                if let Some(slot) = self.clean_slot.remove(&vpn) {
                    // Device copy still valid: no write needed.
                    self.stats.clean_evictions.inc();
                    self.swapped_out.insert(
                        vpn,
                        SwappedInfo {
                            slot,
                            write_completes: None,
                        },
                    );
                } else {
                    let slot = self
                        .slots
                        .allocate(vpn)
                        .expect("swap device full: undersized experiment configuration");
                    self.writeback_cache_tax();
                    let completion = if direct {
                        let c = self
                            .swap_dev
                            .submit_write(slot, contents)
                            .expect("slot within device");
                        self.clock.advance_to(c.at);
                        None
                    } else {
                        let c = self
                            .swap_dev
                            .submit_write_background(slot, contents)
                            .expect("slot within device");
                        Some(c.at)
                    };
                    self.stats.swap_outs.inc();
                    self.swapped_out.insert(
                        vpn,
                        SwappedInfo {
                            slot,
                            write_completes: completion,
                        },
                    );
                }
            }
            PageClass::FileBacked => {
                if dirty {
                    let block = self.fs_block_of(vpn);
                    self.stats.fs_writes.inc();
                    if direct {
                        let c = self
                            .fs_dev
                            .submit_write(block, contents)
                            .expect("fs block in range");
                        self.clock.advance_to(c.at);
                    } else {
                        let _ = self
                            .fs_dev
                            .submit_write_background(block, contents)
                            .expect("fs block in range");
                    }
                }
                // Clean file pages are simply dropped; the filesystem
                // already has them.
            }
            other => unreachable!("{other} pages are never on the reclaim LRU"),
        }
        true
    }

    /// Guarantees `n` free frames, reclaiming on the critical path if
    /// kswapd has fallen behind.
    fn ensure_frames(&mut self, n: u64) {
        while self.frames.free_frames() < n {
            self.stats.direct_reclaims.inc();
            if !self.reclaim_one(true) {
                panic!(
                    "guest OOM: {} frames, nothing reclaimable",
                    self.frames.capacity()
                );
            }
        }
    }

    /// Background reclaim toward the high watermark.
    fn kswapd(&mut self) {
        let low = self.config.low_watermark_pages();
        if self.frames.free_frames() >= low {
            return;
        }
        self.stats.kswapd_runs.inc();
        let high = self.config.high_watermark_pages();
        let mut batch = self.config.kswapd_batch;
        while self.frames.free_frames() < high && batch > 0 {
            if !self.reclaim_one(false) {
                break;
            }
            batch -= 1;
        }
    }

    fn map_new_frame(&mut self, vpn: Vpn, contents: PageContents, write: bool) -> FrameId {
        let frame = self.frames.alloc().expect("ensure_frames ran");
        if !matches!(contents, PageContents::Zero) {
            self.frames.store(frame, contents);
        }
        let mut flags = PteFlags::PRESENT | PteFlags::WRITABLE | PteFlags::REFERENCED;
        if write {
            flags.insert(PteFlags::DIRTY);
        }
        self.pt.map(vpn, frame, flags);
        frame
    }

    /// Issues readahead for the slot neighbors of `slot`.
    fn readahead(&mut self, slot: u64) {
        let window = self.config.readahead_pages();
        if window <= 1 {
            return;
        }
        let base = slot - (slot % window);
        for s in base..base + window {
            if s == slot {
                continue;
            }
            let Some(vpn) = self.slots.owner_of(s) else {
                continue;
            };
            let Some(info) = self.swapped_out.get(&vpn).copied() else {
                continue;
            };
            let now = self.clock.now();
            if info.write_completes.is_some_and(|t| t > now) {
                continue; // still being written; skip
            }
            // Readahead never triggers reclaim (GFP_NORETRY-ish) and must
            // leave the frame reserved for the faulting page untouched.
            if self.frames.free_frames() <= 1 {
                break;
            }
            let completion = self.swap_dev.submit_read(s).expect("slot within device");
            let frame = self.frames.alloc().expect("checked free_frames");
            self.frames.store(frame, completion.data);
            self.swapped_out.remove(&vpn);
            self.swap_cache.insert(vpn, frame);
            self.swap_cache_order.push_back(vpn);
            self.stats.readahead_pages.inc();
        }
    }

    /// The fault paths. Returns the outcome; latency is whatever the
    /// clock advanced.
    fn fault(&mut self, vpn: Vpn, write: bool) -> AccessOutcome {
        self.charge_fault_entry();
        let class = self.class_of(vpn);
        match class {
            PageClass::Anonymous => {
                // Swap-cache hit (readahead already brought it in)?
                if let Some(frame) = self.swap_cache.remove(&vpn) {
                    self.charge(&self.config.costs.minor_fault.clone());
                    let mut flags = PteFlags::PRESENT | PteFlags::WRITABLE | PteFlags::REFERENCED;
                    let slot = self.slots.slot_of(vpn).expect("cached page kept slot");
                    if write {
                        flags.insert(PteFlags::DIRTY);
                        self.slots.free(vpn);
                    } else {
                        self.clean_slot.insert(vpn, slot);
                    }
                    self.pt.map(vpn, frame, flags);
                    self.lru.insert(vpn);
                    self.stats.swap_cache_hits.inc();
                    self.kswapd();
                    return AccessOutcome::MinorFault;
                }
                // Swapped out?
                if let Some(info) = self.swapped_out.get(&vpn).copied() {
                    self.charge(&self.config.costs.cache_lookup.clone());
                    if let Some(t) = info.write_completes {
                        // Writeback still in flight: wait for it before
                        // reading the slot back.
                        if self.clock.advance_to(t) > SimDuration::ZERO {
                            self.stats.writeback_collisions.inc();
                        }
                    }
                    self.ensure_frames(1);
                    self.writeback_cache_tax();
                    let completion = self
                        .swap_dev
                        .submit_read(info.slot)
                        .expect("slot within device");
                    self.readahead(info.slot);
                    self.clock.advance_to(completion.at);
                    self.charge(&self.config.costs.swapin_setup.clone());
                    self.charge(&self.config.costs.swapin_overhead.clone());
                    self.swapped_out.remove(&vpn);
                    self.map_new_frame(vpn, completion.data, write);
                    if write {
                        self.slots.free(vpn);
                    } else {
                        self.clean_slot.insert(vpn, info.slot);
                    }
                    self.lru.insert(vpn);
                    self.stats.major_faults.inc();
                    self.kswapd();
                    return AccessOutcome::MajorFault;
                }
                // First touch: zero-fill.
                self.ensure_frames(1);
                self.charge(&self.config.costs.first_touch.clone());
                self.map_new_frame(vpn, PageContents::Zero, write);
                self.lru.insert(vpn);
                self.stats.first_touch_faults.inc();
                self.kswapd();
                AccessOutcome::MinorFault
            }
            PageClass::FileBacked => {
                // File pages always refault from the filesystem — swap
                // cannot hold them (paper §II).
                self.ensure_frames(1);
                let block = self.fs_block_of(vpn);
                let completion = self.fs_dev.submit_read(block).expect("fs block in range");
                self.clock.advance_to(completion.at);
                self.charge(&self.config.costs.swapin_setup.clone());
                self.map_new_frame(vpn, completion.data, write);
                self.lru.insert(vpn);
                self.stats.fs_reads.inc();
                self.kswapd();
                AccessOutcome::MajorFault
            }
            PageClass::KernelText | PageClass::KernelData | PageClass::Unevictable => {
                // Populated once at first touch; pinned forever after.
                self.ensure_frames(1);
                self.charge(&self.config.costs.first_touch.clone());
                self.map_new_frame(vpn, PageContents::Zero, write);
                // Deliberately NOT on the LRU: the kernel cannot reclaim
                // these (the paper's partial-disaggregation limitation).
                self.kswapd();
                AccessOutcome::MinorFault
            }
        }
    }

    fn do_access(&mut self, addr: VirtAddr, write: bool) -> AccessReport {
        let vpn = addr.vpn();
        let start = self.clock.now();
        if let Some(entry) = self.pt.get_mut(vpn) {
            entry.flags.insert(PteFlags::REFERENCED);
            if write {
                entry.flags.insert(PteFlags::DIRTY);
                // A write invalidates any clean swap copy.
                if self.clean_slot.remove(&vpn).is_some() {
                    self.slots.free(vpn);
                }
            }
            self.counters.record(AccessOutcome::Hit);
            return AccessReport {
                outcome: AccessOutcome::Hit,
                latency: SimDuration::ZERO,
            };
        }
        let outcome = self.fault(vpn, write);
        self.counters.record(outcome);
        AccessReport {
            outcome,
            latency: self.clock.now() - start,
        }
    }
}

impl MemoryBackend for SwapBackedMemory {
    fn map_region(&mut self, pages: u64, class: PageClass) -> Region {
        let region = Region::new(Vpn::new(self.next_vpn), pages, class);
        // Leave a guard gap between regions.
        self.next_vpn += pages + 16;
        self.regions.insert(region.start().raw(), region);
        region
    }

    fn access(&mut self, addr: VirtAddr, write: bool) -> AccessReport {
        self.do_access(addr, write)
    }

    fn write_page(&mut self, addr: VirtAddr, contents: PageContents) -> AccessReport {
        let report = self.do_access(addr, true);
        let entry = self.pt.get(addr.vpn()).expect("write access maps the page");
        self.frames.store(entry.frame, contents);
        report
    }

    fn read_page(&mut self, addr: VirtAddr) -> (PageContents, AccessReport) {
        let report = self.do_access(addr, false);
        let entry = self.pt.get(addr.vpn()).expect("read access maps the page");
        (self.frames.load(entry.frame).clone(), report)
    }

    fn resident_pages(&self) -> u64 {
        self.frames.allocated_frames()
    }

    fn local_capacity_pages(&self) -> u64 {
        self.config.dram_pages
    }

    fn set_local_capacity(&mut self, _pages: u64) -> Result<(), CapacityError> {
        // The crux of paper §II: without guest cooperation, swap-based
        // disaggregation cannot shrink (or grow) a VM's local footprint.
        Err(CapacityError::new("swap-based disaggregation"))
    }

    fn balloon_reclaim(&mut self, target_pages: u64) -> u64 {
        // Guest-cooperative ballooning: inflating the balloon forces the
        // guest to reclaim, but the driver bottoms out at 64 MB
        // (Table III row 2).
        let target = target_pages.max(BALLOON_FLOOR_PAGES);
        while self.resident_pages() > target {
            if !self.reclaim_one(true) {
                break;
            }
        }
        self.resident_pages()
    }

    fn counters(&self) -> AccessCounters {
        self.counters
    }

    fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

impl std::fmt::Debug for SwapBackedMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwapBackedMemory")
            .field("label", &self.label)
            .field("dram_pages", &self.config.dram_pages)
            .field("resident", &self.resident_pages())
            .field("swapped_out", &self.swapped_out.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_block::{NvmeofDevice, PmemDevice, SsdDevice};

    fn backend(dram_pages: u64) -> SwapBackedMemory {
        let clock = SimClock::new();
        let swap_dev = PmemDevice::new(1 << 16, clock.clone(), SimRng::seed_from_u64(1));
        let fs_dev = SsdDevice::new(1 << 16, clock.clone(), SimRng::seed_from_u64(2));
        SwapBackedMemory::new(
            SwapConfig::paper_default(dram_pages),
            Box::new(swap_dev),
            Box::new(fs_dev),
            clock,
            SimRng::seed_from_u64(3),
        )
    }

    #[test]
    fn kswapd_wakes_even_at_tiny_dram_sizes() {
        // Regression: at 16 DRAM pages the paper-default watermarks
        // truncated to low = 0, so kswapd never woke and every eviction
        // was a direct reclaim on the fault path.
        let mut vm = backend(16);
        let r = vm.map_region(64, PageClass::Anonymous);
        for i in 0..64 {
            vm.access(r.page(i), true);
        }
        let stats = vm.swap_stats();
        assert!(
            stats.kswapd_runs > 0,
            "kswapd must wake under memory pressure at tiny DRAM sizes"
        );
    }

    #[test]
    fn first_touch_is_minor_fault_then_hit() {
        let mut vm = backend(64);
        let r = vm.map_region(8, PageClass::Anonymous);
        let rep = vm.access(r.page(0), false);
        assert_eq!(rep.outcome, AccessOutcome::MinorFault);
        let rep = vm.access(r.page(0), false);
        assert_eq!(rep.outcome, AccessOutcome::Hit);
        assert!(rep.latency.is_zero());
    }

    #[test]
    fn overcommit_triggers_swapping_and_refault() {
        let mut vm = backend(32);
        let r = vm.map_region(128, PageClass::Anonymous);
        // Dirty every page so eviction must write.
        for i in 0..128 {
            vm.access(r.page(i), true);
        }
        assert!(vm.resident_pages() <= 32);
        assert!(vm.swap_stats().swap_outs > 0, "pages must have swapped");
        // Touch the first page again: a major fault.
        let rep = vm.access(r.page(0), false);
        assert_eq!(rep.outcome, AccessOutcome::MajorFault);
        assert!(rep.latency > SimDuration::from_micros(5));
    }

    #[test]
    fn data_survives_swap_round_trip() {
        let mut vm = backend(32);
        let r = vm.map_region(128, PageClass::Anonymous);
        vm.write_page(r.page(0), PageContents::from_byte_fill(0xEE));
        // Force page 0 out.
        for i in 1..128 {
            vm.access(r.page(i), true);
        }
        assert!(vm.pt.get(r.page(0).vpn()).is_none(), "page 0 evicted");
        let (contents, rep) = vm.read_page(r.page(0));
        assert_eq!(rep.outcome, AccessOutcome::MajorFault);
        assert_eq!(contents, PageContents::from_byte_fill(0xEE));
    }

    #[test]
    fn kernel_pages_are_never_reclaimed() {
        let mut vm = backend(32);
        let kernel = vm.map_region(16, PageClass::KernelData);
        for i in 0..16 {
            vm.access(kernel.page(i), true);
        }
        let anon = vm.map_region(256, PageClass::Anonymous);
        for i in 0..256 {
            vm.access(anon.page(i), true);
        }
        // Every kernel page must still be resident.
        for i in 0..16 {
            let rep = vm.access(kernel.page(i), false);
            assert_eq!(
                rep.outcome,
                AccessOutcome::Hit,
                "kernel page {i} was reclaimed"
            );
        }
    }

    #[test]
    fn file_backed_pages_never_touch_swap_device() {
        let mut vm = backend(32);
        let file = vm.map_region(128, PageClass::FileBacked);
        for i in 0..128 {
            vm.access(file.page(i), false);
        }
        // Thrash through all of them again (reclaim happened).
        for i in 0..128 {
            vm.access(file.page(i), false);
        }
        assert_eq!(
            vm.swap_stats().swap_outs,
            0,
            "file pages must go to the filesystem, not swap"
        );
        assert!(vm.swap_stats().fs_reads > 0);
    }

    #[test]
    fn clean_refaulted_pages_skip_second_write() {
        let mut vm = backend(32);
        let r = vm.map_region(96, PageClass::Anonymous);
        for i in 0..96 {
            vm.access(r.page(i), true);
        }
        // Read pages back in (clean) and thrash again: clean evictions
        // should appear because the slot copy is still valid.
        for round in 0..3 {
            for i in 0..96 {
                vm.access(r.page(i), false);
            }
            let _ = round;
        }
        assert!(
            vm.swap_stats().clean_evictions > 0,
            "clean slot optimization never used"
        );
    }

    #[test]
    fn readahead_populates_swap_cache() {
        let mut vm = backend(64);
        let r = vm.map_region(256, PageClass::Anonymous);
        for i in 0..256 {
            vm.access(r.page(i), true);
        }
        // Sequential re-walk: neighbors should be pulled in by readahead
        // and produce swap-cache minor faults.
        for i in 0..256 {
            vm.access(r.page(i), false);
        }
        assert!(vm.swap_stats().readahead_pages > 0);
        assert!(
            vm.swap_stats().swap_cache_hits > 0,
            "sequential access should hit readahead"
        );
    }

    #[test]
    fn readahead_disabled_with_page_cluster_zero() {
        let clock = SimClock::new();
        let swap_dev = PmemDevice::new(1 << 16, clock.clone(), SimRng::seed_from_u64(1));
        let fs_dev = SsdDevice::new(1 << 16, clock.clone(), SimRng::seed_from_u64(2));
        let mut cfg = SwapConfig::paper_default(64);
        cfg.page_cluster = 0;
        let mut vm = SwapBackedMemory::new(
            cfg,
            Box::new(swap_dev),
            Box::new(fs_dev),
            clock,
            SimRng::seed_from_u64(3),
        );
        let r = vm.map_region(256, PageClass::Anonymous);
        for _ in 0..2 {
            for i in 0..256 {
                vm.access(r.page(i), true);
            }
        }
        assert_eq!(vm.swap_stats().readahead_pages, 0);
    }

    #[test]
    fn cannot_resize_without_guest_cooperation() {
        let mut vm = backend(64);
        assert!(vm.set_local_capacity(16).is_err());
    }

    #[test]
    fn balloon_shrinks_but_respects_floor() {
        let mut vm = backend(40_000);
        let r = vm.map_region(30_000, PageClass::Anonymous);
        for i in 0..30_000 {
            vm.access(r.page(i), false);
        }
        assert_eq!(vm.resident_pages(), 30_000);
        let after = vm.balloon_reclaim(0);
        assert_eq!(
            after, BALLOON_FLOOR_PAGES,
            "balloon bottoms out at 64 MB (paper Table III)"
        );
    }

    #[test]
    fn nvmeof_faults_slower_than_dram_faults() {
        let run = |mk: &dyn Fn(SimClock) -> Box<dyn BlockDevice>| {
            let clock = SimClock::new();
            let fs = SsdDevice::new(1 << 16, clock.clone(), SimRng::seed_from_u64(2));
            let mut vm = SwapBackedMemory::new(
                SwapConfig::paper_default(64),
                mk(clock.clone()),
                Box::new(fs),
                clock,
                SimRng::seed_from_u64(3),
            );
            let r = vm.map_region(256, PageClass::Anonymous);
            for i in 0..256 {
                vm.access(r.page(i), true);
            }
            let mut total = SimDuration::ZERO;
            let mut majors = 0;
            for i in 0..256 {
                let rep = vm.access(r.page(i), false);
                if rep.outcome == AccessOutcome::MajorFault {
                    total += rep.latency;
                    majors += 1;
                }
            }
            total.as_micros_f64() / majors.max(1) as f64
        };
        let dram = run(&|c| {
            Box::new(PmemDevice::new(
                1 << 16,
                c.clone(),
                SimRng::seed_from_u64(1),
            ))
        });
        let nvme = run(&|c| {
            Box::new(NvmeofDevice::new(
                1 << 16,
                c.clone(),
                SimRng::seed_from_u64(1),
            ))
        });
        assert!(
            nvme > dram + 8.0,
            "NVMeoF major faults ({nvme:.1}µs) must cost more than DRAM ({dram:.1}µs)"
        );
    }

    #[test]
    #[should_panic(expected = "unmapped address")]
    fn access_outside_regions_panics() {
        let mut vm = backend(8);
        vm.access(VirtAddr::new(0x1), false);
    }

    #[test]
    fn counters_track_outcomes() {
        let mut vm = backend(64);
        let r = vm.map_region(4, PageClass::Anonymous);
        vm.access(r.page(0), false);
        vm.access(r.page(0), false);
        let c = vm.counters();
        assert_eq!(c.minor_faults, 1);
        assert_eq!(c.hits, 1);
    }
}
