//! The kernel's two-list (active/inactive) page LRU.

use std::collections::{HashMap, VecDeque};

use fluidmem_mem::Vpn;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ListKind {
    Active,
    Inactive,
}

/// The Linux active/inactive LRU with referenced-bit second chance.
///
/// This is the mechanism the paper credits when swap beats FluidMem's
/// static list at high memory pressure (§VI-D1): *"the kswapd process
/// within the guest \[is\] better able to pick candidates for eviction using
/// the kernel's active/inactive list mechanism."*
///
/// Mechanics reproduced:
///
/// * new pages enter the **inactive** tail;
/// * a page *referenced while on the inactive list* is promoted to the
///   active tail when next scanned (second chance);
/// * reclaim scans the inactive head; active pages are aged down to the
///   inactive list when the inactive list falls below half the active
///   list's size (`inactive_is_low` balancing);
/// * the referenced bit is owned by the caller's page table — the scan
///   takes a callback to test-and-clear it, mirroring
///   `page_referenced()`.
///
/// # Example
///
/// ```
/// use fluidmem_mem::Vpn;
/// use fluidmem_swap::TwoListLru;
///
/// let mut lru = TwoListLru::new();
/// lru.insert(Vpn::new(1));
/// lru.insert(Vpn::new(2));
/// // Page 1 was referenced; page 2 becomes the reclaim victim.
/// let victim = lru.pick_victim(|v| v == Vpn::new(1));
/// assert_eq!(victim, Some(Vpn::new(2)));
/// ```
#[derive(Debug, Default)]
pub struct TwoListLru {
    active: VecDeque<Vpn>,
    inactive: VecDeque<Vpn>,
    /// Source of truth; deque entries not matching are stale and skipped.
    membership: HashMap<Vpn, ListKind>,
    active_count: usize,
    inactive_count: usize,
}

impl TwoListLru {
    /// Creates an empty LRU.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tracks a newly resident page (inactive tail, as the kernel does
    /// for fresh anonymous pages on 4.x kernels).
    pub fn insert(&mut self, vpn: Vpn) {
        if self.membership.contains_key(&vpn) {
            return;
        }
        self.membership.insert(vpn, ListKind::Inactive);
        self.inactive.push_back(vpn);
        self.inactive_count += 1;
    }

    /// Stops tracking a page (it was reclaimed or unmapped).
    pub fn remove(&mut self, vpn: Vpn) -> bool {
        match self.membership.remove(&vpn) {
            Some(ListKind::Active) => {
                self.active_count -= 1;
                true
            }
            Some(ListKind::Inactive) => {
                self.inactive_count -= 1;
                true
            }
            None => false,
        }
    }

    /// Whether the page is tracked.
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.membership.contains_key(&vpn)
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.active_count + self.inactive_count
    }

    /// Whether no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pages on the active list.
    pub fn active_len(&self) -> usize {
        self.active_count
    }

    /// Pages on the inactive list.
    pub fn inactive_len(&self) -> usize {
        self.inactive_count
    }

    /// Picks a reclaim victim from the inactive head.
    ///
    /// `referenced` test-and-clears the hardware referenced bit for a
    /// page (the caller owns the page table). Referenced inactive pages
    /// get their second chance: promotion to the active tail. Aging from
    /// active to inactive happens first when the inactive list is low.
    ///
    /// Returns `None` when nothing is reclaimable.
    pub fn pick_victim<F: FnMut(Vpn) -> bool>(&mut self, mut referenced: F) -> Option<Vpn> {
        self.balance(&mut referenced);
        // Bounded scan: each tracked page is visited at most once per
        // call, so a fully-referenced list still terminates.
        let mut scanned = 0;
        let budget = self.inactive_count.max(1);
        while scanned <= budget {
            let Some(vpn) = self.inactive.pop_front() else {
                break;
            };
            if self.membership.get(&vpn) != Some(&ListKind::Inactive) {
                continue; // stale entry
            }
            scanned += 1;
            if referenced(vpn) {
                // Second chance: promote.
                self.membership.insert(vpn, ListKind::Active);
                self.inactive_count -= 1;
                self.active_count += 1;
                self.active.push_back(vpn);
                continue;
            }
            self.membership.remove(&vpn);
            self.inactive_count -= 1;
            return Some(vpn);
        }
        // Everything had its referenced bit set this round; reclaim the
        // coldest page anyway (the kernel's priority escalation), taking
        // from the inactive head first and the active head otherwise.
        loop {
            if let Some(vpn) = self.inactive.pop_front() {
                if self.membership.get(&vpn) != Some(&ListKind::Inactive) {
                    continue;
                }
                self.membership.remove(&vpn);
                self.inactive_count -= 1;
                return Some(vpn);
            }
            let vpn = self.active.pop_front()?;
            if self.membership.get(&vpn) != Some(&ListKind::Active) {
                continue;
            }
            self.membership.remove(&vpn);
            self.active_count -= 1;
            return Some(vpn);
        }
    }

    /// Ages active pages down when the inactive list is low
    /// (`inactive_is_low`: inactive < active / 2). Referenced active
    /// pages have their bit cleared and stay (rotate); unreferenced ones
    /// demote.
    fn balance<F: FnMut(Vpn) -> bool>(&mut self, referenced: &mut F) {
        let mut moves = 0;
        let budget = self.active_count;
        while self.inactive_count < self.active_count / 2 && moves < budget {
            let Some(vpn) = self.active.pop_front() else {
                break;
            };
            if self.membership.get(&vpn) != Some(&ListKind::Active) {
                continue;
            }
            moves += 1;
            if referenced(vpn) {
                self.active.push_back(vpn); // rotate, bit now cleared
            } else {
                self.membership.insert(vpn, ListKind::Inactive);
                self.active_count -= 1;
                self.inactive_count += 1;
                self.inactive.push_back(vpn);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u64) -> Vpn {
        Vpn::new(n)
    }

    #[test]
    fn fifo_when_nothing_referenced() {
        let mut lru = TwoListLru::new();
        for n in 0..4 {
            lru.insert(v(n));
        }
        assert_eq!(lru.pick_victim(|_| false), Some(v(0)));
        assert_eq!(lru.pick_victim(|_| false), Some(v(1)));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn referenced_pages_get_second_chance() {
        let mut lru = TwoListLru::new();
        for n in 0..3 {
            lru.insert(v(n));
        }
        // Page 0 referenced: survives the first scan, 1 is reclaimed.
        let victim = lru.pick_victim(|p| p == v(0));
        assert_eq!(victim, Some(v(1)));
        assert_eq!(lru.active_len(), 1, "page 0 promoted");
        assert!(lru.contains(v(0)));
    }

    #[test]
    fn repeatedly_referenced_working_set_survives_scans() {
        let mut lru = TwoListLru::new();
        for n in 0..10 {
            lru.insert(v(n));
        }
        // Pages 0-4 are the hot working set.
        let hot = |p: Vpn| p.raw() < 5;
        for _ in 0..5 {
            let victim = lru.pick_victim(&hot).unwrap();
            assert!(
                victim.raw() >= 5,
                "hot page {victim} must not be evicted while cold pages remain"
            );
        }
        assert_eq!(lru.len(), 5);
    }

    #[test]
    fn all_referenced_still_terminates_and_reclaims() {
        let mut lru = TwoListLru::new();
        for n in 0..4 {
            lru.insert(v(n));
        }
        // Everything claims to be referenced forever — the escalation
        // path must still produce a victim (or the system would deadlock).
        let victim = lru.pick_victim(|_| true);
        assert!(victim.is_some());
    }

    #[test]
    fn empty_lru_returns_none() {
        let mut lru = TwoListLru::new();
        assert_eq!(lru.pick_victim(|_| false), None);
        lru.insert(v(1));
        lru.remove(v(1));
        assert_eq!(lru.pick_victim(|_| false), None);
    }

    #[test]
    fn remove_is_idempotent() {
        let mut lru = TwoListLru::new();
        lru.insert(v(1));
        assert!(lru.remove(v(1)));
        assert!(!lru.remove(v(1)));
        assert_eq!(lru.len(), 0);
    }

    #[test]
    fn duplicate_insert_ignored() {
        let mut lru = TwoListLru::new();
        lru.insert(v(1));
        lru.insert(v(1));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn balancing_refills_inactive_from_active() {
        let mut lru = TwoListLru::new();
        for n in 0..8 {
            lru.insert(v(n));
        }
        // A fully-referenced scan promotes the survivors to the active
        // list (each call still reclaims one page via escalation).
        let _ = lru.pick_victim(|_| true);
        assert!(lru.active_len() >= 6, "active {}", lru.active_len());
        assert_eq!(lru.inactive_len(), 0);
        // With references gone, victims must still be produced by aging
        // active pages down to the inactive list.
        let got = lru.pick_victim(|_| false);
        assert!(got.is_some());
        assert!(
            lru.inactive_len() > 0,
            "balancing should have demoted active pages"
        );
    }
}
