//! Swap-slot allocation.

use std::collections::HashMap;

use fluidmem_mem::Vpn;

/// Allocates 4 KB slots on the swap device and remembers which page owns
/// which slot.
///
/// Mirrors the kernel's swap map: slots are handed out in ascending order
/// (so pages swapped out together get neighboring slots — what makes
/// readahead useful), freed slots are recycled, and a page that came back
/// in *clean* keeps its slot so a later eviction needs no second write.
///
/// # Example
///
/// ```
/// use fluidmem_mem::Vpn;
/// use fluidmem_swap::SlotAllocator;
///
/// let mut slots = SlotAllocator::new(100);
/// let s = slots.allocate(Vpn::new(7)).unwrap();
/// assert_eq!(slots.slot_of(Vpn::new(7)), Some(s));
/// assert_eq!(slots.owner_of(s), Some(Vpn::new(7)));
/// slots.free(Vpn::new(7));
/// assert_eq!(slots.slot_of(Vpn::new(7)), None);
/// ```
#[derive(Debug, Default)]
pub struct SlotAllocator {
    capacity: u64,
    next: u64,
    free_list: Vec<u64>,
    by_vpn: HashMap<Vpn, u64>,
    by_slot: HashMap<u64, Vpn>,
}

impl SlotAllocator {
    /// Creates an allocator for a device with `capacity` slots.
    pub fn new(capacity: u64) -> Self {
        SlotAllocator {
            capacity,
            ..Default::default()
        }
    }

    /// Device capacity in slots.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Slots currently allocated.
    pub fn allocated(&self) -> u64 {
        self.by_vpn.len() as u64
    }

    /// Allocates (or returns the existing) slot for a page. `None` when
    /// the device is full.
    pub fn allocate(&mut self, vpn: Vpn) -> Option<u64> {
        if let Some(&slot) = self.by_vpn.get(&vpn) {
            return Some(slot);
        }
        let slot = if self.next < self.capacity {
            let s = self.next;
            self.next += 1;
            s
        } else {
            self.free_list.pop()?
        };
        self.by_vpn.insert(vpn, slot);
        self.by_slot.insert(slot, vpn);
        Some(slot)
    }

    /// Releases a page's slot, if any.
    pub fn free(&mut self, vpn: Vpn) -> Option<u64> {
        let slot = self.by_vpn.remove(&vpn)?;
        self.by_slot.remove(&slot);
        self.free_list.push(slot);
        Some(slot)
    }

    /// The slot a page owns.
    pub fn slot_of(&self, vpn: Vpn) -> Option<u64> {
        self.by_vpn.get(&vpn).copied()
    }

    /// The page owning a slot.
    pub fn owner_of(&self, slot: u64) -> Option<Vpn> {
        self.by_slot.get(&slot).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_then_recycled() {
        let mut s = SlotAllocator::new(2);
        let a = s.allocate(Vpn::new(1)).unwrap();
        let b = s.allocate(Vpn::new(2)).unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.allocate(Vpn::new(3)), None, "device full");
        s.free(Vpn::new(1));
        assert_eq!(s.allocate(Vpn::new(3)), Some(0), "slot recycled");
    }

    #[test]
    fn allocate_is_idempotent_per_page() {
        let mut s = SlotAllocator::new(4);
        let a = s.allocate(Vpn::new(1)).unwrap();
        assert_eq!(s.allocate(Vpn::new(1)), Some(a));
        assert_eq!(s.allocated(), 1);
    }

    #[test]
    fn neighbors_get_neighboring_slots() {
        let mut s = SlotAllocator::new(16);
        for n in 0..8 {
            assert_eq!(s.allocate(Vpn::new(100 + n)), Some(n));
        }
    }

    #[test]
    fn free_unknown_is_none() {
        let mut s = SlotAllocator::new(4);
        assert_eq!(s.free(Vpn::new(9)), None);
    }
}
