//! Swap-subsystem tunables and cost models.

use fluidmem_sim::LatencyModel;

/// The virtio disk caching mode (libvirt `cache=` attribute).
///
/// The paper found this setting *critical for an accurate comparison*
/// (§VI-D1): with `writeback`, swap writes are buffered a second time in
/// the hypervisor's page cache, which actually made swapping to DRAM
/// *slower*; all headline results use `none` (`O_DIRECT`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DiskCacheMode {
    /// `cache=none`: O_DIRECT, no hypervisor page cache (paper default).
    #[default]
    None,
    /// `cache=writeback`: an extra buffering layer that adds copy cost to
    /// every request.
    Writeback,
}

/// Kernel-path cost models for the swap fault paths.
///
/// These cover the guest kernel's CPU work; device time comes from the
/// [`BlockDevice`](fluidmem_block::BlockDevice) models. Calibrated so the
/// end-to-end in-VM fault latencies land on the paper's Figure 3
/// averages: 26.34 µs (DRAM), 41.73 µs (NVMeoF), 106.56 µs (SSD).
#[derive(Debug, Clone)]
pub struct SwapCosts {
    /// Guest fault entry: exception, `handle_mm_fault` down to the swap
    /// path.
    pub fault_entry: LatencyModel,
    /// Swap-cache radix-tree lookup.
    pub cache_lookup: LatencyModel,
    /// Frame allocation + cgroup charge + rmap + PTE install + LRU insert
    /// on the swap-in path.
    pub swapin_setup: LatencyModel,
    /// Remaining swap-in bookkeeping (swapcount, memcg, workingset
    /// accounting) — the "kernel tax" of the paper's more complex swap
    /// path.
    pub swapin_overhead: LatencyModel,
    /// A minor fault that hits the swap cache (map + promote only).
    pub minor_fault: LatencyModel,
    /// A first-touch anonymous fault (allocate + zero a frame).
    pub first_touch: LatencyModel,
    /// Per-page cost of a direct-reclaim scan iteration.
    pub reclaim_scan: LatencyModel,
    /// Extra cost per fault when it happens inside a KVM guest
    /// (VM exit/entry, nested page walk).
    pub vm_exit: LatencyModel,
    /// Extra copy cost per device request under
    /// [`DiskCacheMode::Writeback`].
    pub writeback_cache_copy: LatencyModel,
}

impl Default for SwapCosts {
    fn default() -> Self {
        SwapCosts {
            fault_entry: LatencyModel::normal_us(1.8, 0.3),
            cache_lookup: LatencyModel::normal_us(0.8, 0.15),
            swapin_setup: LatencyModel::normal_us(3.6, 0.5),
            swapin_overhead: LatencyModel::lognormal_mean_p99_us(24.0, 44.0),
            minor_fault: LatencyModel::lognormal_mean_p99_us(4.5, 8.0),
            first_touch: LatencyModel::lognormal_mean_p99_us(2.4, 4.5),
            reclaim_scan: LatencyModel::normal_us(0.35, 0.08),
            vm_exit: LatencyModel::normal_us(4.0, 0.5),
            writeback_cache_copy: LatencyModel::normal_us(3.0, 0.5),
        }
    }
}

/// Configuration of one guest's swap subsystem.
#[derive(Debug, Clone)]
pub struct SwapConfig {
    /// Local DRAM allotment in 4 KB pages (the paper's VMs get 1 GB =
    /// 262 144 pages).
    pub dram_pages: u64,
    /// `vm.page-cluster`: readahead window is `2^page_cluster` pages
    /// (kernel default 3 → 8 pages). 0 disables readahead, as the paper
    /// sets for the MongoDB runs.
    pub page_cluster: u32,
    /// `vm.swappiness` (0–200): bias between reclaiming anonymous pages
    /// vs. file-backed page cache. The paper sets 100 for remote-memory
    /// swap.
    pub swappiness: u8,
    /// kswapd wakes when free frames fall below this fraction of DRAM.
    pub watermark_low: f64,
    /// kswapd reclaims until free frames reach this fraction.
    pub watermark_high: f64,
    /// Pages reclaimed per kswapd batch.
    pub kswapd_batch: usize,
    /// Hypervisor disk-cache mode for the swap device.
    pub cache_mode: DiskCacheMode,
    /// Kernel-path cost models.
    pub costs: SwapCosts,
}

impl SwapConfig {
    /// The paper's standard guest: 1 GB DRAM, default readahead,
    /// swappiness 100, `cache=none`.
    pub fn paper_default(dram_pages: u64) -> Self {
        SwapConfig {
            dram_pages,
            page_cluster: 3,
            swappiness: 100,
            watermark_low: 0.030,
            watermark_high: 0.060,
            kswapd_batch: 32,
            cache_mode: DiskCacheMode::None,
            costs: SwapCosts::default(),
        }
    }

    /// The largest meaningful `vm.page-cluster`: a 2^20-page (4 GB)
    /// readahead window already exceeds any guest this simulates.
    /// Shifting `1u64` by an unclamped `u32` is undefined for shifts
    /// ≥ 64 (debug panic, wrapping in release), so both the getter and
    /// [`SwapConfig::validate`] pin the exponent here.
    pub const MAX_PAGE_CLUSTER: u32 = 20;

    /// Readahead window size in pages: `2^page_cluster`, with the
    /// exponent clamped to [`SwapConfig::MAX_PAGE_CLUSTER`] so a wild
    /// config value degrades to the maximum window instead of an
    /// overflowing shift.
    pub fn readahead_pages(&self) -> u64 {
        1 << self.page_cluster.min(Self::MAX_PAGE_CLUSTER)
    }

    /// The low watermark in pages: kswapd wakes when free frames drop
    /// below this. Rounded *up* and floored at 1 — truncation used to
    /// yield 0 for small `dram_pages`, so kswapd never woke and every
    /// reclaim ran on the fault path.
    pub fn low_watermark_pages(&self) -> u64 {
        ((self.dram_pages as f64 * self.watermark_low).ceil() as u64).max(1)
    }

    /// The high watermark in pages: kswapd reclaims until free frames
    /// reach this. Always strictly above the low watermark so a wakeup
    /// makes progress.
    pub fn high_watermark_pages(&self) -> u64 {
        ((self.dram_pages as f64 * self.watermark_high).ceil() as u64)
            .max(self.low_watermark_pages() + 1)
    }

    /// Checks the watermark fractions are ordered and sane, and the
    /// readahead exponent is in range.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < watermark_low < watermark_high <= 1` and
    /// `page_cluster <= MAX_PAGE_CLUSTER`.
    pub fn validate(&self) {
        assert!(
            self.page_cluster <= Self::MAX_PAGE_CLUSTER,
            "page_cluster ({}) exceeds MAX_PAGE_CLUSTER ({})",
            self.page_cluster,
            Self::MAX_PAGE_CLUSTER
        );
        assert!(
            self.watermark_low > 0.0,
            "watermark_low must be positive (got {})",
            self.watermark_low
        );
        assert!(
            self.watermark_high > self.watermark_low,
            "watermark_high ({}) must exceed watermark_low ({})",
            self.watermark_high,
            self.watermark_low
        );
        assert!(
            self.watermark_high <= 1.0,
            "watermark_high must be at most 1.0 (got {})",
            self.watermark_high
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_text() {
        let c = SwapConfig::paper_default(262_144);
        assert_eq!(c.dram_pages, 262_144);
        assert_eq!(c.readahead_pages(), 8);
        assert_eq!(c.swappiness, 100);
        assert_eq!(c.cache_mode, DiskCacheMode::None);
    }

    #[test]
    fn page_cluster_zero_disables_readahead() {
        let mut c = SwapConfig::paper_default(1024);
        c.page_cluster = 0;
        assert_eq!(c.readahead_pages(), 1);
    }

    #[test]
    fn huge_page_cluster_saturates_instead_of_overflowing() {
        let mut c = SwapConfig::paper_default(1024);
        // 1u64 << 64 is an overflowing shift (debug panic, wrapping in
        // release, either way garbage); the getter must clamp.
        for wild in [64, 65, u32::MAX] {
            c.page_cluster = wild;
            assert_eq!(
                c.readahead_pages(),
                1 << SwapConfig::MAX_PAGE_CLUSTER,
                "page_cluster={wild}"
            );
        }
        c.page_cluster = SwapConfig::MAX_PAGE_CLUSTER;
        assert_eq!(c.readahead_pages(), 1 << SwapConfig::MAX_PAGE_CLUSTER);
    }

    #[test]
    #[should_panic(expected = "page_cluster")]
    fn validate_rejects_out_of_range_page_cluster() {
        let mut c = SwapConfig::paper_default(1024);
        c.page_cluster = SwapConfig::MAX_PAGE_CLUSTER + 1;
        c.validate();
    }

    #[test]
    fn watermarks_round_up_and_never_truncate_to_zero() {
        // 16 pages × 0.03 = 0.48: truncation gave 0 (kswapd never woke);
        // the ceil keeps at least one page of low watermark.
        let tiny = SwapConfig::paper_default(16);
        assert_eq!(tiny.low_watermark_pages(), 1);
        assert!(tiny.high_watermark_pages() > tiny.low_watermark_pages());

        let paper = SwapConfig::paper_default(262_144);
        assert_eq!(paper.low_watermark_pages(), 7_865); // ceil(7864.32)
        assert_eq!(paper.high_watermark_pages(), 15_729); // ceil(15728.64)
    }

    #[test]
    fn validate_accepts_paper_defaults() {
        SwapConfig::paper_default(16).validate();
        SwapConfig::paper_default(262_144).validate();
    }

    #[test]
    #[should_panic(expected = "watermark_high")]
    fn validate_rejects_inverted_watermarks() {
        let mut c = SwapConfig::paper_default(1024);
        c.watermark_high = c.watermark_low;
        c.validate();
    }
}
