//! The swap-based memory-disaggregation baseline.
//!
//! This crate implements the mechanism the paper compares FluidMem
//! against (§II, §VI): an unmodified guest kernel's swap subsystem over a
//! remote-memory block device (the Infiniswap / NVMeoF-class approach).
//! It is a real implementation of the relevant kernel machinery, not a
//! latency table:
//!
//! * a **two-list LRU** (active/inactive) with referenced-bit second
//!   chance and list balancing — the `kswapd` aging that §VI-D1 credits
//!   for swap/DRAM beating FluidMem/DRAM at high scale factors;
//! * **kswapd watermarks** with asynchronous background writeback, and
//!   **direct reclaim** with synchronous writeback when allocation stalls
//!   — the long-tail knees in Figure 3's swap CDFs;
//! * a **swap cache** and **slot allocator**, including the clean-slot
//!   optimization (an unmodified page evicted again needs no second
//!   write);
//! * **readahead** (`vm.page-cluster`) that speculatively pulls in slot
//!   neighbors;
//! * the **partial-disaggregation limits** of §II, enforced by page
//!   class: only anonymous pages use swap, file-backed pages are written
//!   back to (and refaulted from) their filesystem, and kernel /
//!   unevictable pages can never leave DRAM.
//!
//! The entry point is [`SwapBackedMemory`], a
//! [`MemoryBackend`](fluidmem_mem::MemoryBackend) implementation driven
//! by the same workloads as the FluidMem monitor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod config;
mod lru;
mod slots;
mod stats;

pub use backend::SwapBackedMemory;
pub use config::{DiskCacheMode, SwapConfig, SwapCosts};
pub use lru::TwoListLru;
pub use slots::SlotAllocator;
pub use stats::{SwapCounters, SwapStats};
