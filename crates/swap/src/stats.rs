//! Swap-subsystem counters.

/// Counters kept by [`SwapBackedMemory`](crate::SwapBackedMemory).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapStats {
    /// Faults served from the swap device (page was swapped out).
    pub major_faults: u64,
    /// Faults served from the swap cache (readahead hit).
    pub swap_cache_hits: u64,
    /// First-touch anonymous faults (zero-fill).
    pub first_touch_faults: u64,
    /// Pages written to the swap device.
    pub swap_outs: u64,
    /// Evictions that skipped the write because a clean slot copy
    /// existed.
    pub clean_evictions: u64,
    /// Pages pulled in speculatively by readahead.
    pub readahead_pages: u64,
    /// kswapd background reclaim passes.
    pub kswapd_runs: u64,
    /// Pages reclaimed on the allocation critical path.
    pub direct_reclaims: u64,
    /// File-backed pages refaulted from the filesystem.
    pub fs_reads: u64,
    /// Dirty file-backed pages written back to the filesystem.
    pub fs_writes: u64,
    /// Faults that had to wait for an in-flight writeback of the same
    /// page.
    pub writeback_collisions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = SwapStats::default();
        assert_eq!(s.major_faults, 0);
        assert_eq!(s, SwapStats::default());
    }
}
