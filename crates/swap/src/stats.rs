//! Swap-subsystem counters.
//!
//! The swap backend increments [`SwapCounters`] — shared telemetry
//! handles — and [`SwapStats`] is the point-in-time snapshot those
//! handles produce. Registering the counters exports the same handles
//! under [`consts::SWAP_EVENTS`](fluidmem_telemetry::consts::SWAP_EVENTS).

use fluidmem_telemetry::{consts, Counter, Registry};

/// A point-in-time snapshot of the counters kept by
/// [`SwapBackedMemory`](crate::SwapBackedMemory).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapStats {
    /// Faults served from the swap device (page was swapped out).
    pub major_faults: u64,
    /// Faults served from the swap cache (readahead hit).
    pub swap_cache_hits: u64,
    /// First-touch anonymous faults (zero-fill).
    pub first_touch_faults: u64,
    /// Pages written to the swap device.
    pub swap_outs: u64,
    /// Evictions that skipped the write because a clean slot copy
    /// existed.
    pub clean_evictions: u64,
    /// Pages pulled in speculatively by readahead.
    pub readahead_pages: u64,
    /// kswapd background reclaim passes.
    pub kswapd_runs: u64,
    /// Pages reclaimed on the allocation critical path.
    pub direct_reclaims: u64,
    /// File-backed pages refaulted from the filesystem.
    pub fs_reads: u64,
    /// Dirty file-backed pages written back to the filesystem.
    pub fs_writes: u64,
    /// Faults that had to wait for an in-flight writeback of the same
    /// page.
    pub writeback_collisions: u64,
}

macro_rules! swap_counters {
    ($(($field:ident, $event:literal, $doc:literal)),+ $(,)?) => {
        /// The swap backend's live counter handles (see the module docs).
        #[derive(Debug, Clone, Default)]
        pub struct SwapCounters {
            $(#[doc = $doc] pub $field: Counter,)+
        }

        impl SwapCounters {
            /// Fresh detached counters (not exported anywhere).
            pub fn new() -> Self {
                Self::default()
            }

            /// Registers every counter in `registry` under
            /// [`consts::SWAP_EVENTS`], keyed by an `event` label.
            /// Accumulated values carry over: the registry adopts the
            /// live handles.
            pub fn register(&self, registry: &Registry) {
                $(registry.adopt_counter(
                    consts::SWAP_EVENTS,
                    &[(consts::LABEL_EVENT, $event)],
                    &self.$field,
                );)+
            }

            /// A point-in-time snapshot of every counter.
            pub fn snapshot(&self) -> SwapStats {
                SwapStats {
                    $($field: self.$field.get(),)+
                }
            }
        }
    };
}

swap_counters! {
    (major_faults, "major_fault", "Faults served from the swap device."),
    (swap_cache_hits, "swap_cache_hit", "Faults served from the swap cache (readahead hit)."),
    (first_touch_faults, "first_touch_fault", "First-touch anonymous faults (zero-fill)."),
    (swap_outs, "swap_out", "Pages written to the swap device."),
    (clean_evictions, "clean_eviction", "Evictions that skipped the write (clean slot copy)."),
    (readahead_pages, "readahead_page", "Pages pulled in speculatively by readahead."),
    (kswapd_runs, "kswapd_run", "kswapd background reclaim passes."),
    (direct_reclaims, "direct_reclaim", "Pages reclaimed on the allocation critical path."),
    (fs_reads, "fs_read", "File-backed pages refaulted from the filesystem."),
    (fs_writes, "fs_write", "Dirty file-backed pages written back."),
    (writeback_collisions, "writeback_collision", "Faults that waited on an in-flight writeback."),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = SwapStats::default();
        assert_eq!(s.major_faults, 0);
        assert_eq!(SwapCounters::new().snapshot(), SwapStats::default());
    }

    #[test]
    fn registered_counters_are_the_same_handles() {
        let c = SwapCounters::new();
        c.swap_outs.add(4);
        let reg = Registry::new();
        c.register(&reg);
        let outs = reg.counter(consts::SWAP_EVENTS, &[(consts::LABEL_EVENT, "swap_out")]);
        assert_eq!(outs.get(), 4);
        c.swap_outs.inc();
        assert_eq!(outs.get(), 5);
    }
}
