//! Per-operation cost models, calibrated to the paper's Table I.

use fluidmem_sim::LatencyModel;

/// Virtual-time costs of the userfaultfd mechanism's operations.
///
/// Defaults are calibrated so that a synchronous FluidMem fault decomposes
/// the way the paper's Table I measures it (units µs, avg / p99):
///
/// | Code path | avg | p99 |
/// |---|---|---|
/// | `UFFD_ZEROPAGE` | 2.61 | 3.51 |
/// | `UFFD_REMAP` (CPU part; the TLB tail comes from [`TlbModel`]) | 1.65 | 18.03 |
/// | `UFFD_COPY` | 3.89 | 5.43 |
///
/// [`TlbModel`]: fluidmem_mem::TlbModel
///
/// # Example
///
/// ```
/// use fluidmem_uffd::UffdCosts;
///
/// let costs = UffdCosts::default();
/// assert!((costs.zeropage.mean_us() - 2.61).abs() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct UffdCosts {
    /// Guest halt → hypervisor fault handling → event queued on the fd.
    /// This is the kernel-side trap cost paid before the monitor sees
    /// anything.
    pub fault_trap: LatencyModel,
    /// Monitor returning from `poll(2)` and reading the event message.
    pub event_delivery: LatencyModel,
    /// The `UFFD_ZEROPAGE` ioctl: map the shared zero page.
    pub zeropage: LatencyModel,
    /// The `UFFD_COPY` ioctl: allocate a frame and copy 4 KB in.
    pub copy: LatencyModel,
    /// The CPU portion of the proposed `UFFD_REMAP` ioctl (page-table
    /// rewriting); the interprocessor-interrupt portion is charged via the
    /// TLB model and can be overlapped with network waits (§V-B).
    pub remap_cpu: LatencyModel,
    /// Waking the faulting vCPU thread.
    pub wake: LatencyModel,
    /// The kernel's ordinary copy-on-write break when the guest first
    /// *writes* a zero-page-mapped page (a regular minor fault, not
    /// delivered to userfaultfd).
    pub cow_break: LatencyModel,
    /// Extra cost per fault when the faulting context is a KVM vCPU
    /// (VM exit / entry); zero when faults come from a plain process
    /// linked against libuserfault (the Table II setup).
    pub vm_exit: LatencyModel,
}

impl Default for UffdCosts {
    fn default() -> Self {
        UffdCosts {
            fault_trap: LatencyModel::lognormal_mean_p99_us(3.0, 5.2),
            event_delivery: LatencyModel::lognormal_mean_p99_us(1.4, 2.5),
            zeropage: LatencyModel::lognormal_mean_p99_us(2.61, 3.51),
            copy: LatencyModel::lognormal_mean_p99_us(3.89, 5.43),
            remap_cpu: LatencyModel::normal_us(0.9, 0.15),
            wake: LatencyModel::lognormal_mean_p99_us(1.6, 2.6),
            cow_break: LatencyModel::lognormal_mean_p99_us(2.2, 3.5),
            vm_exit: LatencyModel::normal_us(4.0, 0.5),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_sim::{stats::Sample, SimRng};

    #[test]
    fn default_calibration_matches_table1() {
        let costs = UffdCosts::default();
        let mut rng = SimRng::seed_from_u64(1);
        let mut zp = Sample::new();
        let mut cp = Sample::new();
        for _ in 0..20_000 {
            zp.record(costs.zeropage.sample(&mut rng).as_micros_f64());
            cp.record(costs.copy.sample(&mut rng).as_micros_f64());
        }
        assert!(
            (zp.mean() - 2.61).abs() < 0.1,
            "zeropage mean {}",
            zp.mean()
        );
        assert!((zp.percentile(0.99) - 3.51).abs() < 0.4);
        assert!((cp.mean() - 3.89).abs() < 0.1, "copy mean {}", cp.mean());
        assert!((cp.percentile(0.99) - 5.43).abs() < 0.5);
    }

    #[test]
    fn remap_cpu_is_cheap() {
        let costs = UffdCosts::default();
        assert!(costs.remap_cpu.mean_us() < 1.5);
    }
}
