//! A faithful simulation of the Linux `userfaultfd` mechanism.
//!
//! FluidMem (paper §III–V) is built on `userfaultfd`: QEMU registers the
//! guest's memory with a userfaultfd file descriptor, the kernel delivers
//! missing-page faults to a user-space *monitor*, and the monitor resolves
//! them with three ioctls:
//!
//! * `UFFD_ZEROPAGE` — map the kernel's shared copy-on-write zero page
//!   (used for first-touch faults; §V-A's "pagetracker" fast path),
//! * `UFFD_COPY` — allocate a frame and copy contents in (used to install
//!   a page read back from the key-value store),
//! * `UFFD_REMAP` — the paper's *proposed* ioctl (patches submitted to
//!   LKML): move a page out of the VM by rewriting page-table entries,
//!   without copying, at the cost of a TLB shootdown.
//!
//! This crate reproduces that API surface over the [`fluidmem_mem`]
//! substrate, with per-operation virtual-time costs calibrated to the
//! paper's Table I. The real kernel feature cannot be used in this
//! reproduction environment; see `DESIGN.md` for the substitution
//! rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod costs;
mod error;
mod event;
mod uffd;

pub use costs::UffdCosts;
pub use error::UffdError;
pub use event::{RegionId, UffdEvent};
pub use uffd::{RemapHandle, Userfaultfd};
