//! The userfaultfd object: registration, fault delivery, and ioctls.

use std::collections::{BTreeMap, HashMap, VecDeque};

use fluidmem_mem::{
    FrameId, PageContents, PageTable, PhysicalMemory, PteFlags, Region, TlbModel, VirtAddr, Vpn,
};
use fluidmem_sim::{SimClock, SimDuration, SimInstant, SimRng};

use crate::{RegionId, UffdCosts, UffdError, UffdEvent};

/// An in-flight `UFFD_REMAP` TLB shootdown.
///
/// The page-table rewrite happens synchronously (its CPU cost is charged
/// when [`Userfaultfd::remap`] returns), but the interprocessor interrupts
/// that flush stale TLB entries complete asynchronously. The monitor must
/// [`wait`](Userfaultfd::wait_remap) on the handle before the evicted
/// page's buffer may be handed to the key-value store — and the paper's
/// asynchronous-read optimization (§V-B) hides exactly this wait under the
/// network round trip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "the TLB shootdown must be waited on before the evicted page is reused"]
pub struct RemapHandle {
    completes_at: SimInstant,
}

impl RemapHandle {
    /// When the shootdown finishes.
    pub fn completes_at(&self) -> SimInstant {
        self.completes_at
    }
}

/// The simulated userfaultfd file descriptor plus its kernel-side state.
///
/// One `Userfaultfd` serves a whole hypervisor: the monitor watches it for
/// events from every registered VM region, exactly as FluidMem's monitor
/// process waits on its list of descriptors (paper §V-A).
///
/// # Example
///
/// ```
/// use fluidmem_mem::{PageClass, PageTable, PhysicalMemory, Region, Vpn};
/// use fluidmem_sim::{SimClock, SimRng};
/// use fluidmem_uffd::{Userfaultfd, UffdEvent};
///
/// let clock = SimClock::new();
/// let mut uffd = Userfaultfd::new(clock.clone(), SimRng::seed_from_u64(1));
/// let mut pt = PageTable::new();
/// let mut pm = PhysicalMemory::new(64);
///
/// let region = Region::new(Vpn::new(0x100), 16, PageClass::Anonymous);
/// let id = uffd.register(region)?;
///
/// // Guest touches an unmapped page: the kernel queues an event.
/// uffd.raise_fault(region.page(0), false, 1234, true)?;
/// let event = uffd.poll().unwrap();
/// assert!(matches!(event, UffdEvent::PageFault { .. }));
///
/// // Monitor resolves it with UFFD_ZEROPAGE and wakes the guest.
/// uffd.zeropage(&mut pt, region.page(0).vpn())?;
/// uffd.wake();
/// assert!(pt.get(region.page(0).vpn()).unwrap().is_present());
/// # uffd.unregister(id)?;
/// # Ok::<(), fluidmem_uffd::UffdError>(())
/// ```
#[derive(Debug)]
pub struct Userfaultfd {
    /// start-vpn → region, for containment queries.
    by_start: BTreeMap<u64, (RegionId, Region)>,
    by_id: HashMap<RegionId, Region>,
    next_region: u64,
    events: VecDeque<UffdEvent>,
    /// vCPU threads currently parked on an unresolved fault, in fault
    /// order: `(faulting page, pid)`. The pipelined monitor resolves
    /// faults out of order, so waking is by page, not by position.
    blocked: VecDeque<(Vpn, u64)>,
    costs: UffdCosts,
    tlb: TlbModel,
    clock: SimClock,
    rng: SimRng,
}

impl Userfaultfd {
    /// Creates a userfaultfd with default cost calibration and TLB model.
    pub fn new(clock: SimClock, rng: SimRng) -> Self {
        Self::with_costs(clock, rng, UffdCosts::default(), TlbModel::default())
    }

    /// Creates a userfaultfd with explicit cost models.
    pub fn with_costs(clock: SimClock, rng: SimRng, costs: UffdCosts, tlb: TlbModel) -> Self {
        Userfaultfd {
            by_start: BTreeMap::new(),
            by_id: HashMap::new(),
            next_region: 0,
            events: VecDeque::new(),
            blocked: VecDeque::new(),
            costs,
            tlb,
            clock,
            rng,
        }
    }

    /// The cost models in use.
    pub fn costs(&self) -> &UffdCosts {
        &self.costs
    }

    /// Registers a memory region for userfault handling.
    ///
    /// # Errors
    ///
    /// Returns [`UffdError::OverlappingRegion`] if the range intersects an
    /// existing registration.
    pub fn register(&mut self, region: Region) -> Result<RegionId, UffdError> {
        let start = region.start().raw();
        let end = region.end().raw();
        // Check the nearest region at or before `start`, and any region
        // starting inside [start, end).
        if let Some((_, (_, prev))) = self.by_start.range(..=start).next_back() {
            if prev.end().raw() > start {
                return Err(UffdError::OverlappingRegion);
            }
        }
        if self.by_start.range(start..end).next().is_some() {
            return Err(UffdError::OverlappingRegion);
        }
        let id = RegionId(self.next_region);
        self.next_region += 1;
        self.by_start.insert(start, (id, region));
        self.by_id.insert(id, region);
        Ok(id)
    }

    /// Unregisters a region (VM shutdown) and queues an
    /// [`UffdEvent::Unregister`] so the monitor can drop its state.
    ///
    /// # Errors
    ///
    /// Returns [`UffdError::NotRegistered`] if the id is unknown.
    pub fn unregister(&mut self, id: RegionId) -> Result<(), UffdError> {
        let region = self
            .by_id
            .remove(&id)
            .ok_or(UffdError::NotRegistered(Vpn::new(0)))?;
        self.by_start.remove(&region.start().raw());
        // Drop queued faults for the dead region, as the kernel does.
        self.events.retain(|e| e.region() != id);
        self.blocked.retain(|(vpn, _)| !region.contains(*vpn));
        self.events.push_back(UffdEvent::Unregister { region: id });
        Ok(())
    }

    /// The region containing `vpn`, if any.
    pub fn region_containing(&self, vpn: Vpn) -> Option<RegionId> {
        let (_, (id, region)) = self.by_start.range(..=vpn.raw()).next_back()?;
        region.contains(vpn).then_some(*id)
    }

    /// The registered region for an id.
    pub fn region(&self, id: RegionId) -> Option<&Region> {
        self.by_id.get(&id)
    }

    /// Number of live registrations.
    pub fn region_count(&self) -> usize {
        self.by_id.len()
    }

    /// Kernel side of a missing-page fault: charges the trap cost (plus a
    /// VM-exit cost when the faulting context is a KVM vCPU) and queues an
    /// event for the monitor.
    ///
    /// # Errors
    ///
    /// Returns [`UffdError::NotRegistered`] if the address is outside
    /// every registered region (the real kernel would deliver `SIGBUS`).
    pub fn raise_fault(
        &mut self,
        addr: VirtAddr,
        write: bool,
        pid: u64,
        from_vm: bool,
    ) -> Result<(), UffdError> {
        let region = self
            .region_containing(addr.vpn())
            .ok_or(UffdError::NotRegistered(addr.vpn()))?;
        let mut cost = self.costs.fault_trap.sample(&mut self.rng);
        if from_vm {
            cost += self.costs.vm_exit.sample(&mut self.rng);
        }
        self.clock.advance(cost);
        self.blocked.push_back((addr.vpn(), pid));
        self.events.push_back(UffdEvent::PageFault {
            region,
            addr,
            write,
            pid,
        });
        Ok(())
    }

    /// Monitor side: reads the next event, charging delivery cost when one
    /// is present.
    pub fn poll(&mut self) -> Option<UffdEvent> {
        let event = self.events.pop_front()?;
        self.clock
            .advance(self.costs.event_delivery.sample(&mut self.rng));
        Some(event)
    }

    /// Whether events are pending.
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// `UFFD_ZEROPAGE`: maps the shared copy-on-write zero page at `vpn`.
    ///
    /// # Errors
    ///
    /// Fails if `vpn` is unregistered or already mapped.
    pub fn zeropage(&mut self, pt: &mut PageTable, vpn: Vpn) -> Result<(), UffdError> {
        self.check_registered(vpn)?;
        if pt.get(vpn).is_some() {
            return Err(UffdError::AlreadyMapped(vpn));
        }
        self.clock
            .advance(self.costs.zeropage.sample(&mut self.rng));
        pt.map(
            vpn,
            FrameId::ZERO_PAGE,
            PteFlags::PRESENT | PteFlags::ZERO_PAGE | PteFlags::UFFD_REGISTERED,
        );
        Ok(())
    }

    /// `UFFD_COPY`: allocates a frame, fills it with `contents`, and maps
    /// it writable at `vpn`. Returns the frame.
    ///
    /// # Errors
    ///
    /// Fails if `vpn` is unregistered, already mapped, or the host is out
    /// of frames.
    pub fn copy(
        &mut self,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        vpn: Vpn,
        contents: PageContents,
    ) -> Result<FrameId, UffdError> {
        self.check_registered(vpn)?;
        if pt.get(vpn).is_some() {
            return Err(UffdError::AlreadyMapped(vpn));
        }
        let frame = pm.alloc().ok_or(UffdError::OutOfFrames)?;
        pm.store(frame, contents);
        self.clock.advance(self.costs.copy.sample(&mut self.rng));
        pt.map(
            vpn,
            frame,
            PteFlags::PRESENT | PteFlags::WRITABLE | PteFlags::UFFD_REGISTERED,
        );
        Ok(frame)
    }

    /// The proposed `UFFD_REMAP`: moves the page at `vpn` out of the VM by
    /// rewriting page-table entries (no copy), returning its contents and
    /// a [`RemapHandle`] for the TLB shootdown that completes
    /// asynchronously. The frame is returned to the host allocator.
    ///
    /// Zero-page mappings are "moved" as [`PageContents::Zero`] without
    /// freeing anything (the zero page is shared).
    ///
    /// # Errors
    ///
    /// Fails if `vpn` is unregistered or has no mapping.
    pub fn remap(
        &mut self,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        vpn: Vpn,
    ) -> Result<(PageContents, RemapHandle), UffdError> {
        let at = self.clock.now();
        let (contents, handle, cpu) = self.remap_detached(pt, pm, vpn, at)?;
        self.clock.advance(cpu);
        Ok((contents, handle))
    }

    /// [`Userfaultfd::remap`] for a caller running on its *own* virtual
    /// timeline (a background evictor thread): performs the page-table
    /// and frame state changes immediately but does **not** advance the
    /// shared clock. Costs are sampled as usual; the caller accounts the
    /// returned CPU time on its private timeline, and the shootdown
    /// handle completes at `at + cpu + shootdown`.
    ///
    /// # Errors
    ///
    /// Fails if `vpn` is unregistered or has no mapping.
    pub fn remap_detached(
        &mut self,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        vpn: Vpn,
        at: SimInstant,
    ) -> Result<(PageContents, RemapHandle, SimDuration), UffdError> {
        self.check_registered(vpn)?;
        let entry = pt.unmap(vpn).ok_or(UffdError::NotMapped(vpn))?;
        let cpu = self.costs.remap_cpu.sample(&mut self.rng);
        let contents = if entry.flags.contains(PteFlags::ZERO_PAGE) {
            PageContents::Zero
        } else {
            pm.free(entry.frame)
        };
        let shootdown = self.tlb.shootdown(&mut self.rng);
        let handle = RemapHandle {
            completes_at: at + cpu + shootdown,
        };
        Ok((contents, handle, cpu))
    }

    /// Blocks (in virtual time) until a remap's TLB shootdown finishes;
    /// returns how long was actually waited, which is zero when the wait
    /// was hidden under other work.
    pub fn wait_remap(&mut self, handle: RemapHandle) -> SimDuration {
        self.clock.advance_to(handle.completes_at)
    }

    /// Wakes the oldest parked vCPU thread after resolution — the
    /// call-return path, where at most one fault is outstanding so
    /// "oldest" and "the one just resolved" coincide.
    pub fn wake(&mut self) {
        self.clock.advance(self.costs.wake.sample(&mut self.rng));
        self.blocked.pop_front();
    }

    /// Wakes the vCPU thread parked on `vpn` specifically (the real
    /// `UFFDIO_WAKE` takes a range). The pipelined monitor resolves
    /// faults out of completion order, so the wake must be addressed to
    /// the page, not to queue position. Charges the same wake cost as
    /// [`Userfaultfd::wake`]; returns whether a parked thread was found.
    pub fn wake_page(&mut self, vpn: Vpn) -> bool {
        self.clock.advance(self.costs.wake.sample(&mut self.rng));
        if let Some(i) = self.blocked.iter().position(|(v, _)| *v == vpn) {
            self.blocked.remove(i);
            true
        } else {
            false
        }
    }

    /// How many vCPU threads are currently parked on unresolved faults.
    pub fn blocked_count(&self) -> usize {
        self.blocked.len()
    }

    /// Whether a vCPU thread is parked on `vpn`.
    pub fn blocked_on(&self, vpn: Vpn) -> bool {
        self.blocked.iter().any(|(v, _)| *v == vpn)
    }

    /// The kernel's ordinary copy-on-write break: the guest wrote to a
    /// zero-page mapping, so a private frame is allocated and mapped
    /// writable. This is a regular minor fault — userfaultfd is *not*
    /// notified because the PTE was present.
    ///
    /// # Errors
    ///
    /// Fails if `vpn` is not a zero-page mapping or the host is out of
    /// frames.
    pub fn break_cow(
        &mut self,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        vpn: Vpn,
    ) -> Result<FrameId, UffdError> {
        let entry = pt.get(vpn).ok_or(UffdError::NotMapped(vpn))?;
        if !entry.flags.contains(PteFlags::ZERO_PAGE) {
            return Err(UffdError::NotMapped(vpn));
        }
        let frame = pm.alloc().ok_or(UffdError::OutOfFrames)?;
        self.clock
            .advance(self.costs.cow_break.sample(&mut self.rng));
        pt.map(
            vpn,
            frame,
            PteFlags::PRESENT | PteFlags::WRITABLE | PteFlags::DIRTY | PteFlags::UFFD_REGISTERED,
        );
        Ok(frame)
    }

    fn check_registered(&self, vpn: Vpn) -> Result<(), UffdError> {
        self.region_containing(vpn)
            .map(|_| ())
            .ok_or(UffdError::NotRegistered(vpn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_mem::PageClass;

    fn setup() -> (Userfaultfd, PageTable, PhysicalMemory, Region) {
        let clock = SimClock::new();
        let mut uffd = Userfaultfd::new(clock, SimRng::seed_from_u64(7));
        let region = Region::new(Vpn::new(0x1000), 32, PageClass::Anonymous);
        uffd.register(region).unwrap();
        (uffd, PageTable::new(), PhysicalMemory::new(128), region)
    }

    #[test]
    fn fault_event_round_trip() {
        let (mut uffd, _pt, _pm, region) = setup();
        uffd.raise_fault(region.page(3), true, 99, true).unwrap();
        assert!(uffd.has_events());
        match uffd.poll().unwrap() {
            UffdEvent::PageFault {
                addr, write, pid, ..
            } => {
                assert_eq!(addr, region.page(3));
                assert!(write);
                assert_eq!(pid, 99);
            }
            other => panic!("unexpected event {other:?}"),
        }
        assert!(uffd.poll().is_none());
    }

    #[test]
    fn fault_outside_regions_rejected() {
        let (mut uffd, _, _, _) = setup();
        let err = uffd
            .raise_fault(VirtAddr::new(0x10), false, 1, false)
            .unwrap_err();
        assert!(matches!(err, UffdError::NotRegistered(_)));
    }

    #[test]
    fn fault_charges_time() {
        let (mut uffd, _, _, region) = setup();
        let before = uffd.clock.now();
        uffd.raise_fault(region.page(0), false, 1, true).unwrap();
        assert!(uffd.clock.now() > before, "fault trap must cost time");
    }

    #[test]
    fn overlapping_registration_rejected() {
        let (mut uffd, _, _, _) = setup();
        // Identical range.
        let dup = Region::new(Vpn::new(0x1000), 32, PageClass::Anonymous);
        assert_eq!(uffd.register(dup), Err(UffdError::OverlappingRegion));
        // Straddling the start.
        let straddle = Region::new(Vpn::new(0xFF0), 0x20, PageClass::Anonymous);
        assert_eq!(uffd.register(straddle), Err(UffdError::OverlappingRegion));
        // Inside.
        let inside = Region::new(Vpn::new(0x1005), 2, PageClass::Anonymous);
        assert_eq!(uffd.register(inside), Err(UffdError::OverlappingRegion));
        // Adjacent is fine.
        let after = Region::new(Vpn::new(0x1020), 8, PageClass::Anonymous);
        assert!(uffd.register(after).is_ok());
        assert_eq!(uffd.region_count(), 2);
    }

    #[test]
    fn zeropage_maps_shared_frame() {
        let (mut uffd, mut pt, mut pm, region) = setup();
        let vpn = region.page(0).vpn();
        uffd.zeropage(&mut pt, vpn).unwrap();
        let e = pt.get(vpn).unwrap();
        assert_eq!(e.frame, FrameId::ZERO_PAGE);
        assert!(e.flags.contains(PteFlags::ZERO_PAGE));
        assert_eq!(pm.free_frames(), 128, "zero page costs no frame");
        // Double-resolve is EEXIST, as in the real API.
        assert_eq!(
            uffd.zeropage(&mut pt, vpn),
            Err(UffdError::AlreadyMapped(vpn))
        );
        let _ = &mut pm;
    }

    #[test]
    fn copy_installs_contents() {
        let (mut uffd, mut pt, mut pm, region) = setup();
        let vpn = region.page(1).vpn();
        let frame = uffd
            .copy(&mut pt, &mut pm, vpn, PageContents::Token(0xBEEF))
            .unwrap();
        assert_eq!(pm.load(frame), &PageContents::Token(0xBEEF));
        assert!(pt.get(vpn).unwrap().is_present());
    }

    #[test]
    fn remap_moves_contents_out_and_frees_frame() {
        let (mut uffd, mut pt, mut pm, region) = setup();
        let vpn = region.page(2).vpn();
        uffd.copy(&mut pt, &mut pm, vpn, PageContents::Token(0xAA))
            .unwrap();
        let free_before = pm.free_frames();
        let (contents, handle) = uffd.remap(&mut pt, &mut pm, vpn).unwrap();
        assert_eq!(contents, PageContents::Token(0xAA));
        assert!(pt.get(vpn).is_none(), "page must leave the VM");
        assert_eq!(pm.free_frames(), free_before + 1);
        let waited = uffd.wait_remap(handle);
        assert!(!waited.is_zero(), "sync wait pays the shootdown");
        // Waiting again is free.
        assert!(uffd.wait_remap(handle).is_zero());
    }

    #[test]
    fn remap_of_zero_page_returns_zero_contents() {
        let (mut uffd, mut pt, mut pm, region) = setup();
        let vpn = region.page(4).vpn();
        uffd.zeropage(&mut pt, vpn).unwrap();
        let (contents, handle) = uffd.remap(&mut pt, &mut pm, vpn).unwrap();
        assert_eq!(contents, PageContents::Zero);
        uffd.wait_remap(handle);
        assert_eq!(pm.free_frames(), 128);
    }

    #[test]
    fn remap_unmapped_is_enoent() {
        let (mut uffd, mut pt, mut pm, region) = setup();
        let vpn = region.page(5).vpn();
        assert_eq!(
            uffd.remap(&mut pt, &mut pm, vpn).map(|_| ()),
            Err(UffdError::NotMapped(vpn))
        );
    }

    #[test]
    fn cow_break_allocates_private_frame() {
        let (mut uffd, mut pt, mut pm, region) = setup();
        let vpn = region.page(6).vpn();
        uffd.zeropage(&mut pt, vpn).unwrap();
        let frame = uffd.break_cow(&mut pt, &mut pm, vpn).unwrap();
        assert_ne!(frame, FrameId::ZERO_PAGE);
        let e = pt.get(vpn).unwrap();
        assert!(e.flags.contains(PteFlags::DIRTY));
        assert!(!e.flags.contains(PteFlags::ZERO_PAGE));
        // A second break on the same page is invalid.
        assert!(uffd.break_cow(&mut pt, &mut pm, vpn).is_err());
    }

    #[test]
    fn unregister_queues_event_and_drops_pending_faults() {
        let (mut uffd, _, _, region) = setup();
        uffd.raise_fault(region.page(0), false, 1, false).unwrap();
        let id = uffd.region_containing(region.start()).unwrap();
        uffd.unregister(id).unwrap();
        // The pending page fault was dropped; only Unregister remains.
        match uffd.poll().unwrap() {
            UffdEvent::Unregister { region: r } => assert_eq!(r, id),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(uffd.region_count(), 0);
        // Faults now fail.
        assert!(uffd.raise_fault(region.page(0), false, 1, false).is_err());
    }

    #[test]
    fn copy_out_of_frames() {
        let clock = SimClock::new();
        let mut uffd = Userfaultfd::new(clock, SimRng::seed_from_u64(1));
        let region = Region::new(Vpn::new(0), 4, PageClass::Anonymous);
        uffd.register(region).unwrap();
        let mut pt = PageTable::new();
        let mut pm = PhysicalMemory::new(1);
        uffd.copy(&mut pt, &mut pm, Vpn::new(0), PageContents::Zero)
            .unwrap();
        assert_eq!(
            uffd.copy(&mut pt, &mut pm, Vpn::new(1), PageContents::Zero),
            Err(UffdError::OutOfFrames)
        );
    }

    #[test]
    fn wake_page_unparks_the_right_vcpu() {
        let (mut uffd, _, _, region) = setup();
        uffd.raise_fault(region.page(0), false, 1, true).unwrap();
        uffd.raise_fault(region.page(1), false, 2, true).unwrap();
        uffd.raise_fault(region.page(2), false, 3, true).unwrap();
        assert_eq!(uffd.blocked_count(), 3);
        // Out-of-order resolution: page 1's read completed first.
        assert!(uffd.wake_page(region.page(1).vpn()));
        assert_eq!(uffd.blocked_count(), 2);
        assert!(!uffd.blocked_on(region.page(1).vpn()));
        assert!(uffd.blocked_on(region.page(0).vpn()));
        // Waking an unparked page reports false but still costs time.
        let before = uffd.clock.now();
        assert!(!uffd.wake_page(region.page(1).vpn()));
        assert!(uffd.clock.now() > before);
        // Positional wake drains the oldest (page 0).
        uffd.wake();
        assert!(!uffd.blocked_on(region.page(0).vpn()));
        assert_eq!(uffd.blocked_count(), 1);
    }

    #[test]
    fn unregister_unparks_blocked_vcpus() {
        let (mut uffd, _, _, region) = setup();
        uffd.raise_fault(region.page(0), false, 1, true).unwrap();
        let id = uffd.region_containing(region.start()).unwrap();
        uffd.unregister(id).unwrap();
        assert_eq!(uffd.blocked_count(), 0);
    }

    #[test]
    fn async_remap_wait_can_be_hidden() {
        // If the monitor does other work that advances the clock past the
        // shootdown completion, waiting costs nothing: this is the §V-B
        // interleaving optimization.
        let (mut uffd, mut pt, mut pm, region) = setup();
        let vpn = region.page(7).vpn();
        uffd.copy(&mut pt, &mut pm, vpn, PageContents::Token(1))
            .unwrap();
        let (_, handle) = uffd.remap(&mut pt, &mut pm, vpn).unwrap();
        // Simulate a 100µs network read overlapping the shootdown.
        uffd.clock.advance(SimDuration::from_micros(100));
        assert!(uffd.wait_remap(handle).is_zero());
    }
}
