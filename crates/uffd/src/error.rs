//! Error type for userfaultfd operations.

use std::error::Error;
use std::fmt;

use fluidmem_mem::Vpn;

/// Errors returned by [`Userfaultfd`](crate::Userfaultfd) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UffdError {
    /// The page is not inside any registered region (`EINVAL` in the real
    /// API).
    NotRegistered(Vpn),
    /// The destination of a `UFFD_COPY`/`UFFD_ZEROPAGE` is already mapped
    /// (`EEXIST`).
    AlreadyMapped(Vpn),
    /// The source of a `UFFD_REMAP` has no mapping to move (`ENOENT`).
    NotMapped(Vpn),
    /// The host is out of physical frames (`ENOMEM`).
    OutOfFrames,
    /// A region registration overlaps an existing registration.
    OverlappingRegion,
}

impl fmt::Display for UffdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UffdError::NotRegistered(vpn) => {
                write!(f, "page {vpn} is not in a registered userfaultfd region")
            }
            UffdError::AlreadyMapped(vpn) => {
                write!(f, "destination page {vpn} is already mapped")
            }
            UffdError::NotMapped(vpn) => write!(f, "source page {vpn} has no mapping"),
            UffdError::OutOfFrames => write!(f, "no free host physical frames"),
            UffdError::OverlappingRegion => {
                write!(f, "registration overlaps an existing userfaultfd region")
            }
        }
    }
}

impl Error for UffdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = UffdError::NotRegistered(Vpn::new(0x40));
        assert!(e.to_string().contains("0x40"));
        assert!(e.to_string().starts_with("page"));
        assert!(UffdError::OutOfFrames.to_string().contains("frames"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<UffdError>();
    }
}
