//! Events delivered on the userfaultfd file descriptor.

use std::fmt;

use fluidmem_mem::VirtAddr;

/// Identifies one registered userfaultfd region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegionId(pub(crate) u64);

impl RegionId {
    /// The raw identifier.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "uffd-region-{}", self.0)
    }
}

/// A message read from the userfaultfd file descriptor.
///
/// Mirrors `struct uffd_msg`: the monitor receives *"the faulting address
/// and the process PID belonging to the VM"* (paper §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UffdEvent {
    /// A missing-page fault in a registered region.
    PageFault {
        /// The region the fault fell in.
        region: RegionId,
        /// The faulting virtual address.
        addr: VirtAddr,
        /// Whether the faulting access was a write.
        write: bool,
        /// PID of the faulting process (the VM's QEMU process).
        pid: u64,
    },
    /// A region was unregistered (VM shut down); the monitor drops its
    /// state for the region.
    Unregister {
        /// The region that went away.
        region: RegionId,
    },
}

impl UffdEvent {
    /// The region the event concerns.
    pub fn region(&self) -> RegionId {
        match self {
            UffdEvent::PageFault { region, .. } => *region,
            UffdEvent::Unregister { region } => *region,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_region_accessor() {
        let e = UffdEvent::PageFault {
            region: RegionId(3),
            addr: VirtAddr::new(0x1000),
            write: false,
            pid: 42,
        };
        assert_eq!(e.region(), RegionId(3));
        assert_eq!(
            UffdEvent::Unregister {
                region: RegionId(7)
            }
            .region(),
            RegionId(7)
        );
    }

    #[test]
    fn region_id_display() {
        assert_eq!(RegionId(5).to_string(), "uffd-region-5");
    }
}
