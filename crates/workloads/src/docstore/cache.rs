//! The WiredTiger-style application cache.

use std::collections::{BTreeMap, HashMap};

/// WiredTiger's in-process record cache: an application-managed LRU over
/// an arena that lives in *guest memory* — which is exactly why it
/// interacts badly with swap (§VI-D2): the engine believes its arena is
/// RAM, but under a swap-based VM the arena's cold pages are silently
/// paged out, so "cache hits" stall on major faults, and kswapd and the
/// engine fight over what to keep.
///
/// The cache tracks *slots* (one record each); the `DocumentStore`
/// in `crate::docstore` maps slots onto arena pages and
/// charges the memory traffic.
#[derive(Debug)]
pub struct WiredTigerCache {
    capacity_slots: u64,
    by_key: HashMap<u64, Slot>,
    lru: BTreeMap<u64, u64>, // seq -> key
    free: Vec<u64>,
    next_slot: u64,
    next_seq: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    index: u64,
    seq: u64,
}

impl WiredTigerCache {
    /// A cache of `capacity_slots` records.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero.
    pub fn new(capacity_slots: u64) -> Self {
        assert!(capacity_slots > 0, "cache needs at least one slot");
        WiredTigerCache {
            capacity_slots,
            by_key: HashMap::new(),
            lru: BTreeMap::new(),
            free: Vec::new(),
            next_slot: 0,
            next_seq: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Slot capacity.
    pub fn capacity_slots(&self) -> u64 {
        self.capacity_slots
    }

    /// Records currently cached.
    pub fn len(&self) -> u64 {
        self.by_key.len() as u64
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.by_key.is_empty()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up a record; on hit, promotes it and returns its slot.
    pub fn lookup(&mut self, key: u64) -> Option<u64> {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(slot) = self.by_key.get_mut(&key) {
            self.lru.remove(&slot.seq);
            slot.seq = seq;
            self.lru.insert(seq, key);
            self.hits += 1;
            Some(slot.index)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Inserts a record after a miss, evicting the LRU record if full.
    /// Returns `(slot, evicted_slot)`.
    pub fn insert(&mut self, key: u64) -> (u64, Option<u64>) {
        debug_assert!(!self.by_key.contains_key(&key), "insert only after miss");
        let mut evicted = None;
        if self.len() >= self.capacity_slots {
            let (&seq, &victim_key) = self.lru.iter().next().expect("full cache has entries");
            self.lru.remove(&seq);
            let victim = self.by_key.remove(&victim_key).expect("tracked");
            self.free.push(victim.index);
            self.evictions += 1;
            evicted = Some(victim.index);
        }
        let index = self.free.pop().unwrap_or_else(|| {
            let s = self.next_slot;
            self.next_slot += 1;
            s
        });
        let seq = self.next_seq;
        self.next_seq += 1;
        self.by_key.insert(key, Slot { index, seq });
        self.lru.insert(seq, key);
        (index, evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let mut c = WiredTigerCache::new(2);
        assert_eq!(c.lookup(1), None);
        let (s1, _) = c.insert(1);
        assert_eq!(c.lookup(1), Some(s1));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = WiredTigerCache::new(2);
        c.insert(1);
        c.insert(2);
        c.lookup(1); // 2 becomes LRU
        let (_, evicted) = c.insert(3);
        assert!(evicted.is_some());
        assert_eq!(c.lookup(2), None, "LRU record evicted");
        assert!(c.lookup(1).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn slots_are_recycled() {
        let mut c = WiredTigerCache::new(1);
        let (s1, _) = c.insert(1);
        let (s2, evicted) = c.insert(2);
        assert_eq!(evicted, Some(s1));
        assert_eq!(s1, s2, "slot reused");
        assert_eq!(c.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_rejected() {
        WiredTigerCache::new(0);
    }
}
