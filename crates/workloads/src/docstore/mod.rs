//! A MongoDB-like document store with a WiredTiger-style cache
//! (§VI-D2, Figure 5).

mod cache;

pub use cache::WiredTigerCache;

use fluidmem_block::BlockDevice;
use fluidmem_mem::{MemoryBackend, PageClass, Region, PAGE_SIZE};
use fluidmem_sim::{LatencyModel, SimDuration, SimRng};

/// Document-store parameters.
#[derive(Debug, Clone)]
pub struct DocStoreConfig {
    /// Number of 1 KB records (the paper loads ≈5 GB onto a local SSD).
    pub record_count: u64,
    /// Record payload size (YCSB: 1 KB).
    pub record_bytes: u64,
    /// WiredTiger cache size in bytes (the Figure 5 sweep: 1–3 GB).
    pub cache_bytes: u64,
    /// Query processing cost per read (parse, plan, BSON assembly, YCSB
    /// client loopback).
    pub base_op_cost: LatencyModel,
    /// B-tree index levels touched per lookup.
    pub index_depth: u32,
    /// Records per WiredTiger leaf-page image (32 KB images of 1 KB
    /// records → 32). The cache holds whole images, in *key* order — so
    /// a popular record shares its image with key-adjacent, mostly cold
    /// neighbors, exactly why the engine's working set is much larger
    /// than the hot record set.
    pub records_per_leaf: u64,
    /// Device reads per cache miss (B-tree block + data block).
    pub disk_reads_per_miss: u32,
    /// Filesystem / decompression overhead added to each cache miss.
    pub fs_overhead: LatencyModel,
}

impl DocStoreConfig {
    /// The paper's MongoDB setup scaled by `scale_denominator`
    /// (1 = 5 GB of records).
    pub fn paper(scale_denominator: u64, cache_bytes: u64) -> Self {
        let d = scale_denominator.max(1);
        DocStoreConfig {
            record_count: (5 * 1024 * 1024 / d).max(64), // 5M × 1KB = 5GB
            record_bytes: 1024,
            cache_bytes,
            base_op_cost: LatencyModel::lognormal_mean_p99_us(380.0, 900.0),
            index_depth: 3,
            records_per_leaf: 32,
            disk_reads_per_miss: 2,
            fs_overhead: LatencyModel::lognormal_mean_p99_us(90.0, 260.0),
        }
    }
}

impl DocStoreConfig {
    /// Guest pages per leaf image.
    pub fn leaf_pages(&self) -> u64 {
        (self.records_per_leaf * self.record_bytes).div_ceil(PAGE_SIZE as u64)
    }

    /// Number of leaf images in the record set.
    pub fn leaf_count(&self) -> u64 {
        self.record_count.div_ceil(self.records_per_leaf)
    }
}

/// The document store: records on a simulated disk, hot records in a
/// WiredTiger-style cache whose arena lives in guest memory.
///
/// Every read charges: query-processing CPU, index-page touches, then
/// either cache-arena touches (hit) or a disk read plus arena insertion
/// (miss). Under a swap-backed VM the arena and index pages themselves
/// page-fault, reproducing the unstable latency of Figure 5a.
pub struct DocumentStore {
    config: DocStoreConfig,
    disk: Box<dyn BlockDevice>,
    cache: WiredTigerCache,
    arena: Region,
    index: Region,
    disk_reads: u64,
}

impl DocumentStore {
    /// Creates the store: allocates the cache arena and index in the
    /// backend's guest memory and lays records out on `disk`.
    ///
    /// # Panics
    ///
    /// Panics if the disk is smaller than the record set.
    pub fn new(
        config: DocStoreConfig,
        disk: Box<dyn BlockDevice>,
        backend: &mut dyn MemoryBackend,
    ) -> Self {
        assert!(
            disk.capacity_blocks() >= config.record_count,
            "disk too small: {} blocks for {} records",
            disk.capacity_blocks(),
            config.record_count
        );
        // The cache holds whole leaf images.
        let leaf_bytes = config.records_per_leaf * config.record_bytes;
        let cache_slots = (config.cache_bytes / leaf_bytes).max(1);
        let arena_pages = (cache_slots * config.leaf_pages()).max(1);
        let arena = backend.map_region(arena_pages, PageClass::Anonymous);
        // B-tree index: ~24 bytes per record of interior+leaf structure.
        let index_pages = (config.record_count * 24).div_ceil(PAGE_SIZE as u64).max(1);
        let index = backend.map_region(index_pages, PageClass::FileBacked);
        DocumentStore {
            cache: WiredTigerCache::new(cache_slots),
            config,
            disk,
            arena,
            index,
            disk_reads: 0,
        }
    }

    /// Number of records.
    pub fn record_count(&self) -> u64 {
        self.config.record_count
    }

    /// Cache hits so far.
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Cache misses so far.
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Disk reads issued so far.
    pub fn disk_reads(&self) -> u64 {
        self.disk_reads
    }

    /// The cache (for inspection).
    pub fn cache(&self) -> &WiredTigerCache {
        &self.cache
    }

    /// Touches every arena page of the leaf image in `slot` (the engine
    /// searches and copies within the whole 32 KB image).
    fn touch_image(&self, backend: &mut dyn MemoryBackend, slot: u64, write: bool) {
        let span = self.config.leaf_pages();
        let start = slot * span;
        for p in start..(start + span).min(self.arena.pages()) {
            backend.access(self.arena.page(p), write);
        }
    }

    /// Touches the index pages a key's lookup traverses.
    fn walk_index(&self, backend: &mut dyn MemoryBackend, key: u64) {
        let pages = self.index.pages();
        // Upper levels are hot (small page set); the leaf level is
        // key-dependent.
        for level in 0..self.config.index_depth {
            let page = if level + 1 == self.config.index_depth {
                // Leaf: spread across the whole index.
                (key.wrapping_mul(0x9e37_79b9)) % pages
            } else {
                // Interior: one of a few hot pages per level.
                u64::from(level) % pages.min(8)
            };
            backend.access(self.index.page(page), false);
        }
    }

    /// Reads one record, returning the request latency in virtual time.
    pub fn read(
        &mut self,
        backend: &mut dyn MemoryBackend,
        key: u64,
        rng: &mut SimRng,
    ) -> SimDuration {
        assert!(key < self.config.record_count, "key out of range");
        let start = backend.clock().now();
        let cost = self.config.base_op_cost.sample(rng);
        backend.clock().advance(cost);
        self.walk_index(backend, key);

        // The unit of caching is the leaf image containing the key.
        let leaf = key / self.config.records_per_leaf;
        if let Some(slot) = self.cache.lookup(leaf) {
            // Cache hit: the engine walks the record's whole WiredTiger
            // page image in the arena. Each of those guest pages may
            // fault (that is the whole §VI-D2 story).
            self.touch_image(backend, slot, false);
        } else {
            // Miss: B-tree block plus data block from disk, filesystem
            // and decompression overhead, then install into the arena.
            for r in 0..self.config.disk_reads_per_miss {
                let completion = self
                    .disk
                    .submit_read((leaf + u64::from(r) * 17) % self.disk.capacity_blocks())
                    .expect("records fit the disk");
                backend.clock().advance_to(completion.at);
                self.disk_reads += 1;
            }
            let overhead = self.config.fs_overhead.sample(rng);
            backend.clock().advance(overhead);
            let (slot, evicted) = self.cache.insert(leaf);
            if let Some(victim_slot) = evicted {
                // WiredTiger reconciles the victim image before freeing
                // it (dirty checks, checksum, free-list updates) — it
                // must *touch* the image's pages. If the guest memory
                // system paged them out, they fault straight back in
                // just to be discarded: the §VI-D2 "poor interaction"
                // between the engine's cache and the kernel.
                self.touch_image(backend, victim_slot, false);
            }
            self.touch_image(backend, slot, true);
        }
        backend.clock().now() - start
    }
}

impl std::fmt::Debug for DocumentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DocumentStore")
            .field("records", &self.config.record_count)
            .field("cache_slots", &self.cache.capacity_slots())
            .field("disk", &self.disk.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_block::SsdDevice;
    use fluidmem_coord::PartitionId;
    use fluidmem_core::{FluidMemMemory, MonitorConfig};
    use fluidmem_kv::DramStore;
    use fluidmem_sim::{SimClock, SimRng};

    fn setup(cache_bytes: u64) -> (FluidMemMemory, DocumentStore) {
        let clock = SimClock::new();
        let kv = DramStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(1));
        let mut backend = FluidMemMemory::new(
            MonitorConfig::new(1 << 20),
            Box::new(kv),
            PartitionId::new(0),
            clock.clone(),
            SimRng::seed_from_u64(2),
        );
        let disk = SsdDevice::new(1 << 16, clock, SimRng::seed_from_u64(3));
        let config = DocStoreConfig {
            record_count: 4096,
            record_bytes: 1024,
            cache_bytes,
            base_op_cost: LatencyModel::constant_us(100.0),
            index_depth: 3,
            records_per_leaf: 4,
            disk_reads_per_miss: 1,
            fs_overhead: LatencyModel::zero(),
        };
        let store = DocumentStore::new(config, Box::new(disk), &mut backend);
        (backend, store)
    }

    #[test]
    fn cold_read_hits_disk_warm_read_hits_cache() {
        let (mut backend, mut store) = setup(1 << 20);
        let mut rng = SimRng::seed_from_u64(4);
        let cold = store.read(&mut backend, 7, &mut rng);
        assert_eq!(store.disk_reads(), 1);
        let warm = store.read(&mut backend, 7, &mut rng);
        assert_eq!(store.disk_reads(), 1, "second read served from cache");
        assert!(
            cold > warm + SimDuration::from_micros(50),
            "cold {cold} vs warm {warm}"
        );
        assert_eq!(store.cache_hits(), 1);
    }

    #[test]
    fn small_cache_thrashes_to_disk() {
        // Cache of 64 records, uniform sweep over 512: every read misses
        // after the first pass too.
        let (mut backend, mut store) = setup(64 * 1024);
        let mut rng = SimRng::seed_from_u64(5);
        for k in 0..512 {
            store.read(&mut backend, k, &mut rng);
        }
        for k in 0..512 {
            store.read(&mut backend, k, &mut rng);
        }
        // 512 records = 128 leaves; a 16-leaf cache cannot hold the
        // cyclic sweep, so every leaf misses on both passes.
        assert_eq!(store.disk_reads(), 256, "LRU cannot hold a cyclic sweep");
        assert!(store.cache().evictions() > 0);
    }

    #[test]
    #[should_panic(expected = "key out of range")]
    fn out_of_range_key_panics() {
        let (mut backend, mut store) = setup(1 << 20);
        let mut rng = SimRng::seed_from_u64(6);
        store.read(&mut backend, 4096, &mut rng);
    }

    #[test]
    #[should_panic(expected = "disk too small")]
    fn undersized_disk_rejected() {
        let clock = SimClock::new();
        let kv = DramStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(1));
        let mut backend = FluidMemMemory::new(
            MonitorConfig::new(1 << 20),
            Box::new(kv),
            PartitionId::new(0),
            clock.clone(),
            SimRng::seed_from_u64(2),
        );
        let disk = SsdDevice::new(16, clock, SimRng::seed_from_u64(3));
        let config = DocStoreConfig {
            record_count: 4096,
            record_bytes: 1024,
            cache_bytes: 1 << 20,
            base_op_cost: LatencyModel::constant_us(100.0),
            index_depth: 3,
            records_per_leaf: 4,
            disk_reads_per_miss: 1,
            fs_overhead: LatencyModel::zero(),
        };
        DocumentStore::new(config, Box::new(disk), &mut backend);
    }
}
