//! The YCSB client (§VI-D2, Figure 5): zipfian key selection and the
//! read-only workload C driver.

use fluidmem_mem::MemoryBackend;
use fluidmem_sim::{SimDuration, SimRng, TimeSeries};

use crate::docstore::DocumentStore;

/// The standard YCSB zipfian generator (Gray et al.), producing skewed
/// key popularity with constant `theta` (YCSB default 0.99).
///
/// # Example
///
/// ```
/// use fluidmem_sim::SimRng;
/// use fluidmem_workloads::ycsb::ZipfianGenerator;
///
/// let mut z = ZipfianGenerator::new(1000, 0.99);
/// let mut rng = SimRng::seed_from_u64(1);
/// let k = z.next_key(&mut rng);
/// assert!(k < 1000);
/// ```
#[derive(Debug, Clone)]
pub struct ZipfianGenerator {
    items: u64,
    theta: f64,
    zeta_n: f64,
    alpha: f64,
    eta: f64,
    zeta2: f64,
}

impl ZipfianGenerator {
    /// Creates a generator over `items` keys.
    ///
    /// # Panics
    ///
    /// Panics if `items` is zero or `theta` is not in `(0, 1)`.
    pub fn new(items: u64, theta: f64) -> Self {
        assert!(items > 0, "need at least one item");
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0,1)");
        let zeta_n = Self::zeta(items, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        ZipfianGenerator {
            items,
            theta,
            zeta_n,
            alpha,
            eta,
            zeta2,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for modest n; sampled tail approximation for large n
        // (keeps construction O(1M) at most).
        if n <= 2_000_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=2_000_000u64)
                .map(|i| 1.0 / (i as f64).powf(theta))
                .sum();
            // Integral approximation of the tail.
            let a = 2_000_000f64;
            let b = n as f64;
            head + (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
        }
    }

    /// Draws the next key (0-based).
    pub fn next_key(&mut self, rng: &mut SimRng) -> u64 {
        let u: f64 = rng.gen_f64();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let k = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.items - 1)
    }

    /// The number of keys.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Exposes ζ(2,θ) for testing.
    #[doc(hidden)]
    pub fn zeta2(&self) -> f64 {
        self.zeta2
    }
}

/// Workload C (read-only) parameters.
#[derive(Debug, Clone)]
pub struct WorkloadC {
    /// Number of operations to run.
    pub operations: u64,
    /// Zipfian theta (YCSB default 0.99).
    pub theta: f64,
    /// Bucket width for the latency time series (Figure 5 plots ~10 s
    /// buckets).
    pub series_bucket: SimDuration,
}

impl WorkloadC {
    /// A workload of `operations` reads with YCSB defaults.
    pub fn new(operations: u64) -> Self {
        WorkloadC {
            operations,
            theta: 0.99,
            series_bucket: SimDuration::from_secs(10),
        }
    }
}

/// The Figure 5 result: the read-latency time course and overall mean.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Per-bucket mean latency in µs over the run ("1KB record retrieval
    /// latency" vs "Runtime").
    pub series: TimeSeries,
    /// Operations completed.
    pub operations: u64,
    /// Cache hits observed at the store.
    pub cache_hits: u64,
}

impl WorkloadReport {
    /// Overall mean read latency in µs (the number in Figure 5's
    /// legend).
    pub fn avg_latency_us(&self) -> f64 {
        self.series.overall().mean()
    }
}

/// Runs workload C against a document store over the given backend.
pub fn run_workload_c(
    backend: &mut dyn MemoryBackend,
    store: &mut DocumentStore,
    workload: &WorkloadC,
    rng: &mut SimRng,
) -> WorkloadReport {
    let mut zipf = ZipfianGenerator::new(store.record_count(), workload.theta);
    let mut series = TimeSeries::new(workload.series_bucket);
    let hits_before = store.cache_hits();
    for _ in 0..workload.operations {
        let key = zipf.next_key(rng);
        let latency = store.read(backend, key, rng);
        series.record(backend.clock().now(), latency.as_micros_f64());
    }
    WorkloadReport {
        series,
        operations: workload.operations,
        cache_hits: store.cache_hits() - hits_before,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipfian_keys_in_range_and_skewed() {
        let mut z = ZipfianGenerator::new(10_000, 0.99);
        let mut rng = SimRng::seed_from_u64(7);
        let mut counts = vec![0u64; 100];
        let n = 200_000;
        for _ in 0..n {
            let k = z.next_key(&mut rng);
            assert!(k < 10_000);
            if k < 100 {
                counts[k as usize] += 1;
            }
        }
        let head: u64 = counts.iter().sum();
        assert!(
            head as f64 / n as f64 > 0.4,
            "zipf(0.99) head mass {}",
            head as f64 / n as f64
        );
        assert!(counts[0] > counts[50], "rank 0 more popular than rank 50");
    }

    #[test]
    fn zipfian_is_deterministic() {
        let sample = |seed| {
            let mut z = ZipfianGenerator::new(1000, 0.99);
            let mut rng = SimRng::seed_from_u64(seed);
            (0..50).map(|_| z.next_key(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(sample(1), sample(1));
        assert_ne!(sample(1), sample(2));
    }

    #[test]
    fn large_domain_zeta_approximation_is_close() {
        // Compare the tail approximation against exact zeta at the
        // boundary where both are computable.
        let exact = ZipfianGenerator::zeta(2_000_000, 0.99);
        let series: f64 = (1..=2_000_000u64)
            .map(|i| 1.0 / (i as f64).powf(0.99))
            .sum();
        assert!((exact - series).abs() / series < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_rejected() {
        ZipfianGenerator::new(0, 0.5);
    }
}
