//! Workloads for the FluidMem evaluation (paper §VI).
//!
//! Every workload is written against the
//! [`MemoryBackend`](fluidmem_mem::MemoryBackend) trait only, so the same
//! unmodified code runs over FluidMem and over the swap baseline —
//! mirroring how the paper runs unmodified applications inside VMs backed
//! by either mechanism.
//!
//! * [`pmbench`] — the paging micro-benchmark of §VI-B / Figure 3:
//!   warm-up pass, then uniform-random 4 KB accesses at a configurable
//!   read ratio, with per-access latency recording.
//! * [`graph500`] — the Graph500 reference implementation of §VI-D1 /
//!   Figure 4: Kronecker (R-MAT) generation, CSR construction, the
//!   sequential breadth-first search, and harmonic-mean TEPS over 64
//!   roots.
//! * [`ycsb`] — the YCSB client of §VI-D2 / Figure 5: zipfian key
//!   selection and the read-only workload C driver.
//! * [`docstore`] — a MongoDB-like document store with a
//!   WiredTiger-style application cache over a simulated disk.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod docstore;
pub mod graph500;
pub mod pmbench;
pub mod ycsb;
