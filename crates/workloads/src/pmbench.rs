//! The pmbench paging micro-benchmark (Yang & Seymour), as used in §VI-B.
//!
//! "First, pmbench warms up the cache by accessing all pages once, and
//! then randomly makes 4 KB requests at a 50% read to write ratio for
//! 100 s."

use fluidmem_mem::{AccessOutcome, MemoryBackend, PageClass, Region};
use fluidmem_sim::stats::LatencyHistogram;
use fluidmem_sim::{SimDuration, SimRng};

/// pmbench parameters.
#[derive(Debug, Clone)]
pub struct PmbenchConfig {
    /// Working-set size in pages (the paper allocates 4 GB = 1 048 576).
    pub wss_pages: u64,
    /// Virtual run time after warm-up (the paper uses 100 s).
    pub duration: SimDuration,
    /// Fraction of accesses that are reads (paper: 0.5).
    pub read_ratio: f64,
    /// Safety cap on accesses, for bounded test runs.
    pub max_accesses: u64,
}

impl PmbenchConfig {
    /// The paper's setup scaled by `scale_denominator` (1 = full size:
    /// 4 GB WSS and 100 s).
    pub fn paper(scale_denominator: u64) -> Self {
        let d = scale_denominator.max(1);
        PmbenchConfig {
            wss_pages: (1_048_576 / d).max(16),
            duration: SimDuration::from_secs_f64(100.0 / d as f64),
            read_ratio: 0.5,
            max_accesses: u64::MAX,
        }
    }
}

/// Results of one pmbench run.
#[derive(Debug, Clone)]
pub struct PmbenchReport {
    /// Latency distribution of every access (the Figure 3 CDF).
    pub all: LatencyHistogram,
    /// Reads only (Figure 3 plots reads and writes separately).
    pub reads: LatencyHistogram,
    /// Writes only.
    pub writes: LatencyHistogram,
    /// Total accesses made in the measurement phase.
    pub accesses: u64,
    /// Accesses that were DRAM hits.
    pub hits: u64,
    /// Minor faults observed.
    pub minor_faults: u64,
    /// Major (remote) faults observed.
    pub major_faults: u64,
}

impl PmbenchReport {
    /// Mean access latency in microseconds — the number quoted in each
    /// Figure 3 caption.
    pub fn avg_latency_us(&self) -> f64 {
        self.all.mean_us()
    }

    /// Fraction of accesses served from DRAM (the "slightly over 25%"
    /// check of §VI-B).
    pub fn hit_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// Runs pmbench on a backend: allocates the working set, performs the
/// warm-up pass, then measures uniform-random accesses until the virtual
/// duration (or access cap) is reached.
pub fn run(
    backend: &mut dyn MemoryBackend,
    config: &PmbenchConfig,
    rng: &mut SimRng,
) -> PmbenchReport {
    let region = backend.map_region(config.wss_pages, PageClass::Anonymous);
    run_on_region(backend, region, config, rng)
}

/// Runs pmbench over an existing region (so callers can place the
/// working set themselves).
pub fn run_on_region(
    backend: &mut dyn MemoryBackend,
    region: Region,
    config: &PmbenchConfig,
    rng: &mut SimRng,
) -> PmbenchReport {
    // Warm-up: touch every page once (writes, so pages materialize).
    for i in 0..region.pages() {
        backend.access(region.page(i), true);
    }

    let mut report = PmbenchReport {
        all: LatencyHistogram::new(),
        reads: LatencyHistogram::new(),
        writes: LatencyHistogram::new(),
        accesses: 0,
        hits: 0,
        minor_faults: 0,
        major_faults: 0,
    };

    let start = backend.clock().now();
    while backend.clock().now() - start < config.duration && report.accesses < config.max_accesses {
        let page = rng.gen_index(region.pages());
        let write = !rng.gen_bool(config.read_ratio);
        let access = backend.access(region.page(page), write);
        report.all.record(access.latency);
        if write {
            report.writes.record(access.latency);
        } else {
            report.reads.record(access.latency);
        }
        report.accesses += 1;
        match access.outcome {
            AccessOutcome::Hit => report.hits += 1,
            AccessOutcome::MinorFault => report.minor_faults += 1,
            AccessOutcome::MajorFault => report.major_faults += 1,
        }
        // pmbench's own bookkeeping between accesses.
        backend.clock().advance(SimDuration::from_nanos(120));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_coord::PartitionId;
    use fluidmem_core::{FluidMemMemory, MonitorConfig};
    use fluidmem_kv::DramStore;
    use fluidmem_sim::SimClock;

    fn fluidmem_backend(capacity: u64) -> FluidMemMemory {
        let clock = SimClock::new();
        let store = DramStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(1));
        FluidMemMemory::new(
            MonitorConfig::new(capacity),
            Box::new(store),
            PartitionId::new(0),
            clock,
            SimRng::seed_from_u64(2),
        )
    }

    #[test]
    fn hit_fraction_tracks_local_ratio() {
        // 1/4 of the WSS fits locally => ~25% hits, as §VI-B reasons.
        let mut backend = fluidmem_backend(256);
        let config = PmbenchConfig {
            wss_pages: 1024,
            duration: SimDuration::from_secs(1),
            read_ratio: 0.5,
            max_accesses: 20_000,
        };
        let mut rng = SimRng::seed_from_u64(3);
        let report = run(&mut backend, &config, &mut rng);
        assert!(
            (report.hit_fraction() - 0.25).abs() < 0.06,
            "hit fraction {}",
            report.hit_fraction()
        );
        assert!(report.accesses > 1000);
    }

    #[test]
    fn all_histogram_is_reads_plus_writes() {
        let mut backend = fluidmem_backend(64);
        let config = PmbenchConfig {
            wss_pages: 128,
            duration: SimDuration::from_millis(50),
            read_ratio: 0.5,
            max_accesses: 5_000,
        };
        let mut rng = SimRng::seed_from_u64(4);
        let report = run(&mut backend, &config, &mut rng);
        assert_eq!(
            report.all.count(),
            report.reads.count() + report.writes.count()
        );
        assert_eq!(report.accesses, report.all.count());
    }

    #[test]
    fn fully_resident_wss_is_fast() {
        let mut backend = fluidmem_backend(512);
        let config = PmbenchConfig {
            wss_pages: 128,
            duration: SimDuration::from_millis(20),
            read_ratio: 1.0,
            max_accesses: 10_000,
        };
        let mut rng = SimRng::seed_from_u64(5);
        let report = run(&mut backend, &config, &mut rng);
        assert!(report.hit_fraction() > 0.99);
        assert!(report.avg_latency_us() < 1.0);
    }

    #[test]
    fn deterministic_across_runs_with_same_seed() {
        let run_once = || {
            let mut backend = fluidmem_backend(64);
            let config = PmbenchConfig {
                wss_pages: 256,
                duration: SimDuration::from_millis(30),
                read_ratio: 0.5,
                max_accesses: 3_000,
            };
            let mut rng = SimRng::seed_from_u64(6);
            let r = run(&mut backend, &config, &mut rng);
            (r.accesses, r.avg_latency_us())
        };
        assert_eq!(run_once(), run_once());
    }
}
