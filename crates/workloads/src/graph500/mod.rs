//! The Graph500 benchmark (§VI-D1, Figure 4).
//!
//! "We used the sequential reference implementation of Graph500": a
//! Kronecker (R-MAT) edge generator, CSR construction, and 64 consecutive
//! breadth-first searches, reporting the harmonic mean of traversed edges
//! per second (TEPS).

mod bfs;
mod csr;
mod kronecker;

pub use bfs::{run_benchmark, validate_bfs, BfsResult, Graph500Report};
pub use csr::CsrGraph;
pub use kronecker::generate_edges;

use fluidmem_sim::SimDuration;

/// Graph500 parameters.
#[derive(Debug, Clone)]
pub struct Graph500Config {
    /// log2 of the number of vertices (paper: 20–23).
    pub scale: u32,
    /// Edges per vertex (Graph500 default 16).
    pub edgefactor: u32,
    /// Number of BFS roots (Graph500 runs 64).
    pub roots: u32,
    /// Seed for graph generation and root selection.
    pub seed: u64,
    /// CPU cost charged per adjacency-list entry scanned (models the
    /// guest's compute between memory references).
    pub cpu_per_edge: SimDuration,
    /// CPU cost charged per vertex dequeued.
    pub cpu_per_vertex: SimDuration,
    /// Run the spec's Kernel-2 validation after each traversal (outside
    /// the timed section).
    pub validate: bool,
}

impl Graph500Config {
    /// The paper's setup at a given scale factor.
    pub fn paper(scale: u32) -> Self {
        Graph500Config {
            scale,
            edgefactor: 16,
            roots: 64,
            seed: 20,
            cpu_per_edge: SimDuration::from_nanos(14),
            cpu_per_vertex: SimDuration::from_nanos(40),
            validate: true,
        }
    }

    /// A scaled-down variant for quick runs: smaller graph, fewer roots.
    pub fn quick(scale: u32, roots: u32) -> Self {
        Graph500Config {
            roots,
            ..Self::paper(scale)
        }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> u64 {
        1u64 << self.scale
    }

    /// Number of generated (directed input) edges.
    pub fn edges(&self) -> u64 {
        self.vertices() * u64::from(self.edgefactor)
    }
}
