//! Compressed-sparse-row graph construction.

/// The symmetrized CSR representation the reference BFS traverses.
///
/// Self-loops are dropped (as in the reference kernel); each remaining
/// input edge appears in both endpoints' adjacency lists.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    /// `xoff[v]..xoff[v+1]` indexes `adj` for vertex `v`.
    pub xoff: Vec<u64>,
    /// Concatenated adjacency lists.
    pub adj: Vec<u32>,
    /// Number of input edges retained (after self-loop removal).
    pub input_edges: u64,
}

impl CsrGraph {
    /// Builds the CSR from an edge list over `n` vertices.
    pub fn build(n: u64, edges: &[(u32, u32)]) -> CsrGraph {
        let n = n as usize;
        let mut degree = vec![0u64; n];
        let mut kept = 0u64;
        for &(u, v) in edges {
            if u != v {
                degree[u as usize] += 1;
                degree[v as usize] += 1;
                kept += 1;
            }
        }
        let mut xoff = vec![0u64; n + 1];
        for v in 0..n {
            xoff[v + 1] = xoff[v] + degree[v];
        }
        let mut cursor = xoff.clone();
        let mut adj = vec![0u32; (kept * 2) as usize];
        for &(u, v) in edges {
            if u != v {
                adj[cursor[u as usize] as usize] = v;
                cursor[u as usize] += 1;
                adj[cursor[v as usize] as usize] = u;
                cursor[v as usize] += 1;
            }
        }
        CsrGraph {
            xoff,
            adj,
            input_edges: kept,
        }
    }

    /// Number of vertices.
    pub fn vertices(&self) -> u64 {
        (self.xoff.len() - 1) as u64
    }

    /// Degree of a vertex.
    pub fn degree(&self, v: u32) -> u64 {
        self.xoff[v as usize + 1] - self.xoff[v as usize]
    }

    /// Total adjacency entries (2 × input edges).
    pub fn adjacency_len(&self) -> u64 {
        self.adj.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_symmetric_lists() {
        let g = CsrGraph::build(4, &[(0, 1), (1, 2), (2, 2), (0, 3)]);
        assert_eq!(g.input_edges, 3, "self loop dropped");
        assert_eq!(g.adjacency_len(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 1);
        assert_eq!(g.degree(3), 1);
        // Neighbors of 0 are {1, 3}.
        let s = g.xoff[0] as usize;
        let e = g.xoff[1] as usize;
        let mut nbrs: Vec<u32> = g.adj[s..e].to_vec();
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![1, 3]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::build(3, &[]);
        assert_eq!(g.vertices(), 3);
        assert_eq!(g.adjacency_len(), 0);
    }
}
