//! The sequential reference BFS, run over paged memory.

use fluidmem_mem::{MemoryBackend, PageClass, Region, PAGE_SIZE};
use fluidmem_sim::stats::harmonic_mean;
use fluidmem_sim::{SimDuration, SimRng};

use super::csr::CsrGraph;
use super::Graph500Config;

/// A view of a native array through the guest's paged address space:
/// element `i` of the array lives at a fixed guest address, and touching
/// it charges the backend exactly as the guest's loads/stores would.
///
/// Consecutive accesses to the same page are coalesced (the hardware TLB
/// would absorb them and no fault can interleave), which keeps the
/// simulation honest *and* fast for sequential scans.
struct PagedArray {
    region: Region,
    elem_size: u64,
    last_page: Option<u64>,
}

impl PagedArray {
    fn map(backend: &mut dyn MemoryBackend, elems: u64, elem_size: u64) -> PagedArray {
        let pages = (elems * elem_size).div_ceil(PAGE_SIZE as u64).max(1);
        PagedArray {
            region: backend.map_region(pages, PageClass::Anonymous),
            elem_size,
            last_page: None,
        }
    }

    #[inline]
    fn touch(&mut self, backend: &mut dyn MemoryBackend, index: u64, write: bool) {
        let offset = index * self.elem_size;
        let page = offset / PAGE_SIZE as u64;
        if self.last_page == Some(page) {
            return;
        }
        self.last_page = Some(page);
        backend.access(self.region.addr_at(offset), write);
    }

    /// Forgets the coalescing state (between logical operations whose
    /// interleaving could fault).
    #[inline]
    fn reset(&mut self) {
        self.last_page = None;
    }

    fn populate(&mut self, backend: &mut dyn MemoryBackend) {
        for p in 0..self.region.pages() {
            backend.access(self.region.page(p), true);
        }
    }

    fn pages(&self) -> u64 {
        self.region.pages()
    }
}

/// One BFS traversal's outcome.
#[derive(Debug, Clone, Copy)]
pub struct BfsResult {
    /// The root vertex.
    pub root: u32,
    /// Input edges inside the traversed component.
    pub edges_traversed: u64,
    /// Vertices visited.
    pub vertices_visited: u64,
    /// Virtual time the traversal took.
    pub elapsed: SimDuration,
    /// Traversed edges per second.
    pub teps: f64,
}

/// The Graph500 specification's result-validation kernel: checks that a
/// BFS parent tree is well formed.
///
/// Verified properties (spec §"Kernel 2 validation"):
/// 1. the root is its own parent;
/// 2. every visited vertex reaches the root through parent links, with
///    each link being a real graph edge;
/// 3. tree levels differ by exactly one across parent links;
/// 4. every vertex in the root's connected component was visited.
///
/// Returns the number of visited vertices.
///
/// # Errors
///
/// Returns a description of the first violated property.
pub fn validate_bfs(graph: &CsrGraph, root: u32, parent: &[i64]) -> Result<u64, String> {
    let n = graph.vertices() as usize;
    if parent.len() != n {
        return Err(format!(
            "parent array has {} entries for {} vertices",
            parent.len(),
            n
        ));
    }
    if parent[root as usize] != i64::from(root) {
        return Err(format!("root {root} is not its own parent"));
    }
    // Compute levels by chasing parents (with cycle detection).
    let mut level = vec![-1i64; n];
    level[root as usize] = 0;
    let mut visited = 0u64;
    for v in 0..n {
        if parent[v] < 0 {
            continue;
        }
        visited += 1;
        // Chase to a vertex with known level.
        let mut chain = Vec::new();
        let mut cur = v;
        while level[cur] < 0 {
            chain.push(cur);
            let p = parent[cur];
            if p < 0 {
                return Err(format!(
                    "vertex {cur} visited but its parent chain leaves the tree"
                ));
            }
            let p = p as usize;
            // Parent link must be a real edge.
            let s = graph.xoff[p] as usize;
            let e = graph.xoff[p + 1] as usize;
            if !graph.adj[s..e].contains(&(cur as u32)) {
                return Err(format!("parent link {p} -> {cur} is not a graph edge"));
            }
            if chain.len() > n {
                return Err("cycle in parent tree".to_string());
            }
            cur = p;
        }
        let base = level[cur];
        for (i, &u) in chain.iter().rev().enumerate() {
            level[u] = base + i as i64 + 1;
        }
    }
    // Level consistency: each tree edge spans exactly one level.
    for v in 0..n {
        if parent[v] >= 0 && v != root as usize {
            let p = parent[v] as usize;
            if level[v] != level[p] + 1 {
                return Err(format!(
                    "tree edge {p} -> {v} spans levels {} -> {}",
                    level[p], level[v]
                ));
            }
        }
    }
    // Completeness: every neighbor of a visited vertex is visited.
    for v in 0..n {
        if parent[v] < 0 {
            continue;
        }
        let s = graph.xoff[v] as usize;
        let e = graph.xoff[v + 1] as usize;
        for &w in &graph.adj[s..e] {
            if parent[w as usize] < 0 {
                return Err(format!(
                    "vertex {w} is adjacent to visited {v} but was not visited"
                ));
            }
        }
    }
    Ok(visited)
}

/// The full benchmark's report.
#[derive(Debug, Clone)]
pub struct Graph500Report {
    /// Per-root results.
    pub runs: Vec<BfsResult>,
    /// Guest pages occupied by the benchmark's data structures (the
    /// working-set size of Figure 4's captions).
    pub wss_pages: u64,
    /// Virtual time spent building the graph in memory.
    pub construction_time: SimDuration,
}

impl Graph500Report {
    /// The harmonic mean of per-root TEPS — Graph500's headline metric,
    /// as plotted in Figure 4.
    pub fn harmonic_mean_teps(&self) -> f64 {
        harmonic_mean(
            &self
                .runs
                .iter()
                .map(|r| r.teps)
                .filter(|t| *t > 0.0)
                .collect::<Vec<_>>(),
        )
    }
}

/// Runs the Graph500 benchmark over a backend: generates the Kronecker
/// graph natively, lays its CSR + BFS state out in paged guest memory,
/// then performs `config.roots` traversals charging every memory
/// reference to the backend.
pub fn run_benchmark(
    backend: &mut dyn MemoryBackend,
    graph: &CsrGraph,
    config: &Graph500Config,
    rng: &mut SimRng,
) -> Graph500Report {
    let n = graph.vertices();

    let mut xoff = PagedArray::map(backend, n + 1, 8);
    let mut adj = PagedArray::map(backend, graph.adjacency_len().max(1), 4);
    let mut parent = PagedArray::map(backend, n, 8);
    let mut queue = PagedArray::map(backend, n, 4);
    let wss_pages = xoff.pages() + adj.pages() + parent.pages() + queue.pages();

    // Graph construction: the kernel writes the whole CSR once.
    let t0 = backend.clock().now();
    xoff.populate(backend);
    adj.populate(backend);
    let construction_time = backend.clock().now() - t0;

    // Pick distinct roots with non-zero degree, as the spec requires.
    let mut roots = Vec::with_capacity(config.roots as usize);
    let mut tried = std::collections::HashSet::new();
    while roots.len() < config.roots as usize && tried.len() < n as usize {
        let candidate = rng.gen_index(n) as u32;
        if tried.insert(candidate) && graph.degree(candidate) > 0 {
            roots.push(candidate);
        }
    }

    let mut parents = vec![-1i64; n as usize];
    let mut q: Vec<u32> = Vec::with_capacity(n as usize);
    let mut runs = Vec::with_capacity(roots.len());

    for &root in &roots {
        // Re-initialize BFS state (parent array) — one sequential write
        // pass, as the reference kernel memsets parents to -1.
        parents.iter_mut().for_each(|v| *v = -1);
        parent.reset();
        for page in 0..parent.pages() {
            backend.access(parent.region.page(page), true);
        }

        let start = backend.clock().now();
        let mut traversed_adjacency = 0u64;

        q.clear();
        q.push(root);
        parents[root as usize] = i64::from(root);
        parent.reset();
        queue.reset();
        queue.touch(backend, 0, true);
        parent.touch(backend, u64::from(root), true);

        let mut head = 0usize;
        while head < q.len() {
            let u = q[head];
            queue.touch(backend, head as u64, false);
            head += 1;
            backend.clock().advance(config.cpu_per_vertex);

            xoff.reset();
            xoff.touch(backend, u64::from(u), false);
            xoff.touch(backend, u64::from(u) + 1, false);
            let s = graph.xoff[u as usize];
            let e = graph.xoff[u as usize + 1];
            adj.reset();
            for k in s..e {
                backend.clock().advance(config.cpu_per_edge);
                adj.touch(backend, k, false);
                let v = graph.adj[k as usize];
                traversed_adjacency += 1;
                parent.reset();
                parent.touch(backend, u64::from(v), false);
                if parents[v as usize] < 0 {
                    parents[v as usize] = i64::from(u);
                    parent.touch(backend, u64::from(v), true);
                    queue.reset();
                    queue.touch(backend, q.len() as u64, true);
                    q.push(v);
                }
            }
        }

        let elapsed = backend.clock().now() - start;
        // Kernel 2 validation, per the Graph500 spec (outside the timed
        // section, as in the reference implementation).
        if config.validate {
            validate_bfs(graph, root, &parents)
                .unwrap_or_else(|e| panic!("BFS validation failed for root {root}: {e}"));
        }
        // Graph500 counts each input edge in the component once; every
        // such edge was scanned from both endpoints.
        let edges_traversed = traversed_adjacency / 2;
        let teps = if elapsed.is_zero() {
            0.0
        } else {
            edges_traversed as f64 / elapsed.as_secs_f64()
        };
        runs.push(BfsResult {
            root,
            edges_traversed,
            vertices_visited: parents.iter().filter(|&&p| p >= 0).count() as u64,
            elapsed,
            teps,
        });
    }

    Graph500Report {
        runs,
        wss_pages,
        construction_time,
    }
}

#[cfg(test)]
mod tests {
    use super::super::generate_edges;
    use super::*;
    use fluidmem_coord::PartitionId;
    use fluidmem_core::{FluidMemMemory, MonitorConfig};
    use fluidmem_kv::DramStore;
    use fluidmem_sim::SimClock;

    fn backend(capacity: u64) -> FluidMemMemory {
        let clock = SimClock::new();
        let store = DramStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(1));
        FluidMemMemory::new(
            MonitorConfig::new(capacity),
            Box::new(store),
            PartitionId::new(0),
            clock,
            SimRng::seed_from_u64(2),
        )
    }

    fn quick_run(capacity: u64, scale: u32) -> Graph500Report {
        let config = Graph500Config::quick(scale, 4);
        let edges = generate_edges(&config);
        let graph = CsrGraph::build(config.vertices(), &edges);
        let mut b = backend(capacity);
        let mut rng = SimRng::seed_from_u64(9);
        run_benchmark(&mut b, &graph, &config, &mut rng)
    }

    #[test]
    fn traverses_and_reports_teps() {
        let report = quick_run(100_000, 9);
        assert_eq!(report.runs.len(), 4);
        assert!(report.harmonic_mean_teps() > 0.0);
        for r in &report.runs {
            assert!(r.edges_traversed > 0, "root {} found no edges", r.root);
            assert!(!r.elapsed.is_zero());
        }
    }

    #[test]
    fn bfs_visits_component_consistently() {
        // The same graph must traverse the same edge counts regardless of
        // memory backend capacity (correctness is independent of paging).
        let full = quick_run(1_000_000, 8);
        let tight = quick_run(64, 8);
        let a: Vec<u64> = full.runs.iter().map(|r| r.edges_traversed).collect();
        let b: Vec<u64> = tight.runs.iter().map(|r| r.edges_traversed).collect();
        assert_eq!(a, b, "paging must not change traversal results");
    }

    #[test]
    fn memory_pressure_reduces_teps() {
        let roomy = quick_run(1_000_000, 10);
        let starved = quick_run(8, 10);
        assert!(
            roomy.harmonic_mean_teps() > 2.0 * starved.harmonic_mean_teps(),
            "roomy {} vs starved {}",
            roomy.harmonic_mean_teps(),
            starved.harmonic_mean_teps()
        );
    }

    #[test]
    fn validation_accepts_benchmark_output() {
        // quick_run already validates internally (config.validate=true);
        // this exercises validate_bfs directly on a hand-built tree.
        let g = CsrGraph::build(5, &[(0, 1), (1, 2), (0, 3)]);
        // BFS from 0: parents 0<-0, 1<-0, 2<-1, 3<-0; vertex 4 isolated.
        let parent = vec![0i64, 0, 1, 0, -1];
        assert_eq!(super::validate_bfs(&g, 0, &parent), Ok(4));
    }

    #[test]
    fn validation_rejects_fake_edge() {
        let g = CsrGraph::build(4, &[(0, 1), (1, 2)]);
        // Claims 3's parent is 0, but edge 0-3 does not exist.
        let parent = vec![0i64, 0, 1, 0];
        let err = super::validate_bfs(&g, 0, &parent).unwrap_err();
        assert!(err.contains("not a graph edge"), "{err}");
    }

    #[test]
    fn validation_rejects_bad_root() {
        let g = CsrGraph::build(2, &[(0, 1)]);
        let parent = vec![1i64, 0];
        assert!(super::validate_bfs(&g, 0, &parent)
            .unwrap_err()
            .contains("not its own parent"));
    }

    #[test]
    fn validation_rejects_level_skip() {
        // 0-1, 1-2, 0-2 triangle: parent[2]=1 gives level 2... but 0-2
        // exists so a BFS would have found 2 at level 1. Level rule: the
        // tree edge 1->2 spans 1->2 which is fine; instead build a chain
        // where a vertex claims a parent two levels up is impossible —
        // craft an unvisited-neighbor violation instead.
        let g = CsrGraph::build(4, &[(0, 1), (1, 2), (2, 3)]);
        let parent = vec![0i64, 0, 1, -1]; // 3 unvisited but adjacent to 2
        assert!(super::validate_bfs(&g, 0, &parent)
            .unwrap_err()
            .contains("not visited"));
    }

    #[test]
    fn wss_scales_with_graph() {
        let small = quick_run(1_000_000, 8);
        let big = quick_run(1_000_000, 10);
        assert!(big.wss_pages > small.wss_pages * 2);
    }
}
