//! Kronecker (R-MAT) edge generation, per the Graph500 specification.

use fluidmem_sim::SimRng;

use super::Graph500Config;

/// R-MAT parameters from the Graph500 spec: A=0.57, B=0.19, C=0.19.
const A: f64 = 0.57;
const B: f64 = 0.19;
const C: f64 = 0.19;

/// Generates the edge list: `edgefactor * 2^scale` edges over
/// `2^scale` vertices, with vertex labels scrambled by a pseudo-random
/// permutation (as the reference implementation does, so that vertex id
/// gives no locality hint).
pub fn generate_edges(config: &Graph500Config) -> Vec<(u32, u32)> {
    let n = config.vertices();
    assert!(n <= u64::from(u32::MAX), "scale too large for u32 vertices");
    let mut rng = SimRng::seed_from_u64(config.seed ^ 0x6b72_6f6e);
    let mut edges = Vec::with_capacity(config.edges() as usize);
    for _ in 0..config.edges() {
        let mut u = 0u64;
        let mut v = 0u64;
        for level in 0..config.scale {
            let r: f64 = rng.gen_f64();
            let (du, dv): (u64, u64) = if r < A {
                (0, 0)
            } else if r < A + B {
                (0, 1)
            } else if r < A + B + C {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << level;
            v |= dv << level;
        }
        edges.push((scramble(u, n) as u32, scramble(v, n) as u32));
    }
    edges
}

/// A cheap bijective permutation of vertex labels (multiplicative hash
/// within the power-of-two domain; odd multiplier => bijection).
fn scramble(v: u64, n: u64) -> u64 {
    debug_assert!(n.is_power_of_two());
    v.wrapping_mul(0x9e37_79b9_7f4a_7c15 | 1) & (n - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_and_range() {
        let config = Graph500Config::quick(8, 4);
        let edges = generate_edges(&config);
        assert_eq!(edges.len(), 256 * 16);
        assert!(edges
            .iter()
            .all(|&(u, v)| u64::from(u) < config.vertices() && u64::from(v) < config.vertices()));
    }

    #[test]
    fn generation_is_deterministic() {
        let config = Graph500Config::quick(8, 4);
        assert_eq!(generate_edges(&config), generate_edges(&config));
    }

    #[test]
    fn different_seeds_differ() {
        let a = Graph500Config::quick(8, 4);
        let mut b = Graph500Config::quick(8, 4);
        b.seed = 99;
        assert_ne!(generate_edges(&a), generate_edges(&b));
    }

    #[test]
    fn scramble_is_bijective() {
        let n = 1u64 << 10;
        let mut seen = std::collections::HashSet::new();
        for v in 0..n {
            assert!(seen.insert(scramble(v, n)));
        }
    }

    #[test]
    fn rmat_skew_produces_hubs() {
        // R-MAT graphs are heavy-tailed: the max degree should far
        // exceed the mean degree.
        let config = Graph500Config::quick(10, 4);
        let edges = generate_edges(&config);
        let mut deg = vec![0u32; config.vertices() as usize];
        for &(u, v) in &edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let max = *deg.iter().max().unwrap();
        let mean = 2.0 * edges.len() as f64 / config.vertices() as f64;
        assert!(
            f64::from(max) > mean * 4.0,
            "max degree {max} vs mean {mean}"
        );
    }
}
