//! Memory substrate for the FluidMem reproduction.
//!
//! This crate models the pieces of a hypervisor's memory system that both
//! disaggregation mechanisms (the FluidMem monitor and the Linux swap
//! subsystem) are built on:
//!
//! * 4 KB pages with optional real contents ([`PageContents`]),
//! * [`VirtAddr`]/[`Vpn`] virtual addressing and typed [`Region`]s,
//! * page-table entries with [`PteFlags`] and a per-process [`PageTable`],
//! * host [`PhysicalMemory`] (frame allocator + frame contents),
//! * a [`TlbModel`] charging flush / shootdown-IPI costs, and
//! * the [`MemoryBackend`] trait: the common interface through which VMs
//!   and workloads touch memory while virtual time is charged.
//!
//! Page **classes** ([`PageClass`]) are the crux of the paper's full-vs-
//! partial disaggregation argument (§II): swap can only evict anonymous
//! pages (and drop or write back file-backed ones), while FluidMem can move
//! *any* page — kernel, mlocked, file-backed — to remote memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod backend;
mod frame;
mod page;
mod page_class;
mod page_table;
mod pte;
mod tlb;

pub use addr::{Region, VirtAddr, Vpn};
pub use backend::{AccessCounters, AccessOutcome, AccessReport, CapacityError, MemoryBackend};
pub use frame::{FrameId, PhysicalMemory};
pub use page::{PageContents, PAGE_SIZE};
pub use page_class::{PageClass, WritebackTarget};
pub use page_table::{PageTable, PageTableEntry};
pub use pte::PteFlags;
pub use tlb::TlbModel;
