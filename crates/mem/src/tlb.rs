//! TLB cost model.

use fluidmem_sim::{LatencyModel, SimDuration, SimRng};

/// Charges the costs of TLB maintenance.
///
/// The paper's Table I shows why this matters: `UFFD_REMAP` averages only
/// 1.65 µs but has an 18 µs 99th percentile *"because the operation
/// requires an interrupt to be sent to all CPUs to flush the TLB entry"*
/// (§VI-C). A local invalidation is cheap; a shootdown must interrupt
/// every other CPU and wait for acknowledgements.
///
/// # Example
///
/// ```
/// use fluidmem_mem::TlbModel;
/// use fluidmem_sim::SimRng;
///
/// let tlb = TlbModel::new(16);
/// let mut rng = SimRng::seed_from_u64(1);
/// let local = tlb.local_flush(&mut rng);
/// let remote = tlb.shootdown(&mut rng);
/// assert!(remote >= local);
/// ```
#[derive(Debug, Clone)]
pub struct TlbModel {
    cpus: u32,
    local_flush: LatencyModel,
    ipi_base: LatencyModel,
    /// Extra latency per responding CPU.
    ipi_per_cpu: LatencyModel,
    /// Occasional long waits when a target CPU has interrupts disabled.
    straggler: LatencyModel,
    straggler_probability: f64,
}

impl TlbModel {
    /// A model for a machine with `cpus` logical CPUs, calibrated so that
    /// the common-case shootdown costs a few microseconds with a long tail
    /// (matching Table I's `UFFD_REMAP` stdev/p99).
    pub fn new(cpus: u32) -> Self {
        TlbModel {
            cpus: cpus.max(1),
            local_flush: LatencyModel::normal_us(0.15, 0.03),
            ipi_base: LatencyModel::normal_us(1.0, 0.2),
            ipi_per_cpu: LatencyModel::constant_ns(60),
            straggler: LatencyModel::uniform_us(6.0, 18.0),
            straggler_probability: 0.02,
        }
    }

    /// Number of CPUs participating in shootdowns.
    pub fn cpus(&self) -> u32 {
        self.cpus
    }

    /// Cost of invalidating an entry on the local CPU only.
    pub fn local_flush(&self, rng: &mut SimRng) -> SimDuration {
        self.local_flush.sample(rng)
    }

    /// Cost of a full shootdown: IPI to all other CPUs plus waiting for
    /// acknowledgements, with an occasional straggler.
    pub fn shootdown(&self, rng: &mut SimRng) -> SimDuration {
        let mut d = self.local_flush.sample(rng);
        if self.cpus > 1 {
            d += self.ipi_base.sample(rng);
            d += self.ipi_per_cpu.sample(rng) * u64::from(self.cpus - 1);
            if rng.gen_bool(self.straggler_probability) {
                d += self.straggler.sample(rng);
            }
        }
        d
    }

    /// The analytic mean shootdown cost in microseconds.
    pub fn mean_shootdown_us(&self) -> f64 {
        if self.cpus <= 1 {
            return self.local_flush.mean_us();
        }
        self.local_flush.mean_us()
            + self.ipi_base.mean_us()
            + self.ipi_per_cpu.mean_us() * f64::from(self.cpus - 1)
            + self.straggler_probability * self.straggler.mean_us()
    }
}

impl Default for TlbModel {
    /// A 16-CPU model (two 8-core sockets, matching the paper's Xeon
    /// E5-2620 v4 testbed).
    fn default() -> Self {
        TlbModel::new(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_sim::stats::Sample;

    #[test]
    fn single_cpu_has_no_ipi_cost() {
        let tlb = TlbModel::new(1);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(tlb.shootdown(&mut rng).as_micros_f64() < 1.0);
        }
    }

    #[test]
    fn zero_cpus_clamps_to_one() {
        assert_eq!(TlbModel::new(0).cpus(), 1);
    }

    #[test]
    fn shootdown_tail_matches_table1_shape() {
        // Table I UFFD_REMAP: avg 1.65µs, p99 18.03µs. The shootdown alone
        // should produce a mean of a couple of µs with a p99 in the teens.
        let tlb = TlbModel::new(16);
        let mut rng = SimRng::seed_from_u64(2);
        let mut s = Sample::new();
        for _ in 0..50_000 {
            s.record(tlb.shootdown(&mut rng).as_micros_f64());
        }
        assert!(s.mean() > 1.0 && s.mean() < 3.5, "mean {}", s.mean());
        let p99 = s.percentile(0.99);
        assert!(p99 > 6.0 && p99 < 20.0, "p99 {p99}");
    }

    #[test]
    fn more_cpus_cost_more() {
        let small = TlbModel::new(2);
        let big = TlbModel::new(64);
        assert!(big.mean_shootdown_us() > small.mean_shootdown_us());
    }
}
