//! Virtual addresses, page numbers, and regions.

use std::fmt;
use std::ops::Add;

use crate::page::PAGE_SIZE;
use crate::page_class::PageClass;

/// A guest-side virtual address.
///
/// In the paper's design the monitor keys remote pages by "the first 52
/// bits of the virtual memory address used by the faulting application"
/// (§IV); [`VirtAddr::vpn`] exposes exactly that 52-bit page number.
///
/// # Example
///
/// ```
/// use fluidmem_mem::{VirtAddr, Vpn};
///
/// let a = VirtAddr::new(0x1234_5678);
/// assert_eq!(a.vpn(), Vpn::new(0x1234_5678 >> 12));
/// assert_eq!(a.page_offset(), 0x678);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(u64);

impl VirtAddr {
    /// Creates an address from its raw 64-bit value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        VirtAddr(raw)
    }

    /// The raw 64-bit value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The 52-bit virtual page number containing this address.
    #[inline]
    pub const fn vpn(self) -> Vpn {
        Vpn(self.0 >> 12)
    }

    /// The byte offset within the page.
    #[inline]
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE as u64 - 1)
    }

    /// The address rounded down to its page boundary.
    #[inline]
    pub const fn page_base(self) -> VirtAddr {
        VirtAddr(self.0 & !(PAGE_SIZE as u64 - 1))
    }
}

impl Add<u64> for VirtAddr {
    type Output = VirtAddr;
    #[inline]
    fn add(self, rhs: u64) -> VirtAddr {
        VirtAddr(self.0 + rhs)
    }
}

impl From<u64> for VirtAddr {
    fn from(raw: u64) -> Self {
        VirtAddr(raw)
    }
}

impl fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VirtAddr({:#x})", self.0)
    }
}

impl fmt::Display for VirtAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A 52-bit virtual page number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(u64);

impl Vpn {
    /// Creates a page number from its raw value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Vpn(raw)
    }

    /// The raw page number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The base address of this page.
    #[inline]
    pub const fn base_addr(self) -> VirtAddr {
        VirtAddr(self.0 << 12)
    }

    /// The page `n` pages after this one.
    #[inline]
    pub const fn offset(self, n: u64) -> Vpn {
        Vpn(self.0 + n)
    }
}

impl fmt::Debug for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vpn({:#x})", self.0)
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}

/// A contiguous run of same-class pages in a guest address space.
///
/// Regions are what a [`MemoryBackend`](crate::MemoryBackend) hands out
/// from `map_region` and what the FluidMem monitor registers with
/// userfaultfd.
///
/// # Example
///
/// ```
/// use fluidmem_mem::{PageClass, Region, Vpn};
///
/// let r = Region::new(Vpn::new(0x100), 16, PageClass::Anonymous);
/// assert_eq!(r.pages(), 16);
/// assert!(r.contains(Vpn::new(0x10f)));
/// assert!(!r.contains(Vpn::new(0x110)));
/// assert_eq!(r.bytes(), 16 * 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    start: Vpn,
    pages: u64,
    class: PageClass,
}

impl Region {
    /// Creates a region starting at `start` spanning `pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero.
    pub fn new(start: Vpn, pages: u64, class: PageClass) -> Self {
        assert!(pages > 0, "region must span at least one page");
        Region {
            start,
            pages,
            class,
        }
    }

    /// First page of the region.
    pub fn start(&self) -> Vpn {
        self.start
    }

    /// One past the last page of the region.
    pub fn end(&self) -> Vpn {
        self.start.offset(self.pages)
    }

    /// Number of pages.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Region size in bytes.
    pub fn bytes(&self) -> u64 {
        self.pages * PAGE_SIZE as u64
    }

    /// The page class of every page in the region.
    pub fn class(&self) -> PageClass {
        self.class
    }

    /// Whether `vpn` falls inside the region.
    pub fn contains(&self, vpn: Vpn) -> bool {
        vpn >= self.start && vpn < self.end()
    }

    /// The base address of the `i`-th page.
    ///
    /// # Panics
    ///
    /// Panics if `i >= pages()`.
    pub fn page(&self, i: u64) -> VirtAddr {
        assert!(i < self.pages, "page index {i} out of {}", self.pages);
        self.start.offset(i).base_addr()
    }

    /// The address `byte_offset` bytes into the region.
    ///
    /// # Panics
    ///
    /// Panics if the offset is past the end of the region.
    pub fn addr_at(&self, byte_offset: u64) -> VirtAddr {
        assert!(byte_offset < self.bytes(), "offset past end of region");
        self.start.base_addr() + byte_offset
    }

    /// Iterates over the page numbers in the region.
    pub fn iter_pages(&self) -> impl Iterator<Item = Vpn> + '_ {
        (0..self.pages).map(move |i| self.start.offset(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpn_addr_round_trip() {
        let a = VirtAddr::new(0xdead_b000 + 0xeef);
        assert_eq!(a.page_offset(), 0xeef);
        assert_eq!(a.page_base(), VirtAddr::new(0xdead_b000));
        assert_eq!(a.vpn().base_addr(), a.page_base());
    }

    #[test]
    fn region_bounds() {
        let r = Region::new(Vpn::new(10), 5, PageClass::Anonymous);
        assert!(r.contains(Vpn::new(10)));
        assert!(r.contains(Vpn::new(14)));
        assert!(!r.contains(Vpn::new(15)));
        assert!(!r.contains(Vpn::new(9)));
        assert_eq!(r.end(), Vpn::new(15));
    }

    #[test]
    fn region_page_addressing() {
        let r = Region::new(Vpn::new(2), 3, PageClass::FileBacked);
        assert_eq!(r.page(0), VirtAddr::new(2 * 4096));
        assert_eq!(r.page(2), VirtAddr::new(4 * 4096));
        assert_eq!(r.addr_at(4100), VirtAddr::new(2 * 4096 + 4100));
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn empty_region_rejected() {
        Region::new(Vpn::new(0), 0, PageClass::Anonymous);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn page_index_out_of_bounds() {
        Region::new(Vpn::new(0), 2, PageClass::Anonymous).page(2);
    }

    #[test]
    fn iter_pages_covers_region() {
        let r = Region::new(Vpn::new(100), 4, PageClass::KernelData);
        let pages: Vec<Vpn> = r.iter_pages().collect();
        assert_eq!(
            pages,
            vec![Vpn::new(100), Vpn::new(101), Vpn::new(102), Vpn::new(103)]
        );
    }
}
