//! A per-process page table.

use std::collections::HashMap;

use crate::{FrameId, PteFlags, Vpn};

/// One page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageTableEntry {
    /// The backing host frame.
    pub frame: FrameId,
    /// Flag bits.
    pub flags: PteFlags,
}

impl PageTableEntry {
    /// Whether the entry currently translates (is present).
    pub fn is_present(&self) -> bool {
        self.flags.contains(PteFlags::PRESENT)
    }
}

/// A sparse page table mapping virtual page numbers to frames.
///
/// This is the structure both fault paths manipulate: the simulated kernel
/// installs and removes translations here, `UFFD_REMAP` rewrites entries to
/// move pages without copying, and the swap subsystem's LRU aging reads and
/// clears the [`PteFlags::REFERENCED`] bit.
///
/// # Example
///
/// ```
/// use fluidmem_mem::{FrameId, PageTable, PteFlags, Vpn};
///
/// let mut pt = PageTable::new();
/// let vpn = Vpn::new(0x42);
/// pt.map(vpn, FrameId::ZERO_PAGE, PteFlags::PRESENT | PteFlags::ZERO_PAGE);
/// assert!(pt.get(vpn).unwrap().is_present());
/// let e = pt.unmap(vpn).unwrap();
/// assert_eq!(e.frame, FrameId::ZERO_PAGE);
/// assert!(pt.get(vpn).is_none());
/// ```
#[derive(Debug, Default)]
pub struct PageTable {
    entries: HashMap<Vpn, PageTableEntry>,
}

impl PageTable {
    /// Creates an empty page table.
    pub fn new() -> Self {
        PageTable {
            entries: HashMap::new(),
        }
    }

    /// Installs (or replaces) a translation.
    pub fn map(&mut self, vpn: Vpn, frame: FrameId, flags: PteFlags) {
        self.entries.insert(vpn, PageTableEntry { frame, flags });
    }

    /// Removes a translation, returning the old entry if one existed.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<PageTableEntry> {
        self.entries.remove(&vpn)
    }

    /// Looks up a translation.
    pub fn get(&self, vpn: Vpn) -> Option<&PageTableEntry> {
        self.entries.get(&vpn)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, vpn: Vpn) -> Option<&mut PageTableEntry> {
        self.entries.get_mut(&vpn)
    }

    /// Sets flag bits on an existing entry. Returns `false` if unmapped.
    pub fn set_flags(&mut self, vpn: Vpn, flags: PteFlags) -> bool {
        if let Some(e) = self.entries.get_mut(&vpn) {
            e.flags.insert(flags);
            true
        } else {
            false
        }
    }

    /// Clears flag bits on an existing entry. Returns `false` if unmapped.
    pub fn clear_flags(&mut self, vpn: Vpn, flags: PteFlags) -> bool {
        if let Some(e) = self.entries.get_mut(&vpn) {
            e.flags.remove(flags);
            true
        } else {
            false
        }
    }

    /// Tests whether an entry has all the given flags set.
    pub fn has_flags(&self, vpn: Vpn, flags: PteFlags) -> bool {
        self.entries
            .get(&vpn)
            .map(|e| e.flags.contains(flags))
            .unwrap_or(false)
    }

    /// Number of installed translations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no translations.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(vpn, entry)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vpn, &PageTableEntry)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(n: u64) -> FrameId {
        // FrameId has no public constructor besides ZERO_PAGE; allocate
        // through PhysicalMemory to stay honest.
        let mut pm = crate::PhysicalMemory::new(n + 1);
        let mut last = pm.alloc().unwrap();
        for _ in 0..n {
            last = pm.alloc().unwrap();
        }
        last
    }

    #[test]
    fn map_get_unmap() {
        let mut pt = PageTable::new();
        let f = frame(0);
        pt.map(Vpn::new(1), f, PteFlags::PRESENT);
        assert_eq!(pt.len(), 1);
        assert_eq!(pt.get(Vpn::new(1)).unwrap().frame, f);
        assert!(pt.unmap(Vpn::new(1)).is_some());
        assert!(pt.unmap(Vpn::new(1)).is_none());
        assert!(pt.is_empty());
    }

    #[test]
    fn flags_set_and_clear() {
        let mut pt = PageTable::new();
        pt.map(Vpn::new(2), frame(0), PteFlags::PRESENT);
        assert!(pt.set_flags(Vpn::new(2), PteFlags::DIRTY | PteFlags::REFERENCED));
        assert!(pt.has_flags(Vpn::new(2), PteFlags::DIRTY));
        assert!(pt.clear_flags(Vpn::new(2), PteFlags::REFERENCED));
        assert!(!pt.has_flags(Vpn::new(2), PteFlags::REFERENCED));
        assert!(pt.has_flags(Vpn::new(2), PteFlags::PRESENT | PteFlags::DIRTY));
    }

    #[test]
    fn flags_on_missing_entry_return_false() {
        let mut pt = PageTable::new();
        assert!(!pt.set_flags(Vpn::new(9), PteFlags::DIRTY));
        assert!(!pt.clear_flags(Vpn::new(9), PteFlags::DIRTY));
        assert!(!pt.has_flags(Vpn::new(9), PteFlags::PRESENT));
    }

    #[test]
    fn remap_replaces_entry() {
        let mut pt = PageTable::new();
        pt.map(Vpn::new(3), frame(0), PteFlags::PRESENT);
        let f2 = frame(1);
        pt.map(Vpn::new(3), f2, PteFlags::PRESENT | PteFlags::DIRTY);
        assert_eq!(pt.get(Vpn::new(3)).unwrap().frame, f2);
        assert_eq!(pt.len(), 1);
    }
}
