//! Page-table entry flags.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign};

/// Flag bits carried by a [`PageTableEntry`](crate::PageTableEntry).
///
/// A hand-rolled bitflag newtype (the reproduction's dependency set does
/// not include the `bitflags` crate).
///
/// # Example
///
/// ```
/// use fluidmem_mem::PteFlags;
///
/// let mut f = PteFlags::PRESENT | PteFlags::REFERENCED;
/// assert!(f.contains(PteFlags::PRESENT));
/// f.insert(PteFlags::DIRTY);
/// f.remove(PteFlags::REFERENCED);
/// assert!(f.contains(PteFlags::DIRTY) && !f.contains(PteFlags::REFERENCED));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PteFlags(u16);

impl PteFlags {
    /// No flags set.
    pub const EMPTY: PteFlags = PteFlags(0);
    /// The translation is valid and backed by a frame.
    pub const PRESENT: PteFlags = PteFlags(1 << 0);
    /// Hardware-set "accessed" bit; the kernel's LRU aging clears and
    /// re-samples it.
    pub const REFERENCED: PteFlags = PteFlags(1 << 1);
    /// The page has been written since it was last cleaned.
    pub const DIRTY: PteFlags = PteFlags(1 << 2);
    /// The entry maps the shared copy-on-write zero page.
    pub const ZERO_PAGE: PteFlags = PteFlags(1 << 3);
    /// The page may be written.
    pub const WRITABLE: PteFlags = PteFlags(1 << 4);
    /// The page is registered with a userfaultfd region.
    pub const UFFD_REGISTERED: PteFlags = PteFlags(1 << 5);

    /// Whether every bit in `other` is set in `self`.
    #[inline]
    pub const fn contains(self, other: PteFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether any bit in `other` is set in `self`.
    #[inline]
    pub const fn intersects(self, other: PteFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// Sets the bits in `other`.
    #[inline]
    pub fn insert(&mut self, other: PteFlags) {
        self.0 |= other.0;
    }

    /// Clears the bits in `other`.
    #[inline]
    pub fn remove(&mut self, other: PteFlags) {
        self.0 &= !other.0;
    }

    /// Whether no flags are set.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn bits(self) -> u16 {
        self.0
    }
}

impl BitOr for PteFlags {
    type Output = PteFlags;
    #[inline]
    fn bitor(self, rhs: PteFlags) -> PteFlags {
        PteFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for PteFlags {
    #[inline]
    fn bitor_assign(&mut self, rhs: PteFlags) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for PteFlags {
    type Output = PteFlags;
    #[inline]
    fn bitand(self, rhs: PteFlags) -> PteFlags {
        PteFlags(self.0 & rhs.0)
    }
}

impl fmt::Debug for PteFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut names = Vec::new();
        for (flag, name) in [
            (PteFlags::PRESENT, "PRESENT"),
            (PteFlags::REFERENCED, "REFERENCED"),
            (PteFlags::DIRTY, "DIRTY"),
            (PteFlags::ZERO_PAGE, "ZERO_PAGE"),
            (PteFlags::WRITABLE, "WRITABLE"),
            (PteFlags::UFFD_REGISTERED, "UFFD_REGISTERED"),
        ] {
            if self.contains(flag) {
                names.push(name);
            }
        }
        if names.is_empty() {
            write!(f, "PteFlags(EMPTY)")
        } else {
            write!(f, "PteFlags({})", names.join("|"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut f = PteFlags::EMPTY;
        assert!(f.is_empty());
        f.insert(PteFlags::PRESENT | PteFlags::WRITABLE);
        assert!(f.contains(PteFlags::PRESENT));
        assert!(f.contains(PteFlags::PRESENT | PteFlags::WRITABLE));
        assert!(!f.contains(PteFlags::DIRTY));
        f.remove(PteFlags::WRITABLE);
        assert!(!f.contains(PteFlags::WRITABLE));
        assert!(f.contains(PteFlags::PRESENT));
    }

    #[test]
    fn intersects_vs_contains() {
        let f = PteFlags::PRESENT | PteFlags::DIRTY;
        assert!(f.intersects(PteFlags::DIRTY | PteFlags::ZERO_PAGE));
        assert!(!f.contains(PteFlags::DIRTY | PteFlags::ZERO_PAGE));
    }

    #[test]
    fn debug_lists_flags() {
        let f = PteFlags::PRESENT | PteFlags::ZERO_PAGE;
        let s = format!("{f:?}");
        assert!(s.contains("PRESENT") && s.contains("ZERO_PAGE"));
        assert_eq!(format!("{:?}", PteFlags::EMPTY), "PteFlags(EMPTY)");
    }
}
