//! Host physical memory: frames and their contents.

use std::collections::HashMap;
use std::fmt;

use crate::page::PageContents;

/// An identifier for one 4 KB host physical frame.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(u64);

impl FrameId {
    /// The reserved frame holding the kernel's shared zero page.
    pub const ZERO_PAGE: FrameId = FrameId(0);

    /// The raw frame number.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FrameId({})", self.0)
    }
}

/// The host's physical memory: a frame allocator plus per-frame contents.
///
/// Frame 0 is permanently reserved for the shared zero page, mirroring the
/// kernel page that `UFFD_ZEROPAGE` maps copy-on-write (paper §V-A).
///
/// # Example
///
/// ```
/// use fluidmem_mem::{PageContents, PhysicalMemory};
///
/// let mut pm = PhysicalMemory::new(4);
/// let f = pm.alloc().unwrap();
/// pm.store(f, PageContents::Token(7));
/// assert_eq!(pm.load(f), &PageContents::Token(7));
/// let contents = pm.free(f);
/// assert_eq!(contents, PageContents::Token(7));
/// assert_eq!(pm.free_frames(), 4);
/// ```
#[derive(Debug)]
pub struct PhysicalMemory {
    capacity: u64,
    next_unused: u64,
    free_list: Vec<FrameId>,
    contents: HashMap<FrameId, PageContents>,
    zero: PageContents,
}

impl PhysicalMemory {
    /// Creates a physical memory with `frames` allocatable frames (the
    /// zero-page frame is extra and always present).
    pub fn new(frames: u64) -> Self {
        PhysicalMemory {
            capacity: frames,
            next_unused: 1, // frame 0 is the zero page
            free_list: Vec::new(),
            contents: HashMap::new(),
            zero: PageContents::Zero,
        }
    }

    /// Total allocatable frames.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Frames currently allocated.
    pub fn allocated_frames(&self) -> u64 {
        (self.next_unused - 1) - self.free_list.len() as u64
    }

    /// Frames still available.
    pub fn free_frames(&self) -> u64 {
        self.capacity - self.allocated_frames()
    }

    /// Allocates a frame, initially holding [`PageContents::Zero`].
    /// Returns `None` when physical memory is exhausted.
    pub fn alloc(&mut self) -> Option<FrameId> {
        if self.allocated_frames() >= self.capacity {
            return None;
        }
        let frame = self.free_list.pop().unwrap_or_else(|| {
            let f = FrameId(self.next_unused);
            self.next_unused += 1;
            f
        });
        self.contents.insert(frame, PageContents::Zero);
        Some(frame)
    }

    /// Releases a frame and returns its final contents.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not allocated or is the zero-page frame.
    pub fn free(&mut self, frame: FrameId) -> PageContents {
        assert_ne!(frame, FrameId::ZERO_PAGE, "cannot free the zero page");
        let contents = self
            .contents
            .remove(&frame)
            .expect("freeing an unallocated frame");
        self.free_list.push(frame);
        contents
    }

    /// Writes contents into an allocated frame.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not allocated or is the zero-page frame.
    pub fn store(&mut self, frame: FrameId, contents: PageContents) {
        assert_ne!(frame, FrameId::ZERO_PAGE, "the zero page is read-only");
        let slot = self
            .contents
            .get_mut(&frame)
            .expect("storing to an unallocated frame");
        *slot = contents;
    }

    /// Reads the contents of a frame. The zero-page frame always reads as
    /// [`PageContents::Zero`].
    ///
    /// # Panics
    ///
    /// Panics if the frame is not allocated.
    pub fn load(&self, frame: FrameId) -> &PageContents {
        if frame == FrameId::ZERO_PAGE {
            return &self.zero;
        }
        self.contents
            .get(&frame)
            .expect("loading from an unallocated frame")
    }

    /// Takes the contents out of a frame (leaving `Zero`) without freeing
    /// it — the data movement of the proposed `UFFD_REMAP` ioctl, which
    /// transfers a page by rewriting page-table entries instead of copying.
    ///
    /// # Panics
    ///
    /// Panics if the frame is not allocated or is the zero-page frame.
    pub fn take(&mut self, frame: FrameId) -> PageContents {
        assert_ne!(frame, FrameId::ZERO_PAGE, "the zero page is read-only");
        let slot = self
            .contents
            .get_mut(&frame)
            .expect("taking from an unallocated frame");
        std::mem::take(slot)
    }

    /// Whether the frame is currently allocated.
    pub fn is_allocated(&self, frame: FrameId) -> bool {
        frame == FrameId::ZERO_PAGE || self.contents.contains_key(&frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_exhausted() {
        let mut pm = PhysicalMemory::new(2);
        let a = pm.alloc().unwrap();
        let b = pm.alloc().unwrap();
        assert_ne!(a, b);
        assert!(pm.alloc().is_none());
        assert_eq!(pm.free_frames(), 0);
        pm.free(a);
        assert_eq!(pm.free_frames(), 1);
        assert!(pm.alloc().is_some());
    }

    #[test]
    fn freed_frames_are_reused() {
        let mut pm = PhysicalMemory::new(1);
        let a = pm.alloc().unwrap();
        pm.free(a);
        let b = pm.alloc().unwrap();
        assert_eq!(a, b, "free list should recycle frames");
    }

    #[test]
    fn fresh_frames_read_zero() {
        let mut pm = PhysicalMemory::new(1);
        let f = pm.alloc().unwrap();
        assert_eq!(pm.load(f), &PageContents::Zero);
    }

    #[test]
    fn store_load_take() {
        let mut pm = PhysicalMemory::new(1);
        let f = pm.alloc().unwrap();
        pm.store(f, PageContents::Token(99));
        assert_eq!(pm.load(f), &PageContents::Token(99));
        let taken = pm.take(f);
        assert_eq!(taken, PageContents::Token(99));
        assert_eq!(pm.load(f), &PageContents::Zero, "take leaves Zero behind");
    }

    #[test]
    fn zero_page_always_readable() {
        let pm = PhysicalMemory::new(0);
        assert_eq!(pm.load(FrameId::ZERO_PAGE), &PageContents::Zero);
        assert!(pm.is_allocated(FrameId::ZERO_PAGE));
    }

    #[test]
    #[should_panic(expected = "read-only")]
    fn zero_page_is_immutable() {
        let mut pm = PhysicalMemory::new(1);
        pm.store(FrameId::ZERO_PAGE, PageContents::Token(1));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn double_free_panics() {
        let mut pm = PhysicalMemory::new(1);
        let f = pm.alloc().unwrap();
        pm.free(f);
        pm.free(f);
    }
}
