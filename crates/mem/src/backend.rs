//! The `MemoryBackend` abstraction.

use std::error::Error;
use std::fmt;

use fluidmem_sim::{SimClock, SimDuration};

use crate::{PageClass, PageContents, Region, VirtAddr};

/// How an access was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// The page was resident and mapped; no fault.
    Hit,
    /// A fault that was satisfied without leaving the machine (zero-page
    /// fill, copy-on-write break, swap-cache or readahead hit).
    MinorFault,
    /// A fault that required the remote key-value store, a block device,
    /// or another machine.
    MajorFault,
}

/// The result of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessReport {
    /// How the access was resolved.
    pub outcome: AccessOutcome,
    /// Virtual time the access took, as observed by the accessing vCPU.
    pub latency: SimDuration,
}

impl AccessReport {
    /// A zero-latency hit.
    pub fn hit() -> Self {
        AccessReport {
            outcome: AccessOutcome::Hit,
            latency: SimDuration::ZERO,
        }
    }
}

/// Running counters kept by every backend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCounters {
    /// Accesses resolved without a fault.
    pub hits: u64,
    /// Faults resolved locally.
    pub minor_faults: u64,
    /// Faults that required remote memory or a device.
    pub major_faults: u64,
}

impl AccessCounters {
    /// Total accesses observed.
    pub fn total(&self) -> u64 {
        self.hits + self.minor_faults + self.major_faults
    }

    /// Fraction of accesses that were faults of any kind (0 if no
    /// accesses yet).
    pub fn fault_rate(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.minor_faults + self.major_faults) as f64 / total as f64
        }
    }

    /// Records one outcome.
    pub fn record(&mut self, outcome: AccessOutcome) {
        match outcome {
            AccessOutcome::Hit => self.hits += 1,
            AccessOutcome::MinorFault => self.minor_faults += 1,
            AccessOutcome::MajorFault => self.major_faults += 1,
        }
    }
}

/// Error returned when a backend cannot change its local footprint.
///
/// The swap-based baseline returns this from
/// [`MemoryBackend::set_local_capacity`]: without guest cooperation
/// (ballooning) there is *"no way to reduce a VM's local memory footprint
/// on a server at any given time"* (paper §II). FluidMem's resizable LRU
/// list is exactly the capability swap lacks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityError {
    mechanism: String,
}

impl CapacityError {
    /// Creates an error naming the mechanism that refused the resize.
    pub fn new(mechanism: impl Into<String>) -> Self {
        CapacityError {
            mechanism: mechanism.into(),
        }
    }
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cannot adjust its local memory footprint without guest cooperation",
            self.mechanism
        )
    }
}

impl Error for CapacityError {}

/// A guest-visible memory system that charges virtual time for accesses.
///
/// Two implementations reproduce the paper's comparison:
///
/// * `fluidmem_core::FluidMemMemory` — all pages registered with the
///   simulated userfaultfd and resolved by the FluidMem monitor against a
///   remote key-value store.
/// * `fluidmem_swap::SwapBackedMemory` — pages live in a fixed local DRAM
///   allotment with the kernel swap subsystem paging anonymous pages to a
///   block device.
///
/// Workloads (pmbench, Graph500, YCSB/MongoDB) are written against this
/// trait only, so each runs unmodified over either mechanism.
pub trait MemoryBackend {
    /// Allocates a contiguous region of `pages` pages of the given class
    /// in the guest's address space.
    fn map_region(&mut self, pages: u64, class: PageClass) -> Region;

    /// Performs one access (read or write) at `addr`, charging its cost to
    /// the simulation clock and returning how it resolved.
    fn access(&mut self, addr: VirtAddr, write: bool) -> AccessReport;

    /// A write access that also stores real contents into the page,
    /// so integrity tests can follow bytes through evict/refault cycles.
    fn write_page(&mut self, addr: VirtAddr, contents: PageContents) -> AccessReport;

    /// A read access that also returns the page's current contents.
    fn read_page(&mut self, addr: VirtAddr) -> (PageContents, AccessReport);

    /// Number of guest pages currently occupying host DRAM.
    fn resident_pages(&self) -> u64;

    /// The maximum number of guest pages allowed in host DRAM.
    fn local_capacity_pages(&self) -> u64;

    /// Changes the local DRAM allotment.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] if the mechanism cannot resize without
    /// guest cooperation (true for the swap baseline, per paper §II).
    fn set_local_capacity(&mut self, pages: u64) -> Result<(), CapacityError>;

    /// Guest-cooperative footprint reduction (a balloon driver): tries to
    /// shrink the resident footprint toward `target_pages` by reclaiming
    /// inside the guest, subject to the mechanism's own floor. Returns the
    /// resulting resident page count.
    ///
    /// The default does nothing (mechanisms without a balloon return the
    /// current footprint unchanged).
    fn balloon_reclaim(&mut self, target_pages: u64) -> u64 {
        let _ = target_pages;
        self.resident_pages()
    }

    /// Access counters since construction.
    fn counters(&self) -> AccessCounters;

    /// The shared simulation clock.
    fn clock(&self) -> &SimClock;

    /// A short human-readable name (e.g. `"FluidMem/RAMCloud"`).
    fn label(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_record_and_rate() {
        let mut c = AccessCounters::default();
        c.record(AccessOutcome::Hit);
        c.record(AccessOutcome::Hit);
        c.record(AccessOutcome::MinorFault);
        c.record(AccessOutcome::MajorFault);
        assert_eq!(c.total(), 4);
        assert!((c.fault_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_counters_have_zero_rate() {
        assert_eq!(AccessCounters::default().fault_rate(), 0.0);
    }

    #[test]
    fn capacity_error_displays_mechanism() {
        let e = CapacityError::new("swap");
        assert!(e.to_string().contains("swap"));
        assert!(e.to_string().contains("guest cooperation"));
    }

    #[test]
    fn hit_report_is_zero_latency() {
        let r = AccessReport::hit();
        assert_eq!(r.outcome, AccessOutcome::Hit);
        assert!(r.latency.is_zero());
    }

    #[test]
    fn backend_trait_is_object_safe() {
        fn _takes_object(_b: &dyn MemoryBackend) {}
    }
}
