//! Page size and page contents.

use std::fmt;

/// The page size used throughout the reproduction (4 KB, as in the paper).
pub const PAGE_SIZE: usize = 4096;

/// The contents of one 4 KB page.
///
/// Storing literal 4 KB buffers for every simulated page would need tens of
/// gigabytes at the paper's working-set sizes, so contents come in three
/// fidelities:
///
/// * [`Zero`](PageContents::Zero) — the kernel's copy-on-write zero page;
///   what `UFFD_ZEROPAGE` maps on a first-touch fault.
/// * [`Token`](PageContents::Token) — a 64-bit stand-in for a full page.
///   Workload drivers use tokens; the *data path* (monitor → key-value
///   store → monitor) is identical to real bytes, so eviction/refault
///   round-trips are still integrity-checked.
/// * [`Bytes`](PageContents::Bytes) — a real 4 KB buffer, used by the
///   byte-level integrity tests.
///
/// # Example
///
/// ```
/// use fluidmem_mem::PageContents;
///
/// let p = PageContents::from_byte_fill(0xAB);
/// assert_eq!(p.as_bytes().unwrap()[17], 0xAB);
/// assert_ne!(p.fingerprint(), PageContents::Zero.fingerprint());
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub enum PageContents {
    /// The shared, read-only zero page.
    #[default]
    Zero,
    /// A compact stand-in carrying a 64-bit payload.
    Token(u64),
    /// A literal 4 KB buffer.
    Bytes(Box<[u8]>),
}

impl PageContents {
    /// A page filled with one repeated byte.
    pub fn from_byte_fill(byte: u8) -> Self {
        PageContents::Bytes(vec![byte; PAGE_SIZE].into_boxed_slice())
    }

    /// A page holding the given bytes, zero-padded or truncated to 4 KB.
    pub fn from_bytes(data: &[u8]) -> Self {
        let mut buf = vec![0u8; PAGE_SIZE];
        let n = data.len().min(PAGE_SIZE);
        buf[..n].copy_from_slice(&data[..n]);
        PageContents::Bytes(buf.into_boxed_slice())
    }

    /// The raw bytes, if this is a byte-level page.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            PageContents::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Whether the page is all zeroes (the `Zero` variant or a zeroed
    /// byte buffer).
    pub fn is_zero(&self) -> bool {
        match self {
            PageContents::Zero => true,
            PageContents::Token(_) => false,
            PageContents::Bytes(b) => b.iter().all(|&x| x == 0),
        }
    }

    /// A 64-bit fingerprint of the contents, stable across clones; used by
    /// integrity tests to follow a page through evict/refault round trips.
    pub fn fingerprint(&self) -> u64 {
        match self {
            PageContents::Zero => 0,
            PageContents::Token(t) => 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t | 1),
            PageContents::Bytes(b) => {
                // FNV-1a.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for &x in b.iter() {
                    h ^= u64::from(x);
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                h
            }
        }
    }

    /// The number of bytes this representation costs the *simulator's*
    /// host (not the simulated machine): tokens are 8 bytes, real buffers
    /// are 4 KB.
    pub fn host_cost_bytes(&self) -> usize {
        match self {
            PageContents::Zero => 0,
            PageContents::Token(_) => 8,
            PageContents::Bytes(_) => PAGE_SIZE,
        }
    }
}

impl fmt::Debug for PageContents {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageContents::Zero => write!(f, "PageContents::Zero"),
            PageContents::Token(t) => write!(f, "PageContents::Token({t:#x})"),
            PageContents::Bytes(_) => {
                write!(f, "PageContents::Bytes(fp={:#x})", self.fingerprint())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_fill_roundtrip() {
        let p = PageContents::from_byte_fill(7);
        let b = p.as_bytes().unwrap();
        assert_eq!(b.len(), PAGE_SIZE);
        assert!(b.iter().all(|&x| x == 7));
    }

    #[test]
    fn from_bytes_pads_and_truncates() {
        let p = PageContents::from_bytes(&[1, 2, 3]);
        let b = p.as_bytes().unwrap();
        assert_eq!(&b[..3], &[1, 2, 3]);
        assert!(b[3..].iter().all(|&x| x == 0));

        let big = vec![9u8; PAGE_SIZE + 100];
        let p = PageContents::from_bytes(&big);
        assert_eq!(p.as_bytes().unwrap().len(), PAGE_SIZE);
    }

    #[test]
    fn zero_detection() {
        assert!(PageContents::Zero.is_zero());
        assert!(PageContents::from_byte_fill(0).is_zero());
        assert!(!PageContents::from_byte_fill(1).is_zero());
        assert!(!PageContents::Token(0).is_zero());
    }

    #[test]
    fn fingerprints_distinguish_contents() {
        let a = PageContents::from_byte_fill(1);
        let b = PageContents::from_byte_fill(2);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(
            PageContents::Token(1).fingerprint(),
            PageContents::Token(2).fingerprint()
        );
        assert_eq!(PageContents::Zero.fingerprint(), 0);
    }

    #[test]
    fn token_is_cheap_on_host() {
        assert_eq!(PageContents::Token(42).host_cost_bytes(), 8);
        assert_eq!(PageContents::from_byte_fill(1).host_cost_bytes(), PAGE_SIZE);
        assert_eq!(PageContents::Zero.host_cost_bytes(), 0);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", PageContents::Zero).is_empty());
        assert!(format!("{:?}", PageContents::Token(16)).contains("0x10"));
    }
}
