//! Page classes — the heart of the full-vs-partial disaggregation story.

use std::fmt;

/// The class of a guest page, which determines where each disaggregation
/// mechanism is allowed to place it (paper §II).
///
/// | Class | Swap can evict? | FluidMem can evict? |
/// |---|---|---|
/// | `KernelText` / `KernelData` | no | yes |
/// | `Unevictable` (mlocked/pinned) | no | yes |
/// | `FileBacked` (mmap, page cache) | not to swap — written back to its filesystem | yes, to remote memory |
/// | `Anonymous` | yes | yes |
///
/// # Example
///
/// ```
/// use fluidmem_mem::PageClass;
///
/// assert!(PageClass::Anonymous.swappable());
/// assert!(!PageClass::KernelText.swappable());
/// assert!(PageClass::FileBacked.reclaimable_by_kernel());
/// // FluidMem's full disaggregation covers every class:
/// assert!(PageClass::ALL.iter().all(|c| c.disaggregatable()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PageClass {
    /// Kernel code.
    KernelText,
    /// Kernel data structures (slab, page tables, ...).
    KernelData,
    /// Pages pinned with `mlock` or otherwise unevictable.
    Unevictable,
    /// File-backed pages: binaries, shared libraries, `mmap`ed files,
    /// page cache.
    FileBacked,
    /// Ordinary anonymous memory (heap, stack).
    Anonymous,
}

impl PageClass {
    /// Every page class.
    pub const ALL: [PageClass; 5] = [
        PageClass::KernelText,
        PageClass::KernelData,
        PageClass::Unevictable,
        PageClass::FileBacked,
        PageClass::Anonymous,
    ];

    /// Whether the Linux swap subsystem can write this page to swap space.
    ///
    /// Only anonymous pages are swappable; this is the central limitation
    /// of swap-based disaggregation that FluidMem removes.
    pub fn swappable(self) -> bool {
        matches!(self, PageClass::Anonymous)
    }

    /// Whether the kernel can reclaim the page from DRAM *at all* under
    /// memory pressure (either by swapping it or by dropping/writing it
    /// back to its filesystem).
    pub fn reclaimable_by_kernel(self) -> bool {
        matches!(self, PageClass::Anonymous | PageClass::FileBacked)
    }

    /// Whether FluidMem can move the page to remote memory. Full memory
    /// disaggregation means this is `true` for every class.
    pub fn disaggregatable(self) -> bool {
        true
    }

    /// Whether a reclaimed page of this class must be written somewhere
    /// before its frame can be reused (dirty anonymous pages go to swap;
    /// dirty file-backed pages go back to their file; clean file-backed
    /// pages can simply be dropped).
    pub fn writeback_target(self) -> WritebackTarget {
        match self {
            PageClass::Anonymous => WritebackTarget::SwapDevice,
            PageClass::FileBacked => WritebackTarget::Filesystem,
            _ => WritebackTarget::NotReclaimable,
        }
    }
}

impl fmt::Display for PageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PageClass::KernelText => "kernel-text",
            PageClass::KernelData => "kernel-data",
            PageClass::Unevictable => "unevictable",
            PageClass::FileBacked => "file-backed",
            PageClass::Anonymous => "anonymous",
        };
        f.write_str(s)
    }
}

/// Where the kernel writes a reclaimed page of a given class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritebackTarget {
    /// Dirty anonymous pages are written to the swap device.
    SwapDevice,
    /// Dirty file-backed pages are written back to their filesystem.
    Filesystem,
    /// The kernel cannot reclaim this page at all.
    NotReclaimable,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_anonymous_is_swappable() {
        let swappable: Vec<_> = PageClass::ALL.iter().filter(|c| c.swappable()).collect();
        assert_eq!(swappable, vec![&PageClass::Anonymous]);
    }

    #[test]
    fn kernel_reclaims_anon_and_file_only() {
        assert!(PageClass::Anonymous.reclaimable_by_kernel());
        assert!(PageClass::FileBacked.reclaimable_by_kernel());
        assert!(!PageClass::KernelText.reclaimable_by_kernel());
        assert!(!PageClass::KernelData.reclaimable_by_kernel());
        assert!(!PageClass::Unevictable.reclaimable_by_kernel());
    }

    #[test]
    fn fluidmem_disaggregates_everything() {
        assert!(PageClass::ALL.iter().all(|c| c.disaggregatable()));
    }

    #[test]
    fn writeback_targets() {
        assert_eq!(
            PageClass::Anonymous.writeback_target(),
            WritebackTarget::SwapDevice
        );
        assert_eq!(
            PageClass::FileBacked.writeback_target(),
            WritebackTarget::Filesystem
        );
        assert_eq!(
            PageClass::Unevictable.writeback_target(),
            WritebackTarget::NotReclaimable
        );
    }

    #[test]
    fn display_is_kebab_case() {
        assert_eq!(PageClass::FileBacked.to_string(), "file-backed");
    }
}
