//! The balloon-driver baseline (Table III row 2, §VII).

use fluidmem_mem::MemoryBackend;

/// The guest-cooperative balloon driver.
///
/// Ballooning is the *existing* way to shrink a VM's footprint, and the
/// paper's Table III shows its limit: "the driver reaches its maximum
/// size when the VM footprint is still 64 MB". The balloon also
/// "requires explicit VM cooperation", unlike FluidMem's LRU resize.
///
/// This wrapper drives a backend's [`balloon_reclaim`] — the swap
/// backend reclaims down to its 64 MB driver floor; the FluidMem backend
/// simply resizes its buffer (no floor), demonstrating why the paper
/// calls ballooning insufficient.
///
/// [`balloon_reclaim`]: MemoryBackend::balloon_reclaim
#[derive(Debug, Default)]
pub struct Balloon {
    inflated_to: Option<u64>,
    inflations: fluidmem_telemetry::Counter,
}

impl Balloon {
    /// A deflated balloon.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inflates toward `target_resident_pages`; returns the footprint
    /// actually achieved (bounded by the mechanism's floor).
    pub fn inflate(&mut self, backend: &mut dyn MemoryBackend, target_resident_pages: u64) -> u64 {
        self.inflations.inc();
        let achieved = backend.balloon_reclaim(target_resident_pages);
        self.inflated_to = Some(target_resident_pages);
        achieved
    }

    /// Registers the balloon's inflation counter in a shared telemetry
    /// registry.
    pub fn attach_telemetry(&mut self, telemetry: &fluidmem_telemetry::Telemetry) {
        use fluidmem_telemetry::consts;
        telemetry.registry().adopt_counter(
            consts::VM_EVENTS,
            &[(consts::LABEL_EVENT, "balloon_inflate")],
            &self.inflations,
        );
    }

    /// The last inflation target, if any.
    pub fn target(&self) -> Option<u64> {
        self.inflated_to
    }

    /// Records a balloon target *without* reclaiming through a backend.
    ///
    /// This is the host-arbiter handshake: the cloud operator announces
    /// the footprint it wants a VM to shrink toward, the arbiter reads
    /// [`Balloon::target`] and clamps the VM's granted LRU capacity, and
    /// the actual reclaim happens through the monitor's resize — no
    /// guest cooperation needed (the paper's point about FluidMem vs.
    /// ballooning, §VII).
    pub fn request(&mut self, target_resident_pages: u64) {
        self.inflations.inc();
        self.inflated_to = Some(target_resident_pages);
    }

    /// Deflates: clears the target, releasing the arbiter's clamp.
    pub fn deflate(&mut self) {
        self.inflated_to = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_block::{PmemDevice, SsdDevice};
    use fluidmem_mem::PageClass;
    use fluidmem_sim::{SimClock, SimRng};
    use fluidmem_swap::{SwapBackedMemory, SwapConfig};

    #[test]
    fn swap_balloon_bottoms_out_at_64mb() {
        let clock = SimClock::new();
        let swap_dev = PmemDevice::new(1 << 17, clock.clone(), SimRng::seed_from_u64(1));
        let fs_dev = SsdDevice::new(1 << 17, clock.clone(), SimRng::seed_from_u64(2));
        let mut backend = SwapBackedMemory::new(
            SwapConfig::paper_default(90_000),
            Box::new(swap_dev),
            Box::new(fs_dev),
            clock,
            SimRng::seed_from_u64(3),
        );
        let r = backend.map_region(81_042, PageClass::Anonymous);
        for i in 0..81_042 {
            backend.access(r.page(i), false);
        }
        let mut balloon = Balloon::new();
        let achieved = balloon.inflate(&mut backend, 0);
        assert_eq!(
            achieved, 20_480,
            "balloon floor is 64 MB = 20480 pages (Table III)"
        );
        assert_eq!(balloon.target(), Some(0));
    }

    #[test]
    fn request_records_a_target_without_a_backend() {
        let mut balloon = Balloon::new();
        assert_eq!(balloon.target(), None);
        balloon.request(128);
        assert_eq!(balloon.target(), Some(128));
        balloon.deflate();
        assert_eq!(balloon.target(), None);
    }
}
