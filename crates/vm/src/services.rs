//! Service-responsiveness models for Table III.
//!
//! Table III asks a concrete operational question: *with the footprint
//! forced down to N pages, does the VM still answer SSH and ICMP?* The
//! answer is governed by a classic phenomenon: each service phase has a
//! working set of code/data pages it touches repeatedly; when the
//! resident-page bound is at least that working set, the phase faults
//! each page once and then runs at memory speed, but when the bound is
//! *below* it, FluidMem's first-touch-ordered buffer degenerates to the
//! FIFO cyclic-access worst case and **every touch faults** — the phase
//! slows by four orders of magnitude and the client times out.
//!
//! Working-set sizes are chosen to land on the paper's measured
//! thresholds: SSH succeeds at 180 resident pages and fails at 80; ICMP
//! still answers at 80.

use fluidmem_mem::Region;
use fluidmem_sim::SimDuration;

use crate::vm::Vm;

/// Why a service attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The operation exceeded its deadline.
    Timeout {
        /// The phase that blew the budget.
        phase: &'static str,
        /// Virtual time consumed before giving up.
        elapsed: SimDuration,
        /// The deadline that was exceeded.
        deadline: SimDuration,
    },
    /// The VM cannot make forward progress at all (KVM fault-handling
    /// deadlock at a near-zero footprint).
    Deadlocked,
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Timeout {
                phase,
                elapsed,
                deadline,
            } => write!(f, "timed out in {phase}: {elapsed} > {deadline}"),
            ServiceError::Deadlocked => write!(f, "vm cannot make forward progress"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// One phase of a service: a working set touched repeatedly.
#[derive(Debug, Clone, Copy)]
struct Phase {
    name: &'static str,
    /// Distinct pages the phase cycles over.
    working_set: u64,
    /// How many passes over the working set the phase makes.
    iterations: u64,
    /// Offset into the OS's file-backed region where the pages live.
    page_offset: u64,
}

fn run_phase(
    vm: &mut Vm,
    region: Region,
    phase: Phase,
    deadline: SimDuration,
) -> Result<(), ServiceError> {
    let start = vm.backend().clock().now();
    let pages = phase.working_set.min(region.pages());
    for _ in 0..phase.iterations {
        for p in 0..pages {
            let idx = (phase.page_offset + p) % region.pages();
            vm.backend_mut().access(region.page(idx), false);
        }
        let elapsed = vm.backend().clock().now() - start;
        if elapsed > deadline {
            return Err(ServiceError::Timeout {
                phase: phase.name,
                elapsed,
                deadline,
            });
        }
    }
    Ok(())
}

/// The SSH login model: TCP accept, key exchange, authentication, and
/// shell spawn — "even part of the ssh binary will have to be stored in
/// FluidMem, along with all libraries and kernel code needed to complete
/// a user authentication" (§VI-E).
///
/// # Example
///
/// See `examples/near_zero_footprint.rs` for the full Table III sweep.
#[derive(Debug, Clone, Copy)]
pub struct SshService {
    /// Client-side login deadline.
    pub deadline: SimDuration,
}

impl SshService {
    /// Phase working sets; the largest (shell spawn, 150 pages) sets the
    /// success threshold between 80 and 180 resident pages.
    const PHASES: [Phase; 4] = [
        Phase {
            name: "tcp-accept",
            working_set: 30,
            iterations: 20,
            page_offset: 0,
        },
        Phase {
            name: "key-exchange",
            working_set: 120,
            iterations: 5_000,
            page_offset: 40,
        },
        Phase {
            name: "auth",
            working_set: 90,
            iterations: 2_000,
            page_offset: 120,
        },
        Phase {
            name: "shell-spawn",
            working_set: 150,
            iterations: 1_500,
            page_offset: 200,
        },
    ];

    /// A login attempt with the default 10 s client timeout.
    pub fn new() -> Self {
        SshService {
            deadline: SimDuration::from_secs(10),
        }
    }

    /// Attempts a login; returns how long it took.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Timeout`] when a phase exceeds the deadline;
    /// [`ServiceError::Deadlocked`] when the VM cannot fault at all.
    pub fn attempt_login(&self, vm: &mut Vm) -> Result<SimDuration, ServiceError> {
        if !vm.can_make_progress() {
            return Err(ServiceError::Deadlocked);
        }
        let region = vm.os().file_backed;
        let start = vm.backend().clock().now();
        for phase in Self::PHASES {
            run_phase(vm, region, phase, self.deadline)?;
        }
        Ok(vm.backend().clock().now() - start)
    }
}

impl Default for SshService {
    fn default() -> Self {
        Self::new()
    }
}

/// The ICMP echo model: the interrupt path, network stack, and reply
/// transmit touch ≈75 kernel pages; the paper observed replies within the
/// 1 s probe interval down to an 80-page footprint.
#[derive(Debug, Clone, Copy)]
pub struct IcmpService {
    /// The probe interval replies must beat.
    pub interval: SimDuration,
}

impl IcmpService {
    const PHASE: Phase = Phase {
        name: "icmp-echo",
        working_set: 75,
        iterations: 600,
        page_offset: 0,
    };

    /// The paper's 1 s probe.
    pub fn new() -> Self {
        IcmpService {
            interval: SimDuration::from_secs(1),
        }
    }

    /// Answers one echo request; returns the response time.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Timeout`] when the reply misses the probe
    /// interval (requests queue up); [`ServiceError::Deadlocked`] when
    /// the VM cannot fault at all.
    pub fn respond(&self, vm: &mut Vm) -> Result<SimDuration, ServiceError> {
        if !vm.can_make_progress() {
            return Err(ServiceError::Deadlocked);
        }
        let region = vm.os().kernel_text;
        let start = vm.backend().clock().now();
        run_phase(vm, region, Self::PHASE, self.interval)?;
        Ok(vm.backend().clock().now() - start)
    }
}

impl Default for IcmpService {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guest_os::GuestOsProfile;
    use crate::vm::VirtualizationMode;
    use fluidmem_coord::PartitionId;
    use fluidmem_core::{FluidMemMemory, MonitorConfig};
    use fluidmem_kv::RamCloudStore;
    use fluidmem_sim::{SimClock, SimRng};

    /// A FluidMem VM with a full-size kernel-text and file-backed region
    /// (so working sets are realistic) but small other classes.
    fn vm_with_capacity(capacity: u64) -> Vm {
        let clock = SimClock::new();
        let store = RamCloudStore::new(2 << 30, clock.clone(), SimRng::seed_from_u64(1));
        let backend = FluidMemMemory::new(
            MonitorConfig::new(100_000),
            Box::new(store),
            PartitionId::new(0),
            clock,
            SimRng::seed_from_u64(2),
        );
        let profile = GuestOsProfile {
            kernel_text: 400,
            kernel_data: 200,
            unevictable: 50,
            file_backed: 600,
            anonymous: 200,
        };
        let mut vm = Vm::boot(Box::new(backend), profile);
        vm.backend_mut().set_local_capacity(capacity).unwrap();
        vm
    }

    #[test]
    fn ssh_succeeds_at_180_pages() {
        let mut vm = vm_with_capacity(180);
        let elapsed = SshService::new().attempt_login(&mut vm).expect("login");
        assert!(
            elapsed < SimDuration::from_secs(2),
            "login took {elapsed}, expected well under the timeout"
        );
    }

    #[test]
    fn ssh_times_out_at_80_pages() {
        let mut vm = vm_with_capacity(80);
        let err = SshService::new().attempt_login(&mut vm).unwrap_err();
        assert!(
            matches!(err, ServiceError::Timeout { .. }),
            "expected timeout, got {err:?}"
        );
    }

    #[test]
    fn icmp_responds_at_80_pages() {
        let mut vm = vm_with_capacity(80);
        let rt = IcmpService::new().respond(&mut vm).expect("echo reply");
        assert!(rt < SimDuration::from_secs(1));
    }

    #[test]
    fn icmp_queues_below_80_pages() {
        let mut vm = vm_with_capacity(50);
        let err = IcmpService::new().respond(&mut vm).unwrap_err();
        assert!(matches!(err, ServiceError::Timeout { .. }), "{err:?}");
    }

    #[test]
    fn kvm_deadlocks_at_one_page_but_emulation_survives() {
        let mut vm = vm_with_capacity(1);
        assert_eq!(
            SshService::new().attempt_login(&mut vm).unwrap_err(),
            ServiceError::Deadlocked
        );
        vm.set_mode(VirtualizationMode::FullEmulation);
        // Functional but appears non-responsive: it times out rather
        // than deadlocking.
        let err = IcmpService::new().respond(&mut vm).unwrap_err();
        assert!(matches!(err, ServiceError::Timeout { .. }));
    }

    #[test]
    fn revival_by_increasing_footprint() {
        let mut vm = vm_with_capacity(80);
        assert!(SshService::new().attempt_login(&mut vm).is_err());
        vm.backend_mut().set_local_capacity(4096).unwrap();
        assert!(SshService::new().attempt_login(&mut vm).is_ok());
    }
}
