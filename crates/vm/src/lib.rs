//! VM and guest-OS modeling for the FluidMem reproduction.
//!
//! The paper's experiments run inside QEMU/KVM virtual machines whose
//! *operating system footprint* is central to two results:
//!
//! * Figure 4b: FluidMem wins when the working set slightly exceeds DRAM
//!   because it can push idle **OS pages** (kernel, unevictable, QEMU)
//!   out of DRAM, which swap cannot;
//! * Table III: a booted VM holds 81 042 pages (316.57 MB); ballooning
//!   bottoms out at 64 MB; FluidMem shrinks the same VM to 180 pages and
//!   still accepts SSH logins, to 80 pages and still answers ICMP.
//!
//! This crate provides:
//!
//! * [`GuestOsProfile`] — the page-class census of a booted guest;
//! * [`Vm`] — a guest bound to a `MemoryBackend` with boot, workload
//!   allocation, and a [`VirtualizationMode`] (KVM vs. full emulation,
//!   which decides the Table III single-page row);
//! * [`SshService`] / [`IcmpService`] — phase-based service models whose
//!   working-set sizes reproduce the Table III thresholds;
//! * [`Balloon`] — the guest-cooperative reclaim baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod balloon;
mod guest_os;
mod services;
mod vcpus;
mod vm;

pub use balloon::Balloon;
pub use guest_os::{GuestOs, GuestOsProfile};
pub use services::{IcmpService, ServiceError, SshService};
pub use vcpus::{PipelineRunStats, VcpuSet};
pub use vm::{VirtualizationMode, Vm};
