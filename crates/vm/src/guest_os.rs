//! The guest operating system's boot-time memory census.

use fluidmem_mem::{MemoryBackend, PageClass, Region};

/// Page-class breakdown of a freshly booted guest.
///
/// The paper's Table III reports a CentOS 7 guest holding **81 042 pages
/// (316.57 MB)** after booting to a prompt; §VI-D1 notes "the memory
/// footprint of the OS is approximately 300 MB of DRAM at boot". The
/// split across classes below follows a typical minimal CentOS/KVM guest:
/// most of the footprint is page cache (binaries, libraries) and
/// anonymous daemon heap, with kernel text/data and pinned pages making
/// up the remainder — the portion swap can never evict.
///
/// # Example
///
/// ```
/// use fluidmem_vm::GuestOsProfile;
///
/// let os = GuestOsProfile::paper_boot();
/// assert_eq!(os.total_pages(), 81_042);
/// // The pages swap cannot reclaim at all:
/// assert_eq!(os.unswappable_pages(), 3_000 + 9_500 + 3_542);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuestOsProfile {
    /// Kernel code pages.
    pub kernel_text: u64,
    /// Kernel data, slab, page tables.
    pub kernel_data: u64,
    /// mlocked / pinned pages.
    pub unevictable: u64,
    /// Page cache: binaries, shared libraries, file mappings.
    pub file_backed: u64,
    /// Anonymous memory of system daemons.
    pub anonymous: u64,
}

impl GuestOsProfile {
    /// The paper's booted guest: 81 042 pages total.
    pub fn paper_boot() -> Self {
        GuestOsProfile {
            kernel_text: 3_000,
            kernel_data: 9_500,
            unevictable: 3_542,
            file_backed: 40_000,
            anonymous: 25_000,
        }
    }

    /// A proportionally scaled-down profile for fast experiments.
    /// `denominator` divides every class (minimum 1 page each).
    pub fn scaled_down(denominator: u64) -> Self {
        let p = Self::paper_boot();
        let d = denominator.max(1);
        GuestOsProfile {
            kernel_text: (p.kernel_text / d).max(1),
            kernel_data: (p.kernel_data / d).max(1),
            unevictable: (p.unevictable / d).max(1),
            file_backed: (p.file_backed / d).max(1),
            anonymous: (p.anonymous / d).max(1),
        }
    }

    /// A profile scaled to approximately `total_pages`, preserving the
    /// paper's class proportions (used by the Figure 4 harness, where
    /// results "generalize to a larger VM by comparing the percentage of
    /// WSS that can remain in DRAM").
    pub fn scaled_to(total_pages: u64) -> Self {
        let p = Self::paper_boot();
        let f = total_pages as f64 / p.total_pages() as f64;
        let scale = |v: u64| ((v as f64 * f) as u64).max(1);
        GuestOsProfile {
            kernel_text: scale(p.kernel_text),
            kernel_data: scale(p.kernel_data),
            unevictable: scale(p.unevictable),
            file_backed: scale(p.file_backed),
            anonymous: scale(p.anonymous),
        }
    }

    /// Total boot footprint in pages.
    pub fn total_pages(&self) -> u64 {
        self.kernel_text + self.kernel_data + self.unevictable + self.file_backed + self.anonymous
    }

    /// Boot footprint in MB.
    pub fn total_mb(&self) -> f64 {
        self.total_pages() as f64 * 4096.0 / (1024.0 * 1024.0)
    }

    /// Pages the swap subsystem can never move out of DRAM (kernel +
    /// unevictable) — FluidMem's structural advantage in Figure 4b.
    pub fn unswappable_pages(&self) -> u64 {
        self.kernel_text + self.kernel_data + self.unevictable
    }
}

/// The booted guest: its regions in the backend's address space.
#[derive(Debug, Clone)]
pub struct GuestOs {
    /// The profile the guest was booted with.
    pub profile: GuestOsProfile,
    /// Kernel text region.
    pub kernel_text: Region,
    /// Kernel data region.
    pub kernel_data: Region,
    /// Pinned pages region.
    pub unevictable: Region,
    /// Page-cache region.
    pub file_backed: Region,
    /// Daemon heap region.
    pub anonymous: Region,
}

impl GuestOs {
    /// Boots the guest: allocates one region per page class and touches
    /// every page once, exactly as a kernel populating itself and its
    /// daemons would. Charges boot-time faults to the clock.
    pub fn boot(backend: &mut dyn MemoryBackend, profile: GuestOsProfile) -> GuestOs {
        let kernel_text = backend.map_region(profile.kernel_text, PageClass::KernelText);
        let kernel_data = backend.map_region(profile.kernel_data, PageClass::KernelData);
        let unevictable = backend.map_region(profile.unevictable, PageClass::Unevictable);
        let file_backed = backend.map_region(profile.file_backed, PageClass::FileBacked);
        let anonymous = backend.map_region(profile.anonymous, PageClass::Anonymous);
        let os = GuestOs {
            profile,
            kernel_text,
            kernel_data,
            unevictable,
            file_backed,
            anonymous,
        };
        for region in [
            &os.kernel_text,
            &os.kernel_data,
            &os.unevictable,
            &os.file_backed,
            &os.anonymous,
        ] {
            let write = matches!(
                region.class(),
                PageClass::KernelData | PageClass::Unevictable | PageClass::Anonymous
            );
            for i in 0..region.pages() {
                backend.access(region.page(i), write);
            }
        }
        os
    }

    /// A light background tick: the idle OS touches a few of its hot
    /// pages (timer tick, daemon heartbeat). `step` selects which pages
    /// so the hot set stays small and stable.
    pub fn idle_tick(&self, backend: &mut dyn MemoryBackend, step: u64) {
        let hot = 16.min(self.kernel_data.pages());
        backend.access(self.kernel_data.page(step % hot), true);
        let hot_file = 16.min(self.file_backed.pages());
        backend.access(self.file_backed.page(step % hot_file), false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_boot_matches_table3() {
        let p = GuestOsProfile::paper_boot();
        assert_eq!(p.total_pages(), 81_042);
        assert!((p.total_mb() - 316.57).abs() < 0.2, "{}", p.total_mb());
    }

    #[test]
    fn scaling_preserves_all_classes() {
        let p = GuestOsProfile::scaled_down(100);
        assert!(p.kernel_text >= 1);
        assert!(p.total_pages() < 1000);
        let huge = GuestOsProfile::scaled_down(u64::MAX);
        assert_eq!(huge.total_pages(), 5, "every class floors at one page");
    }

    #[test]
    fn unswappable_excludes_reclaimable_classes() {
        let p = GuestOsProfile::paper_boot();
        assert!(p.unswappable_pages() < p.total_pages());
        assert_eq!(
            p.unswappable_pages(),
            p.kernel_text + p.kernel_data + p.unevictable
        );
    }
}
