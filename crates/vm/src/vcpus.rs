//! A set of virtual CPUs driving one FluidMem-backed memory through the
//! monitor's staged fault pipeline.
//!
//! The paper's monitor is multi-threaded: each faulting vCPU blocks in
//! the kernel while a handler thread resolves its page, so several
//! store round trips are in flight at once. [`VcpuSet`] reproduces that
//! shape deterministically: each vCPU issues accesses from its own
//! workload stream; a vCPU whose access faults to the store parks until
//! the monitor completes its operation, and the set keeps submitting
//! from other ready vCPUs up to the monitor's
//! [`max_inflight`](fluidmem_core::MonitorConfig::max_inflight) depth.
//! Everything runs on the shared virtual clock — two runs with the same
//! seeds are bit-identical.

use std::collections::BTreeMap;

use fluidmem_core::{FluidMemMemory, PipelineSubmit, SubmitOutcome};
use fluidmem_mem::{AccessOutcome, MemoryBackend, PageClass, Region};
use fluidmem_sim::stats::Sample;
use fluidmem_sim::{EventQueue, SimDuration, SimInstant, SimRng};

/// Aggregate results of a [`VcpuSet::run`] window.
#[derive(Debug, Clone)]
pub struct PipelineRunStats {
    /// Accesses issued (hits + faults).
    pub ops: u64,
    /// Accesses that faulted to the monitor.
    pub faults: u64,
    /// Faults that parked on a store operation (overlappable work).
    pub parked: u64,
    /// Faults that coalesced onto an in-flight operation.
    pub coalesced: u64,
    /// Virtual time the window took.
    pub elapsed: SimDuration,
    /// Guest-observed fault latencies, in µs.
    pub fault_latency: Sample,
}

impl PipelineRunStats {
    /// Throughput in accesses per virtual millisecond.
    pub fn ops_per_ms(&self) -> f64 {
        let ms = self.elapsed.as_nanos() as f64 / 1e6;
        if ms == 0.0 {
            0.0
        } else {
            self.ops as f64 / ms
        }
    }
}

/// N vCPUs multiplexed over one [`FluidMemMemory`] (see module docs).
pub struct VcpuSet {
    vm: FluidMemMemory,
    region: Region,
    wss_pages: u64,
    write_fraction: f64,
    /// vCPUs ready to issue, keyed by the instant they became ready.
    ready: EventQueue<u64>,
    /// In-flight operation id → vCPUs blocked on it.
    blocked: BTreeMap<u64, Vec<u64>>,
    workload_rng: SimRng,
}

impl VcpuSet {
    /// Base PID for vCPU identities raised into the userfaultfd.
    const VCPU_PID_BASE: u64 = 9000;

    /// Maps a `wss_pages` working set on `vm` and readies `vcpus`
    /// virtual CPUs over it.
    pub fn new(mut vm: FluidMemMemory, vcpus: u64, wss_pages: u64) -> Self {
        assert!(vcpus > 0, "a VcpuSet needs at least one vCPU");
        let region = vm.map_region(wss_pages, PageClass::Anonymous);
        let now = vm.clock().now();
        let mut ready = EventQueue::new();
        for v in 0..vcpus {
            ready.push(now, v);
        }
        let workload_rng = SimRng::seed_from_u64(0);
        VcpuSet {
            vm,
            region,
            wss_pages,
            write_fraction: 0.3,
            ready,
            blocked: BTreeMap::new(),
            workload_rng,
        }
    }

    /// Sets the write fraction of the workload (default 0.3).
    pub fn write_fraction(mut self, fraction: f64) -> Self {
        self.write_fraction = fraction;
        self
    }

    /// Seeds the workload stream (default seed 0).
    pub fn workload_seed(mut self, seed: u64) -> Self {
        self.workload_rng = SimRng::seed_from_u64(seed);
        self
    }

    /// Drives `ops` accesses across the vCPUs: ready vCPUs issue in
    /// ready-time order; faults that park on the store block their vCPU
    /// until the monitor's completion event fires. The pipeline depth is
    /// whatever the monitor's config allows.
    pub fn run(&mut self, ops: u64) -> PipelineRunStats {
        let depth = self.vm.monitor().config().max_inflight.max(1);
        let start = self.vm.clock().now();
        let mut stats = PipelineRunStats {
            ops: 0,
            faults: 0,
            parked: 0,
            coalesced: 0,
            elapsed: SimDuration::ZERO,
            fault_latency: Sample::new(),
        };
        for _ in 0..ops {
            // Free a vCPU and a pipeline slot if needed.
            while self.ready.is_empty() || self.vm.inflight_len() >= depth {
                self.complete_one(&mut stats);
            }
            let (ready_at, vcpu) = self.ready.pop_next().expect("a vCPU is ready");
            self.vm.clock().advance_to(ready_at);
            self.issue(vcpu, &mut stats);
        }
        // Drain the tail so every issued access is accounted.
        while !self.blocked.is_empty() {
            self.complete_one(&mut stats);
        }
        stats.elapsed = self.vm.clock().now() - start;
        stats
    }

    fn issue(&mut self, vcpu: u64, stats: &mut PipelineRunStats) {
        let page = self.workload_rng.gen_index(self.wss_pages);
        let write = self.workload_rng.gen_bool(self.write_fraction);
        let addr = self.region.page(page);
        stats.ops += 1;
        match self
            .vm
            .submit_access(Self::VCPU_PID_BASE + vcpu, addr, write)
        {
            PipelineSubmit::Ready(report) => {
                if report.outcome != AccessOutcome::Hit {
                    stats.faults += 1;
                    stats.fault_latency.record_duration(report.latency);
                }
                self.ready.push(self.vm.clock().now(), vcpu);
            }
            PipelineSubmit::Pending(SubmitOutcome::Parked(id)) => {
                stats.faults += 1;
                stats.parked += 1;
                self.blocked.entry(id).or_default().push(vcpu);
            }
            PipelineSubmit::Pending(SubmitOutcome::Coalesced(id)) => {
                stats.faults += 1;
                stats.coalesced += 1;
                self.blocked.entry(id).or_default().push(vcpu);
            }
            PipelineSubmit::Pending(SubmitOutcome::Completed(_)) => {
                unreachable!("completed submissions return Ready")
            }
        }
    }

    fn complete_one(&mut self, stats: &mut PipelineRunStats) {
        let done = self
            .vm
            .complete_next_access()
            .expect("blocked vCPUs imply in-flight operations");
        let vcpus = self
            .blocked
            .remove(&done.id)
            .expect("completed operation had submitters");
        stats
            .fault_latency
            .record_duration(done.wake_at - done.submitted_at);
        for _ in 1..vcpus.len() {
            // Coalesced waiters share the wake; their latency was bounded
            // by the same completion.
            stats
                .fault_latency
                .record_duration(done.wake_at - done.submitted_at);
        }
        for vcpu in vcpus {
            self.ready.push(done.wake_at, vcpu);
        }
    }

    /// The instant the next in-flight completion would land (if any).
    pub fn next_completion_at(&self) -> Option<SimInstant> {
        self.vm.monitor().next_completion_at()
    }

    /// The backing memory (stats, drain, telemetry).
    pub fn vm(&self) -> &FluidMemMemory {
        &self.vm
    }

    /// Mutable access to the backing memory.
    pub fn vm_mut(&mut self) -> &mut FluidMemMemory {
        &mut self.vm
    }

    /// Consumes the set, returning the backing memory.
    pub fn into_vm(self) -> FluidMemMemory {
        self.vm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_coord::PartitionId;
    use fluidmem_core::MonitorConfig;
    use fluidmem_kv::RamCloudStore;
    use fluidmem_sim::SimClock;

    fn vcpu_set(depth: usize, vcpus: u64) -> VcpuSet {
        let clock = SimClock::new();
        let store = RamCloudStore::new(1 << 28, clock.clone(), SimRng::seed_from_u64(2));
        let vm = FluidMemMemory::new(
            MonitorConfig::new(64).inflight(depth),
            Box::new(store),
            PartitionId::new(0),
            clock,
            SimRng::seed_from_u64(3),
        );
        VcpuSet::new(vm, vcpus, 256).workload_seed(7)
    }

    #[test]
    fn all_ops_complete_and_clock_advances() {
        let mut set = vcpu_set(4, 4);
        let stats = set.run(2_000);
        assert_eq!(stats.ops, 2_000);
        assert!(stats.faults > 0);
        assert!(stats.parked > 0, "a 4x-oversubscribed WSS must park reads");
        assert!(stats.elapsed > SimDuration::ZERO);
        assert_eq!(set.vm().inflight_len(), 0, "tail drained");
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = || {
            let mut set = vcpu_set(8, 8);
            let stats = set.run(3_000);
            (stats.elapsed, stats.faults, stats.parked, stats.coalesced)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn deeper_pipeline_is_no_slower() {
        let elapsed = |depth| {
            let mut set = vcpu_set(depth, 8);
            set.run(3_000).elapsed
        };
        let d1 = elapsed(1);
        let d8 = elapsed(8);
        assert!(
            d8 <= d1,
            "depth 8 ({d8:?}) must not be slower than depth 1 ({d1:?})"
        );
    }
}
