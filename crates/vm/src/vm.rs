//! The virtual machine: a guest bound to a memory backend.

use fluidmem_mem::{MemoryBackend, PageClass, Region};

use crate::guest_os::{GuestOs, GuestOsProfile};

/// How the VM is virtualized — decides the Table III one-page row.
///
/// With KVM hardware-assisted virtualization the paper "suspect\[s\] there
/// was a deadlock in the page fault handling ... since handling a page
/// fault can trigger more page faults"; with full (TCG-style) emulation
/// "the recursive triggering of page faults would still succeed".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VirtualizationMode {
    /// KVM hardware-assisted virtualization: fault handling itself needs
    /// at least [`Vm::KVM_FAULT_HANDLER_PAGES`] pages resident, so a
    /// footprint below that deadlocks.
    #[default]
    Kvm,
    /// Full emulation (QEMU TCG): each instruction completes under
    /// emulation even if every page must be faulted in serially, so a
    /// single-page footprint stays (barely) functional.
    FullEmulation,
}

/// A virtual machine: a booted [`GuestOs`] over a [`MemoryBackend`].
///
/// # Example
///
/// ```
/// use fluidmem_coord::PartitionId;
/// use fluidmem_core::{FluidMemMemory, MonitorConfig};
/// use fluidmem_kv::DramStore;
/// use fluidmem_sim::{SimClock, SimRng};
/// use fluidmem_vm::{GuestOsProfile, Vm};
///
/// let clock = SimClock::new();
/// let store = DramStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(1));
/// let backend = FluidMemMemory::new(
///     MonitorConfig::new(2048),
///     Box::new(store),
///     PartitionId::new(0),
///     clock,
///     SimRng::seed_from_u64(2),
/// );
/// let vm = Vm::boot(Box::new(backend), GuestOsProfile::scaled_down(100));
/// assert!(vm.footprint_pages() > 0);
/// ```
pub struct Vm {
    backend: Box<dyn MemoryBackend>,
    os: GuestOs,
    mode: VirtualizationMode,
    idle_step: u64,
    idle_ticks: fluidmem_telemetry::Counter,
    workload_allocs: fluidmem_telemetry::Counter,
}

impl Vm {
    /// Minimum resident pages KVM needs to make fault-handling progress
    /// (the faulting instruction's page plus the handler's working page).
    pub const KVM_FAULT_HANDLER_PAGES: u64 = 2;

    /// Boots a guest with the given OS profile on a backend.
    pub fn boot(mut backend: Box<dyn MemoryBackend>, profile: GuestOsProfile) -> Vm {
        let os = GuestOs::boot(backend.as_mut(), profile);
        Vm {
            backend,
            os,
            mode: VirtualizationMode::Kvm,
            idle_step: 0,
            idle_ticks: fluidmem_telemetry::Counter::new(),
            workload_allocs: fluidmem_telemetry::Counter::new(),
        }
    }

    /// Registers the VM's event counters in a shared telemetry registry.
    pub fn attach_telemetry(&mut self, telemetry: &fluidmem_telemetry::Telemetry) {
        use fluidmem_telemetry::consts;
        let registry = telemetry.registry();
        for (counter, event) in [
            (&self.idle_ticks, "idle_tick"),
            (&self.workload_allocs, "workload_alloc"),
        ] {
            registry.adopt_counter(consts::VM_EVENTS, &[(consts::LABEL_EVENT, event)], counter);
        }
    }

    /// Switches the virtualization mode (Table III's last row uses
    /// [`VirtualizationMode::FullEmulation`]).
    pub fn set_mode(&mut self, mode: VirtualizationMode) {
        self.mode = mode;
    }

    /// The virtualization mode.
    pub fn mode(&self) -> VirtualizationMode {
        self.mode
    }

    /// The booted OS layout.
    pub fn os(&self) -> &GuestOs {
        &self.os
    }

    /// The memory backend.
    pub fn backend(&self) -> &dyn MemoryBackend {
        self.backend.as_ref()
    }

    /// Mutable backend access.
    pub fn backend_mut(&mut self) -> &mut dyn MemoryBackend {
        self.backend.as_mut()
    }

    /// Current host-DRAM footprint in pages.
    pub fn footprint_pages(&self) -> u64 {
        self.backend.resident_pages()
    }

    /// Current host-DRAM footprint in MB.
    pub fn footprint_mb(&self) -> f64 {
        self.footprint_pages() as f64 * 4096.0 / (1024.0 * 1024.0)
    }

    /// Allocates an anonymous workload region (an application starting in
    /// the guest).
    pub fn alloc_workload(&mut self, pages: u64) -> Region {
        self.workload_allocs.inc();
        self.backend.map_region(pages, PageClass::Anonymous)
    }

    /// One idle-OS tick (a timer interrupt's worth of background memory
    /// traffic).
    pub fn idle_tick(&mut self) {
        self.idle_ticks.inc();
        self.os.idle_tick(self.backend.as_mut(), self.idle_step);
        self.idle_step += 1;
    }

    /// Whether the VM can make forward progress at its current local
    /// capacity. Under KVM, fault handling needs
    /// [`KVM_FAULT_HANDLER_PAGES`](Self::KVM_FAULT_HANDLER_PAGES)
    /// resident pages; under full emulation one page suffices.
    pub fn can_make_progress(&self) -> bool {
        let needed = match self.mode {
            VirtualizationMode::Kvm => Self::KVM_FAULT_HANDLER_PAGES,
            VirtualizationMode::FullEmulation => 1,
        };
        self.backend.local_capacity_pages() >= needed
    }
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("backend", &self.backend.label())
            .field("mode", &self.mode)
            .field("footprint_pages", &self.footprint_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_coord::PartitionId;
    use fluidmem_core::{FluidMemMemory, MonitorConfig};
    use fluidmem_kv::DramStore;
    use fluidmem_sim::{SimClock, SimRng};

    fn small_vm(capacity: u64) -> Vm {
        let clock = SimClock::new();
        let store = DramStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(1));
        let backend = FluidMemMemory::new(
            MonitorConfig::new(capacity),
            Box::new(store),
            PartitionId::new(0),
            clock,
            SimRng::seed_from_u64(2),
        );
        Vm::boot(Box::new(backend), GuestOsProfile::scaled_down(200))
    }

    #[test]
    fn boot_populates_footprint() {
        let vm = small_vm(4096);
        let expected = GuestOsProfile::scaled_down(200).total_pages();
        assert_eq!(vm.footprint_pages(), expected);
    }

    #[test]
    fn boot_respects_capacity_bound() {
        let vm = small_vm(64);
        assert!(vm.footprint_pages() <= 64);
    }

    #[test]
    fn workload_alloc_and_idle_tick() {
        let mut vm = small_vm(4096);
        let region = vm.alloc_workload(32);
        assert_eq!(region.pages(), 32);
        let before = vm.backend().counters().total();
        vm.idle_tick();
        assert!(vm.backend().counters().total() > before);
    }

    #[test]
    fn progress_rules_by_mode() {
        let clock = SimClock::new();
        let store = DramStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(1));
        let backend = FluidMemMemory::new(
            MonitorConfig::new(1),
            Box::new(store),
            PartitionId::new(0),
            clock,
            SimRng::seed_from_u64(2),
        );
        let mut vm = Vm::boot(Box::new(backend), GuestOsProfile::scaled_down(10_000));
        assert!(!vm.can_make_progress(), "KVM deadlocks at one page");
        vm.set_mode(VirtualizationMode::FullEmulation);
        assert!(vm.can_make_progress(), "full emulation survives one page");
        // Revival by increasing the footprint.
        vm.set_mode(VirtualizationMode::Kvm);
        vm.backend_mut().set_local_capacity(256).unwrap();
        assert!(vm.can_make_progress());
    }
}
