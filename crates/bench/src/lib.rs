//! Shared harness utilities for the per-table / per-figure binaries.
//!
//! Each binary regenerates one element of the paper's evaluation:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig3` | Figure 3 — pmbench fault-latency CDFs and averages |
//! | `table1` | Table I — monitor code-path latencies |
//! | `table2` | Table II — optimization ablation |
//! | `fig4` | Figure 4 — Graph500 TEPS across scale factors |
//! | `fig5` | Figure 5 — YCSB/MongoDB read-latency time course |
//! | `table3` | Table III — minimum-footprint responsiveness |
//! | `fig2` | Figure 2 — the fault-handling paths as an executable trace |
//! | `ablations` | eight design-choice studies beyond the paper |
//! | `timeouts` | §VI-D1's closing remark: deadlines vs. disaggregation depth |
//!
//! All binaries accept `--scale <N>` (run at 1/N of the paper's sizes;
//! each has a sensible default) and `--full` (paper-size run), and print
//! aligned text tables plus gnuplot-ready CDF/series data where the
//! figure needs it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod criterion;
pub mod json;

use std::fmt::Write as _;
use std::path::PathBuf;

/// Command-line options shared by every harness binary.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// Divide the paper's problem sizes by this factor.
    pub scale_denominator: u64,
    /// Root seed for the run.
    pub seed: u64,
    /// Append machine-readable records (JSON lines) to this file.
    pub json_path: Option<PathBuf>,
    /// Write a Chrome trace-event file of the run to this path.
    pub trace_path: Option<PathBuf>,
}

impl HarnessArgs {
    /// Parses `--full`, `--scale <N>`, `--seed <N>`, `--json <file>`,
    /// and `--trace <file>` from `args`, using `default_denominator`
    /// when neither sizing flag is given.
    pub fn parse(default_denominator: u64) -> HarnessArgs {
        let mut scale = default_denominator;
        let mut seed = 42;
        let mut json_path = None;
        let mut trace_path = None;
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--full" => scale = 1,
                "--scale" => {
                    i += 1;
                    scale = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(default_denominator);
                }
                "--seed" => {
                    i += 1;
                    seed = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or(42);
                }
                "--json" => {
                    i += 1;
                    json_path = argv.get(i).map(PathBuf::from);
                }
                "--trace" => {
                    i += 1;
                    trace_path = argv.get(i).map(PathBuf::from);
                }
                other => eprintln!("ignoring unknown argument {other:?}"),
            }
            i += 1;
        }
        HarnessArgs {
            scale_denominator: scale.max(1),
            seed,
            json_path,
            trace_path,
        }
    }

    /// Writes the telemetry's Chrome trace when `--trace` was given.
    /// Call after the measured run; prints where the trace went.
    pub fn emit_trace(&self, telemetry: &fluidmem_telemetry::Telemetry) {
        if let Some(path) = &self.trace_path {
            let json = telemetry.export_chrome_trace();
            match std::fs::write(path, &json) {
                Ok(()) => println!("wrote Chrome trace to {}", path.display()),
                Err(e) => eprintln!("failed to write {path:?}: {e}"),
            }
        }
    }

    /// Appends a JSON-lines record when `--json` was given.
    pub fn emit_json(&self, record: &json::Json) {
        if let Some(path) = &self.json_path {
            if let Err(e) = json::write_json_line(path, record) {
                eprintln!("failed to write {path:?}: {e}");
            }
        }
    }
}

/// A plain-text table printer with aligned columns.
#[derive(Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                let _ = write!(line, "| {:width$} ", cell, width = widths[c]);
            }
            line.push('|');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let mut sep = String::new();
        for w in &widths {
            let _ = write!(sep, "|{}", "-".repeat(w + 2));
        }
        sep.push('|');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with 2 decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a ratio as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Prints a figure banner.
pub fn banner(title: &str, detail: &str) {
    println!("\n=== {title} ===");
    if !detail.is_empty() {
        println!("{detail}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]);
        t.row(vec!["long-name", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(s.contains("long-name"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(vec!["a", "b", "c"]);
        t.row(vec!["only-one"]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(pct(0.256), "25.6%");
    }
}
