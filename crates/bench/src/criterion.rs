//! A minimal, criterion-compatible benchmark harness.
//!
//! The workspace builds with zero external crates, so the `[[bench]]`
//! binaries cannot link the real `criterion`. This module mirrors the
//! slice of its API the benches use (`benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!`/`criterion_main!` macros)
//! and reports wall-clock means per benchmark.
//!
//! Two deliberate differences from the real crate: sample counts are
//! small (these benches drive a virtual-time simulator, so statistical
//! machinery adds nothing), and when the binary is invoked with a
//! `--test` argument — as `cargo test` does for `harness = false`
//! targets — every benchmark body runs exactly once as a smoke test.

use std::fmt::Display;
use std::time::Instant;

/// Entry point handed to each registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    test_mode: bool,
}

impl Criterion {
    /// Creates a harness, detecting `--test` mode from the command line.
    pub fn from_args() -> Criterion {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        if !self.test_mode {
            println!("\n{name}");
        }
        BenchmarkGroup {
            criterion: self,
            samples: 10,
        }
    }
}

/// A named set of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    samples: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u64).max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}

    fn run(&mut self, id: BenchmarkId, mut body: impl FnMut(&mut Bencher)) {
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.samples
        };
        let mut bencher = Bencher {
            samples,
            total_iters: 0,
        };
        let start = Instant::now();
        body(&mut bencher);
        let elapsed = start.elapsed();
        if self.criterion.test_mode {
            return;
        }
        let iters = bencher.total_iters.max(1);
        let mean_ns = elapsed.as_nanos() as f64 / iters as f64;
        let mean = if mean_ns >= 1_000_000.0 {
            format!("{:.3} ms", mean_ns / 1_000_000.0)
        } else if mean_ns >= 1_000.0 {
            format!("{:.3} µs", mean_ns / 1_000.0)
        } else {
            format!("{mean_ns:.0} ns")
        };
        println!("  {:<40} {mean}/iter ({iters} iters)", id.label);
    }
}

/// Runs the benchmark body and counts iterations.
#[derive(Debug)]
pub struct Bencher {
    samples: u64,
    total_iters: u64,
}

impl Bencher {
    /// Times `f`, running it once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            black_box(f());
            self.total_iters += 1;
        }
    }
}

/// A benchmark label, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `name/parameter` label.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{parameter}", name.into()),
        }
    }

    /// A label that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId { label: name.into() }
    }
}

/// An opaque value sink preventing the optimizer from deleting the
/// benchmark body.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::criterion::Criterion::from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut c = Criterion { test_mode: true };
        let mut calls = 0u64;
        let mut group = c.benchmark_group("g");
        group.sample_size(50);
        group.bench_function("counted", |b| b.iter(|| calls += 1));
        group.finish();
        // test_mode forces exactly one sample.
        assert_eq!(calls, 1);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("shrink", 64).label, "shrink/64");
        assert_eq!(BenchmarkId::from_parameter("drop").label, "drop");
        assert_eq!(BenchmarkId::from("plain").label, "plain");
    }
}
