//! A minimal JSON emitter for experiment records.
//!
//! The approved dependency set includes `serde` but not `serde_json`, so
//! the harnesses carry their own small, well-tested writer. Only the
//! shapes the harnesses need are supported: objects, arrays, strings,
//! numbers, and booleans.

use std::fmt::Write as _;

/// A JSON value under construction.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// A string.
    Str(String),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// An integer (kept separate to avoid float formatting).
    Int(i64),
    /// A boolean.
    Bool(bool),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Adds a field to an object (chainable).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Object(fields) => fields.push((key.to_string(), value.into())),
            _ => panic!("field() on a non-object"),
        }
        self
    }

    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Str(s) => write_escaped(s, out),
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Int(n as i64)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Array(items)
    }
}

/// Writes a record to the path given by `--json` (if any), appending a
/// newline (JSON-lines style, so sweeps can append multiple records).
pub fn write_json_line(path: &std::path::Path, record: &Json) -> std::io::Result<()> {
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(file, "{}", record.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::object()
            .field("name", "fig3")
            .field("avg_us", 24.33)
            .field("accesses", 63749u64)
            .field("ok", true)
            .field(
                "cdf",
                Json::Array(vec![
                    Json::Array(vec![Json::Num(0.1), Json::Num(0.25)]),
                    Json::Array(vec![Json::Num(31.6), Json::Num(0.99)]),
                ]),
            );
        assert_eq!(
            j.render(),
            r#"{"name":"fig3","avg_us":24.33,"accesses":63749,"ok":true,"cdf":[[0.1,0.25],[31.6,0.99]]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\te\u{1}".to_string());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    #[should_panic(expected = "non-object")]
    fn field_on_array_panics() {
        let _ = Json::Array(vec![]).field("x", 1u64);
    }

    #[test]
    fn json_lines_append() {
        let dir = std::env::temp_dir().join("fluidmem-json-test");
        let _ = std::fs::remove_file(&dir);
        let rec = Json::object().field("a", 1u64);
        write_json_line(&dir, &rec).unwrap();
        write_json_line(&dir, &rec).unwrap();
        let text = std::fs::read_to_string(&dir).unwrap();
        assert_eq!(text.lines().count(), 2);
        let _ = std::fs::remove_file(&dir);
    }
}
