//! `workingset` — refault-distance working-set estimation: does the
//! shadow-entry estimator find the true WSS, and does adaptive capacity
//! convert that estimate into fewer major faults?
//!
//! Two sections:
//!
//! * **Sweep** — one VM running a pmbench-style uniform-random workload
//!   whose WSS is 0.5×–4× a fixed buffer capacity, once with a static
//!   buffer and once under `WorkingSetMode::AdaptiveCapacity` (floor at
//!   the static size, ceiling at 4×). Identical seeds and access
//!   sequences — the mode is the only variable. The harness asserts
//!   that adaptive never incurs *more* major faults than static at any
//!   sweep point: the shrink floor and refault-driven growth make it
//!   strictly no-worse by construction.
//! * **Arbiter face-off** — a streaming VM (WSS far beyond the shadow
//!   table, so its refaults age out unmeasured) against a thrashing VM
//!   (WSS just above its fair share, every refault measured and inside
//!   the estimate), under `fault_rate_proportional` vs
//!   `refault_proportional`. Raw fault counts overpay the streamer;
//!   thrash refaults route the pool to the VM capacity can actually
//!   help.
//!
//! Runs are fully deterministic: a fixed `--seed` reproduces the output
//! byte for byte (the check.sh gate runs the smoke sweep twice and
//! `cmp`s).
//!
//! Usage: `workingset [--smoke] [--seed N] [--json FILE]`

use std::path::PathBuf;

use fluidmem_bench::json::{write_json_line, Json};
use fluidmem_bench::{banner, f2, TextTable};
use fluidmem_coord::PartitionId;
use fluidmem_core::{FluidMemMemory, MonitorConfig, WorkingSetConfig, WorkingSetMode};
use fluidmem_host::{ArbiterPolicy, HostAgent, HostConfig, VmSpec};
use fluidmem_kv::RamCloudStore;
use fluidmem_sim::{SimClock, SimDuration, SimRng};
use fluidmem_workloads::pmbench::{self, PmbenchConfig};

struct Args {
    smoke: bool,
    seed: u64,
    json_path: Option<PathBuf>,
}

/// Hand-rolled parsing (not `HarnessArgs`): this harness has no
/// `--scale` notion — `--smoke` selects the reduced sizes instead.
fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        seed: 42,
        json_path: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--seed" => {
                i += 1;
                args.seed = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or(42);
            }
            "--json" => {
                i += 1;
                args.json_path = argv.get(i).map(PathBuf::from);
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
        i += 1;
    }
    args
}

fn emit(args: &Args, record: &Json) {
    if let Some(path) = &args.json_path {
        if let Err(e) = write_json_line(path, record) {
            eprintln!("failed to write {path:?}: {e}");
        }
    }
}

struct Sizes {
    capacity: u64,
    ops: u64,
    fleet_dram: u64,
    fleet_ops: u64,
}

struct RunResult {
    major_faults: u64,
    refaults: u64,
    thrash_refaults: u64,
    wss_estimate: u64,
    final_capacity: u64,
    avg_us: f64,
}

/// One pmbench run over a fresh VM: same store/workload seeds every
/// call, so two runs differing only in `mode` see identical access
/// sequences.
fn run_one(capacity: u64, wss_pages: u64, ops: u64, seed: u64, mode: WorkingSetMode) -> RunResult {
    let clock = SimClock::new();
    let store = RamCloudStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(seed));
    let mut vm = FluidMemMemory::new(
        MonitorConfig::new(capacity).workingset(WorkingSetConfig::default().mode(mode)),
        Box::new(store),
        PartitionId::new(0),
        clock,
        SimRng::seed_from_u64(seed ^ 0x9E37_79B9),
    );
    let config = PmbenchConfig {
        wss_pages,
        duration: SimDuration::from_secs(100_000),
        read_ratio: 0.5,
        max_accesses: ops,
    };
    let mut workload_rng = SimRng::seed_from_u64(seed ^ 0x517C_C1B7);
    let report = pmbench::run(&mut vm, &config, &mut workload_rng);
    vm.drain_writes();
    let ws = vm.monitor().workingset();
    assert!(
        ws.accounting_balances(),
        "shadow accounting out of balance after the sweep run"
    );
    RunResult {
        major_faults: report.major_faults,
        refaults: ws.refaults_measured(),
        thrash_refaults: ws.thrash_refaults(),
        wss_estimate: ws.wss_estimate(),
        final_capacity: vm.monitor().capacity(),
        avg_us: report.avg_latency_us(),
    }
}

fn sweep(args: &Args, sizes: &Sizes) {
    let capacity = sizes.capacity;
    let max_pages = capacity * 4;
    println!("\n-- Static vs adaptive capacity, WSS sweep --");
    println!(
        "buffer {capacity} pages static; adaptive floor {capacity} / ceiling {max_pages}, \
         {} accesses per cell",
        sizes.ops
    );
    let mut table = TextTable::new(vec![
        "WSS",
        "factor",
        "static faults",
        "adaptive faults",
        "saved",
        "wss est",
        "final cap",
        "static µs",
        "adaptive µs",
    ]);
    for (num, den) in [(1u64, 2u64), (1, 1), (3, 2), (2, 1), (3, 1), (4, 1)] {
        let wss_pages = (capacity * num / den).max(4);
        let factor = num as f64 / den as f64;
        let stat = run_one(
            capacity,
            wss_pages,
            sizes.ops,
            args.seed,
            WorkingSetMode::Passive,
        );
        let adapt = run_one(
            capacity,
            wss_pages,
            sizes.ops,
            args.seed,
            WorkingSetMode::AdaptiveCapacity {
                min_pages: capacity,
                max_pages,
                adjust_interval: 32,
            },
        );
        // The acceptance bar: growth only reacts to measured refaults
        // and the floor sits at the static size, so adaptive can never
        // fault more than static.
        assert!(
            adapt.major_faults <= stat.major_faults,
            "adaptive faulted more than static at WSS {wss_pages}: {} > {}",
            adapt.major_faults,
            stat.major_faults
        );
        let saved = stat.major_faults - adapt.major_faults;
        table.row(vec![
            wss_pages.to_string(),
            format!("{factor:.1}x"),
            stat.major_faults.to_string(),
            adapt.major_faults.to_string(),
            saved.to_string(),
            adapt.wss_estimate.to_string(),
            adapt.final_capacity.to_string(),
            f2(stat.avg_us),
            f2(adapt.avg_us),
        ]);
        for (mode, r) in [("static", &stat), ("adaptive", &adapt)] {
            emit(
                args,
                &Json::object()
                    .field("bench", "workingset")
                    .field("section", "sweep")
                    .field("seed", args.seed as i64)
                    .field("mode", mode)
                    .field("wss_pages", wss_pages as i64)
                    .field("factor", factor)
                    .field("major_faults", r.major_faults as i64)
                    .field("refaults_measured", r.refaults as i64)
                    .field("thrash_refaults", r.thrash_refaults as i64)
                    .field("wss_estimate_pages", r.wss_estimate as i64)
                    .field("final_capacity_pages", r.final_capacity as i64)
                    .field("avg_access_us", r.avg_us),
            );
        }
    }
    table.print();
    println!(
        "\nAdaptive grows toward the refault-derived WSS estimate (floored at\n\
         the static size), so its fault count is never above static's."
    );
}

fn faceoff(args: &Args, sizes: &Sizes) {
    let dram = sizes.fleet_dram;
    println!("\n-- Arbiter face-off: raw faults vs thrash refaults --");
    println!(
        "host DRAM {dram} pages; a streamer (WSS {}, refaults age out of the\n\
         shadow table) vs a thrasher (WSS {}, refaults measured as thrash)",
        dram * 6,
        dram * 3 / 4
    );
    let mut table = TextTable::new(vec![
        "policy",
        "streamer grant",
        "thrasher grant",
        "thrasher faults",
        "fleet p99 (us)",
    ]);
    let mut thrasher_grants = Vec::new();
    for policy in [
        ArbiterPolicy::FaultRateProportional,
        ArbiterPolicy::RefaultProportional,
    ] {
        let clock = SimClock::new();
        let store = RamCloudStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(args.seed));
        // Shadow capacity = host DRAM: the streamer's refault distances
        // dwarf it (entries age out, unmeasured); the thrasher's fit.
        let config = HostConfig::new(dram)
            .policy(policy)
            .min_pages((dram / 8).max(8))
            .rebalance_interval(sizes.fleet_ops / 16)
            .monitor(
                MonitorConfig::new(dram)
                    .workingset(WorkingSetConfig::default().shadow_capacity(dram as usize)),
            );
        let mut host = HostAgent::new(
            config,
            Box::new(store),
            clock,
            SimRng::seed_from_u64(args.seed ^ 0x9E37_79B9),
        );
        host.add_vm(VmSpec::new("streamer", dram * 6));
        host.add_vm(VmSpec::new("thrasher", dram * 3 / 4));
        host.run(sizes.fleet_ops / 2);
        host.reset_measurements();
        host.run(sizes.fleet_ops);
        host.drain();
        let p99 = host.aggregate_fault_percentile(0.99);
        thrasher_grants.push(host.vm_capacity(1));
        table.row(vec![
            policy.label().to_string(),
            host.vm_capacity(0).to_string(),
            host.vm_capacity(1).to_string(),
            host.vm_faults(1).to_string(),
            f2(p99),
        ]);
        emit(
            args,
            &Json::object()
                .field("bench", "workingset")
                .field("section", "faceoff")
                .field("seed", args.seed as i64)
                .field("policy", policy.label())
                .field("streamer_grant_pages", host.vm_capacity(0) as i64)
                .field("thrasher_grant_pages", host.vm_capacity(1) as i64)
                .field("streamer_faults", host.vm_faults(0) as i64)
                .field("thrasher_faults", host.vm_faults(1) as i64)
                .field("fleet_fault_p99_us", p99),
        );
    }
    table.print();
    assert!(
        thrasher_grants[1] >= thrasher_grants[0],
        "refault_proportional granted the thrasher less than fault_rate did: {:?}",
        thrasher_grants
    );
    println!(
        "\nThe streamer's fault volume buys it nothing under\n\
         refault_proportional: its refaults never land in the shadow table,\n\
         so the pool follows the thrasher's measured working-set pressure."
    );
}

fn main() {
    let args = parse_args();
    let sizes = if args.smoke {
        Sizes {
            capacity: 128,
            ops: 6_000,
            fleet_dram: 256,
            fleet_ops: 8_000,
        }
    } else {
        Sizes {
            capacity: 512,
            ops: 32_000,
            fleet_dram: 1024,
            fleet_ops: 48_000,
        }
    };

    banner(
        "workingset — refault-distance WSS estimation",
        &format!(
            "shadow-entry estimator; static vs adaptive capacity; seed {}",
            args.seed
        ),
    );

    sweep(&args, &sizes);
    faceoff(&args, &sizes);
}
