//! Table I: latencies of the monitor's instrumented code paths during
//! *synchronous* page-fault handling with the RAMCloud backend.
//!
//! Paper values (avg / stdev / p99 µs): UPDATE_PAGE_CACHE 2.56/0.25/3.32,
//! INSERT_PAGE_HASH_NODE 2.58/1.26/8.36, INSERT_LRU_CACHE_NODE
//! 2.87/0.47/3.65, UFFD_ZEROPAGE 2.61/0.44/3.51, UFFD_REMAP
//! 1.65/2.57/18.03, UFFD_COPY 3.89/0.77/5.43, READ_PAGE 15.62/31.01/20.90,
//! WRITE_PAGE 14.70/1.52/17.45.

use fluidmem_bench::{banner, f2, HarnessArgs, TextTable};
use fluidmem_coord::PartitionId;
use fluidmem_core::{CodePath, FluidMemMemory, MonitorConfig, Optimizations};
use fluidmem_kv::RamCloudStore;
use fluidmem_mem::{MemoryBackend, PageClass};
use fluidmem_sim::{SimClock, SimRng};
use fluidmem_telemetry::Telemetry;

fn main() {
    let args = HarnessArgs::parse(8);
    // Enough traffic for stable p99s; the code paths are size-independent.
    let faults = 400_000 / args.scale_denominator.max(1);

    banner(
        "Table I: monitor code-path latencies (synchronous handling, RAMCloud)",
        &format!("{faults} measured faults after warm-up"),
    );

    let clock = SimClock::new();
    let store = RamCloudStore::new(4 << 30, clock.clone(), SimRng::seed_from_u64(args.seed));
    let mut vm = FluidMemMemory::new(
        MonitorConfig::new(4096).optimizations(Optimizations::none()),
        Box::new(store),
        PartitionId::new(0),
        clock,
        SimRng::seed_from_u64(args.seed + 1),
    );
    let telemetry = Telemetry::new(vm.clock().clone());
    if args.trace_path.is_some() {
        telemetry.enable_spans();
    }
    vm.attach_telemetry(&telemetry);
    let region = vm.map_region(16_384, PageClass::Anonymous);
    let mut rng = SimRng::seed_from_u64(args.seed + 2);

    // Warm up: populate everything once (first-touch paths), then clear
    // the profile so steady-state spans dominate... but Table I includes
    // the zeropage/insert-hash paths too, so keep a mixed workload:
    for i in 0..region.pages() {
        vm.access(region.page(i), true);
    }
    vm.monitor_mut().clear_profile();

    // Steady state: random refaults (reads + writes) plus a trickle of
    // fresh first-touches from a second region.
    let fresh = vm.map_region(faults, PageClass::Anonymous);
    for n in 0..faults {
        let i = rng.gen_index(region.pages());
        vm.access(region.page(i), rng.gen_bool(0.5));
        if n % 8 == 0 {
            vm.access(fresh.page(n), false);
        }
    }

    let paper: &[(CodePath, f64, f64, f64)] = &[
        (CodePath::UpdatePageCache, 2.56, 0.25, 3.32),
        (CodePath::InsertPageHashNode, 2.58, 1.26, 8.36),
        (CodePath::InsertLruCacheNode, 2.87, 0.47, 3.65),
        (CodePath::UffdZeropage, 2.61, 0.44, 3.51),
        (CodePath::UffdRemap, 1.65, 2.57, 18.03),
        (CodePath::UffdCopy, 3.89, 0.77, 5.43),
        (CodePath::ReadPage, 15.62, 31.01, 20.90),
        (CodePath::WritePage, 14.70, 1.52, 17.45),
    ];

    let mut table = TextTable::new(vec![
        "code path",
        "avg",
        "stdev",
        "p99",
        "paper avg",
        "paper stdev",
        "paper p99",
        "spans",
    ]);
    for &(path, pavg, pstd, pp99) in paper {
        let stats = vm.monitor().profile().stats(path);
        table.row(vec![
            path.to_string(),
            f2(stats.avg_us),
            f2(stats.stdev_us),
            f2(stats.p99_us),
            f2(pavg),
            f2(pstd),
            f2(pp99),
            stats.count.to_string(),
        ]);
    }
    table.print();
    println!("\n(units: µs; synchronous handling = Table II 'Default' configuration)");
    args.emit_trace(&telemetry);
}
