//! Figure 3: CDF of pmbench page-fault latencies for the six
//! configurations, with the per-backend averages quoted in the captions.
//!
//! Paper values (average µs): FluidMem DRAM 24.84, FluidMem RAMCloud
//! 24.87, FluidMem Memcached 65.79, Swap DRAM 26.34, Swap NVMeoF 41.73,
//! Swap SSD 106.56. FluidMem/RAMCloud is ~40% faster than swap/NVMeoF
//! and ~77% faster than SSD swap.

use fluidmem::testbed::{BackendKind, Testbed};
use fluidmem_bench::json::Json;
use fluidmem_bench::{banner, f2, pct, HarnessArgs, TextTable};
use fluidmem_sim::{SimDuration, SimRng};
use fluidmem_workloads::pmbench::{self, PmbenchConfig};

fn main() {
    let args = HarnessArgs::parse(64);
    let testbed = Testbed::scaled_down(args.scale_denominator);
    let config = PmbenchConfig {
        // Paper: 4 GB WSS over 1 GB local DRAM (4x overcommit).
        wss_pages: testbed.local_dram_pages * 4,
        duration: SimDuration::from_secs_f64(100.0 / args.scale_denominator as f64),
        read_ratio: 0.5,
        max_accesses: 3_000_000,
    };

    banner(
        "Figure 3: pmbench page-fault latency",
        &format!(
            "WSS {} pages over {} local pages (1/{} of paper size), 50% reads",
            config.wss_pages, testbed.local_dram_pages, args.scale_denominator
        ),
    );

    let mut table = TextTable::new(vec![
        "configuration",
        "avg (µs)",
        "paper (µs)",
        "dram hits",
        "p50 (µs)",
        "p99 (µs)",
        "accesses",
    ]);
    let paper_avgs = [24.84, 24.87, 65.79, 26.34, 41.73, 106.56];

    let mut cdfs = Vec::new();
    for (kind, paper) in BackendKind::ALL.into_iter().zip(paper_avgs) {
        let mut backend = testbed.build(kind, args.seed);
        let mut rng = SimRng::seed_from_u64(args.seed ^ 0x9bbe);
        let report = pmbench::run(backend.as_mut(), &config, &mut rng);
        table.row(vec![
            kind.label().to_string(),
            f2(report.avg_latency_us()),
            f2(paper),
            pct(report.hit_fraction()),
            f2(report.all.percentile_us(0.50)),
            f2(report.all.percentile_us(0.99)),
            report.accesses.to_string(),
        ]);
        args.emit_json(
            &Json::object()
                .field("experiment", "fig3")
                .field("configuration", kind.label())
                .field("scale_denominator", args.scale_denominator)
                .field("seed", args.seed)
                .field("avg_us", report.avg_latency_us())
                .field("paper_avg_us", paper)
                .field("hit_fraction", report.hit_fraction())
                .field("p99_us", report.all.percentile_us(0.99))
                .field("accesses", report.accesses)
                .field(
                    "cdf",
                    Json::Array(
                        report
                            .all
                            .cdf()
                            .into_iter()
                            .map(|(us, frac)| Json::Array(vec![Json::Num(us), Json::Num(frac)]))
                            .collect(),
                    ),
                ),
        );
        cdfs.push((kind, report));
    }
    table.print();

    // The paper's headline ratios.
    let rc = cdfs[1].1.avg_latency_us();
    let nv = cdfs[4].1.avg_latency_us();
    let ssd = cdfs[5].1.avg_latency_us();
    println!(
        "\nFluidMem/RAMCloud vs Swap/NVMeoF: {} faster (paper: 40%)",
        pct(1.0 - rc / nv)
    );
    println!(
        "FluidMem/RAMCloud vs Swap/SSD:    {} faster (paper: 77%)",
        pct(1.0 - rc / ssd)
    );

    // CDF data (gnuplot-ready, one block per subplot).
    println!("\n--- CDF data: latency_us cumulative_fraction ---");
    for (kind, report) in &cdfs {
        println!("\n# {}", kind.label());
        for (us, frac) in report.all.cdf() {
            println!("{us:.3} {frac:.5}");
        }
    }
}
