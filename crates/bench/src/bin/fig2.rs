//! Figure 2 as an executable trace: the first-access critical path
//! ("red": guest halt → fault event → pagetracker lookup → UFFD_ZEROPAGE
//! → wake) followed by asynchronous eviction ("blue": UFFD_REMAP → write
//! list → key-value store), then a refault showing the read path.

use fluidmem_bench::{banner, HarnessArgs};
use fluidmem_coord::PartitionId;
use fluidmem_core::{FluidMemMemory, MonitorConfig};
use fluidmem_kv::RamCloudStore;
use fluidmem_mem::{MemoryBackend, PageClass};
use fluidmem_sim::{SimClock, SimRng};

fn dump_trace(vm: &FluidMemMemory, since_idx: usize, heading: &str) -> usize {
    println!("\n--- {heading} ---");
    let events = vm.monitor().tracer().events();
    for e in events.range(since_idx..) {
        println!("  {e}");
    }
    events.len()
}

fn main() {
    let args = HarnessArgs::parse(1);
    banner(
        "Figure 2: page-fault handling trace",
        "critical path (ends at wake) and asynchronous eviction/writeback",
    );

    let clock = SimClock::new();
    let store = RamCloudStore::new(1 << 26, clock.clone(), SimRng::seed_from_u64(args.seed));
    let mut vm = FluidMemMemory::new(
        MonitorConfig::new(2).write_batch(2),
        Box::new(store),
        PartitionId::new(0),
        clock,
        SimRng::seed_from_u64(args.seed + 1),
    );
    vm.monitor_mut().enable_tracing();
    let region = vm.map_region(8, PageClass::Anonymous);

    // (1)-(5): first access resolves with the zero page before waking.
    let report = vm.access(region.page(0), false);
    let mut idx = dump_trace(
        &vm,
        0,
        &format!(
            "first access to page 0 ({:?}, {})",
            report.outcome, report.latency
        ),
    );

    // Fill past capacity: (6)-(8) the asynchronous eviction path runs.
    vm.access(region.page(1), true);
    vm.access(region.page(2), true);
    vm.access(region.page(3), true);
    idx = dump_trace(
        &vm,
        idx,
        "capacity reached: asynchronous eviction + write list",
    );

    // Refault of an evicted page: the read path, with the eviction
    // interleaved under the network wait (§V-B).
    vm.drain_writes();
    let report = vm.access(region.page(0), false);
    dump_trace(
        &vm,
        idx,
        &format!(
            "refault of page 0 ({:?}, {})",
            report.outcome, report.latency
        ),
    );

    println!("\nmonitor stats: {:?}", vm.monitor().stats());
}
