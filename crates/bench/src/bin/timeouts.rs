//! Extension study: application timeouts under deep disaggregation.
//!
//! §VI-D1 closes with: beyond 480% WSS, Graph500 still completes, but
//! "other applications could impose timeouts on certain operations that
//! will be exceeded when using remote memory. Infiniswap only explored
//! applications with 50% of their working set in memory and cited
//! problems with thrashing and failing to complete beyond that split."
//!
//! This harness quantifies that: a latency-sensitive service performs
//! operations that each touch a handful of random pages under a fixed
//! deadline; we sweep the remote fraction of the working set and report
//! the deadline-miss rate per mechanism.

use fluidmem::sim::{SimDuration, SimRng};
use fluidmem::testbed::{BackendKind, Testbed};
use fluidmem_bench::{banner, pct, HarnessArgs, TextTable};
use fluidmem_mem::PageClass;

/// Pages touched per operation (an RPC handler walking a few objects).
const TOUCHES_PER_OP: u64 = 6;
/// Per-operation deadline.
const DEADLINE_US: f64 = 250.0;
const OPS: u64 = 8_000;

fn miss_rate(kind: BackendKind, wss_ratio: f64, seed: u64) -> f64 {
    let mut testbed = Testbed::scaled_down(512);
    testbed.local_dram_pages = 512;
    let mut backend = testbed.build(kind, seed);
    let wss_pages = (512f64 * wss_ratio) as u64;
    let region = backend.map_region(wss_pages, PageClass::Anonymous);
    let mut rng = SimRng::seed_from_u64(seed);
    for i in 0..wss_pages {
        backend.access(region.page(i), true);
    }
    let mut misses = 0u64;
    for _ in 0..OPS {
        let start = backend.clock().now();
        for _ in 0..TOUCHES_PER_OP {
            let page = rng.gen_index(wss_pages);
            backend.access(region.page(page), rng.gen_bool(0.5));
        }
        let elapsed = backend.clock().now() - start;
        if elapsed > SimDuration::from_micros_f64(DEADLINE_US) {
            misses += 1;
        }
    }
    misses as f64 / OPS as f64
}

fn main() {
    let args = HarnessArgs::parse(1);
    banner(
        "Extension: deadline misses vs. remote working-set fraction",
        &format!(
            "{TOUCHES_PER_OP} page touches per op, {DEADLINE_US}µs deadline, {OPS} ops per cell"
        ),
    );
    let ratios = [1.0, 2.0, 4.0, 8.0, 16.0];
    let mut table = TextTable::new(vec![
        "WSS / DRAM",
        "FluidMem RAMCloud",
        "Swap NVMeoF",
        "Swap SSD",
    ]);
    for ratio in ratios {
        table.row(vec![
            format!("{:.0}%", ratio * 100.0),
            pct(miss_rate(BackendKind::FluidMemRamCloud, ratio, args.seed)),
            pct(miss_rate(BackendKind::SwapNvmeof, ratio, args.seed)),
            pct(miss_rate(BackendKind::SwapSsd, ratio, args.seed)),
        ]);
    }
    table.print();
    println!("\n(FluidMem's faster fault path keeps deadline misses lower at every split,");
    println!("pushing the usable disaggregation depth past swap's — the Infiniswap 50%");
    println!("thrashing limit corresponds to the swap columns saturating first.)");
}
