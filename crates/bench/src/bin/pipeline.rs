//! `pipeline` — the staged fault pipeline's depth sweep: throughput and
//! fault-latency tails as the monitor holds 1→16 faults in flight.
//!
//! The paper's monitor is multi-threaded: each faulting vCPU blocks in
//! the kernel while a handler resolves its page, so several store round
//! trips overlap each other and the evictor. The reproduction's
//! call-return path (`Monitor::handle_fault`) serializes those round
//! trips; the staged pipeline (`Monitor::submit_fault` /
//! `Monitor::complete_next`) overlaps them on a deterministic event
//! queue. This harness measures what that buys:
//!
//! * a fleet of vCPUs over one RamCloud-class store, working set 4× the
//!   local buffer so most accesses refault from the store;
//! * depths 1, 2, 4, 8, 16 with the *same* seed and the *same* access
//!   sequence — the depth is the only variable;
//! * per-depth throughput (accesses per virtual ms), speedup over depth
//!   1, fault mix (parked / coalesced), and fault-latency p50/p99.
//!
//! Depth 1 is the call-return degenerate case (byte-identical to
//! `handle_fault`); depth ≥ 4 must beat it on throughput — the §V-B
//! asynchrony argument, extended from one overlapped read to many.
//!
//! Runs are fully deterministic: a fixed `--seed` reproduces the output
//! byte for byte (the check.sh gate runs the smoke sweep twice and
//! `cmp`s).
//!
//! Usage: `pipeline [--smoke] [--seed N] [--json FILE]`

use std::path::PathBuf;

use fluidmem_bench::json::{write_json_line, Json};
use fluidmem_bench::{banner, f2, TextTable};
use fluidmem_coord::PartitionId;
use fluidmem_core::{FluidMemMemory, MonitorConfig, ReclaimConfig};
use fluidmem_kv::RamCloudStore;
use fluidmem_sim::{SimClock, SimRng};
use fluidmem_vm::VcpuSet;

struct Args {
    smoke: bool,
    seed: u64,
    json_path: Option<PathBuf>,
}

/// Hand-rolled parsing (not `HarnessArgs`): this harness has no
/// `--scale` notion — `--smoke` selects the reduced sizes instead.
fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        seed: 42,
        json_path: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--seed" => {
                i += 1;
                args.seed = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or(42);
            }
            "--json" => {
                i += 1;
                args.json_path = argv.get(i).map(PathBuf::from);
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
        i += 1;
    }
    args
}

fn emit(args: &Args, record: &Json) {
    if let Some(path) = &args.json_path {
        if let Err(e) = write_json_line(path, record) {
            eprintln!("failed to write {path:?}: {e}");
        }
    }
}

struct Sizes {
    capacity: u64,
    wss_pages: u64,
    vcpus: u64,
    warmup_ops: u64,
    measured_ops: u64,
}

fn main() {
    let args = parse_args();
    let sizes = if args.smoke {
        Sizes {
            capacity: 256,
            wss_pages: 1024,
            vcpus: 8,
            warmup_ops: 2_000,
            measured_ops: 6_000,
        }
    } else {
        Sizes {
            capacity: 2048,
            wss_pages: 8192,
            vcpus: 16,
            warmup_ops: 16_000,
            measured_ops: 48_000,
        }
    };

    banner(
        "pipeline — staged fault pipeline depth sweep",
        &format!(
            "{} vCPUs, WSS {} pages over a {}-page buffer (4x oversubscribed), \
             RamCloud-class store, seed {}",
            sizes.vcpus, sizes.wss_pages, sizes.capacity, args.seed
        ),
    );

    let mut table = TextTable::new(vec![
        "depth",
        "ops/ms",
        "speedup",
        "faults",
        "parked",
        "coalesced",
        "p50 µs",
        "p99 µs",
    ]);
    let mut depth1_ops_per_ms = 0.0;
    for depth in [1usize, 2, 4, 8, 16] {
        let clock = SimClock::new();
        let store = RamCloudStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(args.seed));
        let vm = FluidMemMemory::new(
            MonitorConfig::new(sizes.capacity).inflight(depth),
            Box::new(store),
            PartitionId::new(0),
            clock,
            SimRng::seed_from_u64(args.seed ^ 0x9E37_79B9),
        );
        // The same workload seed at every depth: identical access
        // sequences, so the pipeline depth is the only variable.
        let mut set = VcpuSet::new(vm, sizes.vcpus, sizes.wss_pages).workload_seed(args.seed);
        set.run(sizes.warmup_ops);
        let mut stats = set.run(sizes.measured_ops);
        set.vm_mut().drain_writes();

        let ops_per_ms = stats.ops_per_ms();
        if depth == 1 {
            depth1_ops_per_ms = ops_per_ms;
        }
        let speedup = if depth1_ops_per_ms > 0.0 {
            ops_per_ms / depth1_ops_per_ms
        } else {
            0.0
        };
        let p50 = stats.fault_latency.percentile(0.50);
        let p99 = stats.fault_latency.percentile(0.99);
        table.row(vec![
            depth.to_string(),
            f2(ops_per_ms),
            format!("{:.2}x", speedup),
            stats.faults.to_string(),
            stats.parked.to_string(),
            stats.coalesced.to_string(),
            f2(p50),
            f2(p99),
        ]);
        emit(
            &args,
            &Json::object()
                .field("bench", "pipeline")
                .field("seed", args.seed as i64)
                .field("depth", depth as i64)
                .field("ops", stats.ops as i64)
                .field("faults", stats.faults as i64)
                .field("parked", stats.parked as i64)
                .field("coalesced", stats.coalesced as i64)
                .field("elapsed_ms", stats.elapsed.as_nanos() as f64 / 1e6)
                .field("ops_per_ms", ops_per_ms)
                .field("speedup_vs_depth1", speedup)
                .field("fault_p50_us", p50)
                .field("fault_p99_us", p99),
        );
    }
    table.print();
    println!(
        "\nDepth 1 is the call-return path; deeper rows overlap store round\n\
         trips (and coalesce duplicate fetches) on the event queue."
    );

    reclaim_sweep(&args, &sizes);
}

/// The background-reclaim sweep: the same harness per depth, inline
/// eviction vs the watermark-driven background evictor. Inline eviction
/// serializes `UFFD_REMAP` + write-list staging onto the monitor's
/// timeline between faults; the background evictor does that work on
/// its own virtual thread while vCPUs are suspended in read flights, so
/// at depth ≥ 4 the fault-latency tail must come down.
fn reclaim_sweep(args: &Args, sizes: &Sizes) {
    banner(
        "pipeline — background reclaim vs inline eviction",
        "same fleet and seed per depth; kswapd-style watermark evictor on/off is the only variable",
    );

    let run = |depth: usize, reclaim: bool| {
        let clock = SimClock::new();
        let store = RamCloudStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(args.seed));
        let mut config = MonitorConfig::new(sizes.capacity).inflight(depth);
        if reclaim {
            config = config.reclaim(ReclaimConfig::kswapd());
        }
        let vm = FluidMemMemory::new(
            config,
            Box::new(store),
            PartitionId::new(0),
            clock,
            SimRng::seed_from_u64(args.seed ^ 0x9E37_79B9),
        );
        let mut set = VcpuSet::new(vm, sizes.vcpus, sizes.wss_pages).workload_seed(args.seed);
        set.run(sizes.warmup_ops);
        let mut stats = set.run(sizes.measured_ops);
        set.vm_mut().drain_writes();
        let p99 = stats.fault_latency.percentile(0.99);
        let signals = set.vm().signals();
        (p99, signals)
    };

    let mut table = TextTable::new(vec![
        "depth",
        "inline p99 µs",
        "reclaim p99 µs",
        "bg reclaims",
        "direct",
        "tail win",
    ]);
    for depth in [1usize, 4, 8, 16] {
        let (inline_p99, _) = run(depth, false);
        let (reclaim_p99, signals) = run(depth, true);
        let tail_win = reclaim_p99 < inline_p99;
        table.row(vec![
            depth.to_string(),
            f2(inline_p99),
            f2(reclaim_p99),
            signals.background_reclaims.to_string(),
            signals.direct_reclaims.to_string(),
            if tail_win { "yes" } else { "no" }.to_string(),
        ]);
        emit(
            args,
            &Json::object()
                .field("bench", "pipeline_reclaim")
                .field("seed", args.seed as i64)
                .field("depth", depth as i64)
                .field("inline_p99_us", inline_p99)
                .field("reclaim_p99_us", reclaim_p99)
                .field("background_reclaims", signals.background_reclaims as i64)
                .field("direct_reclaims", signals.direct_reclaims as i64)
                .field("tail_win", tail_win),
        );
    }
    table.print();
    println!(
        "\nThe evictor wakes below {}% free headroom and reclaims to {}%\n\
         on its own timeline; `direct` counts pages a fault still had to\n\
         evict inline (the evictor fell behind).",
        ReclaimConfig::kswapd().watermark_low * 100.0,
        ReclaimConfig::kswapd().watermark_high * 100.0,
    );
}
