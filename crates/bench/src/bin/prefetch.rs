//! `prefetch` — the trend-detecting prefetcher's phase sweep: guest hit
//! rate and fault-latency tails as one access stream moves through
//! sequential, strided, and random phases.
//!
//! The paper's monitor fetches exactly the faulting page, so a
//! sequential or strided scan (pmbench sequential mode, Graph500
//! frontier walks) pays a full remote round trip per page while a swap
//! baseline gets kernel readahead for free. The `Stride` policy closes
//! that gap with a Leap-style majority-vote detector over the fault VPN
//! stream; this harness measures what the detector buys and what it
//! costs when the pattern it bets on disappears:
//!
//! * one VM over a RamCloud-class store, the whole region written out
//!   through a small buffer first so every phase refaults from remote;
//! * three phases over disjoint page ranges — `seq` (stride 1),
//!   `strided` (stride 7), `random` (uniform over a small tail) — with
//!   the *same* seed and access list for every policy row;
//! * policy rows: `none` and `stride` on both the call-return path and
//!   the depth-8 pipeline, plus the legacy `sequential` window.
//!
//! On the pipelined rows speculative reads park as real in-flight
//! operations, so a demand fault for a page already on the wire adopts
//! the flight and pays only its remaining time — the strided-phase p50
//! collapse the `prefetch_gate` record reports. On the random phase the
//! detector must decay and stop issuing within one window.
//!
//! Runs are fully deterministic: a fixed `--seed` reproduces the output
//! byte for byte (the check.sh gate runs the smoke sweep twice and
//! `cmp`s, then checks the gate record's hit rate and fatal counter).
//!
//! Usage: `prefetch [--smoke] [--seed N] [--json FILE]`

use std::path::PathBuf;

use fluidmem_bench::json::{write_json_line, Json};
use fluidmem_bench::{banner, f2, TextTable};
use fluidmem_coord::PartitionId;
use fluidmem_core::{FluidMemMemory, MonitorConfig, PipelineSubmit, PrefetchPolicy};
use fluidmem_kv::RamCloudStore;
use fluidmem_mem::{AccessOutcome, MemoryBackend, PageClass, PageContents};
use fluidmem_sim::stats::Sample;
use fluidmem_sim::{SimClock, SimDuration, SimRng};

/// Guest compute between accesses. This is what a prefetcher hides
/// latency behind: with zero think time the guest consumes pages faster
/// than any store can serve them and every speculative read is adopted
/// mid-flight rather than landing first.
const THINK: SimDuration = SimDuration::from_micros(6);

struct Args {
    smoke: bool,
    seed: u64,
    json_path: Option<PathBuf>,
}

/// Hand-rolled parsing (not `HarnessArgs`): this harness has no
/// `--scale` notion — `--smoke` selects the reduced sizes instead.
fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        seed: 42,
        json_path: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--seed" => {
                i += 1;
                args.seed = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or(42);
            }
            "--json" => {
                i += 1;
                args.json_path = argv.get(i).map(PathBuf::from);
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
        i += 1;
    }
    args
}

fn emit(args: &Args, record: &Json) {
    if let Some(path) = &args.json_path {
        if let Err(e) = write_json_line(path, record) {
            eprintln!("failed to write {path:?}: {e}");
        }
    }
}

struct Sizes {
    region_pages: u64,
    /// Buffer size during the warmup spill: small, so the whole region
    /// ends up in the store and every phase refaults from remote.
    warm_capacity: u64,
    /// Buffer size during the measured phases: larger than the region,
    /// so the headroom gate never binds and the policy is the variable.
    read_capacity: u64,
    phase_ops: u64,
}

/// The access list of one phase: a name and the page indices touched,
/// identical for every policy row.
fn phases(sizes: &Sizes, seed: u64) -> Vec<(&'static str, Vec<u64>)> {
    let n = sizes.phase_ops;
    let seq: Vec<u64> = (0..n).collect();
    // Disjoint from the sequential range so the detector re-trains.
    let strided_start = sizes.region_pages / 4;
    let strided: Vec<u64> = (0..n).map(|k| strided_start + 7 * k).collect();
    let last = strided_start + 7 * (n - 1);
    assert!(
        last < sizes.region_pages,
        "strided phase overruns the region"
    );
    // A small tail the strided walk never reaches: uniform re-touches.
    let tail_start = last + 64;
    let tail_len = sizes.region_pages - tail_start;
    let mut rng = SimRng::seed_from_u64(seed ^ 0x7A6E);
    let random: Vec<u64> = (0..n)
        .map(|_| tail_start + rng.gen_index(tail_len))
        .collect();
    vec![("seq", seq), ("strided", strided), ("random", random)]
}

struct PhaseResult {
    phase: &'static str,
    accesses: u64,
    hits: u64,
    faults: u64,
    /// p50/p99 over *all* accesses (hits are zero-latency): the
    /// guest-visible distribution a prefetcher actually moves.
    access_p50: f64,
    access_p99: f64,
    /// p50 over faulting accesses only: what one fault still costs.
    fault_p50: f64,
    issued: u64,
    prefetch_hits: u64,
}

impl PhaseResult {
    fn hit_rate(&self) -> f64 {
        self.hits as f64 / self.accesses as f64
    }

    /// Detector accuracy: prefetched pages the guest went on to touch
    /// (installed-then-hit or adopted in flight) per speculative read.
    fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.prefetch_hits as f64 / self.issued as f64
        }
    }
}

struct RunResult {
    phases: Vec<PhaseResult>,
    fatal_errors: u64,
}

fn run_config(sizes: &Sizes, seed: u64, policy: PrefetchPolicy, depth: usize) -> RunResult {
    let clock = SimClock::new();
    let store = RamCloudStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(seed));
    let mut vm = FluidMemMemory::new(
        MonitorConfig::new(sizes.warm_capacity)
            .prefetch(policy)
            .inflight(depth),
        Box::new(store),
        PartitionId::new(0),
        clock.clone(),
        SimRng::seed_from_u64(seed ^ 0x9E37_79B9),
    );
    let region = vm.map_region(sizes.region_pages, PageClass::Anonymous);

    // Spill the whole region through the small warm buffer so the
    // measured phases refault everything from the store, then grow the
    // buffer so prefetched pages have room to land.
    for p in 0..sizes.region_pages {
        vm.write_page(region.page(p), PageContents::Token(p * 31 + 7));
    }
    vm.drain_writes();
    vm.set_local_capacity(sizes.read_capacity)
        .expect("growing the buffer cannot fail");

    let mut results = Vec::new();
    for (phase, indices) in phases(sizes, seed) {
        let before = vm.monitor().stats();
        let mut hits = 0u64;
        let mut faults = 0u64;
        let mut fault_latencies = Sample::new();
        let mut access_latencies = Sample::new();
        for &idx in &indices {
            // The guest computes on the previous page, and the monitor
            // thread installs whatever speculative reads landed in the
            // meantime — the window prefetch hides latency behind.
            clock.advance(THINK);
            vm.poll_ready_completions();
            let addr = region.page(idx);
            // `None` = the access hit a mapped page (zero guest-visible
            // latency); `Some(d)` = the access faulted and stalled for `d`.
            let stall = if depth == 1 {
                let report = vm.access(addr, false);
                (report.outcome != AccessOutcome::Hit).then_some(report.latency)
            } else {
                match vm.submit_access(0, addr, false) {
                    PipelineSubmit::Ready(report) => {
                        (report.outcome != AccessOutcome::Hit).then_some(report.latency)
                    }
                    PipelineSubmit::Pending(_) => {
                        let done = vm
                            .complete_next_access()
                            .expect("a parked fault has a completion");
                        Some(done.wake_at - done.submitted_at)
                    }
                }
            };
            match stall {
                Some(d) => {
                    faults += 1;
                    fault_latencies.record_duration(d);
                    access_latencies.record_duration(d);
                }
                None => {
                    hits += 1;
                    access_latencies.record(0.0);
                }
            }
        }
        let after = vm.monitor().stats();
        results.push(PhaseResult {
            phase,
            accesses: indices.len() as u64,
            hits,
            faults,
            access_p50: access_latencies.percentile(0.50),
            access_p99: access_latencies.percentile(0.99),
            fault_p50: fault_latencies.percentile(0.50),
            issued: after.prefetch_issued - before.prefetch_issued,
            prefetch_hits: after.prefetch_hits - before.prefetch_hits,
        });
    }
    // Drain trailing speculative flights, then the write list, so every
    // row ends in a quiescent state.
    while vm.complete_next_access().is_some() {}
    vm.drain_writes();
    RunResult {
        fatal_errors: vm.monitor().stats().prefetch_fatal_errors,
        phases: results,
    }
}

fn main() {
    let args = parse_args();
    let sizes = if args.smoke {
        Sizes {
            region_pages: 8192,
            warm_capacity: 256,
            read_capacity: 16384,
            phase_ops: 800,
        }
    } else {
        Sizes {
            region_pages: 32768,
            warm_capacity: 512,
            read_capacity: 65536,
            phase_ops: 3000,
        }
    };

    banner(
        "prefetch — trend-detecting prefetch phase sweep",
        &format!(
            "{} region pages spilled through a {}-page buffer, then \
             seq/strided/random phases of {} reads each, seed {}",
            sizes.region_pages, sizes.warm_capacity, sizes.phase_ops, args.seed
        ),
    );

    let rows: Vec<(&'static str, PrefetchPolicy, usize)> = vec![
        ("none", PrefetchPolicy::None, 1),
        ("none-pipe8", PrefetchPolicy::None, 8),
        ("sequential", PrefetchPolicy::Sequential { window: 8 }, 1),
        (
            "stride",
            PrefetchPolicy::Stride {
                window: 16,
                max_depth: 8,
            },
            1,
        ),
        (
            "stride-pipe8",
            PrefetchPolicy::Stride {
                window: 16,
                max_depth: 8,
            },
            8,
        ),
    ];

    let mut table = TextTable::new(vec![
        "policy",
        "phase",
        "hit rate",
        "faults",
        "acc p50 µs",
        "acc p99 µs",
        "fault p50 µs",
        "issued",
        "accuracy",
    ]);
    let mut fatal_errors = 0u64;
    let mut strided_none_p50 = 0.0f64;
    let mut strided_pipe: Option<(f64, f64, f64)> = None; // (hit_rate, accuracy, access_p50)
    for (label, policy, depth) in rows {
        let run = run_config(&sizes, args.seed, policy, depth);
        fatal_errors += run.fatal_errors;
        for r in &run.phases {
            table.row(vec![
                label.to_string(),
                r.phase.to_string(),
                f2(r.hit_rate()),
                r.faults.to_string(),
                f2(r.access_p50),
                f2(r.access_p99),
                f2(r.fault_p50),
                r.issued.to_string(),
                f2(r.accuracy()),
            ]);
            emit(
                &args,
                &Json::object()
                    .field("bench", "prefetch")
                    .field("seed", args.seed as i64)
                    .field("policy", label)
                    .field("depth", depth as i64)
                    .field("phase", r.phase)
                    .field("accesses", r.accesses as i64)
                    .field("hits", r.hits as i64)
                    .field("hit_rate", r.hit_rate())
                    .field("faults", r.faults as i64)
                    .field("access_p50_us", r.access_p50)
                    .field("access_p99_us", r.access_p99)
                    .field("fault_p50_us", r.fault_p50)
                    .field("prefetch_issued", r.issued as i64)
                    .field("prefetch_hits", r.prefetch_hits as i64)
                    .field("accuracy", r.accuracy()),
            );
            if r.phase == "strided" {
                match label {
                    "none-pipe8" => strided_none_p50 = r.access_p50,
                    "stride-pipe8" => {
                        strided_pipe = Some((r.hit_rate(), r.accuracy(), r.access_p50));
                    }
                    _ => {}
                }
            }
        }
    }
    table.print();

    // The gate record: strided-phase quality of the depth-8 pipelined
    // stride row against the same-depth no-prefetch baseline. The metric
    // is the p50 over *all* accesses — a prefetcher wins by turning
    // faults into zero-latency hits, so the guest-visible distribution
    // is the honest comparison (residual faults are trend restarts and
    // still cost full latency individually).
    let (hit_rate, accuracy, p50) = strided_pipe.expect("stride-pipe8 row ran");
    // When the median access is a prefetch hit, access p50 is 0; floor
    // the divisor so the improvement ratio stays finite.
    let p50_improvement = strided_none_p50 / p50.max(0.01);
    println!(
        "\nStrided phase, depth-8 pipeline: hit rate {}, detector accuracy {},\n\
         access p50 {} µs vs {} µs without prefetch ({}x better); \
         {} fatal store errors.",
        f2(hit_rate),
        f2(accuracy),
        f2(p50),
        f2(strided_none_p50),
        f2(p50_improvement),
        fatal_errors
    );
    emit(
        &args,
        &Json::object()
            .field("bench", "prefetch_gate")
            .field("seed", args.seed as i64)
            .field("strided_hit_rate", hit_rate)
            .field("strided_accuracy", accuracy)
            .field("strided_access_p50_us", p50)
            .field("strided_access_p50_none_us", strided_none_p50)
            .field("p50_improvement", p50_improvement)
            .field("fatal_errors", fatal_errors as i64),
    );
}
