//! `scaling` — multi-VM hosting: how fault latency and throughput hold
//! up as one host's DRAM is shared by more VMs with bigger aggregate
//! working sets, plus the DRAM-arbiter policy face-off on a skewed
//! fleet.
//!
//! The paper evaluates one VM per host; its §IV partitioning exists so
//! many VMs can share one store. This harness measures that deployment:
//!
//! * **Sweep** — fleets of N ∈ {2, 4, 8, 16} VMs whose aggregate
//!   working set is 0.5×–4× host DRAM, under the proportional arbiter.
//!   Reports per-cell aggregate p50/p99 fault latency, throughput, and
//!   degradation relative to the best cell at the same fleet size
//!   (per-VM detail goes to `--json`).
//! * **Face-off** — one hot VM (weight 4) among three cold ones, run
//!   under each [`ArbiterPolicy`]. Static quota starves the hot VM at
//!   its even share; the demand-driven policies route the cold VMs'
//!   surplus to it, collapsing the host-wide tail.
//!
//! * **Cluster sweep** (`--cluster`, replaces the default output) —
//!   a fixed 4-VM fleet over a sharded store cluster, sweeping the
//!   store-node count. Every cell churns membership mid-measurement: a
//!   node joins (partitions live-migrate toward it) and another leaves
//!   gracefully (its partitions drain away), with the shadow-accounting
//!   audit proving zero pages lost or duplicated.
//!
//! * **Big-fleet sweep** (`--big`, replaces the default output) — holds
//!   per-VM DRAM and working set *constant* and scales the fleet to
//!   N ∈ {16, 64, 256} under the `slo_guarded` arbiter (every fourth VM
//!   carries a p99 fault-latency SLO). With the slab/arena data plane,
//!   per-VM throughput should stay flat as N grows — the table reports
//!   the N-core-normalized rate, peak tracked pages across the fleet,
//!   SLO-violation windows, and the floor audit (which must read zero).
//!   Writes one JSON record per fleet size to `BENCH_scaling.json`
//!   unless `--json` overrides the path; the file is truncated first so
//!   a rerun reproduces it byte for byte.
//!
//! Runs are fully deterministic: a fixed `--seed` reproduces the JSON
//! output byte for byte.
//!
//! Usage: `scaling [--smoke] [--cluster] [--big] [--seed N] [--json FILE]`

use std::path::PathBuf;

use fluidmem_bench::json::{write_json_line, Json};
use fluidmem_bench::{banner, f2, pct, TextTable};
use fluidmem_host::{ArbiterPolicy, HostAgent, HostConfig, VmSpec};
use fluidmem_kv::{ClusterHandle, ClusterStore, NodeId, RamCloudStore, TransportModel};
use fluidmem_sim::{SimClock, SimDuration, SimRng};

struct Args {
    smoke: bool,
    cluster: bool,
    big: bool,
    seed: u64,
    json_path: Option<PathBuf>,
}

/// Hand-rolled parsing (not `HarnessArgs`): this harness has no
/// `--scale` notion — `--smoke` selects the reduced grid instead.
fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        cluster: false,
        big: false,
        seed: 42,
        json_path: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--cluster" => args.cluster = true,
            "--big" => args.big = true,
            "--seed" => {
                i += 1;
                args.seed = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or(42);
            }
            "--json" => {
                i += 1;
                args.json_path = argv.get(i).map(PathBuf::from);
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
        i += 1;
    }
    args
}

fn emit(args: &Args, record: &Json) {
    if let Some(path) = &args.json_path {
        if let Err(e) = write_json_line(path, record) {
            eprintln!("failed to write {path:?}: {e}");
        }
    }
}

struct CellResult {
    n: usize,
    factor: f64,
    ops: u64,
    faults: u64,
    p50_us: f64,
    p99_us: f64,
    throughput: f64,
    per_vm: Vec<(String, u64, u64, f64, f64)>,
}

fn build_host(
    n: usize,
    specs: Vec<VmSpec>,
    dram: u64,
    policy: ArbiterPolicy,
    interval: u64,
    seed: u64,
    store_bytes: usize,
) -> HostAgent {
    let clock = SimClock::new();
    let store = RamCloudStore::new(store_bytes, clock.clone(), SimRng::seed_from_u64(seed));
    let config = HostConfig::new(dram)
        .policy(policy)
        .min_pages((dram / (4 * n as u64)).max(8))
        .rebalance_interval(interval);
    let mut host = HostAgent::new(
        config,
        Box::new(store),
        clock,
        SimRng::seed_from_u64(seed ^ 0x9E37_79B9),
    );
    for spec in specs {
        host.add_vm(spec);
    }
    host
}

fn run_cell(n: usize, factor: f64, dram: u64, interval: u64, seed: u64) -> CellResult {
    let aggregate_wss = ((dram as f64) * factor) as u64;
    let per_vm_wss = (aggregate_wss / n as u64).max(4);
    let specs = (0..n)
        .map(|i| VmSpec::new(format!("vm{i:02}"), per_vm_wss))
        .collect();
    let mut host = build_host(
        n,
        specs,
        dram,
        ArbiterPolicy::FaultRateProportional,
        interval,
        seed,
        1 << 30,
    );
    host.run(aggregate_wss * 2);
    host.reset_measurements();
    let measure = (aggregate_wss * 4).max(4_000);
    host.run(measure);
    let window_s = host.measurement_window().as_micros_f64() / 1e6;
    host.drain();

    let per_vm: Vec<(String, u64, u64, f64, f64)> = (0..n)
        .map(|i| {
            (
                host.vm_name(i).to_string(),
                host.vm_ops(i),
                host.vm_faults(i),
                host.vm_fault_percentile(i, 0.50),
                host.vm_fault_percentile(i, 0.99),
            )
        })
        .collect();
    CellResult {
        n,
        factor,
        ops: host.total_measured_ops(),
        faults: per_vm.iter().map(|v| v.2).sum(),
        p50_us: host.aggregate_fault_percentile(0.50),
        p99_us: host.aggregate_fault_percentile(0.99),
        throughput: if window_s > 0.0 {
            host.total_measured_ops() as f64 / window_s
        } else {
            0.0
        },
        per_vm,
    }
}

fn sweep(args: &Args, dram: u64, interval: u64) {
    let (fleet_sizes, factors): (&[usize], &[f64]) = if args.smoke {
        (&[2, 4, 8], &[0.5, 2.0])
    } else {
        (&[2, 4, 8, 16], &[0.5, 1.0, 2.0, 4.0])
    };
    banner(
        "Multi-VM scaling sweep",
        &format!(
            "host DRAM {dram} pages, proportional arbiter, aggregate WSS = factor x DRAM \
             (seed {})",
            args.seed
        ),
    );
    let mut table = TextTable::new(vec![
        "VMs",
        "WSS factor",
        "ops",
        "faults",
        "fault p50 (us)",
        "fault p99 (us)",
        "ops/s (sim)",
        "vs best at N",
    ]);
    for &n in fleet_sizes {
        let cells: Vec<CellResult> = factors
            .iter()
            .map(|&factor| run_cell(n, factor, dram, interval, args.seed))
            .collect();
        let best = cells.iter().map(|c| c.throughput).fold(0.0, f64::max);
        for cell in &cells {
            let degradation = if best > 0.0 {
                cell.throughput / best
            } else {
                0.0
            };
            table.row(vec![
                cell.n.to_string(),
                format!("{:.1}x", cell.factor),
                cell.ops.to_string(),
                cell.faults.to_string(),
                f2(cell.p50_us),
                f2(cell.p99_us),
                f2(cell.throughput),
                pct(degradation),
            ]);
            let per_vm = cell
                .per_vm
                .iter()
                .map(|(name, ops, faults, p50, p99)| {
                    Json::object()
                        .field("name", name.as_str())
                        .field("ops", *ops)
                        .field("faults", *faults)
                        .field("fault_p50_us", *p50)
                        .field("fault_p99_us", *p99)
                })
                .collect::<Vec<Json>>();
            emit(
                args,
                &Json::object()
                    .field("bench", "scaling")
                    .field("seed", args.seed)
                    .field("n_vms", cell.n as u64)
                    .field("wss_factor", cell.factor)
                    .field("dram_pages", dram)
                    .field("ops", cell.ops)
                    .field("faults", cell.faults)
                    .field("fault_p50_us", cell.p50_us)
                    .field("fault_p99_us", cell.p99_us)
                    .field("throughput_ops_per_s", cell.throughput)
                    .field("throughput_vs_best", degradation)
                    .field("per_vm", per_vm),
            );
        }
    }
    table.print();
}

fn cluster_node_store(seed: u64, id: NodeId, clock: &SimClock) -> RamCloudStore {
    RamCloudStore::new(
        1 << 28,
        clock.clone(),
        SimRng::seed_from_u64(seed.wrapping_mul(1031).wrapping_add(u64::from(id))),
    )
}

fn build_cluster_host(
    nodes: u32,
    n_vms: usize,
    per_vm_wss: u64,
    dram: u64,
    interval: u64,
    seed: u64,
) -> HostAgent {
    let clock = SimClock::new();
    let mut cluster = ClusterStore::new(
        clock.clone(),
        SimRng::seed_from_u64(seed ^ 0xC0B1_E500),
        TransportModel::infiniband_verbs(),
        64,
        32,
    );
    for id in 0..nodes {
        cluster.add_node(id, Box::new(cluster_node_store(seed, id, &clock)));
    }
    let config = HostConfig::new(dram)
        .policy(ArbiterPolicy::FaultRateProportional)
        .min_pages((dram / (4 * n_vms as u64)).max(8))
        .rebalance_interval(interval)
        .cluster_interval((interval / 2).max(1));
    let mut host = HostAgent::with_cluster(
        config,
        ClusterHandle::new(cluster),
        SimDuration::from_micros(1_000_000),
        clock,
        SimRng::seed_from_u64(seed ^ 0x9E37_79B9),
    );
    for i in 0..n_vms {
        host.add_vm(VmSpec::new(format!("vm{i:02}"), per_vm_wss));
    }
    host
}

/// Ticks the host's cluster maintenance until the copier settles (the
/// heartbeat RTTs advance the shared clock, so queued batch activations
/// become due).
fn settle_cluster(host: &mut HostAgent) {
    let handle = host.cluster_handle().expect("cluster host");
    for _ in 0..2_000 {
        host.cluster_tick_now();
        if handle.with(|c| c.migrations_in_flight()) == 0 {
            return;
        }
    }
    panic!("cluster migrations never settled");
}

fn cluster_sweep(args: &Args, dram: u64, interval: u64) {
    let node_counts: &[u32] = if args.smoke {
        &[1, 2, 4]
    } else {
        &[1, 2, 4, 8]
    };
    const N_VMS: usize = 4;
    let aggregate_wss = dram * 2;
    let per_vm_wss = (aggregate_wss / N_VMS as u64).max(4);
    banner(
        "Clustered remote-memory sweep (fixed fleet, varying store nodes)",
        &format!(
            "{N_VMS} VMs, aggregate WSS 2x DRAM ({dram} pages); every cell churns: \
             one node joins and one leaves mid-measurement (seed {})",
            args.seed
        ),
    );
    let mut table = TextTable::new(vec![
        "nodes",
        "ops",
        "faults",
        "fault p50 (us)",
        "fault p99 (us)",
        "ops/s (sim)",
        "migrations",
        "pages moved",
        "recopied",
        "lost",
        "dup",
    ]);
    for &nodes in node_counts {
        let mut host = build_cluster_host(nodes, N_VMS, per_vm_wss, dram, interval, args.seed);
        host.run(aggregate_wss * 2);
        host.reset_measurements();
        let measure = (aggregate_wss * 4).max(4_000);
        // First half on the starting membership...
        host.run(measure / 2);
        // ...then a node joins (its arc's partitions live-migrate in)...
        let joiner: NodeId = nodes;
        let clock = host.clock().clone();
        host.add_store_node(
            joiner,
            Box::new(cluster_node_store(args.seed, joiner, &clock)),
        );
        host.run(measure / 4);
        // ...and the first node leaves gracefully (its partitions drain).
        host.remove_store_node(0);
        host.run(measure - measure / 2 - measure / 4);
        let window_s = host.measurement_window().as_micros_f64() / 1e6;
        host.drain();
        settle_cluster(&mut host);

        let report = host.audit_cluster().expect("cluster host audits");
        let handle = host.cluster_handle().expect("cluster host");
        let (migrations, moved, recopied) = handle.with(|c| {
            (
                c.counters().migrations_flipped.get(),
                c.counters().pages_copied.get(),
                c.counters().pages_recopied.get(),
            )
        });
        let faults: u64 = (0..N_VMS).map(|i| host.vm_faults(i)).sum();
        let ops = host.total_measured_ops();
        let p50 = host.aggregate_fault_percentile(0.50);
        let p99 = host.aggregate_fault_percentile(0.99);
        let throughput = if window_s > 0.0 {
            ops as f64 / window_s
        } else {
            0.0
        };
        table.row(vec![
            format!("{nodes}+1-1"),
            ops.to_string(),
            faults.to_string(),
            f2(p50),
            f2(p99),
            f2(throughput),
            migrations.to_string(),
            moved.to_string(),
            recopied.to_string(),
            report.missing.len().to_string(),
            report.duplicated.len().to_string(),
        ]);
        emit(
            args,
            &Json::object()
                .field("bench", "scaling_cluster")
                .field("seed", args.seed)
                .field("store_nodes", u64::from(nodes))
                .field("n_vms", N_VMS as u64)
                .field("dram_pages", dram)
                .field("ops", ops)
                .field("faults", faults)
                .field("fault_p50_us", p50)
                .field("fault_p99_us", p99)
                .field("throughput_ops_per_s", throughput)
                .field("migrations", migrations)
                .field("pages_moved", moved)
                .field("pages_recopied", recopied)
                .field("shadow_pages", report.checked)
                .field("lost_pages", report.missing.len() as u64)
                .field("duplicated_pages", report.duplicated.len() as u64),
        );
        assert!(
            report.is_clean(),
            "cluster audit failed at {nodes} nodes: {} lost, {} duplicated",
            report.missing.len(),
            report.duplicated.len()
        );
    }
    table.print();
    println!(
        "\nEvery cell survived a mid-run join and a graceful leave: partitions \
         live-migrated (dirty pages re-copied off the write log) and the shadow \
         audit confirms no page was lost or duplicated."
    );
}

/// The p99 fault-latency target (µs) carried by every fourth VM in the
/// big-fleet sweep — close enough to the overcommitted fleet's actual
/// tail that the guard genuinely engages.
const BIG_SLO_P99_US: f64 = 35.0;

fn big_sweep(args: &Args) {
    let (fleet_sizes, dram_per_vm, per_vm_wss): (&[usize], u64, u64) = if args.smoke {
        (&[16, 64], 256, 512)
    } else {
        (&[16, 64, 256], 2048, 4096)
    };
    banner(
        "Big-fleet scaling sweep (per-VM resources held constant)",
        &format!(
            "{dram_per_vm} DRAM pages and {per_vm_wss}-page WSS per VM (2x overcommit), \
             slo_guarded arbiter, every 4th VM holds a {BIG_SLO_P99_US} us p99 SLO \
             (seed {})",
            args.seed
        ),
    );
    let mut table = TextTable::new(vec![
        "VMs",
        "DRAM pages",
        "ops",
        "faults",
        "fault p50 (us)",
        "fault p99 (us)",
        "ops/s per VM",
        "tracked pages",
        "SLO windows",
        "floor misses",
    ]);
    for &n in fleet_sizes {
        let dram = dram_per_vm * n as u64;
        let interval = n as u64 * 64;
        let specs: Vec<VmSpec> = (0..n)
            .map(|i| {
                let spec = VmSpec::new(format!("vm{i:03}"), per_vm_wss);
                if i % 4 == 0 {
                    spec.slo_p99(BIG_SLO_P99_US)
                } else {
                    spec
                }
            })
            .collect();
        let aggregate_wss = per_vm_wss * n as u64;
        // Size the store's log to 4x the aggregate working set: records
        // hold token contents (accounting bytes, not real page frames),
        // and the headroom keeps the segment cleaner off the hot path.
        let store_bytes = aggregate_wss as usize * 4096 * 4;
        let mut host = build_host(
            n,
            specs,
            dram,
            ArbiterPolicy::SloGuarded,
            interval,
            args.seed,
            store_bytes,
        );
        host.run(aggregate_wss);
        host.reset_measurements();
        host.run(aggregate_wss * 2);
        let window_s = host.measurement_window().as_micros_f64() / 1e6;
        host.drain();

        let ops = host.total_measured_ops();
        let faults: u64 = (0..n).map(|i| host.vm_faults(i)).sum();
        let p50 = host.aggregate_fault_percentile(0.50);
        let p99 = host.aggregate_fault_percentile(0.99);
        // Every VM's CPU serializes on the one simulated clock, so the
        // aggregate rate over the shared window *is* the per-VM rate on
        // an N-core host where each VM owns a core. Holding per-VM
        // resources constant, a flat value across fleet sizes means the
        // data plane added no superlinear cost.
        let per_vm_rate = if window_s > 0.0 {
            ops as f64 / window_s
        } else {
            0.0
        };
        let tracked: u64 = (0..n).map(|i| host.vm_seen_pages(i) as u64).sum();
        let slo_violations = host.slo_violations();
        let floor_misses = host.floor_misses();
        assert_eq!(
            floor_misses, 0,
            "slo_guarded throttled a VM below the progress floor at N = {n}"
        );
        table.row(vec![
            n.to_string(),
            dram.to_string(),
            ops.to_string(),
            faults.to_string(),
            f2(p50),
            f2(p99),
            f2(per_vm_rate),
            tracked.to_string(),
            slo_violations.to_string(),
            floor_misses.to_string(),
        ]);
        emit(
            args,
            &Json::object()
                .field("bench", "scaling_big")
                .field("seed", args.seed)
                .field("n_vms", n as u64)
                .field("dram_pages", dram)
                .field("per_vm_wss", per_vm_wss)
                .field("ops", ops)
                .field("faults", faults)
                .field("fault_p50_us", p50)
                .field("fault_p99_us", p99)
                .field("throughput_per_vm_ops_s", per_vm_rate)
                .field("peak_tracked_pages", tracked)
                .field("slo_violations", slo_violations)
                .field("floor_misses", floor_misses),
        );
    }
    table.print();
    println!(
        "\nPer-VM resources are constant, so a flat ops/s-per-VM column is the \
         slab data plane holding up; the floor-miss column must read zero — \
         SLO throttling never starves a donor VM."
    );
}

fn faceoff(args: &Args, dram: u64, interval: u64) {
    banner(
        "Arbiter policy face-off (skewed fleet)",
        "one hot VM (weight 4, WSS 5/8 of DRAM) vs three cold VMs (WSS 1/16 each)",
    );
    let mut table = TextTable::new(vec![
        "policy",
        "hot VM grant",
        "faults",
        "access p99 (us)",
        "fault p99 (us)",
    ]);
    let hot_wss = dram * 5 / 8;
    let cold_wss = (dram / 16).max(4);
    // The original three policies, pinned: refault_proportional is
    // exercised by the `workingset` bench, and adding a row here would
    // change this bench's long-stable output.
    let faceoff = [
        ArbiterPolicy::StaticQuota,
        ArbiterPolicy::FaultRateProportional,
        ArbiterPolicy::MinGuaranteeWorkStealing,
    ];
    for policy in faceoff {
        let specs = vec![
            VmSpec::new("hot", hot_wss).weight(4),
            VmSpec::new("cold-a", cold_wss),
            VmSpec::new("cold-b", cold_wss),
            VmSpec::new("cold-c", cold_wss),
        ];
        let mut host = build_host(4, specs, dram, policy, interval, args.seed, 1 << 30);
        host.run(dram * 6);
        host.reset_measurements();
        host.run(dram * 12);
        host.drain();
        let faults: u64 = (0..4).map(|i| host.vm_faults(i)).sum();
        let access_p99 = host.aggregate_access_percentile(0.99);
        let fault_p99 = host.aggregate_fault_percentile(0.99);
        table.row(vec![
            policy.label().to_string(),
            host.vm_capacity(0).to_string(),
            faults.to_string(),
            f2(access_p99),
            f2(fault_p99),
        ]);
        emit(
            args,
            &Json::object()
                .field("bench", "scaling_policy")
                .field("seed", args.seed)
                .field("policy", policy.label())
                .field("dram_pages", dram)
                .field("hot_capacity_pages", host.vm_capacity(0))
                .field("faults", faults)
                .field("access_p99_us", access_p99)
                .field("fault_p99_us", fault_p99),
        );
    }
    table.print();
    println!(
        "\nStatic quota pins the hot VM at its even share; the demand-driven \
         policies feed it the cold VMs' surplus and the host-wide tail drops."
    );
}

fn main() {
    let mut args = parse_args();
    let (dram, interval) = if args.smoke { (256, 128) } else { (2048, 512) };
    if args.big {
        // A separate mode with its own default JSON artifact. The file
        // is truncated up front (`write_json_line` appends) so running
        // the sweep twice yields byte-identical artifacts.
        let path = args
            .json_path
            .take()
            .unwrap_or_else(|| PathBuf::from("BENCH_scaling.json"));
        let _ = std::fs::remove_file(&path);
        args.json_path = Some(path);
        big_sweep(&args);
        return;
    }
    if args.cluster {
        // A separate mode, not an extra section: the default output is
        // pinned byte-for-byte by the determinism gate in check.sh.
        cluster_sweep(&args, dram, interval);
        return;
    }
    sweep(&args, dram, interval);
    faceoff(&args, dram, interval);
}
