//! Table II: average page-fault latency measured from the application
//! under the §V-B optimization ablation.
//!
//! The paper's setup: a test program linked directly against the
//! libuserfault library (no VM layer), accessing memory sequentially or
//! randomly, with the kernel's `perf` measuring fault-resolution time.
//!
//! Paper values (µs):
//!
//! | Optimization | DRAM seq | DRAM rand | RAMCloud seq | RAMCloud rand |
//! |---|---|---|---|---|
//! | Default | 27.25 | 28.15 | 66.71 | 58.70 |
//! | Async Read | 25.26 | 25.00 | 51.08 | 49.33 |
//! | Async Write | 23.67 | 30.26 | 42.88 | 43.40 |
//! | Async Read/Write | 21.30 | 24.37 | 29.47 | 29.20 |

use fluidmem_bench::{banner, f2, HarnessArgs, TextTable};
use fluidmem_coord::PartitionId;
use fluidmem_core::{FluidMemMemory, MonitorConfig, Optimizations};
use fluidmem_kv::{DramStore, KeyValueStore, RamCloudStore};
use fluidmem_mem::{AccessOutcome, MemoryBackend, PageClass};
use fluidmem_sim::{SimClock, SimRng};

#[derive(Clone, Copy)]
enum Pattern {
    Sequential,
    Random,
}

fn run_case(
    store_kind: &str,
    opts: Optimizations,
    pattern: Pattern,
    seed: u64,
    faults: u64,
) -> f64 {
    let clock = SimClock::new();
    let store: Box<dyn KeyValueStore> = match store_kind {
        "dram" => Box::new(DramStore::new(
            4 << 30,
            clock.clone(),
            SimRng::seed_from_u64(seed),
        )),
        _ => Box::new(RamCloudStore::new(
            4 << 30,
            clock.clone(),
            SimRng::seed_from_u64(seed),
        )),
    };
    // `bare_process`: the Table II program has no VM layer.
    let config = MonitorConfig::new(2048).optimizations(opts).bare_process();
    let mut vm = FluidMemMemory::new(
        config,
        store,
        PartitionId::new(0),
        clock,
        SimRng::seed_from_u64(seed + 1),
    );
    let region = vm.map_region(8192, PageClass::Anonymous);
    let mut rng = SimRng::seed_from_u64(seed + 2);

    // Populate (the program writes the region once), ensuring later
    // accesses are refaults.
    for i in 0..region.pages() {
        vm.access(region.page(i), true);
    }

    let mut total_us = 0.0;
    let mut count = 0u64;
    let mut seq = 0u64;
    let mut n = 0u64;
    while count < faults && n < faults * 40 {
        n += 1;
        let i = match pattern {
            Pattern::Sequential => {
                seq = (seq + 1) % region.pages();
                seq
            }
            Pattern::Random => rng.gen_index(region.pages()),
        };
        let report = vm.access(region.page(i), rng.gen_bool(0.5));
        if report.outcome == AccessOutcome::MajorFault {
            total_us += report.latency.as_micros_f64();
            count += 1;
        }
    }
    total_us / count.max(1) as f64
}

fn main() {
    let args = HarnessArgs::parse(8);
    let faults = 60_000 / args.scale_denominator.max(1);

    banner(
        "Table II: fault latency under the optimization ablation (libuserfault, no VM)",
        &format!("{faults} measured major faults per cell"),
    );

    let cases = [
        (
            Optimizations {
                async_read: false,
                async_write: false,
            },
            [27.25, 28.15, 66.71, 58.70],
        ),
        (
            Optimizations {
                async_read: true,
                async_write: false,
            },
            [25.26, 25.00, 51.08, 49.33],
        ),
        (
            Optimizations {
                async_read: false,
                async_write: true,
            },
            [23.67, 30.26, 42.88, 43.40],
        ),
        (
            Optimizations {
                async_read: true,
                async_write: true,
            },
            [21.30, 24.37, 29.47, 29.20],
        ),
    ];

    let mut table = TextTable::new(vec![
        "Optimization",
        "DRAM seq",
        "DRAM rand",
        "RC seq",
        "RC rand",
        "paper (D-seq/D-rand/RC-seq/RC-rand)",
    ]);
    for (opts, paper) in cases {
        let d_seq = run_case("dram", opts, Pattern::Sequential, args.seed, faults);
        let d_rand = run_case("dram", opts, Pattern::Random, args.seed + 10, faults);
        let r_seq = run_case(
            "ramcloud",
            opts,
            Pattern::Sequential,
            args.seed + 20,
            faults,
        );
        let r_rand = run_case("ramcloud", opts, Pattern::Random, args.seed + 30, faults);
        table.row(vec![
            opts.label().to_string(),
            f2(d_seq),
            f2(d_rand),
            f2(r_seq),
            f2(r_rand),
            format!(
                "{} / {} / {} / {}",
                f2(paper[0]),
                f2(paper[1]),
                f2(paper[2]),
                f2(paper[3])
            ),
        ]);
    }
    table.print();
    println!("\n(units: µs; both async optimizations compose to the largest win, as in the paper)");
}
