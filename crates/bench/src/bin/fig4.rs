//! Figure 4: Graph500 harmonic-mean TEPS for working-set sizes from 60%
//! to 480% of local DRAM, across all six configurations.
//!
//! Paper shape: (a) at WSS 60% everything is local and FluidMem pays a
//! ≈2.6% full-disaggregation overhead; (b) at 120% FluidMem beats swap by
//! a wide margin because it can move idle OS pages out of DRAM (even
//! FluidMem/Memcached beats swap/NVMeoF and swap/SSD); (c,d) at 240–480%
//! FluidMem/RAMCloud still beats swap/NVMeoF, but swap/DRAM edges out
//! FluidMem/DRAM because kswapd's active/inactive aging picks better
//! victims than the monitor's first-touch list.
//!
//! The sweep keeps the paper's *proportions* (DRAM = WSS/ratio, OS
//! footprint = 31% of DRAM) at a reduced absolute scale, exactly as
//! §VI-D1 argues results generalize.

use fluidmem::testbed::{BackendKind, Testbed};
use fluidmem_bench::json::Json;
use fluidmem_bench::{banner, f2, HarnessArgs, TextTable};
use fluidmem_mem::PAGE_SIZE;
use fluidmem_sim::SimRng;
use fluidmem_vm::{GuestOsProfile, Vm};
use fluidmem_workloads::graph500::{generate_edges, run_benchmark, CsrGraph, Graph500Config};

/// WSS as a fraction of DRAM for paper scales 20..=23.
const RATIOS: [(u32, f64); 4] = [(20, 0.6), (21, 1.2), (22, 2.4), (23, 4.8)];
/// OS footprint as a fraction of DRAM (317 MB / 1 GB).
const OS_FRACTION: f64 = 0.309;

fn wss_pages(config: &Graph500Config, graph: &CsrGraph) -> u64 {
    let page = PAGE_SIZE as u64;
    let n = config.vertices();
    (8 * (n + 1)).div_ceil(page)
        + (4 * graph.adjacency_len().max(1)).div_ceil(page)
        + (8 * n).div_ceil(page)
        + (4 * n).div_ceil(page)
}

fn main() {
    let args = HarnessArgs::parse(128);
    let shift = 63 - args.scale_denominator.max(1).leading_zeros(); // log2
    let roots = if args.scale_denominator == 1 { 64 } else { 8 };

    for (paper_scale, ratio) in RATIOS {
        let actual_scale = paper_scale.saturating_sub(shift).max(8);
        let config = Graph500Config::quick(actual_scale, roots);
        let edges = generate_edges(&config);
        let graph = CsrGraph::build(config.vertices(), &edges);
        let wss = wss_pages(&config, &graph);
        let dram = ((wss as f64 / ratio) as u64).max(64);
        let os_pages = (dram as f64 * OS_FRACTION) as u64;

        banner(
            &format!(
                "Figure 4{}: Graph500, WSS {:.0}% of DRAM (paper scale {paper_scale}, run at scale {actual_scale})",
                (b'a' + (paper_scale - 20) as u8) as char,
                ratio * 100.0
            ),
            &format!(
                "WSS {wss} pages, DRAM {dram} pages, OS footprint {os_pages} pages, {roots} BFS roots"
            ),
        );

        let mut table = TextTable::new(vec![
            "configuration",
            "harmonic-mean MTEPS",
            "vs FluidMem RAMCloud",
            "major faults",
        ]);
        let mut mteps_all = Vec::new();
        for kind in BackendKind::ALL {
            let mut testbed = Testbed::scaled_down(args.scale_denominator);
            testbed.local_dram_pages = dram;
            testbed.store_bytes = (wss as usize + os_pages as usize) * PAGE_SIZE * 3;
            testbed.device_blocks = (wss + os_pages) * 8;
            let backend = testbed.build(kind, args.seed);
            let mut vm = Vm::boot(backend, GuestOsProfile::scaled_to(os_pages));
            let mut rng = SimRng::seed_from_u64(args.seed ^ u64::from(paper_scale));
            let report = run_benchmark(vm.backend_mut(), &graph, &config, &mut rng);
            let mteps = report.harmonic_mean_teps() / 1e6;
            args.emit_json(
                &Json::object()
                    .field("experiment", "fig4")
                    .field("paper_scale", u64::from(paper_scale))
                    .field("actual_scale", u64::from(actual_scale))
                    .field("wss_ratio", ratio)
                    .field("configuration", kind.label())
                    .field("mteps", mteps)
                    .field("major_faults", vm.backend().counters().major_faults)
                    .field("seed", args.seed),
            );
            mteps_all.push((kind, mteps, vm.backend().counters().major_faults));
        }
        let rc = mteps_all
            .iter()
            .find(|(k, _, _)| *k == BackendKind::FluidMemRamCloud)
            .map(|(_, m, _)| *m)
            .unwrap_or(1.0);
        for (kind, mteps, majors) in &mteps_all {
            table.row(vec![
                kind.label().to_string(),
                f2(*mteps),
                format!("{:+.1}%", (mteps / rc - 1.0) * 100.0),
                majors.to_string(),
            ]);
        }
        table.print();
    }

    println!("\nPaper reference shape: (a) all ≈45 MTEPS with FluidMem ≈2.6% behind swap;");
    println!(
        "(b) FluidMem >> swap; (c,d) FluidMem/RAMCloud > swap/NVMeoF, swap/DRAM ≳ FluidMem/DRAM."
    );
}
