//! Design-choice ablations beyond the paper's tables, covering the
//! decisions DESIGN.md calls out:
//!
//! 1. **Write-list batch size & stealing** (§V-B): batch-size sweep
//!    showing flush amortization and the page-steal hit rate.
//! 2. **`UFFD_REMAP` vs `UFFD_COPY` eviction** (§V-B zero-copy
//!    discussion): remap avoids the 4 KB copy but pays TLB shootdowns.
//! 3. **LRU reordering** (§V-A's "future optimization"): the
//!    `ScanReferenced` policy closes part of the Figure 4c gap against
//!    kswapd's aging.
//! 4. **Virtual-partition table throughput** (§IV): concurrent VM
//!    registration against the replicated coordination service,
//!    including a leader failover mid-burst.

use fluidmem_bench::{banner, f2, pct, HarnessArgs, TextTable};
use fluidmem_coord::{CoordCluster, PartitionId, PartitionTable, VmIdentity};
use fluidmem_core::{EvictionMechanism, FluidMemMemory, LruPolicy, MonitorConfig, PrefetchPolicy};
use fluidmem_kv::{CompressedStore, KeyValueStore, RamCloudStore, ReplicatedStore};
use fluidmem_mem::{AccessOutcome, MemoryBackend, PageClass, PageContents, PAGE_SIZE};
use fluidmem_sim::SimDuration;
use fluidmem_sim::{SimClock, SimRng};
use fluidmem_workloads::pmbench::{self, PmbenchConfig};

fn fluidmem(config: MonitorConfig, seed: u64) -> FluidMemMemory {
    let clock = SimClock::new();
    let store = RamCloudStore::new(4 << 30, clock.clone(), SimRng::seed_from_u64(seed));
    FluidMemMemory::new(
        config,
        Box::new(store),
        PartitionId::new(0),
        clock,
        SimRng::seed_from_u64(seed + 1),
    )
}

fn ablation_batch_size(args: &HarnessArgs) {
    banner(
        "Ablation 1: write-list batch size and page stealing",
        "pmbench-style random traffic, 4x overcommit, RAMCloud backend",
    );
    let mut table = TextTable::new(vec![
        "batch size",
        "avg access (µs)",
        "multiwrites",
        "steal rate",
        "inflight waits",
    ]);
    for batch in [1usize, 8, 32, 128] {
        let mut vm = fluidmem(MonitorConfig::new(1024).write_batch(batch), args.seed);
        let region = vm.map_region(4096, PageClass::Anonymous);
        let mut rng = SimRng::seed_from_u64(args.seed + 5);
        let config = PmbenchConfig {
            wss_pages: 4096,
            duration: SimDuration::from_millis(400),
            read_ratio: 0.5,
            max_accesses: 60_000,
        };
        let report = pmbench::run_on_region(&mut vm, region, &config, &mut rng);
        let stats = vm.monitor().stats();
        let store_stats = vm.monitor().store().stats();
        let steal_rate = stats.write_list_steals as f64
            / (stats.remote_reads + stats.write_list_steals).max(1) as f64;
        table.row(vec![
            batch.to_string(),
            f2(report.avg_latency_us()),
            store_stats.multi_writes.to_string(),
            pct(steal_rate),
            stats.inflight_waits.to_string(),
        ]);
    }
    table.print();
    println!(
        "(bigger batches amortize round trips; the write list also absorbs refaults as steals)"
    );
}

fn ablation_eviction_mechanism(args: &HarnessArgs) {
    banner(
        "Ablation 2: UFFD_REMAP (zero-copy) vs UFFD_COPY eviction",
        "identical traffic; remap trades a 4 KB copy for TLB synchronization",
    );
    let mut table = TextTable::new(vec!["mechanism", "avg access (µs)", "evictions"]);
    for (mechanism, label) in [
        (EvictionMechanism::Remap, "UFFD_REMAP (paper)"),
        (EvictionMechanism::Copy, "UFFD_COPY"),
    ] {
        let mut vm = fluidmem(MonitorConfig::new(1024).eviction(mechanism), args.seed);
        let region = vm.map_region(4096, PageClass::Anonymous);
        let mut rng = SimRng::seed_from_u64(args.seed + 6);
        let config = PmbenchConfig {
            wss_pages: 4096,
            duration: SimDuration::from_millis(400),
            read_ratio: 0.5,
            max_accesses: 60_000,
        };
        let report = pmbench::run_on_region(&mut vm, region, &config, &mut rng);
        table.row(vec![
            label.to_string(),
            f2(report.avg_latency_us()),
            vm.monitor().stats().evictions.to_string(),
        ]);
    }
    table.print();
    println!(
        "(with the async optimizations the shootdown hides under the read, so remap wins slightly)"
    );
}

fn ablation_lru_policy(args: &HarnessArgs) {
    banner(
        "Ablation 3: LRU reordering (the §V-A future optimization)",
        "skewed re-reference traffic where first-touch FIFO evicts hot pages",
    );
    let mut table = TextTable::new(vec!["policy", "major-fault rate", "avg access (µs)"]);
    for (policy, label) in [
        (LruPolicy::FirstTouch, "first-touch (paper)"),
        (
            LruPolicy::ScanReferenced { scan_batch: 8 },
            "scan-referenced (ablation)",
        ),
    ] {
        let mut vm = fluidmem(MonitorConfig::new(512).lru_policy(policy), args.seed);
        let region = vm.map_region(2048, PageClass::Anonymous);
        let mut rng = SimRng::seed_from_u64(args.seed + 7);
        // 80% of accesses hit a hot quarter of the WSS — the pattern the
        // kernel's aging exploits and first-touch FIFO cannot.
        let mut faults = 0u64;
        let mut total = 0u64;
        let t0 = vm.clock().now();
        for _ in 0..80_000u64 {
            let page = if rng.gen_bool(0.8) {
                rng.gen_index(region.pages() / 4)
            } else {
                region.pages() / 4 + rng.gen_index(region.pages() * 3 / 4)
            };
            let report = vm.access(region.page(page), rng.gen_bool(0.5));
            total += 1;
            if report.outcome == AccessOutcome::MajorFault {
                faults += 1;
            }
        }
        let elapsed = vm.clock().now() - t0;
        table.row(vec![
            label.to_string(),
            pct(faults as f64 / total as f64),
            f2(elapsed.as_micros_f64() / total as f64),
        ]);
    }
    table.print();
    println!(
        "(referenced-bit scanning keeps the hot set resident — the gap kswapd exploits in Fig. 4c)"
    );
}

fn ablation_partition_table(args: &HarnessArgs) {
    banner(
        "Ablation 4: virtual-partition table under churn",
        "3-replica coordination service; 300 VM registrations with a mid-burst leader failover",
    );
    let clock = SimClock::new();
    let mut cluster = CoordCluster::new(3, clock.clone(), SimRng::seed_from_u64(args.seed));
    PartitionTable::init(&mut cluster).unwrap();
    let t0 = clock.now();
    let mut allocated = Vec::new();
    for pid in 0..300u64 {
        if pid == 150 {
            let leader = cluster.leader().unwrap();
            cluster.kill(leader);
            cluster.elect().unwrap();
        }
        allocated.push(
            PartitionTable::allocate(
                &mut cluster,
                VmIdentity {
                    pid,
                    hypervisor: pid % 7,
                },
            )
            .unwrap(),
        );
    }
    let elapsed = clock.now() - t0;
    let unique: std::collections::HashSet<_> = allocated.iter().collect(); // lint: order-independent (only len is read)
    let mut table = TextTable::new(vec!["metric", "value"]);
    table.row(vec!["registrations".to_string(), "300".to_string()]);
    table.row(vec![
        "unique partitions".to_string(),
        unique.len().to_string(),
    ]);
    table.row(vec![
        "mean registration latency".to_string(),
        format!("{:.1} µs", elapsed.as_micros_f64() / 300.0),
    ]);
    table.row(vec![
        "leader failovers survived".to_string(),
        "1".to_string(),
    ]);
    table.print();
    assert_eq!(unique.len(), 300, "uniqueness must hold across failover");
}

fn ablation_replication(args: &HarnessArgs) {
    banner(
        "Ablation 5: replication across remote servers (§III customization)",
        "paper §VI-A claim: with asynchronous writes, replication barely moves fault latency",
    );
    let mut table = TextTable::new(vec!["store", "avg access (µs)", "store writes"]);
    for replicas in [1usize, 2, 3] {
        let clock = SimClock::new();
        let backends: Vec<Box<dyn KeyValueStore>> = (0..replicas)
            .map(|i| {
                Box::new(RamCloudStore::new(
                    2 << 30,
                    clock.clone(),
                    SimRng::seed_from_u64(args.seed + i as u64),
                )) as Box<dyn KeyValueStore>
            })
            .collect();
        let store = ReplicatedStore::new(backends);
        let mut vm = FluidMemMemory::new(
            MonitorConfig::new(1024),
            Box::new(store),
            PartitionId::new(0),
            clock,
            SimRng::seed_from_u64(args.seed + 40),
        );
        let region = vm.map_region(4096, PageClass::Anonymous);
        let mut rng = SimRng::seed_from_u64(args.seed + 41);
        let config = PmbenchConfig {
            wss_pages: 4096,
            duration: SimDuration::from_millis(300),
            read_ratio: 0.5,
            max_accesses: 40_000,
        };
        let report = pmbench::run_on_region(&mut vm, region, &config, &mut rng);
        table.row(vec![
            format!("{replicas}x RAMCloud"),
            f2(report.avg_latency_us()),
            vm.monitor().store().stats().total_puts().to_string(),
        ]);
    }
    table.print();
    println!(
        "(writes are off the critical path, so extra replicas cost ~nothing — as §VI-A argues)"
    );
}

fn ablation_compression(args: &HarnessArgs) {
    banner(
        "Ablation 6: page compression (§III customization)",
        "CPU per page traded against remote-store bytes",
    );
    let mut table = TextTable::new(vec!["store", "avg access (µs)"]);
    for compressed in [false, true] {
        let clock = SimClock::new();
        let inner = RamCloudStore::new(2 << 30, clock.clone(), SimRng::seed_from_u64(args.seed));
        let store: Box<dyn KeyValueStore> = if compressed {
            Box::new(CompressedStore::new(
                Box::new(inner),
                clock.clone(),
                SimRng::seed_from_u64(args.seed + 50),
            ))
        } else {
            Box::new(inner)
        };
        let mut vm = FluidMemMemory::new(
            MonitorConfig::new(1024),
            store,
            PartitionId::new(0),
            clock,
            SimRng::seed_from_u64(args.seed + 51),
        );
        let region = vm.map_region(4096, PageClass::Anonymous);
        let mut rng = SimRng::seed_from_u64(args.seed + 52);
        let config = PmbenchConfig {
            wss_pages: 4096,
            duration: SimDuration::from_millis(300),
            read_ratio: 0.5,
            max_accesses: 40_000,
        };
        let report = pmbench::run_on_region(&mut vm, region, &config, &mut rng);
        table.row(vec![
            if compressed {
                "RAMCloud + RLE".to_string()
            } else {
                "RAMCloud".to_string()
            },
            f2(report.avg_latency_us()),
        ]);
    }
    table.print();
    // Adversarial byte pages through the compressed store: contents
    // whose leading byte collides with the RLE frame tag, plus
    // incompressible noise. Exercises the raw/RLE framing — before it,
    // a raw-stored page starting with the magic byte came back
    // corrupted. Every page must round-trip bit-exactly through an
    // eviction to the store and a refault from it.
    {
        let clock = SimClock::new();
        let inner = RamCloudStore::new(2 << 30, clock.clone(), SimRng::seed_from_u64(args.seed));
        let store = CompressedStore::new(
            Box::new(inner),
            clock.clone(),
            SimRng::seed_from_u64(args.seed + 53),
        );
        let mut vm = FluidMemMemory::new(
            MonitorConfig::new(64),
            Box::new(store),
            PartitionId::new(0),
            clock,
            SimRng::seed_from_u64(args.seed + 54),
        );
        let pages = 512u64;
        let region = vm.map_region(pages, PageClass::Anonymous);
        let adversarial = |i: u64| -> PageContents {
            let mut buf = vec![0u8; PAGE_SIZE];
            match i % 3 {
                0 => buf.fill(0xC7), // all magic bytes, maximally compressible
                1 => {
                    // Incompressible noise behind a leading magic byte.
                    let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                    for b in buf.iter_mut() {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        *b = (x >> 56) as u8;
                    }
                    buf[0] = 0xC7;
                }
                _ => {
                    // Run-structured but not magic-led.
                    for (j, b) in buf.iter_mut().enumerate() {
                        *b = ((j / 97) as u8).wrapping_add(i as u8);
                    }
                }
            }
            PageContents::from_bytes(&buf)
        };
        for i in 0..pages {
            vm.write_page(region.page(i), adversarial(i));
        }
        vm.drain_writes();
        let mut mismatches = 0u64;
        for i in 0..pages {
            let (contents, _) = vm.read_page(region.page(i));
            if contents != adversarial(i) {
                mismatches += 1;
            }
        }
        assert_eq!(
            mismatches, 0,
            "adversarial pages must round-trip bit-exactly through the compressed store"
        );
        println!(
            "adversarial framing check: {pages} magic-led/incompressible pages \
             round-tripped bit-exactly (0 mismatches)"
        );
    }
    println!("(decompression adds <1µs to the read path; compression rides the async write path)");
}

fn ablation_prefetch(args: &HarnessArgs) {
    banner(
        "Ablation 7: sequential prefetching on the read path",
        "a sequential scan over a 4x-overcommitted region, RAMCloud backend",
    );
    let mut table = TextTable::new(vec![
        "policy",
        "avg access (µs)",
        "remote reads",
        "prefetched",
    ]);
    for (policy, label) in [
        (PrefetchPolicy::None, "none (paper)"),
        (
            PrefetchPolicy::Sequential { window: 8 },
            "sequential, window 8",
        ),
    ] {
        let mut vm = fluidmem(MonitorConfig::new(1024).prefetch(policy), args.seed);
        let region = vm.map_region(4096, PageClass::Anonymous);
        // Populate, then scan sequentially twice.
        for i in 0..region.pages() {
            vm.access(region.page(i), true);
        }
        let t0 = vm.clock().now();
        let mut n = 0u64;
        for _pass in 0..2 {
            for i in 0..region.pages() {
                vm.access(region.page(i), false);
                n += 1;
            }
        }
        let elapsed = vm.clock().now() - t0;
        table.row(vec![
            label.to_string(),
            f2(elapsed.as_micros_f64() / n as f64),
            vm.monitor().stats().remote_reads.to_string(),
            vm.monitor().stats().prefetched_pages.to_string(),
        ]);
    }
    table.print();
    println!("(prefetch converts most sequential remote reads into residence-before-access,");
    println!("matching what swap's readahead does for the baseline)");
}

fn ablation_modern_zram(args: &HarnessArgs) {
    banner(
        "Ablation 8: positioning against zram (modern compressed-DRAM swap)",
        "pmbench, 4x overcommit; zram trades compression CPU for zero network",
    );
    let mut table = TextTable::new(vec!["configuration", "avg access (µs)"]);
    let config = PmbenchConfig {
        wss_pages: 4096,
        duration: SimDuration::from_millis(400),
        read_ratio: 0.5,
        max_accesses: 60_000,
    };
    // Swap to zram.
    {
        let clock = SimClock::new();
        let zram = fluidmem_block::ZramDevice::new(
            1 << 16,
            64 << 20,
            clock.clone(),
            SimRng::seed_from_u64(args.seed),
        );
        let fs = fluidmem_block::SsdDevice::new(
            1 << 16,
            clock.clone(),
            SimRng::seed_from_u64(args.seed + 1),
        );
        let mut vm = fluidmem_swap::SwapBackedMemory::new(
            fluidmem_swap::SwapConfig::paper_default(1024),
            Box::new(zram),
            Box::new(fs),
            clock,
            SimRng::seed_from_u64(args.seed + 2),
        );
        let region = vm.map_region(4096, PageClass::Anonymous);
        let mut rng = SimRng::seed_from_u64(args.seed + 3);
        let report = pmbench::run_on_region(&mut vm, region, &config, &mut rng);
        table.row(vec![
            "Swap zram (local, compressed)".to_string(),
            f2(report.avg_latency_us()),
        ]);
    }
    // Swap NVMeoF and FluidMem RAMCloud for context.
    for (label, kind) in [
        ("Swap NVMeoF", fluidmem::testbed::BackendKind::SwapNvmeof),
        (
            "FluidMem RAMCloud",
            fluidmem::testbed::BackendKind::FluidMemRamCloud,
        ),
    ] {
        let mut testbed = fluidmem::testbed::Testbed::scaled_down(256);
        testbed.local_dram_pages = 1024;
        let mut backend = testbed.build(kind, args.seed);
        let region = backend.map_region(4096, PageClass::Anonymous);
        let mut rng = SimRng::seed_from_u64(args.seed + 4);
        let report = pmbench::run_on_region(backend.as_mut(), region, &config, &mut rng);
        table.row(vec![label.to_string(), f2(report.avg_latency_us())]);
    }
    table.print();
    println!("(zram avoids the network entirely but spends local DRAM on the compressed pool");
    println!("and cannot give memory *back* to the host — FluidMem's capacity elasticity remains unique)");
}

fn main() {
    let args = HarnessArgs::parse(1);
    ablation_batch_size(&args);
    ablation_eviction_mechanism(&args);
    ablation_lru_policy(&args);
    ablation_partition_table(&args);
    ablation_replication(&args);
    ablation_compression(&args);
    ablation_prefetch(&args);
    ablation_modern_zram(&args);
}
