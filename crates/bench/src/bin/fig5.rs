//! Figure 5: YCSB workload C (read-only, 1 KB records) on the
//! MongoDB-like document store with a WiredTiger-style cache, comparing
//! swap/NVMeoF against FluidMem/RAMCloud at cache sizes of 1–3 GB.
//!
//! Paper averages (µs): swap 1040 / 905 / 631 for 1/2/3 GB caches;
//! FluidMem 534 / 494 / 463 — 36–95% lower, and *stable* over the run,
//! because FluidMem transparently gives the storage engine native memory
//! capacity while swap leaves WiredTiger fighting kswapd.

use fluidmem_bench::json::Json;
use fluidmem_bench::{banner, f2, HarnessArgs, TextTable};
use fluidmem_block::SsdDevice;
use fluidmem_coord::PartitionId;
use fluidmem_core::{FluidMemMemory, MonitorConfig};
use fluidmem_kv::RamCloudStore;
use fluidmem_mem::MemoryBackend;
use fluidmem_sim::{SimClock, SimRng};
use fluidmem_swap::{SwapBackedMemory, SwapConfig};
use fluidmem_vm::{GuestOsProfile, Vm};
use fluidmem_workloads::docstore::{DocStoreConfig, DocumentStore};
use fluidmem_workloads::ycsb::{run_workload_c, WorkloadC};

fn build_swap(dram_pages: u64, blocks: u64, seed: u64) -> Box<dyn MemoryBackend> {
    let clock = SimClock::new();
    let root = SimRng::seed_from_u64(seed);
    // Paper §VI-D2: vm.swappiness=100, readahead=0 for the MongoDB runs.
    let mut config = SwapConfig::paper_default(dram_pages);
    config.page_cluster = 0;
    config.swappiness = 100;
    let swap_dev = fluidmem_block::NvmeofDevice::new(blocks, clock.clone(), root.fork("swap"));
    let fs_dev = SsdDevice::new(blocks, clock.clone(), root.fork("fs"));
    Box::new(SwapBackedMemory::new(
        config,
        Box::new(swap_dev),
        Box::new(fs_dev),
        clock,
        root.fork("backend"),
    ))
}

fn build_fluidmem(dram_pages: u64, store_bytes: usize, seed: u64) -> Box<dyn MemoryBackend> {
    let clock = SimClock::new();
    let root = SimRng::seed_from_u64(seed);
    let store = RamCloudStore::new(store_bytes, clock.clone(), root.fork("store"));
    Box::new(FluidMemMemory::new(
        MonitorConfig::new(dram_pages),
        Box::new(store),
        PartitionId::new(0),
        clock,
        root.fork("backend"),
    ))
}

fn main() {
    let args = HarnessArgs::parse(64);
    let d = args.scale_denominator;
    let dram_pages = (262_144 / d).max(2048); // 1 GB local DRAM, scaled
    let os_denom = d;

    banner(
        "Figure 5: YCSB-C read latency on MongoDB/WiredTiger",
        &format!(
            "5 GB record store and 1–3 GB caches at 1/{d} scale; VM with {} local pages",
            dram_pages
        ),
    );

    let mut table = TextTable::new(vec![
        "configuration",
        "cache",
        "avg (µs)",
        "paper (µs)",
        "series stdev (µs)",
        "disk reads",
        "major flt",
        "minor flt",
        "ops",
    ]);
    let paper = [
        ("Swap (NVMeoF)", 1040.0, 905.0, 631.0),
        ("FluidMem (RAMCloud)", 534.0, 494.0, 463.0),
    ];

    let mut all_series = Vec::new();
    for (mech, p1, p2, p3) in paper {
        for (gb, paper_avg) in [(1u64, p1), (2, p2), (3, p3)] {
            let cache_bytes = (gb << 30) / d;
            let is_fluidmem = mech.starts_with("FluidMem");
            let backend = if is_fluidmem {
                // The FluidMem VM is created with 4 GB (via hotplug) but
                // held to 1 GB resident by the LRU.
                build_fluidmem(dram_pages, (8usize << 30) / d as usize, args.seed)
            } else {
                build_swap(
                    dram_pages,
                    (20 * (1u64 << 30) / 4096 / d).max(1 << 14),
                    args.seed,
                )
            };
            let mut vm = Vm::boot(backend, GuestOsProfile::scaled_down(os_denom));
            let config = DocStoreConfig::paper(d, cache_bytes);
            let disk = SsdDevice::new(
                config.record_count * 2,
                vm.backend().clock().clone(),
                SimRng::seed_from_u64(args.seed + 7),
            );
            let mut store = DocumentStore::new(config, Box::new(disk), vm.backend_mut());
            let workload = WorkloadC::new(store.record_count() * 3);
            let mut rng = SimRng::seed_from_u64(args.seed + gb);
            let report = run_workload_c(vm.backend_mut(), &mut store, &workload, &mut rng);
            let series = report.series.points();
            let stdev = {
                let vals: Vec<f64> = series.iter().map(|(_, v)| *v).collect();
                let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
                (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                    / vals.len().max(1) as f64)
                    .sqrt()
            };
            table.row(vec![
                mech.to_string(),
                format!("{gb}GB"),
                f2(report.avg_latency_us()),
                f2(paper_avg),
                f2(stdev),
                store.disk_reads().to_string(),
                vm.backend().counters().major_faults.to_string(),
                vm.backend().counters().minor_faults.to_string(),
                report.operations.to_string(),
            ]);
            args.emit_json(
                &Json::object()
                    .field("experiment", "fig5")
                    .field("configuration", mech)
                    .field("cache_gb", gb)
                    .field("avg_us", report.avg_latency_us())
                    .field("paper_avg_us", paper_avg)
                    .field("disk_reads", store.disk_reads())
                    .field("major_faults", vm.backend().counters().major_faults)
                    .field(
                        "series",
                        Json::Array(
                            series
                                .iter()
                                .map(|(t, v)| Json::Array(vec![Json::Num(*t), Json::Num(*v)]))
                                .collect(),
                        ),
                    ),
            );
            all_series.push((format!("{mech} {gb}GB"), series));
        }
    }
    table.print();

    println!("\n--- time-course data: runtime_s mean_latency_us ---");
    for (label, series) in &all_series {
        println!("\n# {label}");
        for (t, v) in series {
            println!("{t:.1} {v:.1}");
        }
    }
}
