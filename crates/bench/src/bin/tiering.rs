//! `tiering` — the compressed local tier between DRAM and remote: does
//! parking evicted-but-warm pages in a compressed pool turn remote
//! refaults into local decompress hits, and does the RLE admission
//! filter keep incompressible pages from wasting pool budget?
//!
//! One VM over a memcached-class store (tens-of-µs round trips — the
//! transport where a local tier matters most) runs a hot set at 2x its
//! LRU capacity, so every cycle through the set refaults every page.
//! The sweep varies the *compressibility* of the working set from 0%
//! to 100%: compressible pages are single-byte fills (RLE collapses
//! them to a few bytes), incompressible pages are LCG noise (RLE
//! expands them, so sizing returns `None` and admission bypasses
//! straight to remote). At each point the harness reads the
//! per-resolution fault-latency histograms and the tier audit
//! (lost/duplicated pages, compressed-byte accounting).
//!
//! Self-asserting invariants:
//!
//! * every read returns exactly what was written, at every sweep point;
//! * the tier audit is clean (no page lost or duplicated, byte
//!   accounting balanced) after every run;
//! * at 100% compressibility the mean warm-refault (tier-hit) latency
//!   beats the tier-off remote-read path by at least 5x — the
//!   acceptance bar for the feature;
//! * at 0% compressibility every eviction bypasses (nothing pools), so
//!   the tier buys nothing but costs nothing.
//!
//! Runs are fully deterministic: a fixed `--seed` reproduces the output
//! byte for byte (the check.sh gate runs the smoke sweep twice and
//! `cmp`s, then greps the audit fields).
//!
//! Usage: `tiering [--smoke] [--seed N] [--json FILE]`

use std::path::PathBuf;

use fluidmem_bench::json::{write_json_line, Json};
use fluidmem_bench::{banner, f2, TextTable};
use fluidmem_coord::PartitionId;
use fluidmem_core::{FluidMemMemory, MonitorConfig, Optimizations, TierConfig};
use fluidmem_kv::MemcachedStore;
use fluidmem_mem::{MemoryBackend, PageClass, PageContents, PAGE_SIZE};
use fluidmem_sim::{SimClock, SimRng};
use fluidmem_telemetry::{consts, Telemetry};

struct Args {
    smoke: bool,
    seed: u64,
    json_path: Option<PathBuf>,
}

/// Hand-rolled parsing (not `HarnessArgs`): this harness has no
/// `--scale` notion — `--smoke` selects the reduced sizes instead.
fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        seed: 42,
        json_path: None,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--smoke" => args.smoke = true,
            "--seed" => {
                i += 1;
                args.seed = argv.get(i).and_then(|s| s.parse().ok()).unwrap_or(42);
            }
            "--json" => {
                i += 1;
                args.json_path = argv.get(i).map(PathBuf::from);
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
        i += 1;
    }
    args
}

fn emit(args: &Args, record: &Json) {
    if let Some(path) = &args.json_path {
        if let Err(e) = write_json_line(path, record) {
            eprintln!("failed to write {path:?}: {e}");
        }
    }
}

struct Sizes {
    capacity: u64,
    hot_factor: u64,
    rounds: u64,
}

/// Whether hot-set page `p` is compressible at `pct`% compressibility.
/// The multiplier is coprime to 100, so every window of 100 consecutive
/// indices holds exactly `pct` compressible pages, interleaved rather
/// than clustered.
fn compressible(p: u64, pct: u64) -> bool {
    (p * 37) % 100 < pct
}

/// Deterministic contents for page `p`: a single-byte fill (RLE
/// collapses it to a handful of bytes) when compressible, a full page
/// of LCG noise (RLE expands it; the sizing helper reports `None` and
/// admission bypasses) otherwise.
fn contents(p: u64, pct: u64, seed: u64) -> PageContents {
    if compressible(p, pct) {
        PageContents::from_byte_fill((p % 251) as u8 + 1)
    } else {
        let mut x = seed ^ p.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
        let mut buf = vec![0u8; PAGE_SIZE];
        for b in buf.iter_mut() {
            x = x
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            *b = (x >> 33) as u8;
        }
        PageContents::from_bytes(&buf)
    }
}

struct RunResult {
    tier_admits: u64,
    tier_hits: u64,
    tier_demotions: u64,
    bypass_incompressible: u64,
    bypass_thrash: u64,
    remote_reads: u64,
    pool_bytes: u64,
    hit_us: Option<f64>,
    remote_us: Option<f64>,
    lost_pages: u64,
    duplicated_pages: u64,
}

/// One sweep cell: populate a hot set 2x the LRU capacity, then cycle
/// reads through it so every access is a warm refault. Same seeds for
/// every cell — `pct` (and `tier`) are the only variables.
fn run_one(sizes: &Sizes, seed: u64, pct: u64, tier: Option<TierConfig>) -> RunResult {
    let hot_pages = sizes.capacity * sizes.hot_factor;
    let clock = SimClock::new();
    // Sized far above the working set so the store never evicts — the
    // sweep measures the tier, not memcached slab pressure.
    let store = MemcachedStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(seed ^ 0x4B56));
    let mut config = MonitorConfig::new(sizes.capacity).optimizations(Optimizations::full());
    if let Some(cfg) = tier {
        config = config.tier(cfg);
    }
    let mut vm = FluidMemMemory::new(
        config,
        Box::new(store),
        PartitionId::new(0),
        clock.clone(),
        SimRng::seed_from_u64(seed),
    );
    let telemetry = Telemetry::new(clock);
    vm.attach_telemetry(&telemetry);

    let region = vm.map_region(hot_pages, PageClass::Anonymous);
    for p in 0..hot_pages {
        vm.write_page(region.page(p), contents(p, pct, seed));
    }
    for _ in 0..sizes.rounds {
        for p in 0..hot_pages {
            let (got, _) = vm.read_page(region.page(p));
            assert_eq!(
                got,
                contents(p, pct, seed),
                "page {p} corrupted at {pct}% compressibility"
            );
        }
    }
    // Snapshot occupancy and counters before the drain: drain_writes
    // demotes every pooled page to the store, so a post-drain snapshot
    // would always read an empty pool.
    let stats = vm.monitor().stats();
    let pool_bytes = vm.monitor().tier_bytes() as u64;
    vm.drain_writes();

    let audit = vm.monitor().tier_audit();
    assert!(
        audit.is_clean(),
        "tier audit failed at {pct}% compressibility: {audit:?}"
    );
    assert_eq!(
        vm.monitor().pending_writes(),
        0,
        "write list must drain at {pct}%"
    );
    assert_eq!(stats.lost_pages, 0, "store lost pages at {pct}%");

    let mean = |label: &str| {
        let snap = telemetry
            .registry()
            .histogram(
                consts::FAULT_LATENCY_US,
                &[(consts::LABEL_RESOLUTION, label)],
            )
            .snapshot();
        (snap.count > 0).then_some(snap.mean_us)
    };
    RunResult {
        tier_admits: stats.tier_admits,
        tier_hits: stats.tier_hits,
        tier_demotions: stats.tier_demotions,
        bypass_incompressible: stats.tier_bypass_incompressible,
        bypass_thrash: stats.tier_bypass_thrash,
        remote_reads: stats.remote_reads,
        pool_bytes,
        hit_us: mean("compressed_hit"),
        remote_us: mean("remote_read"),
        lost_pages: audit.lost_pages,
        duplicated_pages: audit.duplicated_pages,
    }
}

fn opt_f2(v: Option<f64>) -> String {
    v.map(f2).unwrap_or_else(|| "-".to_string())
}

fn main() {
    let args = parse_args();
    let sizes = if args.smoke {
        Sizes {
            capacity: 96,
            hot_factor: 2,
            rounds: 3,
        }
    } else {
        Sizes {
            capacity: 512,
            hot_factor: 2,
            rounds: 4,
        }
    };
    let hot_pages = sizes.capacity * sizes.hot_factor;
    // Pool budget: one uncompressed DRAM buffer's worth of *compressed*
    // bytes. Byte-fill pages compress to a few bytes each, so the whole
    // hot set fits; the estimate keeps the thrash gate open.
    let pool_bytes = sizes.capacity as usize * PAGE_SIZE;

    banner(
        "tiering — compressed local tier between DRAM and remote",
        &format!(
            "hot set {hot_pages} pages over a {}-page buffer, memcached-class store, seed {}",
            sizes.capacity, args.seed
        ),
    );

    println!("\n-- Compressibility sweep, tier enabled --");
    println!(
        "pool budget {pool_bytes} compressed bytes; {} read rounds per cell",
        sizes.rounds
    );
    let mut table = TextTable::new(vec![
        "compress %",
        "tier hits",
        "admits",
        "demotions",
        "bypass rle",
        "remote reads",
        "pool bytes",
        "hit µs",
        "remote µs",
    ]);
    let mut hit_at_full = None;
    let mut bypass_seen = 0u64;
    for pct in [0u64, 25, 50, 75, 100] {
        let r = run_one(&sizes, args.seed, pct, Some(TierConfig::pool(pool_bytes)));
        if pct == 100 {
            hit_at_full = r.hit_us;
            assert_eq!(
                r.bypass_incompressible, 0,
                "nothing may bypass a fully compressible working set"
            );
            assert!(r.tier_hits > 0, "a 2x hot set must refault into the tier");
        }
        if pct == 0 {
            assert_eq!(
                r.tier_hits, 0,
                "pure-noise pages must never land in the pool"
            );
            assert_eq!(r.pool_bytes, 0, "the pool must stay empty at 0%");
        }
        bypass_seen += r.bypass_incompressible;
        table.row(vec![
            pct.to_string(),
            r.tier_hits.to_string(),
            r.tier_admits.to_string(),
            r.tier_demotions.to_string(),
            r.bypass_incompressible.to_string(),
            r.remote_reads.to_string(),
            r.pool_bytes.to_string(),
            opt_f2(r.hit_us),
            opt_f2(r.remote_us),
        ]);
        emit(
            &args,
            &Json::object()
                .field("bench", "tiering")
                .field("section", "sweep")
                .field("seed", args.seed as i64)
                .field("compress_pct", pct as i64)
                .field("tier_hits", r.tier_hits as i64)
                .field("tier_admits", r.tier_admits as i64)
                .field("tier_demotions", r.tier_demotions as i64)
                .field("bypass_incompressible", r.bypass_incompressible as i64)
                .field("bypass_thrash", r.bypass_thrash as i64)
                .field("remote_reads", r.remote_reads as i64)
                .field("pool_bytes", r.pool_bytes as i64)
                .field("hit_us", r.hit_us.unwrap_or(0.0))
                .field("remote_us", r.remote_us.unwrap_or(0.0))
                .field("lost_pages", r.lost_pages as i64)
                .field("duplicated_pages", r.duplicated_pages as i64),
        );
    }
    table.print();
    assert!(
        bypass_seen > 0,
        "the mixed cells must exercise the incompressible bypass"
    );
    println!(
        "\nThe RLE admission filter pools exactly the compressible fraction:\n\
         noise pages bypass to remote and the pool never charges for them."
    );

    println!("\n-- Warm-refault speedup vs the tier-off remote path --");
    let baseline = run_one(&sizes, args.seed, 100, None);
    let remote_us = baseline
        .remote_us
        .expect("the tier-off baseline must refault remotely");
    let hit_us = hit_at_full.expect("the 100% cell must record tier hits");
    let speedup = remote_us / hit_us;
    let mut table = TextTable::new(vec!["path", "mean µs", "speedup"]);
    table.row(vec![
        "remote read (tier off)".into(),
        f2(remote_us),
        "1.00x".into(),
    ]);
    table.row(vec![
        "compressed hit (tier on)".into(),
        f2(hit_us),
        format!("{speedup:.2}x"),
    ]);
    table.print();
    // The acceptance bar: decompressing a pooled page must beat a
    // memcached round trip by a wide margin, or the tier isn't paying
    // for its DRAM.
    assert!(
        speedup >= 5.0,
        "warm refaults must beat the remote path by >= 5x, got {speedup:.2}x"
    );
    emit(
        &args,
        &Json::object()
            .field("bench", "tiering")
            .field("section", "speedup")
            .field("seed", args.seed as i64)
            .field("hit_us", hit_us)
            .field("remote_us", remote_us)
            .field("tiering_speedup", speedup)
            .field("lost_pages", baseline.lost_pages as i64)
            .field("duplicated_pages", baseline.duplicated_pages as i64),
    );
    println!(
        "\nA warm refault decompresses locally instead of crossing the network:\n\
         the tier turns the memcached round trip into a ~µs pool lookup."
    );
}
