//! Table III: how small can a VM's footprint get while staying
//! responsive?
//!
//! Paper rows: a booted VM holds 81 042 pages (316.57 MB); the balloon
//! driver bottoms out at 20 480 pages (64 MB); FluidMem under KVM keeps
//! SSH working at 180 pages (0.703 MB) and ICMP at 80 pages (0.3 MB);
//! with full virtualization the footprint reaches 1 page (0.004 MB),
//! non-responsive but revivable.

use fluidmem_bench::{banner, HarnessArgs, TextTable};
use fluidmem_block::{PmemDevice, SsdDevice};
use fluidmem_coord::PartitionId;
use fluidmem_core::{FluidMemMemory, MonitorConfig};
use fluidmem_kv::RamCloudStore;
use fluidmem_sim::{SimClock, SimRng};
use fluidmem_swap::{SwapBackedMemory, SwapConfig};
use fluidmem_vm::{
    Balloon, GuestOsProfile, IcmpService, ServiceError, SshService, VirtualizationMode, Vm,
};

fn yes_no(b: bool) -> &'static str {
    if b {
        "Yes"
    } else {
        "No"
    }
}

fn fluidmem_vm(seed: u64) -> Vm {
    let clock = SimClock::new();
    let store = RamCloudStore::new(2 << 30, clock.clone(), SimRng::seed_from_u64(seed));
    let backend = FluidMemMemory::new(
        MonitorConfig::new(1 << 20),
        Box::new(store),
        PartitionId::new(0),
        clock,
        SimRng::seed_from_u64(seed + 1),
    );
    Vm::boot(Box::new(backend), GuestOsProfile::paper_boot())
}

fn probe(vm: &mut Vm) -> (bool, bool) {
    let ssh = SshService::new().attempt_login(vm).is_ok();
    let icmp = IcmpService::new().respond(vm).is_ok();
    (ssh, icmp)
}

fn revive(vm: &mut Vm) -> bool {
    // "Afterward, if the LRU size is increased, the VM will instantly
    // return to normal responsiveness."
    vm.backend_mut().set_local_capacity(1 << 20).ok();
    SshService::new().attempt_login(vm).is_ok()
}

fn main() {
    let args = HarnessArgs::parse(1);
    banner(
        "Table III: reducing a VM's footprint toward one page",
        "booted CentOS-like guest (81042 pages); SSH timeout 10s, ICMP probe 1s",
    );
    let mut table = TextTable::new(vec![
        "row",
        "footprint (pages)",
        "footprint (MB)",
        "SSH",
        "ICMP",
        "revived",
        "paper",
    ]);

    // Row 1: after startup (no footprint enforcement).
    {
        let mut vm = fluidmem_vm(args.seed);
        let pages = vm.footprint_pages();
        let (ssh, icmp) = probe(&mut vm);
        table.row(vec![
            "After startup".to_string(),
            pages.to_string(),
            format!("{:.3}", vm.footprint_mb()),
            yes_no(ssh).to_string(),
            yes_no(icmp).to_string(),
            "N/A".to_string(),
            "81042 / 316.570 / Yes / Yes".to_string(),
        ]);
    }

    // Row 2: the balloon baseline on a swap-backed VM.
    {
        let clock = SimClock::new();
        let swap_dev = PmemDevice::new(1 << 18, clock.clone(), SimRng::seed_from_u64(args.seed));
        let fs_dev = SsdDevice::new(1 << 18, clock.clone(), SimRng::seed_from_u64(args.seed + 1));
        let backend = SwapBackedMemory::new(
            SwapConfig::paper_default(300_000),
            Box::new(swap_dev),
            Box::new(fs_dev),
            clock,
            SimRng::seed_from_u64(args.seed + 2),
        );
        let mut vm = Vm::boot(Box::new(backend), GuestOsProfile::paper_boot());
        let mut balloon = Balloon::new();
        let achieved = balloon.inflate(vm.backend_mut(), 0);
        let (ssh, icmp) = probe(&mut vm);
        table.row(vec![
            "Max VM balloon size".to_string(),
            achieved.to_string(),
            format!("{:.3}", achieved as f64 * 4096.0 / (1024.0 * 1024.0)),
            yes_no(ssh).to_string(),
            yes_no(icmp).to_string(),
            "N/A".to_string(),
            "20480 / 64.750 / Yes / Yes".to_string(),
        ]);
    }

    // Rows 3-4: FluidMem under KVM at 180 and 80 pages.
    for (pages, paper) in [
        (180u64, "180 / 0.703 / Yes / Yes / Yes"),
        (80, "80 / 0.300 / No / Yes / Yes"),
    ] {
        let mut vm = fluidmem_vm(args.seed + pages);
        vm.backend_mut().set_local_capacity(pages).unwrap();
        let (ssh, icmp) = probe(&mut vm);
        let revived = revive(&mut vm);
        table.row(vec![
            format!("FluidMem (KVM), {pages} pages"),
            pages.to_string(),
            format!("{:.3}", pages as f64 * 4096.0 / (1024.0 * 1024.0)),
            yes_no(ssh).to_string(),
            yes_no(icmp).to_string(),
            yes_no(revived).to_string(),
            paper.to_string(),
        ]);
    }

    // Row 5: one page needs full virtualization (KVM deadlocks because
    // fault handling triggers recursive faults).
    {
        let mut vm = fluidmem_vm(args.seed + 99);
        vm.backend_mut().set_local_capacity(1).unwrap();
        let kvm_ssh = SshService::new().attempt_login(&mut vm);
        assert!(
            matches!(kvm_ssh, Err(ServiceError::Deadlocked)),
            "KVM at one page must deadlock, got {kvm_ssh:?}"
        );
        vm.set_mode(VirtualizationMode::FullEmulation);
        let (ssh, icmp) = probe(&mut vm);
        let revived = revive(&mut vm);
        table.row(vec![
            "FluidMem (full virtualization), 1 page".to_string(),
            "1".to_string(),
            "0.004".to_string(),
            yes_no(ssh).to_string(),
            yes_no(icmp).to_string(),
            yes_no(revived).to_string(),
            "1 / 0.004 / No / No / Yes".to_string(),
        ]);
    }

    table.print();
    println!("\n(KVM hardware-assisted virtualization deadlocks at one page; full");
    println!("virtualization keeps the VM functional though non-responsive, and");
    println!("increasing the LRU size revives every FluidMem configuration.)");
}
