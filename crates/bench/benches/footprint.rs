//! Criterion bench backing Table III: footprint resizing — how fast the
//! monitor evicts down to a near-zero footprint and recovers.

use fluidmem_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fluidmem::coord::PartitionId;
use fluidmem::core::{FluidMemMemory, MonitorConfig};
use fluidmem::kv::RamCloudStore;
use fluidmem::mem::{MemoryBackend, PageClass};
use fluidmem::sim::{SimClock, SimRng};

fn populated_vm(pages: u64) -> FluidMemMemory {
    let clock = SimClock::new();
    let store = RamCloudStore::new(1 << 28, clock.clone(), SimRng::seed_from_u64(1));
    let mut vm = FluidMemMemory::new(
        MonitorConfig::new(pages),
        Box::new(store),
        PartitionId::new(0),
        clock,
        SimRng::seed_from_u64(2),
    );
    let region = vm.map_region(pages, PageClass::Anonymous);
    for i in 0..pages {
        vm.access(region.page(i), true);
    }
    vm
}

fn bench_resize(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_resize");
    group.sample_size(10);
    for target in [512u64, 180, 80, 1] {
        group.bench_with_input(
            BenchmarkId::new("shrink_4096_to", target),
            &target,
            |b, &target| {
                b.iter(|| {
                    let mut vm = populated_vm(4096);
                    vm.set_local_capacity(target).unwrap();
                    vm.resident_pages()
                })
            },
        );
    }
    group.bench_function("grow_back_instantly", |b| {
        b.iter(|| {
            let mut vm = populated_vm(1024);
            vm.set_local_capacity(1).unwrap();
            vm.set_local_capacity(1024).unwrap();
            vm.local_capacity_pages()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_resize);
criterion_main!(benches);
