//! Criterion bench backing Figure 4: Graph500 BFS over the two headline
//! remote-memory configurations at 240% working-set pressure.

use fluidmem_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fluidmem::sim::SimRng;
use fluidmem::testbed::{BackendKind, Testbed};
use fluidmem::vm::{GuestOsProfile, Vm};
use fluidmem::workloads::graph500::{generate_edges, run_benchmark, CsrGraph, Graph500Config};

fn bench_graph500(c: &mut Criterion) {
    let config = Graph500Config::quick(11, 4);
    let edges = generate_edges(&config);
    let graph = CsrGraph::build(config.vertices(), &edges);

    let mut group = c.benchmark_group("fig4_graph500");
    group.sample_size(10);
    for kind in [BackendKind::FluidMemRamCloud, BackendKind::SwapNvmeof] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut testbed = Testbed::scaled_down(1024);
                    testbed.local_dram_pages = 96; // WSS ≈ 240% of DRAM
                    let backend = testbed.build(kind, 5);
                    let mut vm = Vm::boot(backend, GuestOsProfile::scaled_to(30));
                    let mut rng = SimRng::seed_from_u64(5);
                    run_benchmark(vm.backend_mut(), &graph, &config, &mut rng).harmonic_mean_teps()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_graph500);
criterion_main!(benches);
