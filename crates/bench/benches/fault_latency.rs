//! Criterion bench backing Figure 3: how fast the simulator handles one
//! page fault per backend configuration (wall-clock cost of the
//! reproduction itself, and a regression guard on the fault paths).

use fluidmem_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fluidmem::sim::{SimDuration, SimRng};
use fluidmem::testbed::{BackendKind, Testbed};
use fluidmem::workloads::pmbench::{self, PmbenchConfig};

fn bench_fault_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_fault_paths");
    group.sample_size(10);
    for kind in BackendKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let testbed = Testbed::scaled_down(1024);
                    let mut backend = testbed.build(kind, 42);
                    let config = PmbenchConfig {
                        wss_pages: testbed.local_dram_pages * 4,
                        duration: SimDuration::from_millis(50),
                        read_ratio: 0.5,
                        max_accesses: 4_000,
                    };
                    let mut rng = SimRng::seed_from_u64(42);
                    pmbench::run(backend.as_mut(), &config, &mut rng).avg_latency_us()
                })
            },
        );
    }
    group.finish();
}

fn bench_single_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_access");
    // A resident hit should cost nanoseconds of simulator time.
    group.bench_function("fluidmem_hit", |b| {
        let testbed = Testbed::scaled_down(1024);
        let mut backend = testbed.build(BackendKind::FluidMemRamCloud, 1);
        let region = backend.map_region(16, fluidmem::mem::PageClass::Anonymous);
        backend.access(region.page(0), true);
        b.iter(|| backend.access(region.page(0), false))
    });
    group.bench_function("swap_hit", |b| {
        let testbed = Testbed::scaled_down(1024);
        let mut backend = testbed.build(BackendKind::SwapDram, 1);
        let region = backend.map_region(16, fluidmem::mem::PageClass::Anonymous);
        backend.access(region.page(0), true);
        b.iter(|| backend.access(region.page(0), false))
    });
    group.finish();
}

criterion_group!(benches, bench_fault_paths, bench_single_access);
criterion_main!(benches);
