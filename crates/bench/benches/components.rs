//! Criterion bench for the substrate components: key-value stores,
//! block devices, the coordination service, and workload generators.

use fluidmem_bench::criterion::{criterion_group, criterion_main, Criterion};

use fluidmem::block::{BlockDevice, NvmeofDevice, PmemDevice, SsdDevice};
use fluidmem::coord::{CoordCluster, PartitionId, WriteOp};
use fluidmem::kv::{DramStore, ExternalKey, KeyValueStore, MemcachedStore, RamCloudStore};
use fluidmem::mem::{PageContents, Vpn};
use fluidmem::sim::{SimClock, SimRng};
use fluidmem::workloads::ycsb::ZipfianGenerator;

fn key(n: u64) -> ExternalKey {
    ExternalKey::new(Vpn::new(n % 4096), PartitionId::new(0))
}

fn bench_stores(c: &mut Criterion) {
    let mut group = c.benchmark_group("kv_stores");
    group.bench_function("ramcloud_put_get", |b| {
        let clock = SimClock::new();
        let mut store = RamCloudStore::new(1 << 28, clock, SimRng::seed_from_u64(1));
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            store.put(key(n), PageContents::Token(n)).unwrap();
            store.get(key(n)).unwrap()
        })
    });
    group.bench_function("memcached_put_get", |b| {
        let clock = SimClock::new();
        let mut store = MemcachedStore::new(1 << 28, clock, SimRng::seed_from_u64(1));
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            store.put(key(n), PageContents::Token(n)).unwrap();
            store.get(key(n)).unwrap()
        })
    });
    group.bench_function("dram_put_get", |b| {
        let clock = SimClock::new();
        let mut store = DramStore::new(1 << 28, clock, SimRng::seed_from_u64(1));
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            store.put(key(n), PageContents::Token(n)).unwrap();
            store.get(key(n)).unwrap()
        })
    });
    group.bench_function("ramcloud_multiwrite_32", |b| {
        let clock = SimClock::new();
        let mut store = RamCloudStore::new(1 << 28, clock, SimRng::seed_from_u64(1));
        let mut n = 0u64;
        b.iter(|| {
            n += 32;
            let batch: Vec<_> = (0..32)
                .map(|i| (key(n + i), PageContents::Token(i)))
                .collect();
            store.multi_write(batch).unwrap()
        })
    });
    group.finish();
}

fn bench_devices(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_devices");
    group.bench_function("pmem_rw", |b| {
        let clock = SimClock::new();
        let mut dev = PmemDevice::new(1 << 16, clock, SimRng::seed_from_u64(1));
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            dev.write_sync(n % 1024, PageContents::Token(n)).unwrap();
            dev.read_sync(n % 1024).unwrap()
        })
    });
    group.bench_function("nvmeof_rw", |b| {
        let clock = SimClock::new();
        let mut dev = NvmeofDevice::new(1 << 16, clock, SimRng::seed_from_u64(1));
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            dev.write_sync(n % 1024, PageContents::Token(n)).unwrap();
            dev.read_sync(n % 1024).unwrap()
        })
    });
    group.bench_function("ssd_rw", |b| {
        let clock = SimClock::new();
        let mut dev = SsdDevice::new(1 << 16, clock, SimRng::seed_from_u64(1));
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            dev.write_sync(n % 1024, PageContents::Token(n)).unwrap();
            dev.read_sync(n % 1024).unwrap()
        })
    });
    group.finish();
}

fn bench_coord(c: &mut Criterion) {
    let mut group = c.benchmark_group("coordination");
    group.bench_function("quorum_commit", |b| {
        let mut cluster = CoordCluster::new(3, SimClock::new(), SimRng::seed_from_u64(1));
        cluster
            .propose(WriteOp::Create {
                path: "/bench".into(),
                data: vec![],
                ephemeral_owner: None,
            })
            .unwrap();
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            cluster
                .propose(WriteOp::SetData {
                    path: "/bench".into(),
                    data: n.to_le_bytes().to_vec(),
                    expected_version: None,
                })
                .unwrap()
        })
    });
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generators");
    group.bench_function("zipfian_next_key", |b| {
        let mut z = ZipfianGenerator::new(1_000_000, 0.99);
        let mut rng = SimRng::seed_from_u64(1);
        b.iter(|| z.next_key(&mut rng))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_stores,
    bench_devices,
    bench_coord,
    bench_generators
);
criterion_main!(benches);
