//! Criterion bench backing Figure 5: YCSB-C reads against the document
//! store over FluidMem and swap.

use fluidmem_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fluidmem::block::SsdDevice;
use fluidmem::sim::SimRng;
use fluidmem::testbed::{BackendKind, Testbed};
use fluidmem::vm::{GuestOsProfile, Vm};
use fluidmem::workloads::docstore::{DocStoreConfig, DocumentStore};
use fluidmem::workloads::ycsb::{run_workload_c, WorkloadC};

fn bench_ycsb(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_ycsb_mongo");
    group.sample_size(10);
    for kind in [BackendKind::FluidMemRamCloud, BackendKind::SwapNvmeof] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let testbed = Testbed::scaled_down(512);
                    let backend = testbed.build(kind, 6);
                    let mut vm = Vm::boot(backend, GuestOsProfile::scaled_down(512));
                    let config = DocStoreConfig::paper(512, (2u64 << 30) / 512);
                    let disk = SsdDevice::new(
                        config.record_count * 2,
                        vm.backend().clock().clone(),
                        SimRng::seed_from_u64(7),
                    );
                    let mut store = DocumentStore::new(config, Box::new(disk), vm.backend_mut());
                    let workload = WorkloadC::new(4_000);
                    let mut rng = SimRng::seed_from_u64(8);
                    run_workload_c(vm.backend_mut(), &mut store, &workload, &mut rng)
                        .avg_latency_us()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ycsb);
criterion_main!(benches);
