//! Criterion bench backing Table I: the monitor's core data-structure
//! operations (the code paths the paper instruments).

use fluidmem_bench::criterion::{criterion_group, criterion_main, Criterion};

use fluidmem::core::{CodePath, LruBuffer, PageTracker, ProfileTable};
use fluidmem::mem::Vpn;
use fluidmem::sim::SimDuration;

fn bench_page_tracker(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_data_structures");
    group.bench_function("insert_page_hash_node", |b| {
        let mut tracker = PageTracker::new();
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            tracker.insert(Vpn::new(n))
        })
    });
    group.bench_function("page_hash_lookup", |b| {
        let mut tracker = PageTracker::new();
        for n in 0..100_000 {
            tracker.insert(Vpn::new(n));
        }
        let mut n = 0u64;
        b.iter(|| {
            n = (n + 1) % 200_000;
            tracker.contains(Vpn::new(n))
        })
    });
    group.bench_function("insert_lru_cache_node", |b| {
        let mut lru = LruBuffer::new(u64::MAX);
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            lru.insert(Vpn::new(n))
        })
    });
    group.bench_function("lru_pop_and_reinsert", |b| {
        let mut lru = LruBuffer::new(u64::MAX);
        for n in 0..100_000 {
            lru.insert(Vpn::new(n));
        }
        b.iter(|| {
            let victim = lru.pop_victim().expect("nonempty");
            lru.insert(victim);
        })
    });
    group.bench_function("profile_record", |b| {
        let profile = ProfileTable::new();
        b.iter(|| profile.record(CodePath::ReadPage, SimDuration::from_micros(15)))
    });
    group.finish();
}

criterion_group!(benches, bench_page_tracker);
criterion_main!(benches);
