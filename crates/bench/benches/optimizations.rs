//! Criterion bench backing Table II: the monitor under each §V-B
//! optimization combination, measured in simulated fault throughput.

use fluidmem_bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fluidmem::coord::PartitionId;
use fluidmem::core::{FluidMemMemory, MonitorConfig, Optimizations};
use fluidmem::kv::RamCloudStore;
use fluidmem::mem::{MemoryBackend, PageClass};
use fluidmem::sim::{SimClock, SimRng};

fn run_faults(opts: Optimizations, faults: u64) -> f64 {
    let clock = SimClock::new();
    let store = RamCloudStore::new(1 << 28, clock.clone(), SimRng::seed_from_u64(1));
    let mut vm = FluidMemMemory::new(
        MonitorConfig::new(128).optimizations(opts).bare_process(),
        Box::new(store),
        PartitionId::new(0),
        clock,
        SimRng::seed_from_u64(2),
    );
    let region = vm.map_region(512, PageClass::Anonymous);
    let mut rng = SimRng::seed_from_u64(3);
    for i in 0..region.pages() {
        vm.access(region.page(i), true);
    }
    let mut total = 0.0;
    for _ in 0..faults {
        let i = rng.gen_index(region.pages());
        total += vm
            .access(region.page(i), rng.gen_bool(0.5))
            .latency
            .as_micros_f64();
    }
    total / faults as f64
}

fn bench_optimizations(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_optimizations");
    group.sample_size(10);
    let cases = [
        Optimizations {
            async_read: false,
            async_write: false,
        },
        Optimizations {
            async_read: true,
            async_write: false,
        },
        Optimizations {
            async_read: false,
            async_write: true,
        },
        Optimizations {
            async_read: true,
            async_write: true,
        },
    ];
    for opts in cases {
        group.bench_with_input(
            BenchmarkId::from_parameter(opts.label()),
            &opts,
            |b, &opts| b.iter(|| run_faults(opts, 2_000)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_optimizations);
criterion_main!(benches);
