//! The block-device trait and the shared queueing engine.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use fluidmem_mem::PageContents;
use fluidmem_sim::{LatencyModel, SimClock, SimDuration, SimInstant, SimRng};
use fluidmem_telemetry::{consts, Counter, Registry};

/// Errors returned by block devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// The block number is past the end of the device.
    OutOfRange {
        /// The offending block.
        block: u64,
        /// Device capacity in blocks.
        capacity: u64,
    },
    /// A compressed-memory device's pool is full (zram's `ENOSPC`).
    OutOfSpace {
        /// Bytes currently stored.
        used: usize,
        /// The configured pool limit.
        limit: usize,
    },
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::OutOfRange { block, capacity } => {
                write!(f, "block {block} out of range (capacity {capacity})")
            }
            BlockError::OutOfSpace { used, limit } => {
                write!(f, "compressed pool full ({used} of {limit} bytes)")
            }
        }
    }
}

impl Error for BlockError {}

/// A completed-in-the-future I/O: the data (for reads) plus the virtual
/// instant at which the device raises its completion interrupt.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Read payload (`PageContents::Zero` for writes and never-written
    /// blocks).
    pub data: PageContents,
    /// When the request completes.
    pub at: SimInstant,
}

/// A point-in-time snapshot of a device's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockStats {
    /// Read requests completed or in flight.
    pub reads: u64,
    /// Write requests completed or in flight.
    pub writes: u64,
    /// Write submissions the device rejected (e.g. zram's `ENOSPC` after
    /// the compression attempt already burned CPU).
    pub write_errors: u64,
    /// Requests that found the submission queue full and had to wait.
    pub queue_full_waits: u64,
}

/// A device's live counter handles; [`BlockStats`] is their snapshot.
#[derive(Debug, Clone, Default)]
pub struct BlockCounters {
    /// Read requests completed or in flight.
    pub reads: Counter,
    /// Write requests completed or in flight.
    pub writes: Counter,
    /// Write submissions the device rejected (e.g. zram's `ENOSPC` after
    /// the compression attempt already burned CPU).
    pub write_errors: Counter,
    /// Requests that found the submission queue full and had to wait.
    pub queue_full_waits: Counter,
}

impl BlockCounters {
    /// Fresh detached counters (not exported anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers every counter in `registry` under
    /// [`consts::BLOCK_OPS`], labeled by `device` and the operation.
    /// Accumulated values carry over: the registry adopts the live
    /// handles.
    pub fn register(&self, registry: &Registry, device: &str) {
        for (counter, op) in [
            (&self.reads, "read"),
            (&self.writes, "write"),
            (&self.write_errors, "write_error"),
            (&self.queue_full_waits, "queue_full_wait"),
        ] {
            registry.adopt_counter(
                consts::BLOCK_OPS,
                &[(consts::LABEL_DEVICE, device), (consts::LABEL_OP, op)],
                counter,
            );
        }
    }

    /// A point-in-time snapshot of every counter.
    pub fn snapshot(&self) -> BlockStats {
        BlockStats {
            reads: self.reads.get(),
            writes: self.writes.get(),
            write_errors: self.write_errors.get(),
            queue_full_waits: self.queue_full_waits.get(),
        }
    }
}

/// A 4 KB-block storage device with a bounded submission queue.
///
/// `submit_read`/`submit_write` are asynchronous: they return a
/// [`Completion`] carrying the finish time, and the caller decides whether
/// to wait (`clock.advance_to`) — the swap page-in path waits, kswapd's
/// background writeback does not.
pub trait BlockDevice {
    /// Short device name (e.g. `"nvmeof"`).
    fn name(&self) -> &'static str;

    /// Device capacity in 4 KB blocks.
    fn capacity_blocks(&self) -> u64;

    /// Submits a read of one block.
    ///
    /// # Errors
    ///
    /// [`BlockError::OutOfRange`] for blocks past the device end.
    fn submit_read(&mut self, block: u64) -> Result<Completion, BlockError>;

    /// Submits a write of one block.
    ///
    /// # Errors
    ///
    /// [`BlockError::OutOfRange`] for blocks past the device end.
    fn submit_write(&mut self, block: u64, data: PageContents) -> Result<Completion, BlockError>;

    /// Submits a write from a background context (kswapd, flusher
    /// threads): the request occupies the device queue but its submission
    /// CPU cost is *not* charged to the calling thread's virtual time.
    ///
    /// The default implementation falls back to the foreground path.
    ///
    /// # Errors
    ///
    /// [`BlockError::OutOfRange`] for blocks past the device end.
    fn submit_write_background(
        &mut self,
        block: u64,
        data: PageContents,
    ) -> Result<Completion, BlockError> {
        self.submit_write(block, data)
    }

    /// Convenience: submit a read and wait for it.
    ///
    /// # Errors
    ///
    /// Propagates [`BlockError`] from submission.
    fn read_sync(&mut self, block: u64) -> Result<PageContents, BlockError> {
        let completion = self.submit_read(block)?;
        self.clock().advance_to(completion.at);
        Ok(completion.data)
    }

    /// Convenience: submit a write and wait for durability.
    ///
    /// # Errors
    ///
    /// Propagates [`BlockError`] from submission.
    fn write_sync(&mut self, block: u64, data: PageContents) -> Result<(), BlockError> {
        let completion = self.submit_write(block, data)?;
        self.clock().advance_to(completion.at);
        Ok(())
    }

    /// The device's clock handle.
    fn clock(&self) -> &SimClock;

    /// Operation counters.
    fn stats(&self) -> BlockStats;

    /// Registers this device's live counters in `registry` under its
    /// [`name`](BlockDevice::name). The default is a no-op so simple
    /// test doubles need not care.
    fn instrument(&mut self, _registry: &Registry) {}
}

/// The shared engine: payload storage, a bounded in-flight window, and
/// latency sampling. Concrete devices wrap this with their own latency
/// models.
#[derive(Debug)]
pub(crate) struct QueueedStore {
    pub(crate) blocks: HashMap<u64, PageContents>,
    capacity: u64,
    queue_depth: usize,
    /// Completion times of in-flight requests (unsorted; small).
    inflight: Vec<SimInstant>,
    pub(crate) clock: SimClock,
    pub(crate) rng: SimRng,
    pub(crate) stats: BlockCounters,
}

impl QueueedStore {
    pub(crate) fn new(capacity: u64, queue_depth: usize, clock: SimClock, rng: SimRng) -> Self {
        QueueedStore {
            blocks: HashMap::new(),
            capacity,
            queue_depth: queue_depth.max(1),
            inflight: Vec::new(),
            clock,
            rng,
            stats: BlockCounters::new(),
        }
    }

    pub(crate) fn check_range(&self, block: u64) -> Result<(), BlockError> {
        if block >= self.capacity {
            Err(BlockError::OutOfRange {
                block,
                capacity: self.capacity,
            })
        } else {
            Ok(())
        }
    }

    pub(crate) fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Schedules one request with the given submission overhead and
    /// service latency, honoring the queue depth: if the window is full
    /// the request starts when the earliest in-flight op finishes.
    pub(crate) fn schedule(
        &mut self,
        submit_cost: SimDuration,
        service: &LatencyModel,
    ) -> SimInstant {
        // Charge CPU submission cost on the caller.
        self.clock.advance(submit_cost);
        let now = self.clock.now();
        // Retire finished requests.
        self.inflight.retain(|&t| t > now);
        let start = if self.inflight.len() >= self.queue_depth {
            self.stats.queue_full_waits.inc();
            let earliest = self
                .inflight
                .iter()
                .copied()
                .min()
                .expect("inflight nonempty when full");
            // Free the slot we are about to occupy.
            let pos = self
                .inflight
                .iter()
                .position(|&t| t == earliest)
                .expect("min exists");
            self.inflight.swap_remove(pos);
            earliest.max(now)
        } else {
            now
        };
        let done = start + service.sample(&mut self.rng);
        self.inflight.push(done);
        done
    }

    /// Like [`schedule`](Self::schedule) but without charging any
    /// submission cost to the caller — for background (kswapd/flusher)
    /// contexts whose CPU time does not stall the faulting thread.
    pub(crate) fn schedule_background(&mut self, service: &LatencyModel) -> SimInstant {
        let now = self.clock.now();
        self.inflight.retain(|&t| t > now);
        let start = if self.inflight.len() >= self.queue_depth {
            self.stats.queue_full_waits.inc();
            let earliest = self
                .inflight
                .iter()
                .copied()
                .min()
                .expect("inflight nonempty when full");
            let pos = self
                .inflight
                .iter()
                .position(|&t| t == earliest)
                .expect("min exists");
            self.inflight.swap_remove(pos);
            earliest.max(now)
        } else {
            now
        };
        let done = start + service.sample(&mut self.rng);
        self.inflight.push(done);
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_without_contention_is_service_time() {
        let clock = SimClock::new();
        let mut q = QueueedStore::new(100, 4, clock.clone(), SimRng::seed_from_u64(1));
        let done = q.schedule(
            SimDuration::from_micros(1),
            &LatencyModel::constant_us(10.0),
        );
        // 1µs submit + 10µs service.
        assert_eq!(done.as_nanos(), 11_000);
    }

    #[test]
    fn full_queue_serializes() {
        let clock = SimClock::new();
        let mut q = QueueedStore::new(100, 2, clock.clone(), SimRng::seed_from_u64(1));
        let svc = LatencyModel::constant_us(100.0);
        let d1 = q.schedule(SimDuration::ZERO, &svc);
        let d2 = q.schedule(SimDuration::ZERO, &svc);
        let d3 = q.schedule(SimDuration::ZERO, &svc); // must wait for d1
        assert_eq!(d1.as_nanos(), 100_000);
        assert_eq!(d2.as_nanos(), 100_000);
        assert_eq!(d3.as_nanos(), 200_000, "third op queues behind the first");
        assert_eq!(q.stats.queue_full_waits.get(), 1);
    }

    #[test]
    fn range_checking() {
        let q = QueueedStore::new(10, 1, SimClock::new(), SimRng::seed_from_u64(1));
        assert!(q.check_range(9).is_ok());
        assert_eq!(
            q.check_range(10),
            Err(BlockError::OutOfRange {
                block: 10,
                capacity: 10
            })
        );
    }
}
