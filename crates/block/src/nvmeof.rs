//! An NVMe-over-Fabrics remote block device.

use fluidmem_mem::PageContents;
use fluidmem_sim::{LatencyModel, SimClock, SimDuration, SimRng};

use crate::device::{BlockDevice, BlockError, BlockStats, Completion, QueueedStore};

/// An NVMe-over-Fabrics target reached over FDR InfiniBand RDMA — the
/// swap device the paper uses to stand in for Infiniswap-class remote
/// paging (§VI-A: a 10 GB `/dev/pmem0` region on another server exported
/// via NVMeoF).
///
/// A 4 KB read costs ≈16 µs: host submission and doorbell, fabric round
/// trip, target-side NVMe emulation over pmem, and the completion
/// interrupt. Combined with the guest swap path this yields the paper's
/// ≈41.7 µs average pmbench fault latency (Figure 3e).
///
/// # Example
///
/// ```
/// use fluidmem_block::{BlockDevice, NvmeofDevice};
/// use fluidmem_mem::PageContents;
/// use fluidmem_sim::{SimClock, SimRng};
///
/// let mut dev = NvmeofDevice::new(1024, SimClock::new(), SimRng::seed_from_u64(1));
/// dev.write_sync(0, PageContents::Token(1))?;
/// assert_eq!(dev.read_sync(0)?, PageContents::Token(1));
/// # Ok::<(), fluidmem_block::BlockError>(())
/// ```
#[derive(Debug)]
pub struct NvmeofDevice {
    inner: QueueedStore,
    read_latency: LatencyModel,
    write_latency: LatencyModel,
    submit_cost: SimDuration,
}

impl NvmeofDevice {
    /// Creates a target with `capacity_blocks` 4 KB blocks.
    pub fn new(capacity_blocks: u64, clock: SimClock, rng: SimRng) -> Self {
        NvmeofDevice {
            inner: QueueedStore::new(capacity_blocks, 32, clock, rng),
            // fabric RTT + target service, with a modest tail from target
            // CPU scheduling.
            read_latency: LatencyModel::lognormal_mean_p99_us(14.5, 34.0),
            write_latency: LatencyModel::lognormal_mean_p99_us(13.0, 30.0),
            // Host-side submission: queue entry + doorbell + IRQ handling.
            submit_cost: SimDuration::from_nanos(1_800),
        }
    }
}

impl BlockDevice for NvmeofDevice {
    fn name(&self) -> &'static str {
        "nvmeof"
    }

    fn capacity_blocks(&self) -> u64 {
        self.inner.capacity()
    }

    fn submit_read(&mut self, block: u64) -> Result<Completion, BlockError> {
        self.inner.check_range(block)?;
        let at = self.inner.schedule(self.submit_cost, &self.read_latency);
        self.inner.stats.reads.inc();
        let data = self
            .inner
            .blocks
            .get(&block)
            .cloned()
            .unwrap_or(PageContents::Zero);
        Ok(Completion { data, at })
    }

    fn submit_write(&mut self, block: u64, data: PageContents) -> Result<Completion, BlockError> {
        self.inner.check_range(block)?;
        let at = self.inner.schedule(self.submit_cost, &self.write_latency);
        self.inner.stats.writes.inc();
        self.inner.blocks.insert(block, data);
        Ok(Completion {
            data: PageContents::Zero,
            at,
        })
    }

    fn submit_write_background(
        &mut self,
        block: u64,
        data: PageContents,
    ) -> Result<Completion, BlockError> {
        self.inner.check_range(block)?;
        let at = self.inner.schedule_background(&self.write_latency);
        self.inner.stats.writes.inc();
        self.inner.blocks.insert(block, data);
        Ok(Completion {
            data: PageContents::Zero,
            at,
        })
    }

    fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    fn stats(&self) -> BlockStats {
        self.inner.stats.snapshot()
    }

    fn instrument(&mut self, registry: &fluidmem_telemetry::Registry) {
        self.inner.stats.register(registry, self.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_sim::stats::Sample;

    #[test]
    fn read_latency_matches_calibration() {
        let clock = SimClock::new();
        let mut dev = NvmeofDevice::new(1 << 16, clock.clone(), SimRng::seed_from_u64(3));
        let mut s = Sample::new();
        for i in 0..5_000u64 {
            let t0 = clock.now();
            dev.read_sync(i % 1024).unwrap();
            s.record((clock.now() - t0).as_micros_f64());
        }
        assert!((s.mean() - 16.3).abs() < 1.5, "mean {}", s.mean());
    }

    #[test]
    fn slower_than_pmem_faster_than_nothing() {
        let c1 = SimClock::new();
        let mut nv = NvmeofDevice::new(64, c1.clone(), SimRng::seed_from_u64(1));
        let t0 = c1.now();
        nv.read_sync(0).unwrap();
        let nv_cost = c1.now() - t0;

        let c2 = SimClock::new();
        let mut pm = crate::PmemDevice::new(64, c2.clone(), SimRng::seed_from_u64(1));
        let t0 = c2.now();
        pm.read_sync(0).unwrap();
        assert!(nv_cost > (c2.now() - t0) * 5);
    }

    #[test]
    fn data_integrity_across_fabric() {
        let mut dev = NvmeofDevice::new(64, SimClock::new(), SimRng::seed_from_u64(1));
        let page = PageContents::from_byte_fill(0xC3);
        dev.write_sync(5, page.clone()).unwrap();
        assert_eq!(dev.read_sync(5).unwrap(), page);
    }
}
