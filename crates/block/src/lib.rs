//! Block devices for the swap-based disaggregation baseline.
//!
//! The paper's §VI-A compares FluidMem against swap over three devices:
//!
//! * **DRAM** — a `/dev/pmem0`-style byte-addressable region on a remote
//!   (or local) server, exposed as a block device ([`PmemDevice`]);
//! * **NVMeoF** — an NVMe-over-Fabrics target reached over FDR InfiniBand
//!   RDMA, "the successor to the NBDx block device" ([`NvmeofDevice`]);
//! * **SSD** — a local flash SSD with read/write asymmetry and occasional
//!   garbage-collection stalls ([`SsdDevice`]).
//!
//! All devices work in 4 KB blocks (one page per block), carry real
//! [`PageContents`](fluidmem_mem::PageContents), and model a bounded
//! submission queue: when the queue is full, new requests wait for a slot
//! in virtual time, which is what bends swap's latency CDF under load
//! (Figure 3's multi-knee swap curves).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod nvmeof;
mod pmem;
mod ssd;
mod zram;

pub use device::{BlockCounters, BlockDevice, BlockError, BlockStats, Completion};
pub use nvmeof::NvmeofDevice;
pub use pmem::PmemDevice;
pub use ssd::SsdDevice;
pub use zram::ZramDevice;
