//! A DRAM-backed (`/dev/pmem0`-style) block device.

use fluidmem_mem::PageContents;
use fluidmem_sim::{LatencyModel, SimClock, SimDuration, SimRng};

use crate::device::{BlockDevice, BlockError, BlockStats, Completion, QueueedStore};

/// A byte-addressable DRAM region exposed as a block device — the paper's
/// swap-to-DRAM baseline ("swap backed by local DRAM ... as a lower bound
/// for swap-based approaches", §VI-A) and the `/dev/pmem0` NVMeoF target
/// backing store.
///
/// Latency is a memcpy plus block-layer overhead: ~1.3 µs per 4 KB read.
///
/// # Example
///
/// ```
/// use fluidmem_block::{BlockDevice, PmemDevice};
/// use fluidmem_mem::PageContents;
/// use fluidmem_sim::{SimClock, SimRng};
///
/// let mut dev = PmemDevice::new(1024, SimClock::new(), SimRng::seed_from_u64(1));
/// dev.write_sync(7, PageContents::Token(7))?;
/// assert_eq!(dev.read_sync(7)?, PageContents::Token(7));
/// # Ok::<(), fluidmem_block::BlockError>(())
/// ```
#[derive(Debug)]
pub struct PmemDevice {
    inner: QueueedStore,
    read_latency: LatencyModel,
    write_latency: LatencyModel,
    submit_cost: SimDuration,
}

impl PmemDevice {
    /// Creates a device with `capacity_blocks` 4 KB blocks.
    pub fn new(capacity_blocks: u64, clock: SimClock, rng: SimRng) -> Self {
        PmemDevice {
            inner: QueueedStore::new(capacity_blocks, 64, clock, rng),
            read_latency: LatencyModel::normal_us(0.9, 0.15),
            write_latency: LatencyModel::normal_us(0.8, 0.15),
            submit_cost: SimDuration::from_nanos(400),
        }
    }
}

impl BlockDevice for PmemDevice {
    fn name(&self) -> &'static str {
        "pmem-dram"
    }

    fn capacity_blocks(&self) -> u64 {
        self.inner.capacity()
    }

    fn submit_read(&mut self, block: u64) -> Result<Completion, BlockError> {
        self.inner.check_range(block)?;
        let at = self.inner.schedule(self.submit_cost, &self.read_latency);
        self.inner.stats.reads.inc();
        let data = self
            .inner
            .blocks
            .get(&block)
            .cloned()
            .unwrap_or(PageContents::Zero);
        Ok(Completion { data, at })
    }

    fn submit_write(&mut self, block: u64, data: PageContents) -> Result<Completion, BlockError> {
        self.inner.check_range(block)?;
        let at = self.inner.schedule(self.submit_cost, &self.write_latency);
        self.inner.stats.writes.inc();
        self.inner.blocks.insert(block, data);
        Ok(Completion {
            data: PageContents::Zero,
            at,
        })
    }

    fn submit_write_background(
        &mut self,
        block: u64,
        data: PageContents,
    ) -> Result<Completion, BlockError> {
        self.inner.check_range(block)?;
        let at = self.inner.schedule_background(&self.write_latency);
        self.inner.stats.writes.inc();
        self.inner.blocks.insert(block, data);
        Ok(Completion {
            data: PageContents::Zero,
            at,
        })
    }

    fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    fn stats(&self) -> BlockStats {
        self.inner.stats.snapshot()
    }

    fn instrument(&mut self, registry: &fluidmem_telemetry::Registry) {
        self.inner.stats.register(registry, self.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_sim::SimDuration;

    #[test]
    fn round_trip_and_unwritten_blocks_read_zero() {
        let mut dev = PmemDevice::new(8, SimClock::new(), SimRng::seed_from_u64(2));
        assert_eq!(dev.read_sync(0).unwrap(), PageContents::Zero);
        dev.write_sync(0, PageContents::from_byte_fill(9)).unwrap();
        assert_eq!(dev.read_sync(0).unwrap(), PageContents::from_byte_fill(9));
        assert_eq!(dev.stats().reads, 2);
        assert_eq!(dev.stats().writes, 1);
    }

    #[test]
    fn reads_cost_about_a_microsecond() {
        let clock = SimClock::new();
        let mut dev = PmemDevice::new(8, clock.clone(), SimRng::seed_from_u64(2));
        let t0 = clock.now();
        dev.read_sync(1).unwrap();
        let d = clock.now() - t0;
        assert!(
            d >= SimDuration::from_nanos(500) && d <= SimDuration::from_micros(4),
            "{d}"
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let mut dev = PmemDevice::new(4, SimClock::new(), SimRng::seed_from_u64(2));
        assert!(dev.read_sync(4).is_err());
        assert!(dev.write_sync(9, PageContents::Zero).is_err());
    }
}
