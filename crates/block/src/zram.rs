//! A zram-style compressed-DRAM block device.
//!
//! Not part of the paper's testbed, but the modern in-kernel alternative
//! its §VII related work gestures at: swap to *local* DRAM with the
//! pages compressed in place. The reproduction includes it so the
//! ablation harness can position FluidMem against today's kernel
//! baseline as well as the 2019-era ones.

use std::collections::HashMap;

use fluidmem_mem::{PageContents, PAGE_SIZE};
use fluidmem_sim::{LatencyModel, SimClock, SimDuration, SimRng};

use crate::device::{BlockCounters, BlockDevice, BlockError, BlockStats, Completion};

/// A compressed-memory block device (Linux `zram`): writes compress the
/// page (LZ-class CPU cost) into a DRAM pool budgeted by *compressed*
/// bytes; reads decompress. There is no queue to speak of — everything
/// is a CPU-bound memcpy.
///
/// Incompressible pages are stored raw (as zram does); a full pool
/// refuses writes with [`BlockError::OutOfSpace`], which the swap layer
/// sees as a failed writeback.
///
/// # Example
///
/// ```
/// use fluidmem_block::{BlockDevice, ZramDevice};
/// use fluidmem_mem::PageContents;
/// use fluidmem_sim::{SimClock, SimRng};
///
/// let mut dev = ZramDevice::new(1024, 1 << 20, SimClock::new(), SimRng::seed_from_u64(1));
/// dev.write_sync(3, PageContents::from_byte_fill(7))?;
/// assert_eq!(dev.read_sync(3)?, PageContents::from_byte_fill(7));
/// assert!(dev.compressed_bytes() < 4096, "uniform page packs small");
/// # Ok::<(), fluidmem_block::BlockError>(())
/// ```
pub struct ZramDevice {
    blocks: HashMap<u64, (PageContents, usize)>,
    capacity_blocks: u64,
    mem_limit_bytes: usize,
    used_bytes: usize,
    compress: LatencyModel,
    decompress: LatencyModel,
    submit: SimDuration,
    clock: SimClock,
    rng: SimRng,
    stats: BlockCounters,
}

impl ZramDevice {
    /// Creates a device with `capacity_blocks` logical blocks and a
    /// compressed-memory budget of `mem_limit_bytes`.
    pub fn new(capacity_blocks: u64, mem_limit_bytes: usize, clock: SimClock, rng: SimRng) -> Self {
        ZramDevice {
            blocks: HashMap::new(),
            capacity_blocks,
            mem_limit_bytes,
            used_bytes: 0,
            compress: LatencyModel::normal_us(2.0, 0.3),
            decompress: LatencyModel::normal_us(1.0, 0.15),
            submit: SimDuration::from_nanos(500),
            clock,
            rng,
            stats: BlockCounters::new(),
        }
    }

    /// Bytes of compressed storage in use.
    pub fn compressed_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Slot charge for `contents`, delegating to the shared
    /// [`fluidmem_kv::stored_page_size`] policy so zram's accounting can
    /// never drift from what `CompressedStore` (and the monitor's
    /// compressed tier) would actually store: zero pages are free, and
    /// RLE sizing applies only to exact full pages — anything
    /// incompressible (including sub-page payloads) is stored raw.
    fn stored_size(contents: &PageContents) -> usize {
        fluidmem_kv::stored_page_size(contents).unwrap_or(PAGE_SIZE)
    }
}

impl BlockDevice for ZramDevice {
    fn name(&self) -> &'static str {
        "zram"
    }

    fn capacity_blocks(&self) -> u64 {
        self.capacity_blocks
    }

    fn submit_read(&mut self, block: u64) -> Result<Completion, BlockError> {
        if block >= self.capacity_blocks {
            return Err(BlockError::OutOfRange {
                block,
                capacity: self.capacity_blocks,
            });
        }
        self.stats.reads.inc();
        let data = self
            .blocks
            .get(&block)
            .map(|(c, _)| c.clone())
            .unwrap_or(PageContents::Zero);
        // Zero-fill reads (never-written blocks and stored zero pages)
        // have nothing to decompress: only the submit overhead applies.
        let cost = match data {
            PageContents::Zero => self.submit,
            _ => self.submit + self.decompress.sample(&mut self.rng),
        };
        let at = self.clock.now() + cost;
        Ok(Completion { data, at })
    }

    fn submit_write(&mut self, block: u64, data: PageContents) -> Result<Completion, BlockError> {
        if block >= self.capacity_blocks {
            return Err(BlockError::OutOfRange {
                block,
                capacity: self.capacity_blocks,
            });
        }
        // Real zram compresses first and only then discovers the pool is
        // full: the CPU cost of the attempt is paid either way.
        let cost = self.submit + self.compress.sample(&mut self.rng);
        let new_size = Self::stored_size(&data);
        let old_size = self.blocks.get(&block).map(|(_, n)| *n).unwrap_or(0);
        if self.used_bytes - old_size + new_size > self.mem_limit_bytes {
            self.stats.write_errors.inc();
            self.clock.advance(cost);
            return Err(BlockError::OutOfSpace {
                used: self.used_bytes,
                limit: self.mem_limit_bytes,
            });
        }
        let at = self.clock.now() + cost;
        self.stats.writes.inc();
        self.used_bytes = self.used_bytes - old_size + new_size;
        self.blocks.insert(block, (data, new_size));
        Ok(Completion {
            data: PageContents::Zero,
            at,
        })
    }

    fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn stats(&self) -> BlockStats {
        self.stats.snapshot()
    }

    fn instrument(&mut self, registry: &fluidmem_telemetry::Registry) {
        self.stats.register(registry, self.name());
    }
}

impl std::fmt::Debug for ZramDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZramDevice")
            .field("blocks", &self.blocks.len())
            .field("compressed_bytes", &self.used_bytes)
            .field("limit", &self.mem_limit_bytes)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compressible_pages_fit_many_in_small_budget() {
        let clock = SimClock::new();
        // 64 KB budget, 4096-block device: uniform pages pack tiny.
        let mut dev = ZramDevice::new(4096, 64 << 10, clock, SimRng::seed_from_u64(1));
        for b in 0..1024u64 {
            dev.write_sync(b, PageContents::from_byte_fill((b % 251) as u8))
                .unwrap();
        }
        assert!(dev.compressed_bytes() < 64 << 10);
        assert_eq!(dev.read_sync(17).unwrap(), PageContents::from_byte_fill(17));
    }

    #[test]
    fn incompressible_pages_hit_the_limit() {
        let clock = SimClock::new();
        let mut dev = ZramDevice::new(64, 2 * PAGE_SIZE, clock, SimRng::seed_from_u64(2));
        let noise = |seed: u32| {
            let mut page = Vec::with_capacity(PAGE_SIZE);
            let mut x = seed;
            for _ in 0..PAGE_SIZE {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                page.push((x >> 24) as u8);
            }
            PageContents::from_bytes(&page)
        };
        dev.write_sync(0, noise(1)).unwrap();
        dev.write_sync(1, noise(2)).unwrap();
        assert!(matches!(
            dev.write_sync(2, noise(3)),
            Err(BlockError::OutOfSpace { .. })
        ));
        // Overwriting an existing block still works (no net growth).
        dev.write_sync(0, noise(9)).unwrap();
    }

    #[test]
    fn zero_pages_are_free() {
        let clock = SimClock::new();
        let mut dev = ZramDevice::new(64, 1024, clock, SimRng::seed_from_u64(3));
        for b in 0..64u64 {
            dev.write_sync(b, PageContents::Zero).unwrap();
        }
        assert_eq!(dev.compressed_bytes(), 0);
    }

    #[test]
    fn reads_cost_a_couple_microseconds() {
        let clock = SimClock::new();
        let mut dev = ZramDevice::new(8, 1 << 20, clock.clone(), SimRng::seed_from_u64(4));
        dev.write_sync(0, PageContents::Token(1)).unwrap();
        let t0 = clock.now();
        dev.read_sync(0).unwrap();
        let d = (clock.now() - t0).as_micros_f64();
        assert!(d > 0.5 && d < 4.0, "{d}");
    }

    /// A never-written block resolves to `PageContents::Zero` with
    /// nothing to decompress: only the 500 ns submit overhead applies,
    /// never the ~1 µs decompress latency.
    #[test]
    fn zero_fill_reads_cost_only_submit_overhead() {
        let clock = SimClock::new();
        let mut dev = ZramDevice::new(8, 1 << 20, clock.clone(), SimRng::seed_from_u64(4));
        let t0 = clock.now();
        assert_eq!(dev.read_sync(3).unwrap(), PageContents::Zero);
        let d = (clock.now() - t0).as_micros_f64();
        assert!((d - 0.5).abs() < 1e-9, "zero read cost {d} µs, want 0.5");
        // Stored zero pages are metadata-only too.
        dev.write_sync(1, PageContents::Zero).unwrap();
        let t1 = clock.now();
        assert_eq!(dev.read_sync(1).unwrap(), PageContents::Zero);
        let d = (clock.now() - t1).as_micros_f64();
        assert!((d - 0.5).abs() < 1e-9, "stored-zero read cost {d} µs");
    }

    /// `ENOSPC` happens *after* the compression attempt in real zram:
    /// the reject path must charge the CPU cost and count the failure.
    #[test]
    fn rejected_writes_charge_compression_and_count() {
        let clock = SimClock::new();
        let mut dev = ZramDevice::new(64, PAGE_SIZE, clock.clone(), SimRng::seed_from_u64(5));
        let noise = |seed: u32| {
            let mut page = Vec::with_capacity(PAGE_SIZE);
            let mut x = seed;
            for _ in 0..PAGE_SIZE {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                page.push((x >> 24) as u8);
            }
            PageContents::from_bytes(&page)
        };
        dev.write_sync(0, noise(1)).unwrap();
        let t0 = clock.now();
        assert!(matches!(
            dev.write_sync(1, noise(2)),
            Err(BlockError::OutOfSpace { .. })
        ));
        let d = (clock.now() - t0).as_micros_f64();
        assert!(d > 1.0, "reject must still burn compression CPU, got {d}");
        assert_eq!(dev.stats().write_errors, 1);
        assert_eq!(dev.stats().writes, 1, "failed writes are not successes");
    }
}
