//! A local flash SSD.

use fluidmem_mem::PageContents;
use fluidmem_sim::{LatencyModel, SimClock, SimDuration, SimRng};

use crate::device::{BlockDevice, BlockError, BlockStats, Completion, QueueedStore};

/// A local SATA/NVMe flash SSD — the paper's slowest swap backend
/// (Figure 3f: 106.56 µs average fault latency) and the disk under
/// MongoDB's 5 GB store in §VI-D2.
///
/// Flash asymmetry is modeled: 4 KB random reads ≈115 µs with a long
/// tail; writes land in the device's SLC/DRAM buffer (≈28 µs) but
/// occasionally stall multiple milliseconds behind garbage collection.
///
/// # Example
///
/// ```
/// use fluidmem_block::{BlockDevice, SsdDevice};
/// use fluidmem_mem::PageContents;
/// use fluidmem_sim::{SimClock, SimRng};
///
/// let mut dev = SsdDevice::new(1024, SimClock::new(), SimRng::seed_from_u64(1));
/// dev.write_sync(3, PageContents::Token(3))?;
/// assert_eq!(dev.read_sync(3)?, PageContents::Token(3));
/// # Ok::<(), fluidmem_block::BlockError>(())
/// ```
#[derive(Debug)]
pub struct SsdDevice {
    inner: QueueedStore,
    read_latency: LatencyModel,
    write_latency: LatencyModel,
    submit_cost: SimDuration,
}

impl SsdDevice {
    /// Creates an SSD with `capacity_blocks` 4 KB blocks.
    pub fn new(capacity_blocks: u64, clock: SimClock, rng: SimRng) -> Self {
        SsdDevice {
            inner: QueueedStore::new(capacity_blocks, 32, clock, rng),
            read_latency: LatencyModel::lognormal_mean_p99_us(104.0, 265.0),
            write_latency: LatencyModel::lognormal_mean_p99_us(28.0, 80.0)
                .with_spike(0.002, LatencyModel::uniform_us(2_000.0, 8_000.0)),
            submit_cost: SimDuration::from_nanos(1_500),
        }
    }
}

impl BlockDevice for SsdDevice {
    fn name(&self) -> &'static str {
        "ssd"
    }

    fn capacity_blocks(&self) -> u64 {
        self.inner.capacity()
    }

    fn submit_read(&mut self, block: u64) -> Result<Completion, BlockError> {
        self.inner.check_range(block)?;
        let at = self.inner.schedule(self.submit_cost, &self.read_latency);
        self.inner.stats.reads.inc();
        let data = self
            .inner
            .blocks
            .get(&block)
            .cloned()
            .unwrap_or(PageContents::Zero);
        Ok(Completion { data, at })
    }

    fn submit_write(&mut self, block: u64, data: PageContents) -> Result<Completion, BlockError> {
        self.inner.check_range(block)?;
        let at = self.inner.schedule(self.submit_cost, &self.write_latency);
        self.inner.stats.writes.inc();
        self.inner.blocks.insert(block, data);
        Ok(Completion {
            data: PageContents::Zero,
            at,
        })
    }

    fn submit_write_background(
        &mut self,
        block: u64,
        data: PageContents,
    ) -> Result<Completion, BlockError> {
        self.inner.check_range(block)?;
        let at = self.inner.schedule_background(&self.write_latency);
        self.inner.stats.writes.inc();
        self.inner.blocks.insert(block, data);
        Ok(Completion {
            data: PageContents::Zero,
            at,
        })
    }

    fn clock(&self) -> &SimClock {
        &self.inner.clock
    }

    fn stats(&self) -> BlockStats {
        self.inner.stats.snapshot()
    }

    fn instrument(&mut self, registry: &fluidmem_telemetry::Registry) {
        self.inner.stats.register(registry, self.name());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_sim::stats::Sample;

    #[test]
    fn read_latency_calibration() {
        let clock = SimClock::new();
        let mut dev = SsdDevice::new(1 << 16, clock.clone(), SimRng::seed_from_u64(4));
        let mut s = Sample::new();
        for i in 0..5_000u64 {
            let t0 = clock.now();
            dev.read_sync(i % 4096).unwrap();
            s.record((clock.now() - t0).as_micros_f64());
        }
        assert!((s.mean() - 106.0).abs() < 10.0, "mean {}", s.mean());
        assert!(s.percentile(0.99) > 200.0, "flash tail expected");
    }

    #[test]
    fn writes_are_buffered_and_faster_than_reads_on_average() {
        let clock = SimClock::new();
        let mut dev = SsdDevice::new(1 << 16, clock.clone(), SimRng::seed_from_u64(4));
        let mut w = Sample::new();
        // Enough writes that the 0.2%-probability GC stall reliably
        // populates the p99.9 rank (expected ~20 spikes in 10k writes).
        for i in 0..10_000u64 {
            let t0 = clock.now();
            dev.write_sync(i % 4096, PageContents::Token(i)).unwrap();
            w.record((clock.now() - t0).as_micros_f64());
        }
        assert!(w.mean() < 60.0, "buffered write mean {}", w.mean());
        // GC spikes exist in the extreme tail.
        assert!(w.percentile(0.999) > 300.0, "p99.9 {}", w.percentile(0.999));
    }

    #[test]
    fn slowest_of_the_three_backends() {
        let mk_cost = |f: &mut dyn FnMut(SimClock, SimRng) -> SimDuration| {
            f(SimClock::new(), SimRng::seed_from_u64(9))
        };
        let ssd = mk_cost(&mut |c, r| {
            let mut d = SsdDevice::new(64, c.clone(), r);
            let t0 = c.now();
            d.read_sync(0).unwrap();
            c.now() - t0
        });
        let nv = mk_cost(&mut |c, r| {
            let mut d = crate::NvmeofDevice::new(64, c.clone(), r);
            let t0 = c.now();
            d.read_sync(0).unwrap();
            c.now() - t0
        });
        assert!(ssd > nv);
    }
}
