//! The monitor's resizable LRU buffer.

use std::collections::{HashMap, VecDeque};

use fluidmem_mem::Vpn;

/// The list that bounds a VM's DRAM footprint (§V-A).
///
/// * "Evictions come from the top of the LRU list" — the front here.
/// * "The LRU list is only updated when a page is seen by the monitor
///   process, which only happens on first access and after an eviction.
///   At present, the internal ordering of the list does not change." —
///   new and refaulted pages join at the tail; nothing else moves (unless
///   the [`ScanReferenced`](crate::LruPolicy::ScanReferenced) ablation
///   rotates entries explicitly via [`rotate_to_tail`]).
/// * "The userfaultfd capability allows the local memory buffer to be
///   actively sized up or down" — [`set_capacity`](LruBuffer::set_capacity)
///   changes the bound at runtime; the monitor then evicts down to it.
///
/// Internally each live page carries a sequence stamp; the deque may hold
/// stale `(seq, page)` entries from removals and rotations, which are
/// skipped lazily and compacted when they accumulate.
///
/// [`rotate_to_tail`]: LruBuffer::rotate_to_tail
///
/// # Example
///
/// ```
/// use fluidmem_core::LruBuffer;
/// use fluidmem_mem::Vpn;
///
/// let mut lru = LruBuffer::new(2);
/// lru.insert(Vpn::new(1));
/// lru.insert(Vpn::new(2));
/// lru.insert(Vpn::new(3));
/// assert!(lru.over_capacity());
/// assert_eq!(lru.pop_victim(), Some(Vpn::new(1))); // strict first-touch order
/// assert!(!lru.over_capacity());
/// ```
#[derive(Debug)]
pub struct LruBuffer {
    order: VecDeque<(u64, Vpn)>,
    members: HashMap<Vpn, u64>,
    next_seq: u64,
    capacity: u64,
}

impl LruBuffer {
    /// Creates a buffer bounded at `capacity` pages.
    pub fn new(capacity: u64) -> Self {
        LruBuffer {
            order: VecDeque::new(),
            members: HashMap::new(),
            next_seq: 0,
            capacity,
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Changes the bound. The caller is responsible for evicting down to
    /// it afterwards.
    pub fn set_capacity(&mut self, capacity: u64) {
        self.capacity = capacity;
    }

    /// Pages currently tracked (the VM's DRAM footprint).
    pub fn len(&self) -> u64 {
        self.members.len() as u64
    }

    /// Whether the buffer tracks no pages.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether the buffer exceeds its bound.
    pub fn over_capacity(&self) -> bool {
        self.len() > self.capacity
    }

    /// Whether a page is tracked.
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.members.contains_key(&vpn)
    }

    /// Adds a page at the tail (first access or refault). Returns `false`
    /// if already present.
    pub fn insert(&mut self, vpn: Vpn) -> bool {
        if self.members.contains_key(&vpn) {
            return false;
        }
        let seq = self.bump_seq();
        self.members.insert(vpn, seq);
        self.order.push_back((seq, vpn));
        true
    }

    /// Removes a page (lazily: its deque entry is skipped later).
    pub fn remove(&mut self, vpn: Vpn) -> bool {
        let removed = self.members.remove(&vpn).is_some();
        if removed {
            // Remove/reinsert churn leaves stale entries just like
            // rotation does; compact on the same threshold or the deque
            // grows without bound.
            self.maybe_compact();
        }
        removed
    }

    /// Takes the eviction victim from the top of the list.
    pub fn pop_victim(&mut self) -> Option<Vpn> {
        while let Some((seq, vpn)) = self.order.pop_front() {
            if self.members.get(&vpn) == Some(&seq) {
                self.members.remove(&vpn);
                return Some(vpn);
            }
        }
        None
    }

    /// Peeks at the next `n` victims in order (for referenced-bit
    /// scanning) without removing them.
    pub fn peek_head(&self, n: usize) -> Vec<Vpn> {
        self.order
            .iter()
            .filter(|(seq, vpn)| self.members.get(vpn) == Some(seq))
            .take(n)
            .map(|&(_, vpn)| vpn)
            .collect()
    }

    /// Moves a tracked page to the tail (the `ScanReferenced` ablation's
    /// rotation). Returns `false` if the page is not tracked.
    pub fn rotate_to_tail(&mut self, vpn: Vpn) -> bool {
        if !self.members.contains_key(&vpn) {
            return false;
        }
        let seq = self.bump_seq();
        self.members.insert(vpn, seq);
        self.order.push_back((seq, vpn));
        self.maybe_compact();
        true
    }

    /// Counts tracked pages with `start <= vpn < end` (per-VM residency
    /// accounting on a shared buffer).
    pub fn count_in(&self, start: Vpn, end: Vpn) -> u64 {
        self.members
            .keys()
            .filter(|v| **v >= start && **v < end)
            .count() as u64
    }

    fn bump_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    fn maybe_compact(&mut self) {
        if self.order.len() > self.members.len() * 2 + 64 {
            self.compact();
        }
    }

    /// Drops stale deque entries, preserving live order.
    fn compact(&mut self) {
        let members = &self.members;
        self.order
            .retain(|(seq, vpn)| members.get(vpn) == Some(seq));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u64) -> Vpn {
        Vpn::new(n)
    }

    #[test]
    fn strict_first_touch_order() {
        let mut lru = LruBuffer::new(10);
        for n in [3, 1, 4, 1, 5] {
            lru.insert(v(n));
        }
        assert_eq!(lru.len(), 4, "duplicate insert ignored");
        assert_eq!(lru.pop_victim(), Some(v(3)));
        assert_eq!(lru.pop_victim(), Some(v(1)));
        assert_eq!(lru.pop_victim(), Some(v(4)));
    }

    #[test]
    fn removed_pages_are_skipped() {
        let mut lru = LruBuffer::new(10);
        lru.insert(v(1));
        lru.insert(v(2));
        lru.remove(v(1));
        assert_eq!(lru.pop_victim(), Some(v(2)));
        assert_eq!(lru.pop_victim(), None);
    }

    #[test]
    fn reinsert_after_remove_goes_to_tail() {
        let mut lru = LruBuffer::new(10);
        lru.insert(v(1));
        lru.insert(v(2));
        lru.remove(v(1));
        lru.insert(v(1)); // refault: tail position
        assert_eq!(lru.pop_victim(), Some(v(2)));
        assert_eq!(lru.pop_victim(), Some(v(1)));
    }

    #[test]
    fn resize_changes_over_capacity() {
        let mut lru = LruBuffer::new(4);
        for n in 0..4 {
            lru.insert(v(n));
        }
        assert!(!lru.over_capacity());
        lru.set_capacity(2);
        assert!(lru.over_capacity());
        lru.pop_victim();
        lru.pop_victim();
        assert!(!lru.over_capacity());
        assert_eq!(lru.capacity(), 2);
    }

    #[test]
    fn rotation_changes_eviction_order() {
        let mut lru = LruBuffer::new(10);
        for n in 0..3 {
            lru.insert(v(n));
        }
        assert!(lru.rotate_to_tail(v(0)));
        assert_eq!(lru.pop_victim(), Some(v(1)), "0 was rotated away");
        assert_eq!(lru.pop_victim(), Some(v(2)));
        assert_eq!(lru.pop_victim(), Some(v(0)));
        assert_eq!(lru.pop_victim(), None);
    }

    #[test]
    fn rotation_of_untracked_page_fails() {
        let mut lru = LruBuffer::new(4);
        assert!(!lru.rotate_to_tail(v(9)));
    }

    #[test]
    fn peek_head_skips_stale() {
        let mut lru = LruBuffer::new(10);
        for n in 0..5 {
            lru.insert(v(n));
        }
        lru.remove(v(0));
        lru.rotate_to_tail(v(1));
        assert_eq!(lru.peek_head(2), vec![v(2), v(3)]);
    }

    #[test]
    fn heavy_rotation_does_not_leak_deque() {
        let mut lru = LruBuffer::new(64);
        for n in 0..64 {
            lru.insert(v(n));
        }
        for _round in 0..100 {
            for n in 0..64 {
                lru.rotate_to_tail(v(n));
            }
        }
        assert!(
            lru.order.len() <= 64 * 2 + 64,
            "deque grew to {}",
            lru.order.len()
        );
        // Order is still coherent after compaction.
        let mut seen = std::collections::HashSet::new();
        while let Some(p) = lru.pop_victim() {
            assert!(seen.insert(p));
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn insert_remove_churn_does_not_leak_deque() {
        let mut lru = LruBuffer::new(8);
        for i in 0..10_000u64 {
            let p = i % 16;
            lru.insert(v(p));
            lru.remove(v(p));
        }
        assert!(
            lru.order.len() <= 16 * 2 + 64,
            "deque grew to {}",
            lru.order.len()
        );
        assert!(lru.is_empty());
        assert_eq!(lru.pop_victim(), None);
    }

    #[test]
    fn shrink_then_rotate_keeps_accounting_live_only() {
        let mut lru = LruBuffer::new(8);
        for n in 0..8 {
            lru.insert(v(n));
        }
        lru.set_capacity(4);
        // Rotating while over capacity piles up stale deque entries; the
        // accounting must keep counting live members only.
        for n in 0..8 {
            lru.rotate_to_tail(v(n));
        }
        assert_eq!(lru.len(), 8);
        assert!(lru.over_capacity());
        let mut victims = Vec::new();
        while lru.over_capacity() {
            victims.push(lru.pop_victim().unwrap());
        }
        assert_eq!(victims, vec![v(0), v(1), v(2), v(3)]);
        assert_eq!(lru.len(), 4);
        for victim in victims {
            assert!(!lru.contains(victim), "removed page resurfaced");
        }
    }

    #[test]
    fn interleaved_ops_match_a_model() {
        fluidmem_sim::prop::forall("lru-interleaved-ops", 64, |rng| {
            let mut lru = LruBuffer::new(8);
            // Live pages in eviction order.
            let mut model: Vec<u64> = Vec::new();
            let ops =
                fluidmem_sim::prop::vec_of(rng, 1, 299, |r| (r.gen_index(5), r.gen_index(24)));
            for (op, page) in ops {
                match op {
                    0 | 1 => {
                        let inserted = lru.insert(v(page));
                        assert_eq!(inserted, !model.contains(&page));
                        if inserted {
                            model.push(page);
                        }
                    }
                    2 => {
                        let removed = lru.remove(v(page));
                        assert_eq!(removed, model.contains(&page));
                        model.retain(|&p| p != page);
                    }
                    3 => {
                        let rotated = lru.rotate_to_tail(v(page));
                        assert_eq!(rotated, model.contains(&page));
                        if rotated {
                            model.retain(|&p| p != page);
                            model.push(page);
                        }
                    }
                    _ => {
                        lru.set_capacity(page % 8);
                        while lru.over_capacity() {
                            assert_eq!(lru.pop_victim(), Some(v(model.remove(0))));
                        }
                    }
                }
                assert_eq!(lru.len() as usize, model.len());
                assert_eq!(lru.over_capacity(), model.len() as u64 > lru.capacity());
            }
            // Drain: victims surface in exactly the model's order, each
            // live page once, never a removed one.
            for expected in model {
                assert_eq!(lru.pop_victim(), Some(v(expected)));
            }
            assert_eq!(lru.pop_victim(), None);
        });
    }

    #[test]
    fn near_zero_capacity_supported() {
        // Table III shrinks a VM to single-digit pages; the buffer must
        // behave at capacity 1 and 0.
        let mut lru = LruBuffer::new(1);
        lru.insert(v(1));
        assert!(!lru.over_capacity());
        lru.insert(v(2));
        assert!(lru.over_capacity());
        lru.set_capacity(0);
        while let Some(_p) = lru.pop_victim() {}
        assert!(lru.is_empty());
        assert!(!lru.over_capacity());
    }
}
