//! The monitor's resizable LRU buffer.

use std::collections::HashMap;

use fluidmem_mem::Vpn;

/// Slab link sentinel: "no node".
const NIL: u32 = u32::MAX;

/// One page's slab node, linked into the recency list.
#[derive(Debug, Clone, Copy)]
struct Node {
    vpn: Vpn,
    prev: u32,
    next: u32,
}

/// The list that bounds a VM's DRAM footprint (§V-A).
///
/// * "Evictions come from the top of the LRU list" — the head here.
/// * "The LRU list is only updated when a page is seen by the monitor
///   process, which only happens on first access and after an eviction.
///   At present, the internal ordering of the list does not change." —
///   new and refaulted pages join at the tail; nothing else moves (unless
///   the [`ScanReferenced`](crate::LruPolicy::ScanReferenced) ablation
///   rotates entries explicitly via [`rotate_to_tail`]).
/// * "The userfaultfd capability allows the local memory buffer to be
///   actively sized up or down" — [`set_capacity`](LruBuffer::set_capacity)
///   changes the bound at runtime; the monitor then evicts down to it.
///
/// Internally the list is an intrusive doubly-linked list over a slab of
/// nodes: insert, remove, rotate, and victim-pop are all true O(1), and
/// [`peek_head`](LruBuffer::peek_head) walks exactly the nodes it
/// returns. There are no stale entries and therefore no compaction — the
/// slab's footprint plateaus at the peak live page count, with freed
/// nodes recycled through a free list.
///
/// [`rotate_to_tail`]: LruBuffer::rotate_to_tail
///
/// # Example
///
/// ```
/// use fluidmem_core::LruBuffer;
/// use fluidmem_mem::Vpn;
///
/// let mut lru = LruBuffer::new(2);
/// lru.insert(Vpn::new(1));
/// lru.insert(Vpn::new(2));
/// lru.insert(Vpn::new(3));
/// assert!(lru.over_capacity());
/// assert_eq!(lru.pop_victim(), Some(Vpn::new(1))); // strict first-touch order
/// assert!(!lru.over_capacity());
/// ```
#[derive(Debug)]
pub struct LruBuffer {
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    index: HashMap<Vpn, u32>,
    capacity: u64,
}

impl LruBuffer {
    /// Creates a buffer bounded at `capacity` pages.
    pub fn new(capacity: u64) -> Self {
        LruBuffer {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            index: HashMap::new(),
            capacity,
        }
    }

    /// The configured bound.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Changes the bound. The caller is responsible for evicting down to
    /// it afterwards.
    pub fn set_capacity(&mut self, capacity: u64) {
        self.capacity = capacity;
    }

    /// Pages currently tracked (the VM's DRAM footprint).
    pub fn len(&self) -> u64 {
        self.index.len() as u64
    }

    /// Whether the buffer tracks no pages.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether the buffer exceeds its bound.
    pub fn over_capacity(&self) -> bool {
        self.len() > self.capacity
    }

    /// Whether a page is tracked.
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.index.contains_key(&vpn)
    }

    /// Slab nodes allocated (live + free-listed): the buffer's standing
    /// memory footprint, which plateaus at the peak live page count.
    pub fn slab_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn alloc_node(&mut self, vpn: Vpn) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node {
                    vpn,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                let i = self.nodes.len() as u32;
                self.nodes.push(Node {
                    vpn,
                    prev: NIL,
                    next: NIL,
                });
                i
            }
        }
    }

    /// Splices node `i` onto the list tail.
    fn link_tail(&mut self, i: u32) {
        self.nodes[i as usize].prev = self.tail;
        self.nodes[i as usize].next = NIL;
        if self.tail == NIL {
            self.head = i;
        } else {
            self.nodes[self.tail as usize].next = i;
        }
        self.tail = i;
    }

    /// Unlinks node `i` from the list (does not free it).
    fn unlink(&mut self, i: u32) {
        let Node { prev, next, .. } = self.nodes[i as usize];
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next as usize].prev = prev;
        }
    }

    /// Adds a page at the tail (first access or refault). Returns `false`
    /// if already present.
    pub fn insert(&mut self, vpn: Vpn) -> bool {
        if self.index.contains_key(&vpn) {
            return false;
        }
        let i = self.alloc_node(vpn);
        self.link_tail(i);
        self.index.insert(vpn, i);
        true
    }

    /// Removes a page in O(1) via its slab node.
    pub fn remove(&mut self, vpn: Vpn) -> bool {
        match self.index.remove(&vpn) {
            Some(i) => {
                self.unlink(i);
                self.free.push(i);
                true
            }
            None => false,
        }
    }

    /// Takes the eviction victim from the top of the list.
    pub fn pop_victim(&mut self) -> Option<Vpn> {
        if self.head == NIL {
            return None;
        }
        let i = self.head;
        let vpn = self.nodes[i as usize].vpn;
        self.unlink(i);
        self.free.push(i);
        self.index.remove(&vpn);
        Some(vpn)
    }

    /// Peeks at the next `n` victims in order (for referenced-bit
    /// scanning) without removing them. Walks exactly `min(n, len)`
    /// nodes — every step lands on a live page.
    pub fn peek_head(&self, n: usize) -> Vec<Vpn> {
        let mut out = Vec::new();
        self.peek_head_into(n, &mut out);
        out
    }

    /// [`peek_head`](LruBuffer::peek_head) into a caller-owned buffer so
    /// the periodic scan path can reuse one allocation.
    pub fn peek_head_into(&self, n: usize, out: &mut Vec<Vpn>) {
        out.clear();
        let mut i = self.head;
        while i != NIL && out.len() < n {
            let node = &self.nodes[i as usize];
            out.push(node.vpn);
            i = node.next;
        }
    }

    /// Moves a tracked page to the tail (the `ScanReferenced` ablation's
    /// rotation). Returns `false` if the page is not tracked.
    pub fn rotate_to_tail(&mut self, vpn: Vpn) -> bool {
        match self.index.get(&vpn) {
            Some(&i) => {
                self.unlink(i);
                self.link_tail(i);
                true
            }
            None => false,
        }
    }

    /// Counts tracked pages with `start <= vpn < end` (per-VM residency
    /// accounting on a shared buffer).
    pub fn count_in(&self, start: Vpn, end: Vpn) -> u64 {
        self.index
            .keys()
            .filter(|v| **v >= start && **v < end)
            .count() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u64) -> Vpn {
        Vpn::new(n)
    }

    #[test]
    fn strict_first_touch_order() {
        let mut lru = LruBuffer::new(10);
        for n in [3, 1, 4, 1, 5] {
            lru.insert(v(n));
        }
        assert_eq!(lru.len(), 4, "duplicate insert ignored");
        assert_eq!(lru.pop_victim(), Some(v(3)));
        assert_eq!(lru.pop_victim(), Some(v(1)));
        assert_eq!(lru.pop_victim(), Some(v(4)));
    }

    #[test]
    fn removed_pages_are_skipped() {
        let mut lru = LruBuffer::new(10);
        lru.insert(v(1));
        lru.insert(v(2));
        lru.remove(v(1));
        assert_eq!(lru.pop_victim(), Some(v(2)));
        assert_eq!(lru.pop_victim(), None);
    }

    #[test]
    fn reinsert_after_remove_goes_to_tail() {
        let mut lru = LruBuffer::new(10);
        lru.insert(v(1));
        lru.insert(v(2));
        lru.remove(v(1));
        lru.insert(v(1)); // refault: tail position
        assert_eq!(lru.pop_victim(), Some(v(2)));
        assert_eq!(lru.pop_victim(), Some(v(1)));
    }

    #[test]
    fn resize_changes_over_capacity() {
        let mut lru = LruBuffer::new(4);
        for n in 0..4 {
            lru.insert(v(n));
        }
        assert!(!lru.over_capacity());
        lru.set_capacity(2);
        assert!(lru.over_capacity());
        lru.pop_victim();
        lru.pop_victim();
        assert!(!lru.over_capacity());
        assert_eq!(lru.capacity(), 2);
    }

    #[test]
    fn rotation_changes_eviction_order() {
        let mut lru = LruBuffer::new(10);
        for n in 0..3 {
            lru.insert(v(n));
        }
        assert!(lru.rotate_to_tail(v(0)));
        assert_eq!(lru.pop_victim(), Some(v(1)), "0 was rotated away");
        assert_eq!(lru.pop_victim(), Some(v(2)));
        assert_eq!(lru.pop_victim(), Some(v(0)));
        assert_eq!(lru.pop_victim(), None);
    }

    #[test]
    fn rotation_of_untracked_page_fails() {
        let mut lru = LruBuffer::new(4);
        assert!(!lru.rotate_to_tail(v(9)));
    }

    #[test]
    fn peek_head_skips_stale() {
        let mut lru = LruBuffer::new(10);
        for n in 0..5 {
            lru.insert(v(n));
        }
        lru.remove(v(0));
        lru.rotate_to_tail(v(1));
        assert_eq!(lru.peek_head(2), vec![v(2), v(3)]);
    }

    #[test]
    fn peek_head_into_reuses_the_buffer() {
        let mut lru = LruBuffer::new(10);
        for n in 0..4 {
            lru.insert(v(n));
        }
        let mut buf = vec![v(99); 8];
        lru.peek_head_into(3, &mut buf);
        assert_eq!(buf, vec![v(0), v(1), v(2)]);
        lru.peek_head_into(10, &mut buf);
        assert_eq!(buf, vec![v(0), v(1), v(2), v(3)], "clamped at len");
    }

    #[test]
    fn heavy_rotation_does_not_leak_deque() {
        let mut lru = LruBuffer::new(64);
        for n in 0..64 {
            lru.insert(v(n));
        }
        for _round in 0..100 {
            for n in 0..64 {
                lru.rotate_to_tail(v(n));
            }
        }
        // Rotation relinks in place: the slab never grows past the live
        // page count, no matter how much the order churns.
        assert_eq!(lru.slab_nodes(), 64, "slab grew under rotation churn");
        // Order is still coherent after all that relinking.
        let mut seen = std::collections::HashSet::new();
        while let Some(p) = lru.pop_victim() {
            assert!(seen.insert(p));
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn insert_remove_churn_does_not_leak_deque() {
        let mut lru = LruBuffer::new(8);
        for i in 0..10_000u64 {
            let p = i % 16;
            lru.insert(v(p));
            lru.remove(v(p));
        }
        // Freed nodes recycle through the free list: storage stays at the
        // peak live count (1 here), not the operation count.
        assert!(
            lru.slab_nodes() <= 1,
            "slab grew to {} under insert/remove churn",
            lru.slab_nodes()
        );
        assert!(lru.is_empty());
        assert_eq!(lru.pop_victim(), None);
    }

    #[test]
    fn slab_plateaus_at_peak_live_pages() {
        let mut lru = LruBuffer::new(1024);
        // Peak of 32 live pages, then sustained churn below the peak.
        for n in 0..32 {
            lru.insert(v(n));
        }
        for n in 8..32 {
            lru.remove(v(n));
        }
        for round in 0..1_000u64 {
            let p = 100 + (round % 24);
            lru.insert(v(p));
            lru.rotate_to_tail(v(p));
            lru.remove(v(p));
        }
        assert!(
            lru.slab_nodes() <= 32,
            "slab grew past peak live pages: {}",
            lru.slab_nodes()
        );
    }

    #[test]
    fn shrink_then_rotate_keeps_accounting_live_only() {
        let mut lru = LruBuffer::new(8);
        for n in 0..8 {
            lru.insert(v(n));
        }
        lru.set_capacity(4);
        // Rotating while over capacity must keep the accounting on live
        // members only.
        for n in 0..8 {
            lru.rotate_to_tail(v(n));
        }
        assert_eq!(lru.len(), 8);
        assert!(lru.over_capacity());
        let mut victims = Vec::new();
        while lru.over_capacity() {
            victims.push(lru.pop_victim().unwrap());
        }
        assert_eq!(victims, vec![v(0), v(1), v(2), v(3)]);
        assert_eq!(lru.len(), 4);
        for victim in victims {
            assert!(!lru.contains(victim), "removed page resurfaced");
        }
    }

    #[test]
    fn interleaved_ops_match_a_model() {
        fluidmem_sim::prop::forall("lru-interleaved-ops", 64, |rng| {
            let mut lru = LruBuffer::new(8);
            // Live pages in eviction order.
            let mut model: Vec<u64> = Vec::new();
            let ops =
                fluidmem_sim::prop::vec_of(rng, 1, 299, |r| (r.gen_index(5), r.gen_index(24)));
            for (op, page) in ops {
                match op {
                    0 | 1 => {
                        let inserted = lru.insert(v(page));
                        assert_eq!(inserted, !model.contains(&page));
                        if inserted {
                            model.push(page);
                        }
                    }
                    2 => {
                        let removed = lru.remove(v(page));
                        assert_eq!(removed, model.contains(&page));
                        model.retain(|&p| p != page);
                    }
                    3 => {
                        let rotated = lru.rotate_to_tail(v(page));
                        assert_eq!(rotated, model.contains(&page));
                        if rotated {
                            model.retain(|&p| p != page);
                            model.push(page);
                        }
                    }
                    _ => {
                        lru.set_capacity(page % 8);
                        while lru.over_capacity() {
                            assert_eq!(lru.pop_victim(), Some(v(model.remove(0))));
                        }
                    }
                }
                assert_eq!(lru.len() as usize, model.len());
                assert_eq!(lru.over_capacity(), model.len() as u64 > lru.capacity());
            }
            // Drain: victims surface in exactly the model's order, each
            // live page once, never a removed one.
            for expected in model {
                assert_eq!(lru.pop_victim(), Some(v(expected)));
            }
            assert_eq!(lru.pop_victim(), None);
        });
    }

    /// The pre-slab implementation, verbatim semantics: a `(seq, page)`
    /// deque with lazily skipped stale entries. Kept as the behavioral
    /// reference the slab list is checked against.
    struct DequeLru {
        order: std::collections::VecDeque<(u64, Vpn)>,
        members: HashMap<Vpn, u64>,
        next_seq: u64,
    }

    impl DequeLru {
        fn new() -> Self {
            DequeLru {
                order: std::collections::VecDeque::new(),
                members: HashMap::new(),
                next_seq: 0,
            }
        }

        fn insert(&mut self, vpn: Vpn) -> bool {
            if self.members.contains_key(&vpn) {
                return false;
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.members.insert(vpn, seq);
            self.order.push_back((seq, vpn));
            true
        }

        fn remove(&mut self, vpn: Vpn) -> bool {
            self.members.remove(&vpn).is_some()
        }

        fn rotate_to_tail(&mut self, vpn: Vpn) -> bool {
            if !self.members.contains_key(&vpn) {
                return false;
            }
            let seq = self.next_seq;
            self.next_seq += 1;
            self.members.insert(vpn, seq);
            self.order.push_back((seq, vpn));
            true
        }

        fn pop_victim(&mut self) -> Option<Vpn> {
            while let Some((seq, vpn)) = self.order.pop_front() {
                if self.members.get(&vpn) == Some(&seq) {
                    self.members.remove(&vpn);
                    return Some(vpn);
                }
            }
            None
        }

        fn peek_head(&self, n: usize) -> Vec<Vpn> {
            self.order
                .iter()
                .filter(|(seq, vpn)| self.members.get(vpn) == Some(seq))
                .take(n)
                .map(|&(_, vpn)| vpn)
                .collect()
        }

        fn contains(&self, vpn: Vpn) -> bool {
            self.members.contains_key(&vpn)
        }
    }

    #[test]
    fn slab_list_matches_the_deque_implementation() {
        // Randomized insert / remove / rotate / refault traffic against
        // the old deque implementation: victim order, peek order, and
        // membership answers must be identical.
        fluidmem_sim::prop::forall("lru-slab-vs-deque", 4, |rng| {
            let mut slab = LruBuffer::new(16);
            let mut deque = DequeLru::new();
            for _ in 0..2_000 {
                let page = v(rng.gen_index(64));
                match rng.gen_index(6) {
                    0 | 1 => assert_eq!(slab.insert(page), deque.insert(page)),
                    2 => assert_eq!(slab.remove(page), deque.remove(page)),
                    3 => assert_eq!(slab.rotate_to_tail(page), deque.rotate_to_tail(page)),
                    4 => {
                        // Refault: evict to the store, fault straight back.
                        let sv = slab.pop_victim();
                        assert_eq!(sv, deque.pop_victim());
                        if let Some(victim) = sv {
                            assert!(slab.insert(victim));
                            assert!(deque.insert(victim));
                        }
                    }
                    _ => {
                        let n = rng.gen_index(8) as usize;
                        assert_eq!(slab.peek_head(n), deque.peek_head(n));
                    }
                }
                assert_eq!(slab.contains(page), deque.contains(page));
                assert_eq!(slab.len(), deque.members.len() as u64);
            }
            loop {
                let sv = slab.pop_victim();
                assert_eq!(sv, deque.pop_victim());
                if sv.is_none() {
                    break;
                }
            }
        });
    }

    #[test]
    fn near_zero_capacity_supported() {
        // Table III shrinks a VM to single-digit pages; the buffer must
        // behave at capacity 1 and 0.
        let mut lru = LruBuffer::new(1);
        lru.insert(v(1));
        assert!(!lru.over_capacity());
        lru.insert(v(2));
        assert!(lru.over_capacity());
        lru.set_capacity(0);
        while let Some(_p) = lru.pop_victim() {}
        assert!(lru.is_empty());
        assert!(!lru.over_capacity());
    }
}
