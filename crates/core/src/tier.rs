//! The compressed local tier: a zswap-like middle rung between DRAM and
//! the remote store (paper §III's page-compression customization).
//!
//! Evictions leaving the LRU land here first — compressed in hypervisor
//! DRAM, budgeted by *compressed* bytes — and only demote to the remote
//! store under pool pressure, through the ordinary write-list flush
//! path. A refault that hits the pool promotes back to DRAM for the
//! cost of a decompress instead of a network round trip.
//!
//! This module owns the pure pool: entry storage, charge/uncharge
//! accounting, the FIFO demotion order, and the watermark arithmetic.
//! The monitor glue (admission on eviction, promotion on refault,
//! demotion onto the write list) lives in `monitor/`, gated so that a
//! disabled tier leaves the monitor byte-identical to one built before
//! the feature existed: no RNG draw, clock charge, counter, or span
//! differs.
//!
//! Sizing policy is shared with zram and `CompressedStore` through
//! [`fluidmem_kv::stored_page_size`]: zero pages are free, token
//! stand-ins cost a nominal slot, full pages cost their exact RLE
//! length — and incompressible pages **bypass** the tier straight to
//! the remote store rather than occupying a full page of pool for no
//! win (the zswap `reject_compress_poor` path).

use std::collections::{HashMap, VecDeque};

use fluidmem_kv::ExternalKey;
use fluidmem_mem::PageContents;
use fluidmem_sim::LatencyModel;

/// Configuration of the compressed local tier.
///
/// Off by default, and a no-op without
/// [`Optimizations::async_write`](crate::Optimizations) (demotions
/// stage onto the write list): the default configuration is bit-for-bit
/// identical to a monitor without the feature.
#[derive(Debug, Clone, PartialEq)]
pub struct TierConfig {
    /// Master switch. Off by default: evictions go straight to the
    /// remote store as before.
    pub enabled: bool,
    /// Pool budget in *compressed* bytes (zswap's `max_pool_percent`,
    /// expressed absolutely).
    pub max_bytes: usize,
    /// Demotion drains the pool down to this fraction of `max_bytes`
    /// once occupancy crosses `watermark_high` — hysteresis so pressure
    /// demotes a batch, not one page per admission.
    pub watermark_low: f64,
    /// Demotion to the remote store begins when occupancy exceeds this
    /// fraction of `max_bytes`.
    pub watermark_high: f64,
    /// Expected compressed size of a pooled page, used only to convert
    /// the byte budget into an approximate page count for the
    /// refault-distance thrash gate.
    pub expected_page_bytes: usize,
    /// Bypass admission when the VM's working-set estimate exceeds what
    /// DRAM plus the pool could hold: a thrashing VM would only churn
    /// the pool (admit, demote, refault from remote anyway), so its
    /// evictions skip straight to the remote store.
    pub thrash_gate: bool,
    /// CPU cost of one compression attempt (charged on admission *and*
    /// on incompressible bypass — the attempt is how incompressibility
    /// is discovered, exactly like zram's reject path).
    pub compress: LatencyModel,
    /// CPU cost of decompressing a pool hit on the refault path.
    pub decompress: LatencyModel,
}

impl TierConfig {
    /// Compressed tier off (the default).
    pub fn disabled() -> Self {
        TierConfig {
            enabled: false,
            ..Self::pool(8 << 20)
        }
    }

    /// Compressed tier on with zswap-shaped defaults: demote above 90%
    /// occupancy down to 75%, LZ-class compress/decompress costs in the
    /// same band as [`fluidmem_kv::CompressedStore`]'s.
    pub fn pool(max_bytes: usize) -> Self {
        TierConfig {
            enabled: true,
            max_bytes,
            watermark_low: 0.75,
            watermark_high: 0.90,
            expected_page_bytes: 512,
            thrash_gate: true,
            compress: LatencyModel::normal_us(1.6, 0.2),
            decompress: LatencyModel::normal_us(0.8, 0.1),
        }
    }

    /// Tier on with explicit demotion watermark fractions.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < low < high <= 1`.
    pub fn watermarks(max_bytes: usize, low: f64, high: f64) -> Self {
        let config = TierConfig {
            watermark_low: low,
            watermark_high: high,
            ..Self::pool(max_bytes)
        };
        config.validate();
        config
    }

    /// The demotion-stop target in bytes (floor of the hysteresis band).
    pub fn low_bytes(&self) -> usize {
        (self.max_bytes as f64 * self.watermark_low) as usize
    }

    /// The demotion-start threshold in bytes.
    pub fn high_bytes(&self) -> usize {
        (self.max_bytes as f64 * self.watermark_high) as usize
    }

    /// Approximate pool capacity in pages, for the thrash gate.
    pub fn pool_pages_estimate(&self) -> u64 {
        (self.max_bytes / self.expected_page_bytes.max(1)) as u64
    }

    /// Checks the watermark fractions and budget are sane.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < watermark_low < watermark_high <= 1` and the
    /// budget and expected page size are nonzero.
    pub fn validate(&self) {
        assert!(self.max_bytes > 0, "tier max_bytes must be positive");
        assert!(
            self.expected_page_bytes > 0,
            "tier expected_page_bytes must be positive"
        );
        assert!(
            self.watermark_low > 0.0,
            "tier watermark_low must be positive (got {})",
            self.watermark_low
        );
        assert!(
            self.watermark_high > self.watermark_low,
            "tier watermark_high ({}) must exceed watermark_low ({})",
            self.watermark_high,
            self.watermark_low
        );
        assert!(
            self.watermark_high <= 1.0,
            "tier watermark_high must be at most 1.0 (got {})",
            self.watermark_high
        );
    }
}

impl Default for TierConfig {
    fn default() -> Self {
        TierConfig::disabled()
    }
}

/// The shadow-accounting verdict of [`Monitor::tier_audit`]
/// (crate::Monitor::tier_audit): cross-checks every tracked page
/// against the LRU, the pool, the write list, and the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierAudit {
    /// Tracked pages found in *no* tier (not resident, not pooled, not
    /// on the write list, not in the store) — data loss.
    pub lost_pages: u64,
    /// Pooled pages *also* resident or on the write list — a promote or
    /// demote that forgot to remove its source copy.
    pub duplicated_pages: u64,
    /// Whether the pool's internal charge/uncharge and lifetime
    /// accounting balance exactly.
    pub balanced: bool,
}

impl TierAudit {
    /// No page lost, none duplicated, accounting balanced.
    pub fn is_clean(&self) -> bool {
        self.lost_pages == 0 && self.duplicated_pages == 0 && self.balanced
    }
}

struct TierEntry {
    contents: PageContents,
    bytes: usize,
    /// Admission sequence stamp; disambiguates a re-admitted key from
    /// its stale position in the FIFO demotion order.
    seq: u64,
}

/// The compressed pool: keyed entries, compressed-byte accounting, and
/// a FIFO demotion order (oldest admission demotes first — the zswap
/// LRU, which for a pool fed exclusively by LRU-tail evictions is the
/// eviction order itself).
#[derive(Default)]
pub(crate) struct CompressedTier {
    entries: HashMap<ExternalKey, TierEntry>,
    /// `(seq, key)` in admission order; stale stamps (seq mismatch) are
    /// skipped lazily on demotion.
    order: VecDeque<(u64, ExternalKey)>,
    bytes: usize,
    next_seq: u64,
    // Lifetime accounting for the balance invariant:
    // admitted == live + promoted + demoted + dropped.
    admitted: u64,
    promoted: u64,
    demoted: u64,
    dropped: u64,
}

impl CompressedTier {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Live entries in the pool.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Compressed bytes currently charged.
    pub(crate) fn bytes(&self) -> usize {
        self.bytes
    }

    pub(crate) fn contains(&self, key: ExternalKey) -> bool {
        self.entries.contains_key(&key)
    }

    /// Admits (or replaces) an entry, charging `bytes`. A replaced
    /// entry's charge is released first and counted as dropped — its
    /// contents are superseded, not lost.
    pub(crate) fn admit(&mut self, key: ExternalKey, contents: PageContents, bytes: usize) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(old) = self.entries.insert(
            key,
            TierEntry {
                contents,
                bytes,
                seq,
            },
        ) {
            self.bytes -= old.bytes;
            self.dropped += 1;
        }
        self.bytes += bytes;
        self.admitted += 1;
        self.order.push_back((seq, key));
    }

    /// Removes and returns `key`'s entry (a refault promoting it back
    /// to DRAM), releasing its charge. Its FIFO stamp goes stale and is
    /// skipped lazily.
    pub(crate) fn promote(&mut self, key: ExternalKey) -> Option<PageContents> {
        let entry = self.entries.remove(&key)?;
        self.bytes -= entry.bytes;
        self.promoted += 1;
        Some(entry.contents)
    }

    /// Removes and returns the oldest live entry (pool pressure demoting
    /// it toward the remote store), releasing its charge.
    pub(crate) fn pop_oldest(&mut self) -> Option<(ExternalKey, PageContents)> {
        while let Some((seq, key)) = self.order.pop_front() {
            match self.entries.get(&key) {
                Some(entry) if entry.seq == seq => {
                    let entry = self.entries.remove(&key).expect("entry just seen");
                    self.bytes -= entry.bytes;
                    self.demoted += 1;
                    return Some((key, entry.contents));
                }
                // Stale stamp: the key was promoted or re-admitted since.
                _ => continue,
            }
        }
        None
    }

    /// Drops every entry matching `f` (region teardown), releasing the
    /// charges. Returns how many were dropped.
    pub(crate) fn remove_matching(&mut self, f: impl Fn(ExternalKey) -> bool) -> usize {
        let doomed: Vec<ExternalKey> = self.entries.keys().copied().filter(|&k| f(k)).collect();
        for key in &doomed {
            let entry = self.entries.remove(key).expect("key just listed");
            self.bytes -= entry.bytes;
            self.dropped += 1;
        }
        doomed.len()
    }

    /// The charge/uncharge invariant: the byte gauge equals the sum of
    /// live entries, and every admission is accounted for exactly once
    /// (still live, promoted, demoted, or dropped).
    pub(crate) fn accounting_balances(&self) -> bool {
        let live_bytes: usize = self.entries.values().map(|e| e.bytes).sum();
        self.bytes == live_bytes
            && self.admitted
                == self.entries.len() as u64 + self.promoted + self.demoted + self.dropped
    }

    /// Lifetime (admitted, promoted, demoted, dropped) counts.
    #[cfg(test)]
    pub(crate) fn lifetime_counts(&self) -> (u64, u64, u64, u64) {
        (self.admitted, self.promoted, self.demoted, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use fluidmem_coord::PartitionId;
    use fluidmem_mem::Vpn;

    use super::*;

    fn key(n: u64) -> ExternalKey {
        ExternalKey::new(Vpn::new(n), PartitionId::new(0))
    }

    #[test]
    fn config_defaults_off_and_watermarks_validate() {
        assert!(!TierConfig::default().enabled);
        let c = TierConfig::pool(1 << 20);
        assert!(c.enabled);
        c.validate();
        assert_eq!(c.low_bytes(), (1 << 20) * 3 / 4);
        assert!(c.high_bytes() > c.low_bytes());
        assert_eq!(c.pool_pages_estimate(), (1 << 20) / 512);
    }

    #[test]
    #[should_panic(expected = "watermark_high")]
    fn inverted_watermarks_panic() {
        TierConfig::watermarks(1 << 20, 0.9, 0.9);
    }

    #[test]
    fn charge_uncharge_balances_through_every_path() {
        let mut t = CompressedTier::new();
        t.admit(key(1), PageContents::Token(1), 64);
        t.admit(key(2), PageContents::Token(2), 100);
        t.admit(key(3), PageContents::Token(3), 36);
        assert_eq!(t.bytes(), 200);
        assert_eq!(t.len(), 3);
        assert!(t.accounting_balances());

        assert_eq!(t.promote(key(2)), Some(PageContents::Token(2)));
        assert_eq!(t.bytes(), 100);
        assert!(t.accounting_balances());

        // FIFO demotion order: key 1 was admitted first.
        let (k, c) = t.pop_oldest().expect("pool nonempty");
        assert_eq!(k, key(1));
        assert_eq!(c, PageContents::Token(1));
        assert_eq!(t.bytes(), 36);
        assert!(t.accounting_balances());

        assert_eq!(t.remove_matching(|_| true), 1);
        assert_eq!(t.bytes(), 0);
        assert!(t.is_empty());
        assert!(t.accounting_balances());
        assert_eq!(t.lifetime_counts(), (3, 1, 1, 1));
    }

    #[test]
    fn readmission_replaces_and_releases_the_old_charge() {
        let mut t = CompressedTier::new();
        t.admit(key(7), PageContents::Token(1), 500);
        t.admit(key(7), PageContents::Token(2), 40);
        assert_eq!(t.bytes(), 40, "old charge released on replace");
        assert_eq!(t.len(), 1);
        assert!(t.accounting_balances());
        // The stale FIFO stamp must be skipped: the pop yields the new
        // contents, once.
        assert_eq!(t.pop_oldest(), Some((key(7), PageContents::Token(2))));
        assert_eq!(t.pop_oldest(), None);
        assert!(t.accounting_balances());
    }

    #[test]
    fn promoted_keys_leave_stale_stamps_not_ghosts() {
        let mut t = CompressedTier::new();
        t.admit(key(1), PageContents::Token(1), 10);
        t.admit(key(2), PageContents::Token(2), 10);
        t.promote(key(1)).expect("live");
        // Demotion skips 1's stale stamp and yields 2.
        assert_eq!(t.pop_oldest(), Some((key(2), PageContents::Token(2))));
        assert_eq!(t.pop_oldest(), None);
        assert_eq!(t.bytes(), 0);
        assert!(t.accounting_balances());
    }
}
