//! Shadow-entry refault-distance tracking and working-set estimation.
//!
//! The paper concedes that FluidMem's first-touch LRU picks worse
//! victims than the kernel's aged lists and leaves buffer sizing to the
//! operator. Linux closed the same gap with shadow entries
//! (`mm/workingset.c`): when a page is evicted, a small *nonresident*
//! record stays behind carrying the eviction "time" on a monotonic
//! eviction counter. When the page faults back in, the **refault
//! distance** — evictions that elapsed while the page was cold — says
//! exactly how much bigger the buffer would have needed to be to keep
//! it: `needed = resident + distance`.
//!
//! [`WorkingSetEstimator`] implements that scheme for the monitor:
//!
//! * a bounded shadow table (FIFO by eviction stamp, like the kernel's
//!   capped shadow nodes) records each evicted page;
//! * each refault with a live shadow entry yields a [`Refault`] with its
//!   distance, the implied `needed` footprint, and a thrash verdict
//!   (distance ≤ current estimate ⇒ the page was inside the working set
//!   and a buffer of the estimated size would have kept it);
//! * the working-set-size estimate rises instantly to any larger
//!   `needed` and decays geometrically toward smaller ones, so it tracks
//!   a high percentile of the observed demand;
//! * in [`WorkingSetMode::AdaptiveCapacity`] the monitor periodically
//!   asks for a capacity target derived from the estimate.
//!
//! Everything here is pure bookkeeping: no virtual-clock advances, no
//! RNG draws — with the default [`WorkingSetMode::Passive`] mode the
//! monitor's externally observable behavior is bit-for-bit unchanged.

use std::collections::{HashMap, VecDeque};

use fluidmem_mem::{Region, Vpn};

/// How the estimator's output is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkingSetMode {
    /// Observe only: counters, the refault-distance histogram, and the
    /// WSS gauge are fed, but the LRU capacity is never touched. The
    /// default.
    Passive,
    /// Grow/shrink the LRU capacity toward the estimated working-set
    /// size every `adjust_interval` measured refaults.
    AdaptiveCapacity {
        /// Never shrink below this many pages.
        min_pages: u64,
        /// Never grow beyond this many pages (the DRAM this VM may use).
        max_pages: u64,
        /// Measured refaults between capacity adjustments. Small values
        /// react fast; large values smooth over bursts.
        adjust_interval: u64,
    },
}

/// Configuration for the monitor's working-set estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkingSetConfig {
    /// Bound on retained shadow entries. Once full, the oldest entries
    /// are dropped — refaults older than the table's horizon simply go
    /// unmeasured, as in the kernel's capped shadow nodes.
    pub shadow_capacity: usize,
    /// What the estimate drives.
    pub mode: WorkingSetMode,
}

impl Default for WorkingSetConfig {
    fn default() -> Self {
        WorkingSetConfig {
            shadow_capacity: 1 << 16,
            mode: WorkingSetMode::Passive,
        }
    }
}

impl WorkingSetConfig {
    /// Sets the shadow-table bound.
    pub fn shadow_capacity(mut self, entries: usize) -> Self {
        self.shadow_capacity = entries.max(1);
        self
    }

    /// Sets the mode.
    pub fn mode(mut self, mode: WorkingSetMode) -> Self {
        self.mode = mode;
        self
    }
}

/// One measured refault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Refault {
    /// Evictions that elapsed between this page's eviction and its
    /// refault.
    pub distance: u64,
    /// The buffer size that would have kept the page resident:
    /// `resident + distance` at refault time.
    pub needed: u64,
    /// Whether the refault distance fell within the working-set estimate
    /// current at refault time — i.e. the page was part of the working
    /// set and this fault is thrash a right-sized buffer avoids.
    pub thrash: bool,
}

/// Shadow-entry refault-distance tracker (see the module docs).
///
/// # Example
///
/// ```
/// use fluidmem_core::{WorkingSetConfig, WorkingSetEstimator};
/// use fluidmem_mem::Vpn;
///
/// let mut ws = WorkingSetEstimator::new(WorkingSetConfig::default());
/// ws.record_eviction(Vpn::new(7));
/// ws.record_eviction(Vpn::new(8));
/// // Page 7 comes back two evictions (its own and page 8's) after its
/// // stamp was taken: distance 2, and a 10-page-resident buffer would
/// // have needed 12 pages to keep it.
/// let r = ws.note_refault(Vpn::new(7), 10).unwrap();
/// assert_eq!(r.distance, 2);
/// assert_eq!(r.needed, 12);
/// assert_eq!(ws.wss_estimate(), 12);
/// ```
#[derive(Debug)]
pub struct WorkingSetEstimator {
    config: WorkingSetConfig,
    /// Live shadow entries: nonresident page → eviction stamp.
    shadow: HashMap<Vpn, u64>,
    /// Insertion order by stamp, for FIFO overflow. Entries whose page
    /// was consumed or forgotten go stale and are skipped lazily (the
    /// same scheme as `LruBuffer`).
    order: VecDeque<(u64, Vpn)>,
    /// The monotonic eviction counter; also the next stamp.
    evictions: u64,
    /// Refaults that found a live shadow entry.
    refaults: u64,
    /// Measured refaults flagged as thrash.
    thrash_refaults: u64,
    /// Shadow entries dropped because the table overflowed.
    overflow_drops: u64,
    /// Shadow entries dropped by region removal / explicit forget.
    forgotten: u64,
    /// The current working-set-size estimate, in pages.
    wss_estimate: u64,
    /// Measured refaults since the last adaptive adjustment.
    since_adjust: u64,
}

impl WorkingSetEstimator {
    /// A fresh estimator.
    pub fn new(config: WorkingSetConfig) -> Self {
        WorkingSetEstimator {
            config,
            shadow: HashMap::new(),
            order: VecDeque::new(),
            evictions: 0,
            refaults: 0,
            thrash_refaults: 0,
            overflow_drops: 0,
            forgotten: 0,
            wss_estimate: 0,
            since_adjust: 0,
        }
    }

    /// The estimator's configuration.
    pub fn config(&self) -> &WorkingSetConfig {
        &self.config
    }

    /// Records the eviction of `vpn`: bumps the eviction counter and
    /// leaves a shadow entry stamped with it, evicting the oldest
    /// entries if the table is over its bound.
    ///
    /// A page can only be evicted while resident, and a refault consumes
    /// its shadow entry before re-inserting it — so a live entry for
    /// `vpn` cannot exist here (debug-asserted).
    pub fn record_eviction(&mut self, vpn: Vpn) {
        let stamp = self.evictions;
        self.evictions += 1;
        let prior = self.shadow.insert(vpn, stamp);
        debug_assert!(prior.is_none(), "double shadow entry for {vpn}");
        self.order.push_back((stamp, vpn));
        while self.shadow.len() > self.config.shadow_capacity {
            let Some((s, v)) = self.order.pop_front() else {
                break;
            };
            if self.shadow.get(&v) == Some(&s) {
                self.shadow.remove(&v);
                self.overflow_drops += 1;
            }
        }
        self.maybe_compact();
    }

    /// Measures the refault of `vpn` given the current resident count.
    /// Returns `None` when the page has no live shadow entry (it was
    /// never evicted, or its entry aged out of the bounded table).
    pub fn note_refault(&mut self, vpn: Vpn, resident: u64) -> Option<Refault> {
        let stamp = self.shadow.remove(&vpn)?;
        let distance = self.evictions - stamp;
        let needed = resident.saturating_add(distance);
        // Compare against the estimate *before* this sample updates it,
        // as the kernel compares against the pre-activation list size.
        let thrash = distance <= self.wss_estimate;
        if needed >= self.wss_estimate {
            self.wss_estimate = needed;
        } else {
            // Geometric decay toward smaller demand: the estimate tracks
            // a high percentile of `needed` without sticking at a
            // historical maximum forever.
            self.wss_estimate -= (self.wss_estimate - needed) / 8;
        }
        self.refaults += 1;
        if thrash {
            self.thrash_refaults += 1;
        }
        self.since_adjust += 1;
        Some(Refault {
            distance,
            needed,
            thrash,
        })
    }

    /// In [`WorkingSetMode::AdaptiveCapacity`], returns the capacity the
    /// LRU should move to — once per `adjust_interval` measured refaults,
    /// and only when it differs from `current`. `Passive` always returns
    /// `None`.
    ///
    /// The target never goes below the resident count: shrinking to (or
    /// above) residency evicts nothing, so an adaptive run can never
    /// *cause* an eviction a static buffer of the original size would
    /// not also have performed.
    pub fn take_adaptive_target(&mut self, resident: u64, current: u64) -> Option<u64> {
        let WorkingSetMode::AdaptiveCapacity {
            min_pages,
            max_pages,
            adjust_interval,
        } = self.config.mode
        else {
            return None;
        };
        if self.since_adjust < adjust_interval.max(1) {
            return None;
        }
        self.since_adjust = 0;
        let want = self
            .wss_estimate
            .max(resident)
            .clamp(min_pages, max_pages.max(min_pages));
        (want != current).then_some(want)
    }

    /// Drops the shadow entry for `vpn`, if any (page removed outside
    /// the fault path).
    pub fn forget(&mut self, vpn: Vpn) {
        if self.shadow.remove(&vpn).is_some() {
            self.forgotten += 1;
        }
    }

    /// Drops every shadow entry inside `region` (VM shutdown /
    /// unregister): refaults can no longer happen for these pages.
    pub fn forget_region(&mut self, region: &Region) {
        let before = self.shadow.len();
        self.shadow.retain(|vpn, _| !region.contains(*vpn));
        self.forgotten += (before - self.shadow.len()) as u64;
        self.maybe_compact();
    }

    /// The current working-set-size estimate, in pages. Zero until the
    /// first measured refault.
    pub fn wss_estimate(&self) -> u64 {
        self.wss_estimate
    }

    /// Live shadow entries.
    pub fn shadow_len(&self) -> usize {
        self.shadow.len()
    }

    /// Whether `vpn` currently has a live shadow entry.
    pub fn shadow_contains(&self, vpn: Vpn) -> bool {
        self.shadow.contains_key(&vpn)
    }

    /// The pages with live shadow entries, sorted (deterministic).
    pub fn shadow_pages(&self) -> Vec<Vpn> {
        let mut pages: Vec<Vpn> = self.shadow.keys().copied().collect();
        pages.sort();
        pages
    }

    /// Total evictions recorded (the monotonic counter's value).
    pub fn evictions_recorded(&self) -> u64 {
        self.evictions
    }

    /// Refaults that found a live shadow entry.
    pub fn refaults_measured(&self) -> u64 {
        self.refaults
    }

    /// Measured refaults flagged as thrash.
    pub fn thrash_refaults(&self) -> u64 {
        self.thrash_refaults
    }

    /// Shadow entries dropped on table overflow.
    pub fn overflow_drops(&self) -> u64 {
        self.overflow_drops
    }

    /// Shadow entries dropped by forget/region removal.
    pub fn forgotten(&self) -> u64 {
        self.forgotten
    }

    /// Every recorded eviction is exactly one of: still shadowed,
    /// consumed by a measured refault, dropped on overflow, or
    /// explicitly forgotten. Chaos tests assert this to prove retries
    /// neither leak nor double-count nonresident entries.
    pub fn accounting_balances(&self) -> bool {
        self.evictions
            == self.shadow.len() as u64 + self.refaults + self.overflow_drops + self.forgotten
    }

    /// Drops stale order entries once they dominate the deque.
    fn maybe_compact(&mut self) {
        if self.order.len() > self.shadow.len() * 2 + 64 {
            self.order.retain(|(s, v)| self.shadow.get(v) == Some(s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vpn(n: u64) -> Vpn {
        Vpn::new(n)
    }

    fn estimator() -> WorkingSetEstimator {
        WorkingSetEstimator::new(WorkingSetConfig::default())
    }

    #[test]
    fn distance_counts_interleaving_evictions() {
        let mut ws = estimator();
        for i in 0..10 {
            ws.record_eviction(vpn(i));
        }
        // vpn 0 was evicted first; 9 further evictions elapsed.
        let r = ws.note_refault(vpn(0), 100).unwrap();
        assert_eq!(r.distance, 10);
        assert_eq!(r.needed, 110);
        // Immediately-refaulted page: one eviction (its own) elapsed.
        ws.record_eviction(vpn(0));
        let r = ws.note_refault(vpn(0), 100).unwrap();
        assert_eq!(r.distance, 1);
    }

    #[test]
    fn unmeasured_refaults_return_none() {
        let mut ws = estimator();
        assert!(ws.note_refault(vpn(1), 10).is_none());
        ws.record_eviction(vpn(1));
        assert!(ws.note_refault(vpn(1), 10).is_some());
        // The entry was consumed; a second refault is unmeasured.
        assert!(ws.note_refault(vpn(1), 10).is_none());
    }

    #[test]
    fn estimate_rises_fast_and_decays_slowly() {
        let mut ws = estimator();
        for i in 0..100 {
            ws.record_eviction(vpn(i));
        }
        ws.note_refault(vpn(0), 50).unwrap(); // needed = 150
        assert_eq!(ws.wss_estimate(), 150);
        ws.note_refault(vpn(99), 50).unwrap(); // needed = 51 < 150
        let after = ws.wss_estimate();
        assert!(after < 150 && after > 51, "decays toward 51, got {after}");
    }

    #[test]
    fn thrash_is_judged_against_the_prior_estimate() {
        let mut ws = estimator();
        for i in 0..20 {
            ws.record_eviction(vpn(i));
        }
        // First sample: estimate is still 0 -> not thrash.
        assert!(!ws.note_refault(vpn(0), 10).unwrap().thrash);
        // Estimate is now 30; a distance-19 refault falls inside it.
        assert!(ws.note_refault(vpn(1), 10).unwrap().thrash);
        assert_eq!(ws.thrash_refaults(), 1);
    }

    #[test]
    fn shadow_table_is_bounded_fifo() {
        let mut ws = WorkingSetEstimator::new(WorkingSetConfig::default().shadow_capacity(4));
        for i in 0..10 {
            ws.record_eviction(vpn(i));
        }
        assert_eq!(ws.shadow_len(), 4);
        assert_eq!(ws.overflow_drops(), 6);
        // The oldest entries aged out; the newest survive.
        assert!(!ws.shadow_contains(vpn(0)));
        assert!(ws.shadow_contains(vpn(9)));
        assert!(ws.note_refault(vpn(0), 10).is_none());
        assert!(ws.accounting_balances());
    }

    #[test]
    fn forget_region_clears_and_balances() {
        let mut ws = estimator();
        for i in 0..8 {
            ws.record_eviction(vpn(i));
        }
        let region = Region::new(vpn(0), 4, fluidmem_mem::PageClass::Anonymous);
        ws.forget_region(&region);
        assert_eq!(ws.shadow_len(), 4);
        assert_eq!(ws.forgotten(), 4);
        assert!(ws.note_refault(vpn(1), 10).is_none());
        assert!(ws.note_refault(vpn(5), 10).is_some());
        assert!(ws.accounting_balances());
    }

    #[test]
    fn passive_mode_never_offers_a_target() {
        let mut ws = estimator();
        for i in 0..100 {
            ws.record_eviction(vpn(i));
            ws.note_refault(vpn(i), 10);
        }
        assert!(ws.take_adaptive_target(10, 64).is_none());
    }

    #[test]
    fn adaptive_target_tracks_the_estimate_with_a_resident_floor() {
        let mode = WorkingSetMode::AdaptiveCapacity {
            min_pages: 8,
            max_pages: 1024,
            adjust_interval: 2,
        };
        let mut ws = WorkingSetEstimator::new(WorkingSetConfig::default().mode(mode));
        for i in 0..100 {
            ws.record_eviction(vpn(i));
        }
        ws.note_refault(vpn(0), 50).unwrap(); // needed = 150
        assert!(
            ws.take_adaptive_target(50, 64).is_none(),
            "interval not reached yet"
        );
        ws.note_refault(vpn(1), 50).unwrap();
        assert_eq!(ws.take_adaptive_target(50, 64), Some(150));
        // The countdown restarts after an adjustment.
        assert!(ws.take_adaptive_target(50, 150).is_none());
        // Resident floor: even a tiny estimate never shrinks below
        // residency; clamps apply.
        ws.note_refault(vpn(2), 50).unwrap();
        ws.note_refault(vpn(3), 50).unwrap();
        let target = ws.take_adaptive_target(400, 150).unwrap();
        assert!(target >= 400);
    }

    #[test]
    fn accounting_balances_under_churn() {
        let mut ws = WorkingSetEstimator::new(WorkingSetConfig::default().shadow_capacity(16));
        for round in 0..50u64 {
            for i in 0..8 {
                ws.record_eviction(vpn(round * 8 + i));
            }
            // Refault some of them, forget one, let the rest age out.
            ws.note_refault(vpn(round * 8), 20);
            ws.forget(vpn(round * 8 + 1));
            assert!(ws.accounting_balances(), "round {round}");
            assert!(ws.shadow_len() <= 16);
        }
    }
}
