//! Monitor counters.
//!
//! The monitor increments [`MonitorCounters`] — shared telemetry
//! [`Counter`] handles — on its hot paths, and [`MonitorStats`] is the
//! point-in-time snapshot those handles produce. Registering the
//! counters in a [`Registry`] makes the *same* handles exportable
//! (Prometheus / JSONL), so the stats surface and the telemetry
//! subsystem can never disagree: there is one set of counters.

use fluidmem_telemetry::{consts, Counter, Registry};

/// A point-in-time snapshot of the [`Monitor`](crate::Monitor)'s
/// counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Faults handled in total.
    pub faults: u64,
    /// First-touch faults resolved with `UFFD_ZEROPAGE` (no remote read).
    pub zero_fills: u64,
    /// Faults resolved by reading the key-value store.
    pub remote_reads: u64,
    /// Faults satisfied by stealing from the pending write list.
    pub write_list_steals: u64,
    /// Faults that had to wait for an in-flight write of the same page.
    pub inflight_waits: u64,
    /// Pages evicted from the VM.
    pub evictions: u64,
    /// Batch flushes issued to the store.
    pub flushes: u64,
    /// LRU capacity changes (operator resizes).
    pub resizes: u64,
    /// Copy-on-write breaks of zero-page mappings (kernel-side minor
    /// faults; counted by the backend).
    pub cow_breaks: u64,
    /// Pages the store reported missing (data loss, e.g. a memcached
    /// eviction) that were re-materialized as zero pages.
    pub lost_pages: u64,
    /// Pages pulled in proactively by the prefetch policy.
    pub prefetched_pages: u64,
    /// Prefetch attempts that found nothing in the store.
    pub prefetch_misses: u64,
    /// Prefetches abandoned on a retryable store error (timeout /
    /// transient refusal). Speculative reads are not retried — the page
    /// is fetched with the full retry budget if the guest faults on it.
    pub prefetch_transient_errors: u64,
    /// Prefetched pages discarded because the post-fetch `uffd` copy-in
    /// failed (the page got mapped while the read was in flight).
    pub prefetch_copy_skips: u64,
    /// Speculative reads issued by the prefetch policy (the accuracy
    /// panel's denominator).
    pub prefetch_issued: u64,
    /// Prefetched pages the guest actually touched: first access to an
    /// installed page, or a demand fault adopting an in-flight read.
    pub prefetch_hits: u64,
    /// Prefetched pages evicted, unmapped, or discarded before the guest
    /// ever touched them — wasted remote reads.
    pub prefetch_wasted: u64,
    /// Prefetches dropped on a *non-retryable* store error (data loss /
    /// corruption). Speculation must not take the monitor down; the
    /// demand path surfaces the real error if the guest needs the page.
    pub prefetch_fatal_errors: u64,
    /// Stride-prefetch issue rounds suppressed because the VM looked to
    /// be thrashing (WSS estimate over LRU capacity).
    pub prefetch_suppressed_thrash: u64,
    /// Stride-prefetch issue rounds suppressed because LRU headroom was
    /// below the prefetch depth.
    pub prefetch_suppressed_headroom: u64,
    /// Store reads retried after a retryable error (timeout /
    /// transient refusal). Backoff time is charged to the fault.
    pub read_retries: u64,
    /// Store writes (sync eviction puts, drain multi-writes) retried
    /// after a retryable error.
    pub write_retries: u64,
    /// Write-list flushes whose multi-write failed retryably; the batch
    /// stays on the write list and is re-flushed later.
    pub flush_failures: u64,
    /// Pipelined faults coalesced onto an already in-flight read of the
    /// same page (a second vCPU touching a page whose fetch is pending).
    /// Always zero on the call-return path, where at most one fault is
    /// outstanding.
    pub coalesced_faults: u64,
    /// Refaults whose shadow entry was still live, yielding a measured
    /// refault distance.
    pub refaults_measured: u64,
    /// Measured refaults whose distance fell within the working-set
    /// estimate — faults a right-sized buffer would have avoided.
    pub thrash_refaults: u64,
    /// Adaptive-capacity grows applied by the working-set estimator.
    pub adaptive_grows: u64,
    /// Adaptive-capacity shrinks applied by the working-set estimator.
    pub adaptive_shrinks: u64,
    /// Pages evicted by the watermark-driven background reclaimer (off
    /// the fault critical path).
    pub background_reclaims: u64,
    /// Pages evicted inline on the fault path while background reclaim
    /// was enabled — the evictor fell behind its watermarks.
    pub direct_reclaims: u64,
    /// Evicted pages admitted into the compressed local tier.
    pub tier_admits: u64,
    /// Refaults resolved by promoting a page out of the compressed tier
    /// (no network round trip).
    pub tier_hits: u64,
    /// Refaults that checked the active compressed tier and missed.
    pub tier_misses: u64,
    /// Pages demoted from the compressed tier to the write list under
    /// pool pressure.
    pub tier_demotions: u64,
    /// Evicted pages that bypassed the compressed tier because they
    /// would not compress (RLE yields no win).
    pub tier_bypass_incompressible: u64,
    /// Evicted pages that bypassed the compressed tier because the
    /// refault-distance thrash gate tripped (working set exceeds DRAM
    /// plus the pool).
    pub tier_bypass_thrash: u64,
}

macro_rules! monitor_counters {
    ($(($field:ident, $event:literal, $doc:literal)),+ $(,)?) => {
        /// The monitor's live counter handles (see the module docs).
        #[derive(Debug, Clone, Default)]
        pub struct MonitorCounters {
            $(#[doc = $doc] pub $field: Counter,)+
        }

        impl MonitorCounters {
            /// Fresh detached counters (not exported anywhere).
            pub fn new() -> Self {
                Self::default()
            }

            /// Registers every counter in `registry` under
            /// [`consts::MONITOR_EVENTS`], keyed by an `event` label.
            /// Accumulated values carry over: the registry adopts the
            /// live handles rather than replacing them.
            pub fn register(&self, registry: &Registry) {
                $(registry.adopt_counter(
                    consts::MONITOR_EVENTS,
                    &[(consts::LABEL_EVENT, $event)],
                    &self.$field,
                );)+
            }

            /// Like [`MonitorCounters::register`], but additionally keyed
            /// by a [`consts::LABEL_VM`] label so several monitors can
            /// share one registry without clobbering each other (adoption
            /// replaces an identically-keyed entry).
            pub fn register_labeled(&self, registry: &Registry, vm: &str) {
                $(registry.adopt_counter(
                    consts::MONITOR_EVENTS,
                    &[(consts::LABEL_EVENT, $event), (consts::LABEL_VM, vm)],
                    &self.$field,
                );)+
            }

            /// A point-in-time snapshot of every counter.
            pub fn snapshot(&self) -> MonitorStats {
                MonitorStats {
                    $($field: self.$field.get(),)+
                }
            }
        }
    };
}

monitor_counters! {
    (faults, "fault", "Faults handled in total."),
    (zero_fills, "zero_fill", "First-touch faults resolved with `UFFD_ZEROPAGE`."),
    (remote_reads, "remote_read", "Faults resolved by reading the key-value store."),
    (write_list_steals, "write_list_steal", "Faults satisfied from the pending write list."),
    (inflight_waits, "inflight_wait", "Faults that waited for an in-flight write."),
    (evictions, "eviction", "Pages evicted from the VM."),
    (flushes, "flush", "Batch flushes issued to the store."),
    (resizes, "resize", "LRU capacity changes (operator resizes)."),
    (cow_breaks, "cow_break", "Copy-on-write breaks of zero-page mappings."),
    (lost_pages, "lost_page", "Pages the store reported missing."),
    (prefetched_pages, "prefetched_page", "Pages pulled in proactively by prefetch."),
    (prefetch_misses, "prefetch_miss", "Prefetch attempts that found nothing."),
    (prefetch_transient_errors, "prefetch_transient_error", "Prefetches abandoned on a retryable store error."),
    (prefetch_copy_skips, "prefetch_copy_skip", "Prefetched pages discarded because the copy-in failed."),
    (prefetch_issued, "prefetch_issued", "Speculative reads issued by the prefetch policy."),
    (prefetch_hits, "prefetch_hit", "Prefetched pages the guest actually touched."),
    (prefetch_wasted, "prefetch_wasted", "Prefetched pages discarded before any guest touch."),
    (prefetch_fatal_errors, "prefetch_fatal_error", "Prefetches dropped on a non-retryable store error."),
    (prefetch_suppressed_thrash, "prefetch_suppressed_thrash", "Prefetch rounds suppressed by the thrash gate."),
    (prefetch_suppressed_headroom, "prefetch_suppressed_headroom", "Prefetch rounds suppressed for lack of LRU headroom."),
    (read_retries, "read_retry", "Store reads retried after a retryable error."),
    (write_retries, "write_retry", "Store writes retried after a retryable error."),
    (flush_failures, "flush_failure", "Flushes whose multi-write failed retryably."),
    (coalesced_faults, "coalesced_fault", "Pipelined faults coalesced onto an in-flight read."),
    (refaults_measured, "refault_measured", "Refaults with a live shadow entry (distance measured)."),
    (thrash_refaults, "thrash_refault", "Measured refaults inside the working-set estimate."),
    (adaptive_grows, "adaptive_grow", "Adaptive-capacity grows applied by the estimator."),
    (adaptive_shrinks, "adaptive_shrink", "Adaptive-capacity shrinks applied by the estimator."),
    (background_reclaims, "background_reclaim", "Pages evicted by the watermark-driven background reclaimer."),
    (direct_reclaims, "direct_reclaim", "Pages evicted inline with background reclaim enabled (the evictor fell behind)."),
    (tier_admits, "tier_admit", "Evicted pages admitted into the compressed local tier."),
    (tier_hits, "tier_hit", "Refaults promoted out of the compressed tier."),
    (tier_misses, "tier_miss", "Refaults that checked the active compressed tier and missed."),
    (tier_demotions, "tier_demotion", "Pages demoted from the compressed tier under pool pressure."),
    (tier_bypass_incompressible, "tier_bypass_incompressible", "Evictions that bypassed the tier (incompressible)."),
    (tier_bypass_thrash, "tier_bypass_thrash", "Evictions that bypassed the tier (thrash gate)."),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        assert_eq!(MonitorStats::default().faults, 0);
        assert_eq!(MonitorCounters::new().snapshot(), MonitorStats::default());
    }

    #[test]
    fn snapshot_reads_live_handles() {
        let c = MonitorCounters::new();
        c.faults.add(3);
        c.zero_fills.inc();
        let s = c.snapshot();
        assert_eq!(s.faults, 3);
        assert_eq!(s.zero_fills, 1);
    }

    #[test]
    fn registered_counters_are_the_same_handles() {
        let c = MonitorCounters::new();
        c.evictions.add(2);
        let reg = Registry::new();
        c.register(&reg);
        // The registry sees pre-registration counts…
        let evictions = reg.counter(consts::MONITOR_EVENTS, &[(consts::LABEL_EVENT, "eviction")]);
        assert_eq!(evictions.get(), 2);
        // …and post-registration increments flow both ways.
        c.evictions.inc();
        assert_eq!(evictions.get(), 3);
    }
}
