//! Monitor counters.

/// Counters kept by the [`Monitor`](crate::Monitor).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Faults handled in total.
    pub faults: u64,
    /// First-touch faults resolved with `UFFD_ZEROPAGE` (no remote read).
    pub zero_fills: u64,
    /// Faults resolved by reading the key-value store.
    pub remote_reads: u64,
    /// Faults satisfied by stealing from the pending write list.
    pub write_list_steals: u64,
    /// Faults that had to wait for an in-flight write of the same page.
    pub inflight_waits: u64,
    /// Pages evicted from the VM.
    pub evictions: u64,
    /// Batch flushes issued to the store.
    pub flushes: u64,
    /// LRU capacity changes (operator resizes).
    pub resizes: u64,
    /// Copy-on-write breaks of zero-page mappings (kernel-side minor
    /// faults; counted by the backend).
    pub cow_breaks: u64,
    /// Pages the store reported missing (data loss, e.g. a memcached
    /// eviction) that were re-materialized as zero pages.
    pub lost_pages: u64,
    /// Pages pulled in proactively by the prefetch policy.
    pub prefetched_pages: u64,
    /// Prefetch attempts that found nothing in the store.
    pub prefetch_misses: u64,
    /// Store reads retried after a retryable error (timeout /
    /// transient refusal). Backoff time is charged to the fault.
    pub read_retries: u64,
    /// Store writes (sync eviction puts, drain multi-writes) retried
    /// after a retryable error.
    pub write_retries: u64,
    /// Write-list flushes whose multi-write failed retryably; the batch
    /// stays on the write list and is re-flushed later.
    pub flush_failures: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        assert_eq!(MonitorStats::default().faults, 0);
    }
}
