//! Multi-VM hosting: one monitor, one LRU, many VMs.
//!
//! The paper's monitor process serves a whole hypervisor: it "waits on a
//! list of file descriptors (corresponding to registered userfaultfd
//! regions)" that grows as VMs start and shrinks as they shut down, and
//! its LRU list's "size determines the number of pages held in DRAM for
//! **all VMs**" (§V-A). Stores are shared, with each VM's pages isolated
//! by its virtual partition (§IV).
//!
//! [`FluidMemHypervisor`] reproduces exactly that: VMs come and go at
//! runtime, they compete for one shared local-memory budget (a noisy
//! neighbor can evict a quiet VM's pages — and the operator can repartition
//! by resizing), and each VM's remote pages live under its own partition
//! so identical guest addresses never collide.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use fluidmem_coord::PartitionId;
use fluidmem_kv::KeyValueStore;
use fluidmem_mem::{
    AccessCounters, AccessOutcome, AccessReport, CapacityError, MemoryBackend, PageClass,
    PageContents, PageTable, PhysicalMemory, PteFlags, Region, VirtAddr, Vpn,
};
use fluidmem_sim::{SimClock, SimDuration, SimRng};
use fluidmem_uffd::{RegionId, Userfaultfd};

use crate::config::MonitorConfig;
use crate::monitor::{Monitor, Resolution};

/// Identifies one VM hosted on a [`FluidMemHypervisor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VmHandle(usize);

#[derive(Debug)]
struct VmInfo {
    pid: u64,
    partition: PartitionId,
    regions: Vec<(RegionId, Region)>,
    counters: AccessCounters,
    alive: bool,
}

/// A hypervisor hosting multiple FluidMem VMs over one monitor, one
/// shared LRU budget, and one key-value store.
///
/// # Example
///
/// ```
/// use fluidmem_coord::PartitionId;
/// use fluidmem_core::{FluidMemHypervisor, MonitorConfig};
/// use fluidmem_kv::DramStore;
/// use fluidmem_mem::PageClass;
/// use fluidmem_sim::{SimClock, SimRng};
///
/// let clock = SimClock::new();
/// let store = DramStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(1));
/// let mut hv = FluidMemHypervisor::new(
///     MonitorConfig::new(64), // 64 pages of DRAM shared by every VM
///     Box::new(store),
///     clock,
///     SimRng::seed_from_u64(2),
/// );
/// let a = hv.create_vm(100, PartitionId::new(1));
/// let b = hv.create_vm(101, PartitionId::new(2));
/// let ra = hv.map_region(a, 64, PageClass::Anonymous);
/// let rb = hv.map_region(b, 64, PageClass::Anonymous);
/// for i in 0..64 {
///     hv.access(a, ra.page(i), true);
///     hv.access(b, rb.page(i), true);
/// }
/// assert!(hv.resident_pages() <= 64, "both VMs share one budget");
/// ```
pub struct FluidMemHypervisor {
    uffd: Userfaultfd,
    pt: PageTable,
    pm: PhysicalMemory,
    monitor: Monitor,
    /// region start → owning VM, for fault attribution.
    region_owner: BTreeMap<u64, usize>,
    vms: Vec<VmInfo>,
    next_vpn: u64,
    from_vm: bool,
    clock: SimClock,
}

impl FluidMemHypervisor {
    /// Creates a hypervisor whose monitor holds at most
    /// `config.lru_capacity` pages in DRAM across every hosted VM.
    pub fn new(
        config: MonitorConfig,
        store: Box<dyn KeyValueStore>,
        clock: SimClock,
        rng: SimRng,
    ) -> Self {
        let from_vm = config.from_vm;
        let uffd = Userfaultfd::new(clock.clone(), rng.fork("uffd"));
        let monitor = Monitor::new(
            config,
            store,
            PartitionId::new(0),
            clock.clone(),
            rng.fork("monitor"),
        );
        FluidMemHypervisor {
            uffd,
            pt: PageTable::new(),
            pm: PhysicalMemory::new(u64::MAX / 2),
            monitor,
            region_owner: BTreeMap::new(),
            vms: Vec::new(),
            next_vpn: 0x10_000,
            from_vm,
            clock,
        }
    }

    /// Starts hosting a VM: its QEMU process id and the store partition
    /// its pages are keyed under.
    pub fn create_vm(&mut self, pid: u64, partition: PartitionId) -> VmHandle {
        self.vms.push(VmInfo {
            pid,
            partition,
            regions: Vec::new(),
            counters: AccessCounters::default(),
            alive: true,
        });
        VmHandle(self.vms.len() - 1)
    }

    /// Registers guest memory for a VM (boot allocation or hotplug).
    ///
    /// # Panics
    ///
    /// Panics if the VM was destroyed.
    pub fn map_region(&mut self, vm: VmHandle, pages: u64, class: PageClass) -> Region {
        assert!(self.vms[vm.0].alive, "cannot map into a destroyed VM");
        let region = Region::new(Vpn::new(self.next_vpn), pages, class);
        self.next_vpn += pages + 16;
        let id = self
            .uffd
            .register(region)
            .expect("bump alloc never overlaps");
        let partition = self.vms[vm.0].partition;
        self.monitor.register_partition(region, partition);
        self.region_owner.insert(region.start().raw(), vm.0);
        self.vms[vm.0].regions.push((id, region));
        region
    }

    /// One guest memory access by `vm`.
    ///
    /// # Panics
    ///
    /// Panics if the address is not in one of the VM's regions.
    pub fn access(&mut self, vm: VmHandle, addr: VirtAddr, write: bool) -> AccessReport {
        let owner = self
            .region_owner
            .range(..=addr.vpn().raw())
            .next_back()
            .map(|(_, &o)| o);
        assert_eq!(
            owner,
            Some(vm.0),
            "address {addr} does not belong to vm {}",
            vm.0
        );
        let vpn = addr.vpn();
        if let Some(entry) = self.pt.get_mut(vpn) {
            if write && entry.flags.contains(PteFlags::ZERO_PAGE) {
                let t0 = self.clock.now();
                self.uffd
                    .break_cow(&mut self.pt, &mut self.pm, vpn)
                    .expect("zero mapping breaks");
                self.vms[vm.0].counters.record(AccessOutcome::MinorFault);
                return AccessReport {
                    outcome: AccessOutcome::MinorFault,
                    latency: self.clock.now() - t0,
                };
            }
            entry.flags.insert(PteFlags::REFERENCED);
            if write {
                entry.flags.insert(PteFlags::DIRTY);
            }
            self.vms[vm.0].counters.record(AccessOutcome::Hit);
            return AccessReport {
                outcome: AccessOutcome::Hit,
                latency: SimDuration::ZERO,
            };
        }
        let t0 = self.clock.now();
        let pid = self.vms[vm.0].pid;
        self.uffd
            .raise_fault(addr, write, pid, self.from_vm)
            .expect("region is registered");
        let _event = self.uffd.poll().expect("event queued");
        let res = self
            .monitor
            .handle_fault(&mut self.uffd, &mut self.pt, &mut self.pm, vpn, write);
        let mut latency = res.wake_at - t0;
        if write && self.pt.has_flags(vpn, PteFlags::ZERO_PAGE) {
            let before = self.clock.now();
            self.uffd
                .break_cow(&mut self.pt, &mut self.pm, vpn)
                .expect("zero mapping breaks");
            latency += self.clock.now() - before;
        }
        let outcome = match res.resolution {
            Resolution::ZeroFill | Resolution::WriteListSteal | Resolution::CompressedHit => {
                AccessOutcome::MinorFault
            }
            Resolution::RemoteRead | Resolution::InflightWait => AccessOutcome::MajorFault,
        };
        self.vms[vm.0].counters.record(outcome);
        AccessReport { outcome, latency }
    }

    /// Shuts a VM down: unregisters its regions (shrinking the monitor's
    /// descriptor list), frees its frames, and drops its partition from
    /// the store.
    pub fn destroy_vm(&mut self, vm: VmHandle) {
        let regions = std::mem::take(&mut self.vms[vm.0].regions);
        for (id, region) in regions {
            self.uffd.unregister(id).expect("was registered");
            while self.uffd.poll().is_some() {}
            self.monitor.remove_region(&region);
            self.region_owner.remove(&region.start().raw());
            for vpn in region.iter_pages() {
                if let Some(entry) = self.pt.unmap(vpn) {
                    if !entry.flags.contains(PteFlags::ZERO_PAGE) {
                        self.pm.free(entry.frame);
                    }
                }
            }
        }
        self.vms[vm.0].alive = false;
    }

    /// Pages in DRAM across all VMs (bounded by the shared capacity).
    pub fn resident_pages(&self) -> u64 {
        self.monitor.resident_pages()
    }

    /// Pages of one VM currently in DRAM.
    pub fn resident_pages_of(&self, vm: VmHandle) -> u64 {
        self.vms[vm.0]
            .regions
            .iter()
            .map(|(_, r)| self.monitor.resident_in(r))
            .sum()
    }

    /// The shared local budget.
    pub fn capacity(&self) -> u64 {
        self.monitor.capacity()
    }

    /// Resizes the shared budget, evicting down if needed.
    pub fn set_capacity(&mut self, pages: u64) {
        self.monitor
            .resize(&mut self.uffd, &mut self.pt, &mut self.pm, pages);
    }

    /// A VM's access counters.
    pub fn counters_of(&self, vm: VmHandle) -> AccessCounters {
        self.vms[vm.0].counters
    }

    /// Number of live VMs.
    pub fn vm_count(&self) -> usize {
        self.vms.iter().filter(|v| v.alive).count()
    }

    /// The shared monitor.
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Mutable access to the shared monitor (drains, profile resets).
    pub fn monitor_mut(&mut self) -> &mut Monitor {
        &mut self.monitor
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Wraps one hosted VM as a standalone [`MemoryBackend`], so the
    /// unmodified workloads can run against a single tenant of a shared
    /// hypervisor.
    pub fn vm_backend(hypervisor: Rc<RefCell<FluidMemHypervisor>>, vm: VmHandle) -> SharedVm {
        let label = format!("FluidMem/shared/vm{}", vm.0);
        let clock = hypervisor.borrow().clock.clone();
        SharedVm {
            hypervisor,
            vm,
            label,
            clock,
        }
    }
}

impl std::fmt::Debug for FluidMemHypervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FluidMemHypervisor")
            .field("vms", &self.vm_count())
            .field("resident", &self.resident_pages())
            .field("capacity", &self.capacity())
            .finish()
    }
}

/// A per-tenant view of a shared hypervisor, implementing
/// [`MemoryBackend`] so workloads run unmodified against one VM while
/// other tenants compete for the same DRAM budget.
pub struct SharedVm {
    hypervisor: Rc<RefCell<FluidMemHypervisor>>,
    vm: VmHandle,
    label: String,
    clock: SimClock,
}

impl MemoryBackend for SharedVm {
    fn map_region(&mut self, pages: u64, class: PageClass) -> Region {
        self.hypervisor
            .borrow_mut()
            .map_region(self.vm, pages, class)
    }

    fn access(&mut self, addr: VirtAddr, write: bool) -> AccessReport {
        self.hypervisor.borrow_mut().access(self.vm, addr, write)
    }

    fn write_page(&mut self, addr: VirtAddr, contents: PageContents) -> AccessReport {
        let mut hv = self.hypervisor.borrow_mut();
        let report = hv.access(self.vm, addr, true);
        let entry = hv.pt.get(addr.vpn()).expect("write maps the page");
        let frame = entry.frame;
        hv.pm.store(frame, contents);
        report
    }

    fn read_page(&mut self, addr: VirtAddr) -> (PageContents, AccessReport) {
        let mut hv = self.hypervisor.borrow_mut();
        let report = hv.access(self.vm, addr, false);
        let entry = hv.pt.get(addr.vpn()).expect("read maps the page");
        let frame = entry.frame;
        let contents = hv.pm.load(frame).clone();
        (contents, report)
    }

    fn resident_pages(&self) -> u64 {
        self.hypervisor.borrow().resident_pages_of(self.vm)
    }

    fn local_capacity_pages(&self) -> u64 {
        self.hypervisor.borrow().capacity()
    }

    fn set_local_capacity(&mut self, pages: u64) -> Result<(), CapacityError> {
        self.hypervisor.borrow_mut().set_capacity(pages);
        Ok(())
    }

    fn counters(&self) -> AccessCounters {
        self.hypervisor.borrow().counters_of(self.vm)
    }

    fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_kv::{DramStore, ExternalKey, RamCloudStore};

    fn hypervisor(capacity: u64) -> FluidMemHypervisor {
        let clock = SimClock::new();
        let store = DramStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(1));
        FluidMemHypervisor::new(
            MonitorConfig::new(capacity),
            Box::new(store),
            clock,
            SimRng::seed_from_u64(2),
        )
    }

    #[test]
    fn vms_share_one_budget() {
        let mut hv = hypervisor(32);
        let a = hv.create_vm(1, PartitionId::new(1));
        let b = hv.create_vm(2, PartitionId::new(2));
        let ra = hv.map_region(a, 64, PageClass::Anonymous);
        let rb = hv.map_region(b, 64, PageClass::Anonymous);
        for i in 0..64 {
            hv.access(a, ra.page(i), true);
            hv.access(b, rb.page(i), true);
        }
        assert!(hv.resident_pages() <= 32);
        assert_eq!(
            hv.resident_pages_of(a) + hv.resident_pages_of(b),
            hv.resident_pages()
        );
    }

    #[test]
    fn noisy_neighbor_evicts_quiet_vm() {
        let mut hv = hypervisor(64);
        let quiet = hv.create_vm(1, PartitionId::new(1));
        let noisy = hv.create_vm(2, PartitionId::new(2));
        let rq = hv.map_region(quiet, 32, PageClass::Anonymous);
        let rn = hv.map_region(noisy, 512, PageClass::Anonymous);
        for i in 0..32 {
            hv.access(quiet, rq.page(i), true);
        }
        assert_eq!(hv.resident_pages_of(quiet), 32);
        // The noisy VM churns through far more than the shared budget.
        for i in 0..512 {
            hv.access(noisy, rn.page(i), true);
        }
        assert!(
            hv.resident_pages_of(quiet) < 32,
            "the shared first-touch LRU must have evicted the quiet VM's pages"
        );
        // The quiet VM still works — its pages come back from the store.
        let rep = hv.access(quiet, rq.page(0), false);
        assert_ne!(rep.outcome, AccessOutcome::Hit);
    }

    #[test]
    fn partitions_isolate_same_numbered_pages() {
        let clock = SimClock::new();
        let store = RamCloudStore::new(1 << 26, clock.clone(), SimRng::seed_from_u64(3));
        let mut hv = FluidMemHypervisor::new(
            MonitorConfig::new(4),
            Box::new(store),
            clock,
            SimRng::seed_from_u64(4),
        );
        let a = hv.create_vm(1, PartitionId::new(7));
        let b = hv.create_vm(2, PartitionId::new(8));
        let ra = hv.map_region(a, 16, PageClass::Anonymous);
        let rb = hv.map_region(b, 16, PageClass::Anonymous);
        for i in 0..16 {
            hv.access(a, ra.page(i), true);
            hv.access(b, rb.page(i), true);
        }
        hv.monitor_mut().drain_writes();
        // Evicted pages land under each VM's own partition.
        let store = hv.monitor().store();
        assert!(store.contains(ExternalKey::new(ra.page(0).vpn(), PartitionId::new(7))));
        assert!(store.contains(ExternalKey::new(rb.page(0).vpn(), PartitionId::new(8))));
        assert!(!store.contains(ExternalKey::new(ra.page(0).vpn(), PartitionId::new(8))));
    }

    #[test]
    fn destroy_vm_releases_everything() {
        let mut hv = hypervisor(16);
        let a = hv.create_vm(1, PartitionId::new(1));
        let b = hv.create_vm(2, PartitionId::new(2));
        let ra = hv.map_region(a, 64, PageClass::Anonymous);
        let rb = hv.map_region(b, 8, PageClass::Anonymous);
        for i in 0..64 {
            hv.access(a, ra.page(i), true);
        }
        for i in 0..8 {
            hv.access(b, rb.page(i), true);
        }
        hv.monitor_mut().drain_writes();
        hv.destroy_vm(a);
        assert_eq!(hv.vm_count(), 1);
        assert_eq!(hv.resident_pages_of(a), 0);
        // The survivor's pages are intact.
        for i in 0..8 {
            let rep = hv.access(b, rb.page(i), false);
            let _ = rep;
        }
        // And VM a's partition is gone from the store.
        assert!(!hv
            .monitor()
            .store()
            .contains(ExternalKey::new(ra.page(0).vpn(), PartitionId::new(1))));
    }

    #[test]
    #[should_panic(expected = "does not belong")]
    fn cross_vm_access_rejected() {
        let mut hv = hypervisor(16);
        let a = hv.create_vm(1, PartitionId::new(1));
        let b = hv.create_vm(2, PartitionId::new(2));
        let _ra = hv.map_region(a, 8, PageClass::Anonymous);
        let rb = hv.map_region(b, 8, PageClass::Anonymous);
        hv.access(a, rb.page(0), false);
    }

    #[test]
    fn shared_vm_backend_runs_workloads() {
        let hv = Rc::new(RefCell::new(hypervisor(64)));
        let vm = hv.borrow_mut().create_vm(1, PartitionId::new(1));
        let mut backend = FluidMemHypervisor::vm_backend(hv.clone(), vm);
        let region = backend.map_region(128, PageClass::Anonymous);
        for i in 0..128 {
            backend.write_page(region.page(i), PageContents::Token(i));
        }
        hv.borrow_mut().monitor_mut().drain_writes();
        for i in 0..128 {
            let (contents, _) = backend.read_page(region.page(i));
            assert_eq!(contents, PageContents::Token(i));
        }
        assert!(backend.resident_pages() <= 64);
    }

    #[test]
    fn operator_can_repartition_budget_live() {
        let mut hv = hypervisor(128);
        let a = hv.create_vm(1, PartitionId::new(1));
        let ra = hv.map_region(a, 128, PageClass::Anonymous);
        for i in 0..128 {
            hv.access(a, ra.page(i), true);
        }
        assert_eq!(hv.resident_pages(), 128);
        hv.set_capacity(16);
        assert!(hv.resident_pages() <= 16);
        hv.set_capacity(256);
        assert_eq!(hv.capacity(), 256);
    }
}
