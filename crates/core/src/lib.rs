//! The FluidMem monitor — the paper's primary contribution.
//!
//! FluidMem achieves *full* memory disaggregation by registering all of a
//! VM's memory with userfaultfd and resolving every page fault in a
//! user-space **monitor process** (paper §III–V). This crate implements
//! that monitor and the `MemoryBackend` built on it:
//!
//! * the **page tracker** ([`PageTracker`]): a hash of already-seen pages
//!   so first-touch faults resolve with a zero-page mapping instead of a
//!   pointless remote read (§V-A, Figure 2);
//! * the **resizable LRU buffer** ([`LruBuffer`]): bounds how many of the
//!   VM's pages occupy hypervisor DRAM; resizing it up or down is how a
//!   cloud operator grows a VM across machines or shrinks it to a
//!   near-zero footprint (§III, §VI-E);
//! * the **write list** ([`WriteList`]): asynchronous batched writeback
//!   with page *stealing* — a fault on a page still waiting to be written
//!   is satisfied from the list, shortcutting two network round trips
//!   (§V-B);
//! * the **asynchronous read** optimization: the key-value store read is
//!   split into top and bottom halves and the `UFFD_REMAP` eviction plus
//!   cache bookkeeping run during the network wait (§V-B, Table II);
//! * **working-set estimation** ([`WorkingSetEstimator`]): shadow-entry
//!   refault-distance tracking in the style of Linux's
//!   `mm/workingset.c`, feeding a WSS estimate, a thrash detector, and
//!   an optional adaptive LRU capacity;
//! * the **stride prefetcher** ([`StrideDetector`]): Leap-style
//!   majority-vote trend detection over the fault address stream,
//!   turning sequential and strided phases into reads issued ahead of
//!   demand — gated by the working-set estimator so a thrashing VM never
//!   pollutes its own LRU with guesses;
//! * the **compressed local tier** ([`TierConfig`]): a zswap-like pool
//!   between DRAM and the remote store — evictions compress into local
//!   memory and demote to the store only under pool pressure, and
//!   refaults that hit the pool resolve for a decompress instead of a
//!   network round trip (§III's page-compression customization);
//! * per-code-path **profiling** ([`CodePath`], [`ProfileTable`])
//!   reproducing Table I.
//!
//! [`FluidMemMemory`] packages a monitor, a simulated userfaultfd, and a
//! key-value store into a [`MemoryBackend`](fluidmem_mem::MemoryBackend)
//! that the paper's workloads run against.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
mod config;
mod hypervisor;
mod lru_buffer;
mod monitor;
mod page_tracker;
mod prefetch;
mod profile;
mod signals;
mod stats;
mod tier;
mod workingset;
mod write_list;

pub use backend::{FluidMemMemory, MigrationImage, PipelineSubmit};
pub use config::{
    EvictionMechanism, LruPolicy, MonitorConfig, MonitorCosts, Optimizations, PrefetchPolicy,
    ReclaimConfig,
};
pub use hypervisor::{FluidMemHypervisor, SharedVm, VmHandle};
pub use lru_buffer::LruBuffer;
pub use monitor::{CompletedFault, Monitor, SubmitOutcome};
pub use page_tracker::PageTracker;
pub use prefetch::StrideDetector;
pub use profile::{CodePath, PathStats, ProfileTable};
pub use signals::VmSignals;
pub use stats::MonitorStats;
pub use tier::{TierAudit, TierConfig};
pub use workingset::{Refault, WorkingSetConfig, WorkingSetEstimator, WorkingSetMode};
pub use write_list::{StealOutcome, WriteList};
