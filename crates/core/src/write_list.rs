//! The asynchronous write list (§V-B).

use std::collections::HashMap;

use fluidmem_kv::ExternalKey;
use fluidmem_mem::{PageContents, PAGE_SIZE};
use fluidmem_sim::SimInstant;

/// One page awaiting writeback.
#[derive(Debug, Clone)]
struct PendingPage {
    contents: PageContents,
    /// `UFFD_REMAP`'s TLB shootdown must finish before the page can go
    /// on the wire.
    ready_at: SimInstant,
}

/// A batch currently in flight to the store. The contents are retained
/// so a fault during the flight can be satisfied locally once the write
/// completes.
#[derive(Debug)]
struct InflightBatch {
    pages: HashMap<ExternalKey, PageContents>,
    completes_at: SimInstant,
}

/// Where a faulting page was found when the monitor checked the write
/// list.
#[derive(Debug, Clone, PartialEq)]
pub enum StealOutcome {
    /// Not on the write list; read from the store.
    Miss,
    /// Stolen from the pending list: the write was cancelled and the
    /// contents returned — two network round trips saved (§V-B).
    Stolen(PageContents),
    /// The page is in an in-flight batch: "there is no other choice than
    /// to wait for the write to complete" — the caller must wait until
    /// the given instant, then use the contents.
    WaitInflight {
        /// When the in-flight batch completes.
        until: SimInstant,
        /// The page contents, valid once the wait is over.
        contents: PageContents,
    },
}

/// The monitor's write list: evicted pages queue here and a flusher
/// periodically writes them to the key-value store in batches
/// ("leveraging RAMCloud's multi-write operation", §V-B).
///
/// # Example
///
/// ```
/// use fluidmem_core::WriteList;
/// use fluidmem_coord::PartitionId;
/// use fluidmem_kv::ExternalKey;
/// use fluidmem_mem::{PageContents, Vpn};
/// use fluidmem_sim::SimInstant;
///
/// let mut wl = WriteList::new();
/// let key = ExternalKey::new(Vpn::new(1), PartitionId::new(0));
/// wl.push(key, PageContents::Token(1), SimInstant::EPOCH);
/// assert_eq!(wl.pending_len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct WriteList {
    pending: Vec<ExternalKey>,
    pending_pages: HashMap<ExternalKey, PendingPage>,
    inflight: Vec<InflightBatch>,
    /// The minimum `ready_at` over all pending pages (kept in sync on
    /// every insert and removal — a stale value here once made
    /// `drain_writes` give up with pages still queued).
    oldest_pending: Option<SimInstant>,
    pending_bytes: u64,
}

impl WriteList {
    /// Creates an empty write list.
    pub fn new() -> Self {
        Self::default()
    }

    fn recompute_oldest(&mut self) {
        self.oldest_pending = self.pending_pages.values().map(|p| p.ready_at).min();
    }

    /// Queues an evicted page. `ready_at` is the eviction's TLB-shootdown
    /// completion (the earliest instant the page may be flushed).
    pub fn push(&mut self, key: ExternalKey, contents: PageContents, ready_at: SimInstant) {
        if self
            .pending_pages
            .insert(key, PendingPage { contents, ready_at })
            .is_none()
        {
            self.pending.push(key);
            self.pending_bytes += PAGE_SIZE as u64;
        }
        self.recompute_oldest();
    }

    /// Pages queued but not yet flushed.
    pub fn pending_len(&self) -> usize {
        self.pending_pages.len()
    }

    /// Bytes held by queued (not yet flushed) pages.
    pub fn pending_bytes(&self) -> u64 {
        self.pending_bytes
    }

    /// Batches currently on the wire.
    pub fn inflight_batches(&self) -> usize {
        self.inflight.len()
    }

    /// The earliest `ready_at` among pending pages (for the stale-flush
    /// timer and for drain loops, which advance the clock to this instant
    /// to guarantee progress).
    pub fn oldest_pending(&self) -> Option<SimInstant> {
        self.oldest_pending
    }

    /// Looks for a faulting page on the list (the §V-B steal path).
    /// Pending pages are stolen (their write is cancelled); in-flight
    /// pages require waiting for the batch.
    pub fn steal(&mut self, key: ExternalKey, now: SimInstant) -> StealOutcome {
        if let Some(page) = self.pending_pages.remove(&key) {
            self.pending.retain(|k| *k != key);
            self.pending_bytes -= PAGE_SIZE as u64;
            self.recompute_oldest();
            return StealOutcome::Stolen(page.contents);
        }
        // Retire batches that already finished before searching them.
        self.retire(now);
        for batch in &self.inflight {
            if let Some(contents) = batch.pages.get(&key) {
                return StealOutcome::WaitInflight {
                    until: batch.completes_at,
                    contents: contents.clone(),
                };
            }
        }
        StealOutcome::Miss
    }

    /// Takes up to `max` flushable pages (whose shootdowns completed by
    /// `now`) for a batch write. Returns an empty vector if nothing is
    /// flushable.
    pub fn take_batch(&mut self, max: usize, now: SimInstant) -> Vec<(ExternalKey, PageContents)> {
        let mut batch = Vec::new();
        let mut i = 0;
        while i < self.pending.len() && batch.len() < max {
            let key = self.pending[i];
            let flushable = self
                .pending_pages
                .get(&key)
                .map(|p| p.ready_at <= now)
                .unwrap_or(false);
            if flushable {
                let page = self.pending_pages.remove(&key).expect("checked above");
                self.pending.remove(i);
                self.pending_bytes -= PAGE_SIZE as u64;
                batch.push((key, page.contents));
            } else {
                i += 1;
            }
        }
        self.recompute_oldest();
        batch
    }

    /// Registers a batch as in flight.
    pub fn mark_inflight(
        &mut self,
        batch: Vec<(ExternalKey, PageContents)>,
        completes_at: SimInstant,
    ) {
        self.inflight.push(InflightBatch {
            pages: batch.into_iter().collect(),
            completes_at,
        });
    }

    /// Drops batches whose writes have completed.
    pub fn retire(&mut self, now: SimInstant) {
        self.inflight.retain(|b| b.completes_at > now);
    }

    /// Whether a key is pending or in flight (its store copy is stale or
    /// incomplete — do not prefetch it from the store).
    pub fn is_tracked(&self, key: ExternalKey) -> bool {
        self.pending_pages.contains_key(&key)
            || self.inflight.iter().any(|b| b.pages.contains_key(&key))
    }

    /// Whether a key has a pending (not yet flushed) copy.
    pub fn is_pending(&self, key: ExternalKey) -> bool {
        self.pending_pages.contains_key(&key)
    }

    /// Distinct pages either pending or in flight (for shutdown
    /// draining). A key can be both at once — re-evicted with new
    /// contents while an earlier batch holding it is still on the wire —
    /// and must count once, not twice.
    pub fn outstanding(&self) -> usize {
        let mut keys: std::collections::HashSet<&ExternalKey> = self.pending_pages.keys().collect();
        for batch in &self.inflight {
            keys.extend(batch.pages.keys());
        }
        keys.len()
    }

    /// Returns a failed flush batch to the pending list (the batch is
    /// already past its TLB shootdown, so it is immediately flushable
    /// again). A key the VM re-evicted with *newer* contents while the
    /// batch was forming or on the wire keeps its pending copy: the
    /// stale batch copy is dropped for that key instead of clobbering it.
    pub fn requeue(&mut self, batch: Vec<(ExternalKey, PageContents)>, now: SimInstant) {
        for (key, contents) in batch {
            if !self.is_pending(key) {
                self.push(key, contents, now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_coord::PartitionId;
    use fluidmem_mem::Vpn;
    use fluidmem_sim::SimDuration;

    fn key(n: u64) -> ExternalKey {
        ExternalKey::new(Vpn::new(n), PartitionId::new(0))
    }

    fn t(us: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_micros(us)
    }

    #[test]
    fn steal_from_pending_cancels_write() {
        let mut wl = WriteList::new();
        wl.push(key(1), PageContents::Token(1), t(0));
        match wl.steal(key(1), t(1)) {
            StealOutcome::Stolen(c) => assert_eq!(c, PageContents::Token(1)),
            other => panic!("expected steal, got {other:?}"),
        }
        assert_eq!(wl.pending_len(), 0);
        assert_eq!(wl.take_batch(10, t(10)).len(), 0, "write was cancelled");
    }

    #[test]
    fn steal_miss() {
        let mut wl = WriteList::new();
        assert_eq!(wl.steal(key(9), t(0)), StealOutcome::Miss);
    }

    #[test]
    fn inflight_requires_wait() {
        let mut wl = WriteList::new();
        wl.push(key(1), PageContents::Token(7), t(0));
        let batch = wl.take_batch(10, t(1));
        assert_eq!(batch.len(), 1);
        wl.mark_inflight(batch, t(100));
        match wl.steal(key(1), t(5)) {
            StealOutcome::WaitInflight { until, contents } => {
                assert_eq!(until, t(100));
                assert_eq!(contents, PageContents::Token(7));
            }
            other => panic!("expected wait, got {other:?}"),
        }
        // After completion the batch retires and the page is simply gone
        // (it lives in the store now).
        assert_eq!(wl.steal(key(1), t(101)), StealOutcome::Miss);
        assert_eq!(wl.inflight_batches(), 0);
    }

    #[test]
    fn take_batch_respects_ready_at() {
        let mut wl = WriteList::new();
        wl.push(key(1), PageContents::Token(1), t(10));
        wl.push(key(2), PageContents::Token(2), t(0));
        let batch = wl.take_batch(10, t(5));
        assert_eq!(batch.len(), 1, "page 1's shootdown hasn't finished");
        assert_eq!(batch[0].0, key(2));
        assert_eq!(wl.pending_len(), 1);
    }

    #[test]
    fn take_batch_respects_max() {
        let mut wl = WriteList::new();
        for n in 0..10 {
            wl.push(key(n), PageContents::Token(n), t(0));
        }
        assert_eq!(wl.take_batch(4, t(1)).len(), 4);
        assert_eq!(wl.pending_len(), 6);
    }

    #[test]
    fn repush_same_key_overwrites() {
        let mut wl = WriteList::new();
        wl.push(key(1), PageContents::Token(1), t(0));
        wl.push(key(1), PageContents::Token(2), t(0));
        assert_eq!(wl.pending_len(), 1);
        match wl.steal(key(1), t(1)) {
            StealOutcome::Stolen(c) => assert_eq!(c, PageContents::Token(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oldest_pending_tracks_the_minimum_ready_at() {
        // Regression: a stale oldest_pending once made drain loops give
        // up while the newest eviction was still queued (migration lost
        // its last page).
        let mut wl = WriteList::new();
        wl.push(key(1), PageContents::Token(1), t(10));
        wl.push(key(2), PageContents::Token(2), t(5));
        wl.push(key(3), PageContents::Token(3), t(90));
        assert_eq!(wl.oldest_pending(), Some(t(5)));
        // Draining the ready entries must move the minimum forward to the
        // not-yet-flushable page, not leave it stuck in the past.
        let batch = wl.take_batch(10, t(20));
        assert_eq!(batch.len(), 2);
        assert_eq!(wl.oldest_pending(), Some(t(90)));
        // Stealing the last page empties the list entirely.
        assert!(matches!(wl.steal(key(3), t(21)), StealOutcome::Stolen(_)));
        assert_eq!(wl.oldest_pending(), None);
    }

    #[test]
    fn stolen_page_decrements_pending_bytes_exactly_once() {
        let mut wl = WriteList::new();
        wl.push(key(1), PageContents::Token(1), t(0));
        // Re-pushing the same key must not double-count its bytes.
        wl.push(key(1), PageContents::Token(2), t(0));
        wl.push(key(2), PageContents::Token(3), t(0));
        assert_eq!(wl.pending_bytes(), 2 * PAGE_SIZE as u64);
        assert!(matches!(wl.steal(key(1), t(1)), StealOutcome::Stolen(_)));
        assert_eq!(wl.pending_bytes(), PAGE_SIZE as u64);
        // A second steal of the same key misses and leaves the count.
        assert!(!matches!(wl.steal(key(1), t(1)), StealOutcome::Stolen(_)));
        assert_eq!(wl.pending_bytes(), PAGE_SIZE as u64);
        let _ = wl.take_batch(10, t(2));
        assert_eq!(wl.pending_bytes(), 0);
    }

    #[test]
    fn wait_inflight_key_leaves_the_batch_after_completion() {
        let mut wl = WriteList::new();
        wl.push(key(1), PageContents::Token(7), t(0));
        let batch = wl.take_batch(10, t(1));
        wl.mark_inflight(batch, t(100));
        // A fault during the flight must wait...
        let outcome = wl.steal(key(1), t(50));
        let StealOutcome::WaitInflight { until, .. } = outcome else {
            panic!("expected wait, got {outcome:?}");
        };
        assert_eq!(until, t(100));
        // ...and once `completes_at` passes, the key must not linger in
        // the in-flight set: the store owns the page now.
        assert!(!{
            wl.retire(t(100));
            wl.is_tracked(key(1))
        });
        assert_eq!(wl.steal(key(1), t(100)), StealOutcome::Miss);
        assert_eq!(wl.inflight_batches(), 0);
        assert_eq!(wl.outstanding(), 0);
    }

    #[test]
    fn outstanding_counts_both() {
        let mut wl = WriteList::new();
        for n in 0..6 {
            wl.push(key(n), PageContents::Token(n), t(0));
        }
        let batch = wl.take_batch(4, t(1));
        wl.mark_inflight(batch, t(50));
        assert_eq!(wl.outstanding(), 6);
        wl.retire(t(51));
        assert_eq!(wl.outstanding(), 2);
    }

    #[test]
    fn outstanding_counts_a_reevicted_inflight_key_once() {
        // evict → flush (batch on the wire) → the VM re-dirties and
        // re-evicts the same page → re-push while the batch still flies.
        let mut wl = WriteList::new();
        wl.push(key(1), PageContents::Token(10), t(0));
        let batch = wl.take_batch(10, t(1));
        wl.mark_inflight(batch, t(100));
        wl.push(key(1), PageContents::Token(20), t(2));
        assert!(wl.is_pending(key(1)));
        assert!(wl.is_tracked(key(1)));
        // One page, two copies: the drain has one page of work, and the
        // gauge must say 1, not 2.
        assert_eq!(wl.outstanding(), 1);
        // Stealing must prefer the newer pending copy over the stale
        // in-flight one — never WaitInflight on outdated contents.
        match wl.steal(key(1), t(3)) {
            StealOutcome::Stolen(c) => assert_eq!(c, PageContents::Token(20)),
            other => panic!("expected the newer pending copy, got {other:?}"),
        }
        // The stale in-flight copy still counts until the batch retires.
        assert_eq!(wl.outstanding(), 1);
        wl.retire(t(101));
        assert_eq!(wl.outstanding(), 0);
    }

    #[test]
    fn requeue_keeps_the_newer_pending_copy() {
        // A failed flush must not clobber a page re-evicted with newer
        // contents between batch formation and the failure.
        let mut wl = WriteList::new();
        wl.push(key(1), PageContents::Token(10), t(0));
        wl.push(key(2), PageContents::Token(11), t(0));
        let batch = wl.take_batch(10, t(1));
        assert_eq!(batch.len(), 2);
        // Key 1 is re-evicted with newer contents while the batch is out.
        wl.push(key(1), PageContents::Token(99), t(2));
        wl.requeue(batch, t(3));
        assert_eq!(wl.pending_len(), 2);
        match wl.steal(key(1), t(4)) {
            StealOutcome::Stolen(c) => assert_eq!(c, PageContents::Token(99)),
            other => panic!("requeue clobbered the newer copy: {other:?}"),
        }
        // Key 2 had no newer copy; the batch copy is restored.
        match wl.steal(key(2), t(4)) {
            StealOutcome::Stolen(c) => assert_eq!(c, PageContents::Token(11)),
            other => panic!("requeue lost key 2: {other:?}"),
        }
    }
}
