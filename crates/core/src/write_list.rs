//! The asynchronous write list (§V-B).

use std::collections::HashMap;

use fluidmem_kv::ExternalKey;
use fluidmem_mem::PageContents;
use fluidmem_sim::SimInstant;

/// One page awaiting writeback.
#[derive(Debug, Clone)]
struct PendingPage {
    contents: PageContents,
    /// `UFFD_REMAP`'s TLB shootdown must finish before the page can go
    /// on the wire.
    ready_at: SimInstant,
}

/// A batch currently in flight to the store. The contents are retained
/// so a fault during the flight can be satisfied locally once the write
/// completes.
#[derive(Debug)]
struct InflightBatch {
    pages: HashMap<ExternalKey, PageContents>,
    completes_at: SimInstant,
}

/// Where a faulting page was found when the monitor checked the write
/// list.
#[derive(Debug, Clone, PartialEq)]
pub enum StealOutcome {
    /// Not on the write list; read from the store.
    Miss,
    /// Stolen from the pending list: the write was cancelled and the
    /// contents returned — two network round trips saved (§V-B).
    Stolen(PageContents),
    /// The page is in an in-flight batch: "there is no other choice than
    /// to wait for the write to complete" — the caller must wait until
    /// the given instant, then use the contents.
    WaitInflight {
        /// When the in-flight batch completes.
        until: SimInstant,
        /// The page contents, valid once the wait is over.
        contents: PageContents,
    },
}

/// The monitor's write list: evicted pages queue here and a flusher
/// periodically writes them to the key-value store in batches
/// ("leveraging RAMCloud's multi-write operation", §V-B).
///
/// # Example
///
/// ```
/// use fluidmem_core::WriteList;
/// use fluidmem_coord::PartitionId;
/// use fluidmem_kv::ExternalKey;
/// use fluidmem_mem::{PageContents, Vpn};
/// use fluidmem_sim::SimInstant;
///
/// let mut wl = WriteList::new();
/// let key = ExternalKey::new(Vpn::new(1), PartitionId::new(0));
/// wl.push(key, PageContents::Token(1), SimInstant::EPOCH);
/// assert_eq!(wl.pending_len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct WriteList {
    pending: Vec<ExternalKey>,
    pending_pages: HashMap<ExternalKey, PendingPage>,
    inflight: Vec<InflightBatch>,
    oldest_pending: Option<SimInstant>,
}

impl WriteList {
    /// Creates an empty write list.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues an evicted page. `ready_at` is the eviction's TLB-shootdown
    /// completion (the earliest instant the page may be flushed).
    pub fn push(&mut self, key: ExternalKey, contents: PageContents, ready_at: SimInstant) {
        if self
            .pending_pages
            .insert(key, PendingPage { contents, ready_at })
            .is_none()
        {
            self.pending.push(key);
        }
        if self.oldest_pending.is_none() {
            self.oldest_pending = Some(ready_at);
        }
    }

    /// Pages queued but not yet flushed.
    pub fn pending_len(&self) -> usize {
        self.pending_pages.len()
    }

    /// Batches currently on the wire.
    pub fn inflight_batches(&self) -> usize {
        self.inflight.len()
    }

    /// When the oldest pending page was queued (for the stale-flush
    /// timer).
    pub fn oldest_pending(&self) -> Option<SimInstant> {
        self.oldest_pending
    }

    /// Looks for a faulting page on the list (the §V-B steal path).
    /// Pending pages are stolen (their write is cancelled); in-flight
    /// pages require waiting for the batch.
    pub fn steal(&mut self, key: ExternalKey, now: SimInstant) -> StealOutcome {
        if let Some(page) = self.pending_pages.remove(&key) {
            self.pending.retain(|k| *k != key);
            if self.pending_pages.is_empty() {
                self.oldest_pending = None;
            }
            return StealOutcome::Stolen(page.contents);
        }
        // Retire batches that already finished before searching them.
        self.retire(now);
        for batch in &self.inflight {
            if let Some(contents) = batch.pages.get(&key) {
                return StealOutcome::WaitInflight {
                    until: batch.completes_at,
                    contents: contents.clone(),
                };
            }
        }
        StealOutcome::Miss
    }

    /// Takes up to `max` flushable pages (whose shootdowns completed by
    /// `now`) for a batch write. Returns an empty vector if nothing is
    /// flushable.
    pub fn take_batch(
        &mut self,
        max: usize,
        now: SimInstant,
    ) -> Vec<(ExternalKey, PageContents)> {
        let mut batch = Vec::new();
        let mut i = 0;
        while i < self.pending.len() && batch.len() < max {
            let key = self.pending[i];
            let flushable = self
                .pending_pages
                .get(&key)
                .map(|p| p.ready_at <= now)
                .unwrap_or(false);
            if flushable {
                let page = self.pending_pages.remove(&key).expect("checked above");
                self.pending.remove(i);
                batch.push((key, page.contents));
            } else {
                i += 1;
            }
        }
        if self.pending_pages.is_empty() {
            self.oldest_pending = None;
        }
        batch
    }

    /// Registers a batch as in flight.
    pub fn mark_inflight(
        &mut self,
        batch: Vec<(ExternalKey, PageContents)>,
        completes_at: SimInstant,
    ) {
        self.inflight.push(InflightBatch {
            pages: batch.into_iter().collect(),
            completes_at,
        });
    }

    /// Drops batches whose writes have completed.
    pub fn retire(&mut self, now: SimInstant) {
        self.inflight.retain(|b| b.completes_at > now);
    }

    /// Whether a key is pending or in flight (its store copy is stale or
    /// incomplete — do not prefetch it from the store).
    pub fn is_tracked(&self, key: ExternalKey) -> bool {
        self.pending_pages.contains_key(&key)
            || self.inflight.iter().any(|b| b.pages.contains_key(&key))
    }

    /// Total pages either pending or in flight (for shutdown draining).
    pub fn outstanding(&self) -> usize {
        self.pending_pages.len() + self.inflight.iter().map(|b| b.pages.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_coord::PartitionId;
    use fluidmem_mem::Vpn;
    use fluidmem_sim::SimDuration;

    fn key(n: u64) -> ExternalKey {
        ExternalKey::new(Vpn::new(n), PartitionId::new(0))
    }

    fn t(us: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_micros(us)
    }

    #[test]
    fn steal_from_pending_cancels_write() {
        let mut wl = WriteList::new();
        wl.push(key(1), PageContents::Token(1), t(0));
        match wl.steal(key(1), t(1)) {
            StealOutcome::Stolen(c) => assert_eq!(c, PageContents::Token(1)),
            other => panic!("expected steal, got {other:?}"),
        }
        assert_eq!(wl.pending_len(), 0);
        assert_eq!(wl.take_batch(10, t(10)).len(), 0, "write was cancelled");
    }

    #[test]
    fn steal_miss() {
        let mut wl = WriteList::new();
        assert_eq!(wl.steal(key(9), t(0)), StealOutcome::Miss);
    }

    #[test]
    fn inflight_requires_wait() {
        let mut wl = WriteList::new();
        wl.push(key(1), PageContents::Token(7), t(0));
        let batch = wl.take_batch(10, t(1));
        assert_eq!(batch.len(), 1);
        wl.mark_inflight(batch, t(100));
        match wl.steal(key(1), t(5)) {
            StealOutcome::WaitInflight { until, contents } => {
                assert_eq!(until, t(100));
                assert_eq!(contents, PageContents::Token(7));
            }
            other => panic!("expected wait, got {other:?}"),
        }
        // After completion the batch retires and the page is simply gone
        // (it lives in the store now).
        assert_eq!(wl.steal(key(1), t(101)), StealOutcome::Miss);
        assert_eq!(wl.inflight_batches(), 0);
    }

    #[test]
    fn take_batch_respects_ready_at() {
        let mut wl = WriteList::new();
        wl.push(key(1), PageContents::Token(1), t(10));
        wl.push(key(2), PageContents::Token(2), t(0));
        let batch = wl.take_batch(10, t(5));
        assert_eq!(batch.len(), 1, "page 1's shootdown hasn't finished");
        assert_eq!(batch[0].0, key(2));
        assert_eq!(wl.pending_len(), 1);
    }

    #[test]
    fn take_batch_respects_max() {
        let mut wl = WriteList::new();
        for n in 0..10 {
            wl.push(key(n), PageContents::Token(n), t(0));
        }
        assert_eq!(wl.take_batch(4, t(1)).len(), 4);
        assert_eq!(wl.pending_len(), 6);
    }

    #[test]
    fn repush_same_key_overwrites() {
        let mut wl = WriteList::new();
        wl.push(key(1), PageContents::Token(1), t(0));
        wl.push(key(1), PageContents::Token(2), t(0));
        assert_eq!(wl.pending_len(), 1);
        match wl.steal(key(1), t(1)) {
            StealOutcome::Stolen(c) => assert_eq!(c, PageContents::Token(2)),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn outstanding_counts_both() {
        let mut wl = WriteList::new();
        for n in 0..6 {
            wl.push(key(n), PageContents::Token(n), t(0));
        }
        let batch = wl.take_batch(4, t(1));
        wl.mark_inflight(batch, t(50));
        assert_eq!(wl.outstanding(), 6);
        wl.retire(t(51));
        assert_eq!(wl.outstanding(), 2);
    }
}
