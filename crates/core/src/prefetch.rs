//! Trend detection over the fault address stream (ROADMAP item 1).
//!
//! The paper's monitor fetches exactly the faulting page, so sequential
//! and strided phases (pmbench sequential mode, Graph500 frontier scans)
//! pay a full remote round trip per page while a swap baseline gets
//! kernel readahead for free. [`StrideDetector`] closes that gap in the
//! style of Leap's majority-vote prefetcher: it watches the per-VM fault
//! VPN deltas over a bounded window and reports a stride *trend* that
//! [`PrefetchPolicy::Stride`](crate::PrefetchPolicy::Stride) turns into
//! detector-directed prefetch candidates.
//!
//! The state machine has deliberate hysteresis:
//!
//! * **detect** — once the window is full, a strict majority (more than
//!   half the deltas equal) sets the trend immediately, so a new access
//!   pattern is picked up within one window;
//! * **hold** — while no majority exists the current trend is kept; a
//!   prefetching monitor perturbs its own fault stream (successfully
//!   prefetched pages stop faulting, stretching the observed deltas), and
//!   dropping the trend on the first irregular delta would oscillate;
//! * **decay** — a full window of consecutive majority-less observations
//!   clears the trend, so a phase change to random access stops issue
//!   within one window rather than prefetching garbage forever.
//!
//! Duplicate faults (delta 0 — coalesced vCPUs, refault races) carry no
//! direction information and are skipped entirely.

use std::collections::VecDeque;

use fluidmem_mem::Vpn;

/// The smallest usable majority window: below this a single noisy delta
/// flips the vote, and hysteresis degenerates.
const MIN_WINDOW: usize = 4;

/// Majority-vote stride detector over recent fault VPN deltas.
///
/// Feed every fault address through [`observe`](Self::observe); read the
/// current trend (pages per fault, possibly negative for descending
/// scans) with [`trend`](Self::trend). Pure bookkeeping: no clock, RNG,
/// or counter side effects, so an attached-but-unused detector leaves a
/// run byte-identical.
#[derive(Debug, Clone)]
pub struct StrideDetector {
    window: usize,
    deltas: VecDeque<i64>,
    last: Option<u64>,
    trend: Option<i64>,
    misses: usize,
}

impl StrideDetector {
    /// A detector voting over the last `window` fault deltas (clamped to
    /// at least [`MIN_WINDOW`]).
    pub fn new(window: usize) -> Self {
        StrideDetector {
            window: window.max(MIN_WINDOW),
            deltas: VecDeque::new(),
            last: None,
            trend: None,
            misses: 0,
        }
    }

    /// Feeds one fault address into the detector.
    pub fn observe(&mut self, vpn: Vpn) {
        let raw = vpn.raw();
        let Some(prev) = self.last.replace(raw) else {
            return;
        };
        let delta = raw.wrapping_sub(prev) as i64;
        if delta == 0 {
            return;
        }
        if self.deltas.len() == self.window {
            self.deltas.pop_front();
        }
        self.deltas.push_back(delta);
        if self.deltas.len() < self.window {
            return;
        }
        match majority(&self.deltas) {
            Some(stride) => {
                self.trend = Some(stride);
                self.misses = 0;
            }
            None if self.trend.is_some() => {
                self.misses += 1;
                if self.misses >= self.window {
                    self.trend = None;
                    self.misses = 0;
                }
            }
            None => {}
        }
    }

    /// The stride currently trending, in pages per fault; `None` while
    /// the stream looks random (or before a full window of evidence).
    pub fn trend(&self) -> Option<i64> {
        self.trend
    }
}

/// Boyer–Moore majority vote with a verification pass: the delta held by
/// a *strict* majority of the window, or `None`.
fn majority(deltas: &VecDeque<i64>) -> Option<i64> {
    let mut candidate = 0i64;
    let mut count = 0usize;
    for &d in deltas {
        if count == 0 {
            candidate = d;
            count = 1;
        } else if d == candidate {
            count += 1;
        } else {
            count -= 1;
        }
    }
    let support = deltas.iter().filter(|&&d| d == candidate).count();
    (support * 2 > deltas.len()).then_some(candidate)
}

/// The page `steps` strides ahead of `base`, or `None` if the projection
/// leaves the address space (a descending scan near zero, or overflow).
pub fn project(base: Vpn, stride: i64, steps: u64) -> Option<Vpn> {
    let offset = (stride as i128).checked_mul(steps as i128)?;
    let target = base.raw() as i128 + offset;
    if (0..=u64::MAX as i128).contains(&target) {
        Some(Vpn::new(target as u64))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(det: &mut StrideDetector, start: u64, stride: i64, n: usize) {
        let mut at = start as i64;
        for _ in 0..n {
            det.observe(Vpn::new(at as u64));
            at += stride;
        }
    }

    #[test]
    fn detects_unit_stride() {
        let mut det = StrideDetector::new(8);
        feed(&mut det, 100, 1, 9);
        assert_eq!(det.trend(), Some(1));
    }

    #[test]
    fn detects_wide_and_negative_strides() {
        let mut det = StrideDetector::new(8);
        feed(&mut det, 1_000, 7, 9);
        assert_eq!(det.trend(), Some(7));
        feed(&mut det, 50_000, -3, 9);
        assert_eq!(det.trend(), Some(-3));
    }

    #[test]
    fn no_trend_before_window_fills() {
        let mut det = StrideDetector::new(8);
        feed(&mut det, 100, 1, 8); // 7 deltas: one short of a window
        assert_eq!(det.trend(), None);
        det.observe(Vpn::new(108));
        assert_eq!(det.trend(), Some(1));
    }

    #[test]
    fn random_stream_never_trends() {
        let mut det = StrideDetector::new(8);
        // An LCG walk: every delta distinct, so no majority ever forms.
        let mut x = 12_345u64;
        for _ in 0..100 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            det.observe(Vpn::new(x >> 16));
            assert_eq!(det.trend(), None);
        }
    }

    #[test]
    fn trend_holds_through_noise_then_decays() {
        let mut det = StrideDetector::new(4);
        feed(&mut det, 100, 1, 5);
        assert_eq!(det.trend(), Some(1));
        // Noise with all-distinct deltas. The first noisy observation
        // still leaves a 3-of-4 majority of 1s in the window (not a
        // miss); the next three are majority-less, and hysteresis holds
        // the trend through all of them...
        for v in [1_000u64, 10_000, 30_000, 70_000] {
            det.observe(Vpn::new(v));
            assert_eq!(det.trend(), Some(1), "vpn {v} should not decay yet");
        }
        // ...and the window-th consecutive miss decays it.
        det.observe(Vpn::new(150_000));
        assert_eq!(det.trend(), None);
    }

    #[test]
    fn majority_switch_is_immediate() {
        let mut det = StrideDetector::new(4);
        feed(&mut det, 100, 1, 5);
        assert_eq!(det.trend(), Some(1));
        // A new strict majority replaces the trend without waiting for
        // the old one to decay.
        feed(&mut det, 10_000, 5, 4);
        assert_eq!(det.trend(), Some(5));
    }

    #[test]
    fn zero_deltas_are_skipped() {
        let mut det = StrideDetector::new(4);
        for v in [100u64, 100, 101, 101, 102, 102, 103, 103, 104] {
            det.observe(Vpn::new(v));
        }
        // Duplicates contribute nothing; the distinct VPNs alone form
        // the unit-stride majority.
        assert_eq!(det.trend(), Some(1));
    }

    #[test]
    fn window_is_clamped_to_minimum() {
        let mut det = StrideDetector::new(0);
        feed(&mut det, 100, 1, MIN_WINDOW); // MIN_WINDOW - 1 deltas
        assert_eq!(det.trend(), None);
        det.observe(Vpn::new(100 + MIN_WINDOW as u64));
        assert_eq!(det.trend(), Some(1));
    }

    #[test]
    fn projection_clamps_at_address_space_edges() {
        assert_eq!(project(Vpn::new(100), 7, 3), Some(Vpn::new(121)));
        assert_eq!(project(Vpn::new(100), -40, 2), Some(Vpn::new(20)));
        assert_eq!(project(Vpn::new(100), -40, 3), None);
        assert_eq!(project(Vpn::new(u64::MAX - 2), 1, 3), None);
    }
}
