//! Monitor configuration and cost models.

use fluidmem_kv::RetryPolicy;
use fluidmem_sim::{LatencyModel, SimDuration};

use crate::tier::TierConfig;
use crate::workingset::WorkingSetConfig;

/// The §V-B optimization toggles — the axes of Table II's ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Optimizations {
    /// Split key-value reads into top/bottom halves and interleave the
    /// eviction and cache bookkeeping with the network wait.
    pub async_read: bool,
    /// Put evicted pages on the write list (batched background flush with
    /// page stealing) instead of writing synchronously.
    pub async_write: bool,
}

impl Optimizations {
    /// No optimizations (Table II "Default").
    pub fn none() -> Self {
        Optimizations {
            async_read: false,
            async_write: false,
        }
    }

    /// Both optimizations (the configuration used for all macro
    /// benchmarks).
    pub fn full() -> Self {
        Optimizations {
            async_read: true,
            async_write: true,
        }
    }

    /// A short label for result tables.
    pub fn label(&self) -> &'static str {
        match (self.async_read, self.async_write) {
            (false, false) => "Default",
            (true, false) => "Async Read",
            (false, true) => "Async Write",
            (true, true) => "Async Read/Write",
        }
    }
}

impl Default for Optimizations {
    fn default() -> Self {
        Optimizations::full()
    }
}

/// How eviction moves a page out of the VM (§V-B "Zero-copy semantics").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionMechanism {
    /// The proposed `UFFD_REMAP`: rewrite page-table entries, no copy,
    /// but a TLB shootdown (paper default).
    #[default]
    Remap,
    /// Copy the page out and unmap — no cross-CPU synchronization but a
    /// 4 KB copy per eviction. The paper notes remap "is not always
    /// faster than UFFD_COPY because of the synchronization required";
    /// this variant lets the ablation bench measure exactly that.
    Copy,
}

/// Proactive page prefetching on the read path — an operator
/// customization in the spirit of §III (swap gets this for free from the
/// kernel's readahead; the monitor can do it too, and smarter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrefetchPolicy {
    /// No prefetching (the paper's implementation).
    #[default]
    None,
    /// On a remote read of page *p*, also pull pages *p+1..p+window*
    /// back from the store if they were evicted earlier — issued as
    /// overlapping asynchronous reads after the guest is woken.
    Sequential {
        /// How many successor pages to pull per fault.
        window: u64,
    },
    /// Leap-style trend prefetch: a majority-vote
    /// [`StrideDetector`](crate::StrideDetector) watches the fault VPN
    /// stream, and while a stride trend holds, each remote read also
    /// pulls up to `max_depth` pages ahead *at the detected stride*
    /// (negative strides included). Issue is suppressed for
    /// thrash-flagged VMs (WSS estimate over capacity) and when LRU
    /// headroom is below the depth, so speculation never evicts warm
    /// pages. In the pipelined path the speculative reads are real
    /// in-flight operations: a demand fault arriving mid-flight adopts
    /// the pending read and pays only the remaining flight time.
    Stride {
        /// Fault deltas the majority vote runs over (clamped ≥ 4).
        window: usize,
        /// Pages fetched ahead per fault while a trend holds; `0`
        /// disables the policy entirely (byte-identical to
        /// [`PrefetchPolicy::None`]).
        max_depth: u64,
    },
}

/// Watermark-driven background reclaim: the monitor's kswapd.
///
/// When enabled, a background evictor watches the LRU's free headroom
/// (`capacity − resident`). It wakes when headroom drops below the low
/// watermark and evicts in batches — on its own virtual timeline, off
/// the fault critical path — until headroom reaches the high watermark,
/// mirroring `fluidmem-swap`'s `kswapd()`. An arriving fault only falls
/// back to inline "direct reclaim" (`evict_while_full`, the analogue of
/// `SwapBackend::ensure_frames`) when the evictor has fallen behind.
///
/// Off by default, and a no-op without
/// [`Optimizations::async_write`] (background batches stage onto the
/// write list): the default configuration is bit-for-bit identical to a
/// monitor without the feature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReclaimConfig {
    /// Master switch. Off by default: eviction stays inline on the
    /// fault path.
    pub enabled: bool,
    /// The evictor wakes when free headroom drops below this fraction
    /// of the LRU capacity.
    pub watermark_low: f64,
    /// Once awake, the evictor reclaims until headroom reaches this
    /// fraction.
    pub watermark_high: f64,
    /// Maximum pages evicted per activation; each batch stages onto the
    /// write list in one pass and flushes through `begin_multi_write`.
    pub batch: usize,
}

impl ReclaimConfig {
    /// Background reclaim off (the default).
    pub fn disabled() -> Self {
        ReclaimConfig {
            enabled: false,
            ..Self::kswapd()
        }
    }

    /// Background reclaim on with kswapd-shaped defaults: wake below 4%
    /// headroom, reclaim to 8%, 32 pages per batch.
    pub fn kswapd() -> Self {
        ReclaimConfig {
            enabled: true,
            watermark_low: 0.04,
            watermark_high: 0.08,
            batch: 32,
        }
    }

    /// Background reclaim on with explicit watermark fractions.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < low < high <= 1`.
    pub fn watermarks(low: f64, high: f64) -> Self {
        let config = ReclaimConfig {
            watermark_low: low,
            watermark_high: high,
            ..Self::kswapd()
        };
        config.validate();
        config
    }

    /// The low watermark in pages for a given capacity: rounded up and
    /// floored at 1, so small buffers still wake the evictor (the same
    /// truncation bug `SwapConfig`'s watermarks had).
    pub fn low_pages(&self, capacity: u64) -> u64 {
        ((capacity as f64 * self.watermark_low).ceil() as u64).max(1)
    }

    /// The high watermark in pages: strictly above the low watermark so
    /// every wakeup makes progress.
    pub fn high_pages(&self, capacity: u64) -> u64 {
        ((capacity as f64 * self.watermark_high).ceil() as u64).max(self.low_pages(capacity) + 1)
    }

    /// Checks the watermark fractions are ordered and sane.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < watermark_low < watermark_high <= 1`.
    pub fn validate(&self) {
        assert!(
            self.watermark_low > 0.0,
            "watermark_low must be positive (got {})",
            self.watermark_low
        );
        assert!(
            self.watermark_high > self.watermark_low,
            "watermark_high ({}) must exceed watermark_low ({})",
            self.watermark_high,
            self.watermark_low
        );
        assert!(
            self.watermark_high <= 1.0,
            "watermark_high must be at most 1.0 (got {})",
            self.watermark_high
        );
    }
}

impl Default for ReclaimConfig {
    fn default() -> Self {
        ReclaimConfig::disabled()
    }
}

/// LRU-ordering policy for the monitor's buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LruPolicy {
    /// The paper's implementation: the list is only updated when a page
    /// is *seen* by the monitor (first access and refault after
    /// eviction); "the internal ordering of the list does not change"
    /// (§V-A). Effectively FIFO between faults.
    #[default]
    FirstTouch,
    /// The §V-A "future optimization" ablation: periodically sample guest
    /// referenced bits and rotate recently-used pages away from the
    /// eviction end, approximating the kernel's active/inactive aging.
    ScanReferenced {
        /// Sample the referenced bits of this many head pages per fault.
        scan_batch: usize,
    },
}

/// CPU cost models for the monitor's own code paths, calibrated to the
/// paper's Table I (units µs, avg / p99):
///
/// | Code path | avg | p99 |
/// |---|---|---|
/// | `UPDATE_PAGE_CACHE` | 2.56 | 3.32 |
/// | `INSERT_PAGE_HASH_NODE` | 2.58 | 8.36 |
/// | `INSERT_LRU_CACHE_NODE` | 2.87 | 3.65 |
#[derive(Debug, Clone)]
pub struct MonitorCosts {
    /// Page-tracker hash lookup on every fault.
    pub hash_lookup: LatencyModel,
    /// Updating the monitor's page-cache metadata on the read path
    /// (Table I `UPDATE_PAGE_CACHE`).
    pub update_page_cache: LatencyModel,
    /// Inserting into the page-tracker hash (Table I
    /// `INSERT_PAGE_HASH_NODE`).
    pub insert_page_hash: LatencyModel,
    /// Inserting into the LRU list (Table I `INSERT_LRU_CACHE_NODE`).
    pub insert_lru: LatencyModel,
    /// Checking the write list for a stealable copy.
    pub steal_check: LatencyModel,
    /// Appending an evicted page to the write list.
    pub write_list_push: LatencyModel,
    /// Extra buffer copy on the synchronous write path (the zero-copy
    /// §V-B discussion: sync writes pay an extra staging copy).
    pub sync_write_staging: LatencyModel,
    /// Extra staging/copy cost on the synchronous read path (request
    /// buffer management that the split top/bottom-half path avoids).
    pub sync_read_staging: LatencyModel,
}

impl Default for MonitorCosts {
    fn default() -> Self {
        MonitorCosts {
            hash_lookup: LatencyModel::lognormal_mean_p99_us(1.1, 1.9),
            update_page_cache: LatencyModel::lognormal_mean_p99_us(2.56, 3.32),
            insert_page_hash: LatencyModel::lognormal_mean_p99_us(2.58, 8.36),
            insert_lru: LatencyModel::lognormal_mean_p99_us(2.87, 3.65),
            steal_check: LatencyModel::normal_us(0.4, 0.08),
            write_list_push: LatencyModel::normal_us(0.9, 0.15),
            sync_write_staging: LatencyModel::normal_us(4.5, 0.5),
            sync_read_staging: LatencyModel::normal_us(4.5, 0.5),
        }
    }
}

/// Full monitor configuration. Construct with [`MonitorConfig::new`] and
/// customize with the builder methods.
///
/// # Example
///
/// ```
/// use fluidmem_core::{MonitorConfig, Optimizations};
///
/// let config = MonitorConfig::new(262_144) // 1 GB local buffer
///     .optimizations(Optimizations::none())
///     .write_batch(64);
/// assert_eq!(config.lru_capacity, 262_144);
/// assert_eq!(config.write_batch_size, 64);
/// ```
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Maximum pages held in hypervisor DRAM across all registered
    /// regions ("the size of the list determines the number of pages held
    /// in DRAM for all VMs", §V-A).
    pub lru_capacity: u64,
    /// Flush the write list when it reaches this many pages.
    pub write_batch_size: usize,
    /// Also flush when the oldest pending write exceeds this age ("a
    /// stale file descriptor has been found", §V-B).
    pub flush_interval: SimDuration,
    /// Optimization toggles.
    pub optimizations: Optimizations,
    /// Eviction mechanism.
    pub eviction: EvictionMechanism,
    /// LRU ordering policy.
    pub lru_policy: LruPolicy,
    /// Prefetch policy for the read path.
    pub prefetch: PrefetchPolicy,
    /// Monitor CPU cost models.
    pub costs: MonitorCosts,
    /// Whether faults originate from a KVM vCPU (adds VM-exit cost) or a
    /// plain process linked with libuserfault (the Table II setup).
    pub from_vm: bool,
    /// How store operations that fail retryably (timeouts, transient
    /// refusals) are retried. Backoff waits are charged to the virtual
    /// clock, so retried faults honestly extend the observed latency.
    pub retry: RetryPolicy,
    /// How many faults the monitor's pipelined entry points
    /// ([`Monitor::submit_fault`](crate::Monitor::submit_fault) /
    /// [`Monitor::complete_next`](crate::Monitor::complete_next)) may
    /// hold in flight at once. `1` (the default) degenerates to the
    /// call-return path: each fault completes before the next is
    /// admitted, byte-identical to
    /// [`Monitor::handle_fault`](crate::Monitor::handle_fault). Larger
    /// values model FluidMem's multi-threaded monitor, where several
    /// store round trips and the evictor overlap.
    pub max_inflight: usize,
    /// Shadow-entry working-set estimation: how many nonresident entries
    /// to retain and whether the estimate drives the LRU capacity
    /// ([`WorkingSetMode::AdaptiveCapacity`](crate::WorkingSetMode)) or
    /// only the observability surface (the default, passive mode —
    /// bit-for-bit identical monitor behavior).
    pub workingset: WorkingSetConfig,
    /// Watermark-driven background reclaim (off by default; requires
    /// [`Optimizations::async_write`] to take effect).
    pub reclaim: ReclaimConfig,
    /// The compressed local tier between DRAM and the remote store (off
    /// by default; requires [`Optimizations::async_write`] to take
    /// effect, since demotions stage onto the write list).
    pub tier: TierConfig,
}

impl MonitorConfig {
    /// A monitor with the paper's defaults and a local buffer of
    /// `lru_capacity` pages.
    pub fn new(lru_capacity: u64) -> Self {
        MonitorConfig {
            lru_capacity,
            write_batch_size: 32,
            flush_interval: SimDuration::from_micros(500),
            optimizations: Optimizations::full(),
            eviction: EvictionMechanism::Remap,
            lru_policy: LruPolicy::FirstTouch,
            prefetch: PrefetchPolicy::None,
            costs: MonitorCosts::default(),
            from_vm: true,
            retry: RetryPolicy::default_remote(),
            max_inflight: 1,
            workingset: WorkingSetConfig::default(),
            reclaim: ReclaimConfig::default(),
            tier: TierConfig::default(),
        }
    }

    /// Sets the optimization toggles.
    pub fn optimizations(mut self, opts: Optimizations) -> Self {
        self.optimizations = opts;
        self
    }

    /// Sets the write-list flush threshold.
    pub fn write_batch(mut self, pages: usize) -> Self {
        self.write_batch_size = pages.max(1);
        self
    }

    /// Sets the eviction mechanism.
    pub fn eviction(mut self, mechanism: EvictionMechanism) -> Self {
        self.eviction = mechanism;
        self
    }

    /// Sets the LRU policy.
    pub fn lru_policy(mut self, policy: LruPolicy) -> Self {
        self.lru_policy = policy;
        self
    }

    /// Sets the prefetch policy.
    pub fn prefetch(mut self, policy: PrefetchPolicy) -> Self {
        self.prefetch = policy;
        self
    }

    /// Marks faults as coming from a plain process rather than a KVM
    /// guest (used by the Table II "libuserfault" benchmark).
    pub fn bare_process(mut self) -> Self {
        self.from_vm = false;
        self
    }

    /// Sets the store retry policy.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Sets the outstanding-fault depth for the pipelined entry points
    /// (clamped to at least 1).
    pub fn inflight(mut self, depth: usize) -> Self {
        self.max_inflight = depth.max(1);
        self
    }

    /// Sets the working-set estimation config.
    pub fn workingset(mut self, ws: WorkingSetConfig) -> Self {
        self.workingset = ws;
        self
    }

    /// Sets the background-reclaim config.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is enabled with unordered watermark fractions.
    pub fn reclaim(mut self, cfg: ReclaimConfig) -> Self {
        if cfg.enabled {
            cfg.validate();
        }
        self.reclaim = cfg;
        self
    }

    /// Sets the compressed-local-tier config.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is enabled with a zero budget or unordered
    /// watermark fractions.
    pub fn tier(mut self, cfg: TierConfig) -> Self {
        if cfg.enabled {
            cfg.validate();
        }
        self.tier = cfg;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimization_labels_match_table2() {
        assert_eq!(Optimizations::none().label(), "Default");
        assert_eq!(Optimizations::full().label(), "Async Read/Write");
        assert_eq!(
            Optimizations {
                async_read: true,
                async_write: false
            }
            .label(),
            "Async Read"
        );
        assert_eq!(
            Optimizations {
                async_read: false,
                async_write: true
            }
            .label(),
            "Async Write"
        );
    }

    #[test]
    fn builder_chains() {
        let c = MonitorConfig::new(100)
            .write_batch(0)
            .eviction(EvictionMechanism::Copy)
            .lru_policy(LruPolicy::ScanReferenced { scan_batch: 4 })
            .bare_process();
        assert_eq!(c.write_batch_size, 1, "batch clamps to 1");
        assert_eq!(c.eviction, EvictionMechanism::Copy);
        assert!(!c.from_vm);
    }

    #[test]
    fn reclaim_defaults_off_and_watermarks_never_truncate() {
        let c = MonitorConfig::new(256);
        assert!(!c.reclaim.enabled, "reclaim must default off");

        let r = ReclaimConfig::kswapd();
        // 16 × 0.04 = 0.64: truncation would give 0 and the evictor
        // would never wake at small capacities.
        assert_eq!(r.low_pages(16), 1);
        assert!(r.high_pages(16) > r.low_pages(16));
        assert_eq!(r.low_pages(256), 11); // ceil(10.24)
        assert_eq!(r.high_pages(256), 21); // ceil(20.48)
    }

    #[test]
    #[should_panic(expected = "watermark_high")]
    fn reclaim_builder_rejects_inverted_watermarks() {
        let bad = ReclaimConfig {
            enabled: true,
            watermark_low: 0.5,
            watermark_high: 0.5,
            batch: 32,
        };
        let _ = MonitorConfig::new(256).reclaim(bad);
    }

    #[test]
    fn cost_calibration_is_table1_shaped() {
        let c = MonitorCosts::default();
        assert!((c.update_page_cache.mean_us() - 2.56).abs() < 0.05);
        assert!((c.insert_page_hash.mean_us() - 2.58).abs() < 0.05);
        assert!((c.insert_lru.mean_us() - 2.87).abs() < 0.05);
    }
}
