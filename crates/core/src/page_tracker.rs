//! The page tracker: FluidMem's "already seen" hash.

use std::collections::BTreeMap;

use fluidmem_mem::Vpn;

/// Pages per bitmap chunk (64 words × 64 bits).
const CHUNK_PAGES: u64 = 4096;
/// Words per chunk.
const CHUNK_WORDS: usize = 64;

/// One chunk of the tracked-page bitmap: a fixed 4096-page window of the
/// address space with a live-bit count.
#[derive(Debug)]
struct Chunk {
    words: Box<[u64; CHUNK_WORDS]>,
    live: u32,
}

impl Chunk {
    fn new() -> Self {
        Chunk {
            words: Box::new([0; CHUNK_WORDS]),
            live: 0,
        }
    }
}

/// The monitor's hash of pages it has seen before.
///
/// Userfaultfd "is invoked on the first page fault of every page, giving
/// the user space page fault handler the ability to identify all pages
/// belonging to a VM" (§III). The tracker turns that into the
/// *pagetracker* fast path of Figure 2: a fault on an unseen page is
/// resolved with `UFFD_ZEROPAGE` and **no remote read**, because nothing
/// was ever stored for it.
///
/// Storage is a map of 4096-page bitmap chunks keyed by `vpn / 4096`.
/// VM regions are contiguous VPN ranges, so a region's pages land in a
/// handful of adjacent chunks: membership is one map lookup plus a bit
/// test, dense populations cost one bit per page instead of a hash
/// entry, and unregistering a region ([`remove_range`]) drops whole
/// chunks without visiting other regions' pages.
///
/// [`remove_range`]: PageTracker::remove_range
///
/// # Example
///
/// ```
/// use fluidmem_core::PageTracker;
/// use fluidmem_mem::Vpn;
///
/// let mut tracker = PageTracker::new();
/// assert!(!tracker.contains(Vpn::new(5)));
/// tracker.insert(Vpn::new(5));
/// assert!(tracker.contains(Vpn::new(5)));
/// ```
#[derive(Debug, Default)]
pub struct PageTracker {
    chunks: BTreeMap<u64, Chunk>,
    len: usize,
}

/// Splits a VPN into (chunk key, word index, bit mask).
fn locate(vpn: Vpn) -> (u64, usize, u64) {
    let raw = vpn.raw();
    let key = raw / CHUNK_PAGES;
    let offset = raw % CHUNK_PAGES;
    let word = (offset / 64) as usize;
    let mask = 1u64 << (offset % 64);
    (key, word, mask)
}

impl PageTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the page has been seen before.
    pub fn contains(&self, vpn: Vpn) -> bool {
        let (key, word, mask) = locate(vpn);
        self.chunks
            .get(&key)
            .is_some_and(|c| c.words[word] & mask != 0)
    }

    /// Marks a page as seen. Returns `false` if it was already tracked.
    pub fn insert(&mut self, vpn: Vpn) -> bool {
        let (key, word, mask) = locate(vpn);
        let chunk = self.chunks.entry(key).or_insert_with(Chunk::new);
        if chunk.words[word] & mask != 0 {
            return false;
        }
        chunk.words[word] |= mask;
        chunk.live += 1;
        self.len += 1;
        true
    }

    /// Forgets a page (its VM's region was unregistered).
    pub fn remove(&mut self, vpn: Vpn) -> bool {
        let (key, word, mask) = locate(vpn);
        let Some(chunk) = self.chunks.get_mut(&key) else {
            return false;
        };
        if chunk.words[word] & mask == 0 {
            return false;
        }
        chunk.words[word] &= !mask;
        chunk.live -= 1;
        self.len -= 1;
        if chunk.live == 0 {
            self.chunks.remove(&key);
        }
        true
    }

    /// Forgets every page for which `predicate` is true; returns how many
    /// were removed. Visits every tracked page — prefer
    /// [`remove_range`](PageTracker::remove_range) when the doomed pages
    /// form a contiguous region.
    pub fn remove_where<F: FnMut(Vpn) -> bool>(&mut self, mut predicate: F) -> usize {
        let mut removed = 0;
        self.chunks.retain(|&key, chunk| {
            for word in 0..CHUNK_WORDS {
                let mut bits = chunk.words[word];
                while bits != 0 {
                    let bit = bits.trailing_zeros() as u64;
                    bits &= bits - 1;
                    let vpn = Vpn::new(key * CHUNK_PAGES + word as u64 * 64 + bit);
                    if predicate(vpn) {
                        chunk.words[word] &= !(1u64 << bit);
                        chunk.live -= 1;
                        removed += 1;
                    }
                }
            }
            chunk.live > 0
        });
        self.len -= removed;
        removed
    }

    /// Forgets every tracked page with `start <= vpn < end` (a region
    /// unregister); returns how many were removed. Interior chunks are
    /// dropped whole; only the two edge chunks are masked bit-by-word —
    /// the cost is O(chunks in range), independent of how many pages
    /// other regions track.
    pub fn remove_range(&mut self, start: Vpn, end: Vpn) -> usize {
        if start >= end {
            return 0;
        }
        let (first_key, _, _) = locate(start);
        let last_raw = end.raw() - 1;
        let last_key = last_raw / CHUNK_PAGES;
        let mut removed = 0;
        let doomed: Vec<u64> = self
            .chunks
            .range(first_key..=last_key)
            .map(|(&k, _)| k)
            .collect();
        for key in doomed {
            let chunk_start = key * CHUNK_PAGES;
            let chunk = self.chunks.get_mut(&key).expect("key just ranged");
            if start.raw() <= chunk_start && chunk_start + CHUNK_PAGES <= end.raw() {
                // Fully covered: drop the whole chunk.
                removed += chunk.live as usize;
                self.chunks.remove(&key);
                continue;
            }
            // Edge chunk: mask out the covered words.
            let lo = start.raw().max(chunk_start) - chunk_start;
            let hi = end.raw().min(chunk_start + CHUNK_PAGES) - chunk_start;
            for word in (lo / 64)..=((hi - 1) / 64) {
                let word_start = word * 64;
                let mut mask = u64::MAX;
                if lo > word_start {
                    mask &= u64::MAX << (lo - word_start);
                }
                if hi < word_start + 64 {
                    mask &= (1u64 << (hi - word_start)) - 1;
                }
                let cleared = (chunk.words[word as usize] & mask).count_ones();
                chunk.words[word as usize] &= !mask;
                chunk.live -= cleared;
                removed += cleared as usize;
            }
            if chunk.live == 0 {
                self.chunks.remove(&key);
            }
        }
        self.len -= removed;
        removed
    }

    /// How many chunks a [`remove_range`](PageTracker::remove_range) over
    /// `start..end` would touch — the deterministic cost model the
    /// regression tests assert on (no wall-clock timing).
    pub fn range_cost_chunks(&self, start: Vpn, end: Vpn) -> usize {
        if start >= end {
            return 0;
        }
        let first_key = start.raw() / CHUNK_PAGES;
        let last_key = (end.raw() - 1) / CHUNK_PAGES;
        self.chunks.range(first_key..=last_key).count()
    }

    /// Exports the tracked set (for live migration). Chunks are keyed in
    /// address order, so the export is naturally sorted.
    pub fn export(&self) -> Vec<Vpn> {
        let mut out = Vec::with_capacity(self.len);
        for (&key, chunk) in &self.chunks {
            for word in 0..CHUNK_WORDS {
                let mut bits = chunk.words[word];
                while bits != 0 {
                    let bit = bits.trailing_zeros() as u64;
                    bits &= bits - 1;
                    out.push(Vpn::new(key * CHUNK_PAGES + word as u64 * 64 + bit));
                }
            }
        }
        out
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bitmap chunks currently allocated (the tracker's standing memory
    /// footprint: ~512 bytes per populated 4096-page window).
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_is_idempotent() {
        let mut t = PageTracker::new();
        assert!(t.insert(Vpn::new(1)));
        assert!(!t.insert(Vpn::new(1)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_where_scopes_cleanup() {
        let mut t = PageTracker::new();
        for n in 0..10 {
            t.insert(Vpn::new(n));
        }
        let removed = t.remove_where(|v| v.raw() < 4);
        assert_eq!(removed, 4);
        assert_eq!(t.len(), 6);
        assert!(!t.contains(Vpn::new(0)));
        assert!(t.contains(Vpn::new(9)));
    }

    #[test]
    fn remove_range_handles_chunk_edges() {
        let mut t = PageTracker::new();
        // Pages straddling three chunks: 4000..4100 and 12_000..12_300.
        for n in 4000..4100 {
            t.insert(Vpn::new(n));
        }
        for n in 12_000..12_300 {
            t.insert(Vpn::new(n));
        }
        // Remove a window that clips both edges of the first population.
        assert_eq!(t.remove_range(Vpn::new(4050), Vpn::new(4090)), 40);
        assert!(t.contains(Vpn::new(4049)));
        assert!(!t.contains(Vpn::new(4050)));
        assert!(!t.contains(Vpn::new(4089)));
        assert!(t.contains(Vpn::new(4090)));
        // Remove the second population entirely (interior chunk dropped
        // whole, edge chunks masked).
        assert_eq!(t.remove_range(Vpn::new(12_000), Vpn::new(12_300)), 300);
        assert_eq!(t.len(), 60);
        assert_eq!(t.remove_range(Vpn::new(0), Vpn::new(u64::MAX / 2)), 60);
        assert!(t.is_empty());
        assert_eq!(t.chunk_count(), 0);
    }

    #[test]
    fn empty_and_inverted_ranges_are_noops() {
        let mut t = PageTracker::new();
        t.insert(Vpn::new(7));
        assert_eq!(t.remove_range(Vpn::new(9), Vpn::new(9)), 0);
        assert_eq!(t.remove_range(Vpn::new(9), Vpn::new(3)), 0);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn region_removal_cost_ignores_other_regions() {
        // The satellite regression: unregistering region A must not get
        // more expensive as region B grows. Cost is measured in chunks
        // visited (the deterministic unit remove_range works in).
        let mut t = PageTracker::new();
        let a_start = Vpn::new(0);
        let a_end = Vpn::new(8192); // region A: 2 chunks
        for n in 0..8192 {
            t.insert(Vpn::new(n));
        }
        let sparse_cost = t.range_cost_chunks(a_start, a_end);
        // Blow region B up to 1M pages, far away in the address space.
        let b_base = 1 << 30;
        for n in 0..1_048_576u64 {
            t.insert(Vpn::new(b_base + n));
        }
        assert_eq!(
            t.range_cost_chunks(a_start, a_end),
            sparse_cost,
            "region A's removal cost scaled with region B's population"
        );
        assert_eq!(t.remove_range(a_start, a_end), 8192);
        assert_eq!(t.len(), 1_048_576);
    }

    #[test]
    fn export_is_sorted_and_complete() {
        let mut t = PageTracker::new();
        for n in [90_000u64, 5, 4096, 3, 70_000, 4095] {
            t.insert(Vpn::new(n));
        }
        let exported = t.export();
        assert_eq!(
            exported,
            vec![
                Vpn::new(3),
                Vpn::new(5),
                Vpn::new(4095),
                Vpn::new(4096),
                Vpn::new(70_000),
                Vpn::new(90_000)
            ]
        );
    }

    #[test]
    fn bitmap_matches_the_hashset_implementation() {
        // Randomized traffic against the old HashSet implementation:
        // membership, insert/remove results, length, and the sorted
        // export must be identical.
        fluidmem_sim::prop::forall("tracker-bitmap-vs-hashset", 4, |rng| {
            let mut bitmap = PageTracker::new();
            let mut set: std::collections::HashSet<u64> = std::collections::HashSet::new();
            for _ in 0..2_000 {
                // Spread across chunk boundaries: a few dense windows.
                let page = rng.gen_index(4) * CHUNK_PAGES + rng.gen_index(80);
                let vpn = Vpn::new(page);
                match rng.gen_index(5) {
                    0..=2 => assert_eq!(bitmap.insert(vpn), set.insert(page)),
                    3 => assert_eq!(bitmap.remove(vpn), set.remove(&page)),
                    _ => {
                        // Range removal vs the equivalent set retain.
                        let lo = rng.gen_index(4) * CHUNK_PAGES;
                        let hi = lo + rng.gen_index(2 * CHUNK_PAGES);
                        let before = set.len();
                        set.retain(|&p| p < lo || p >= hi);
                        assert_eq!(
                            bitmap.remove_range(Vpn::new(lo), Vpn::new(hi)),
                            before - set.len()
                        );
                    }
                }
                assert_eq!(bitmap.contains(vpn), set.contains(&page));
                assert_eq!(bitmap.len(), set.len());
            }
            let mut expected: Vec<u64> = set.into_iter().collect();
            expected.sort_unstable();
            let exported: Vec<u64> = bitmap.export().iter().map(|v| v.raw()).collect();
            assert_eq!(exported, expected);
        });
    }
}
