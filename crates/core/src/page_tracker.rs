//! The page tracker: FluidMem's "already seen" hash.

use std::collections::HashSet;

use fluidmem_mem::Vpn;

/// The monitor's hash of pages it has seen before.
///
/// Userfaultfd "is invoked on the first page fault of every page, giving
/// the user space page fault handler the ability to identify all pages
/// belonging to a VM" (§III). The tracker turns that into the
/// *pagetracker* fast path of Figure 2: a fault on an unseen page is
/// resolved with `UFFD_ZEROPAGE` and **no remote read**, because nothing
/// was ever stored for it.
///
/// # Example
///
/// ```
/// use fluidmem_core::PageTracker;
/// use fluidmem_mem::Vpn;
///
/// let mut tracker = PageTracker::new();
/// assert!(!tracker.contains(Vpn::new(5)));
/// tracker.insert(Vpn::new(5));
/// assert!(tracker.contains(Vpn::new(5)));
/// ```
#[derive(Debug, Default)]
pub struct PageTracker {
    seen: HashSet<Vpn>,
}

impl PageTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the page has been seen before.
    pub fn contains(&self, vpn: Vpn) -> bool {
        self.seen.contains(&vpn)
    }

    /// Marks a page as seen. Returns `false` if it was already tracked.
    pub fn insert(&mut self, vpn: Vpn) -> bool {
        self.seen.insert(vpn)
    }

    /// Forgets a page (its VM's region was unregistered).
    pub fn remove(&mut self, vpn: Vpn) -> bool {
        self.seen.remove(&vpn)
    }

    /// Forgets every page for which `predicate` is true; returns how many
    /// were removed.
    pub fn remove_where<F: FnMut(Vpn) -> bool>(&mut self, mut predicate: F) -> usize {
        let before = self.seen.len();
        self.seen.retain(|&v| !predicate(v));
        before - self.seen.len()
    }

    /// Exports the tracked set (for live migration).
    pub fn export(&self) -> Vec<Vpn> {
        let mut v: Vec<Vpn> = self.seen.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_is_idempotent() {
        let mut t = PageTracker::new();
        assert!(t.insert(Vpn::new(1)));
        assert!(!t.insert(Vpn::new(1)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_where_scopes_cleanup() {
        let mut t = PageTracker::new();
        for n in 0..10 {
            t.insert(Vpn::new(n));
        }
        let removed = t.remove_where(|v| v.raw() < 4);
        assert_eq!(removed, 4);
        assert_eq!(t.len(), 6);
        assert!(!t.contains(Vpn::new(0)));
        assert!(t.contains(Vpn::new(9)));
    }
}
