//! `FluidMemMemory`: the packaged FluidMem `MemoryBackend`.

use std::collections::BTreeMap;

use fluidmem_coord::PartitionId;
use fluidmem_kv::KeyValueStore;
use fluidmem_mem::{
    AccessCounters, AccessOutcome, AccessReport, CapacityError, MemoryBackend, PageClass,
    PageContents, PageTable, PhysicalMemory, PteFlags, Region, VirtAddr, Vpn,
};
use fluidmem_sim::{SimClock, SimDuration, SimRng};
use fluidmem_uffd::{RegionId, Userfaultfd};

use crate::config::MonitorConfig;
use crate::monitor::{CompletedFault, Monitor, Resolution, SubmitOutcome};

/// The outcome of [`FluidMemMemory::submit_access`].
#[derive(Debug, Clone, Copy)]
pub enum PipelineSubmit {
    /// The access resolved inline — a mapped-page hit, a CoW break, or a
    /// fault the pipeline completed without parking (first touch,
    /// write-list steal). The report is final and already counted.
    Ready(AccessReport),
    /// The access parked (or coalesced) in the monitor's in-flight
    /// table; [`FluidMemMemory::complete_next_access`] finishes it.
    Pending(SubmitOutcome),
}

/// The state handed from a migration source to its destination: the
/// guest's region layout and the monitor's seen-page set. The pages
/// themselves never move — they already live in the shared key-value
/// store, which is exactly the §VII observation that "live migration and
/// memory disaggregation are complementary."
#[derive(Debug, Clone)]
pub struct MigrationImage {
    /// The guest's registered regions, preserved at their addresses.
    pub regions: Vec<Region>,
    /// Pages the monitor has seen (present in the store).
    pub seen: Vec<Vpn>,
    /// The VM's store partition.
    pub partition: PartitionId,
    /// The local buffer capacity to restore on the destination.
    pub capacity: u64,
}

/// A VM memory system fully disaggregated through FluidMem.
///
/// This is the right-hand VM of the paper's Figure 1: *all* guest memory
/// is registered with the (simulated) userfaultfd at creation, every
/// access is either a mapped-page hit or a monitor-resolved fault, and
/// extra capacity arrives via [`hotplug_add`](FluidMemMemory::hotplug_add)
/// without guest cooperation.
///
/// # Example
///
/// ```
/// use fluidmem_coord::PartitionId;
/// use fluidmem_core::{FluidMemMemory, MonitorConfig};
/// use fluidmem_kv::DramStore;
/// use fluidmem_mem::{MemoryBackend, PageClass};
/// use fluidmem_sim::{SimClock, SimRng};
///
/// let clock = SimClock::new();
/// let store = DramStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(1));
/// let mut vm = FluidMemMemory::new(
///     MonitorConfig::new(64),
///     Box::new(store),
///     PartitionId::new(0),
///     clock,
///     SimRng::seed_from_u64(2),
/// );
/// let region = vm.map_region(256, PageClass::Anonymous);
/// for i in 0..256 {
///     vm.access(region.page(i), true);
/// }
/// assert!(vm.resident_pages() <= 64, "the LRU bound holds");
/// ```
pub struct FluidMemMemory {
    uffd: Userfaultfd,
    pt: PageTable,
    pm: PhysicalMemory,
    monitor: Monitor,
    regions: BTreeMap<u64, (RegionId, Region)>,
    next_vpn: u64,
    pid: u64,
    from_vm: bool,
    counters: AccessCounters,
    clock: SimClock,
    label: String,
}

impl FluidMemMemory {
    /// Creates a FluidMem-backed memory over a key-value store, keyed
    /// under `partition`.
    pub fn new(
        config: MonitorConfig,
        store: Box<dyn KeyValueStore>,
        partition: PartitionId,
        clock: SimClock,
        rng: SimRng,
    ) -> Self {
        let label = format!("FluidMem/{}", store.name());
        let from_vm = config.from_vm;
        let uffd = Userfaultfd::new(clock.clone(), rng.fork("uffd"));
        let monitor = Monitor::new(config, store, partition, clock.clone(), rng.fork("monitor"));
        FluidMemMemory {
            uffd,
            pt: PageTable::new(),
            // Host frames are bounded by the monitor's LRU, not by this
            // allocator; size it generously.
            pm: PhysicalMemory::new(u64::MAX / 2),
            monitor,
            regions: BTreeMap::new(),
            next_vpn: 0x10_000,
            pid: 4242,
            from_vm,
            counters: AccessCounters::default(),
            clock,
            label,
        }
    }

    /// The monitor (for stats, profile, and resize access).
    pub fn monitor(&self) -> &Monitor {
        &self.monitor
    }

    /// Attaches a shared telemetry handle (see
    /// [`Monitor::attach_telemetry`]).
    pub fn attach_telemetry(&mut self, telemetry: &fluidmem_telemetry::Telemetry) {
        self.monitor.attach_telemetry(telemetry);
    }

    /// Attaches a shared telemetry handle with every monitor instrument
    /// keyed by a `vm` label, so N backends can share one registry (see
    /// [`Monitor::attach_telemetry_labeled`]).
    pub fn attach_telemetry_labeled(
        &mut self,
        telemetry: &fluidmem_telemetry::Telemetry,
        vm: &str,
    ) {
        self.monitor.attach_telemetry_labeled(telemetry, vm);
    }

    /// The arbiter-facing snapshot of this VM's memory behavior: access
    /// and fault counters plus residency/capacity/write-back gauges.
    pub fn signals(&self) -> crate::VmSignals {
        let access = self.counters();
        let stats = self.monitor.stats();
        crate::VmSignals {
            accesses: access.total(),
            hits: access.hits,
            minor_faults: access.minor_faults,
            major_faults: access.major_faults,
            remote_reads: stats.remote_reads,
            resident_pages: self.monitor.resident_pages(),
            capacity_pages: self.monitor.capacity(),
            pending_writes: self.monitor.pending_writes() as u64,
            refaults_measured: stats.refaults_measured,
            thrash_refaults: stats.thrash_refaults,
            wss_estimate_pages: self.monitor.wss_estimate_pages(),
            background_reclaims: stats.background_reclaims,
            direct_reclaims: stats.direct_reclaims,
            tier_hits: stats.tier_hits,
            tier_demotions: stats.tier_demotions,
            tier_pool_bytes: self.monitor.tier_bytes() as u64,
            prefetch_issued: stats.prefetch_issued,
            prefetch_hits: stats.prefetch_hits,
        }
    }

    /// Retargets the compressed tier's byte budget (the host arbiter's
    /// per-VM pool quota); a shrink demotes overflow to the store.
    pub fn set_tier_budget(&mut self, max_bytes: usize) {
        self.monitor.set_tier_budget(max_bytes);
    }

    /// Mutable monitor access (profile clearing, drains).
    pub fn monitor_mut(&mut self) -> &mut Monitor {
        &mut self.monitor
    }

    /// Adds memory to the running VM via hotplug (the left-hand VM of
    /// Figure 1): a new uffd-registered region appears, no guest changes
    /// needed.
    pub fn hotplug_add(&mut self, pages: u64, class: PageClass) -> Region {
        self.map_region(pages, class)
    }

    /// Unregisters a region (VM shutdown), dropping monitor state and the
    /// VM's pages in the store.
    pub fn unregister_region(&mut self, region: &Region) {
        if let Some((id, _)) = self.regions.remove(&region.start().raw()) {
            self.uffd.unregister(id).expect("region was registered");
            // Consume the unregister event as the monitor would.
            while self.uffd.poll().is_some() {}
            self.monitor.remove_region(region);
            for vpn in region.iter_pages() {
                if let Some(entry) = self.pt.unmap(vpn) {
                    if !entry.flags.contains(PteFlags::ZERO_PAGE) {
                        self.pm.free(entry.frame);
                    }
                }
            }
        }
    }

    /// Flushes all outstanding writes (shutdown / test hygiene).
    pub fn drain_writes(&mut self) {
        self.monitor.drain_writes();
    }

    /// Migrates the VM out: evicts every page to the (shared) store,
    /// drains the write list, and returns the image the destination
    /// needs. Consumes the source — the VM no longer runs here.
    pub fn migrate_out(mut self) -> MigrationImage {
        let capacity = self.monitor.capacity();
        self.monitor
            .resize(&mut self.uffd, &mut self.pt, &mut self.pm, 0);
        self.monitor.drain_writes();
        MigrationImage {
            regions: self.regions.values().map(|(_, r)| *r).collect(),
            seen: self.monitor.export_seen(),
            partition: self.monitor.partition(),
            capacity,
        }
    }

    /// Builds the destination side of a migration: re-registers the
    /// guest's regions at their original addresses and imports the
    /// seen-page set, over a handle to the *same* store the source used.
    pub fn migrate_in(
        config: MonitorConfig,
        store: Box<dyn KeyValueStore>,
        image: MigrationImage,
        clock: SimClock,
        rng: SimRng,
    ) -> Self {
        let mut config = config;
        config.lru_capacity = image.capacity;
        let mut vm = FluidMemMemory::new(config, store, image.partition, clock, rng);
        for region in &image.regions {
            let id = vm
                .uffd
                .register(*region)
                .expect("migrated regions do not overlap");
            vm.regions.insert(region.start().raw(), (id, *region));
            vm.next_vpn = vm.next_vpn.max(region.end().raw() + 16);
        }
        vm.monitor.import_seen(image.seen);
        vm
    }

    /// Resolves an access to an already-mapped page (hit or CoW break);
    /// `None` means the page is unmapped and must fault to the monitor.
    fn try_mapped_access(&mut self, vpn: Vpn, write: bool) -> Option<AccessReport> {
        let entry = self.pt.get_mut(vpn)?;
        if write && entry.flags.contains(PteFlags::ZERO_PAGE) {
            // Kernel-side copy-on-write break (footnote 1 of the
            // paper): a regular minor fault, invisible to the
            // monitor.
            let t0 = self.clock.now();
            self.uffd
                .break_cow(&mut self.pt, &mut self.pm, vpn)
                .expect("zero-page mapping breaks cleanly");
            self.counters.record(AccessOutcome::MinorFault);
            return Some(AccessReport {
                outcome: AccessOutcome::MinorFault,
                latency: self.clock.now() - t0,
            });
        }
        entry.flags.insert(PteFlags::REFERENCED);
        if write {
            entry.flags.insert(PteFlags::DIRTY);
        }
        // First guest touch of a prefetched page resolves its
        // accuracy-ledger entry to a hit (a no-op branch when nothing
        // is pending).
        self.monitor.note_mapped_touch(vpn);
        self.counters.record(AccessOutcome::Hit);
        Some(AccessReport {
            outcome: AccessOutcome::Hit,
            latency: SimDuration::ZERO,
        })
    }

    fn do_access(&mut self, addr: VirtAddr, write: bool) -> AccessReport {
        let vpn = addr.vpn();
        if let Some(report) = self.try_mapped_access(vpn, write) {
            return report;
        }

        let t0 = self.clock.now();
        self.uffd
            .raise_fault(addr, write, self.pid, self.from_vm)
            .unwrap_or_else(|e| panic!("access to unregistered address {addr}: {e}"));
        let _event = self.uffd.poll().expect("fault was queued");
        let res = self
            .monitor
            .handle_fault(&mut self.uffd, &mut self.pt, &mut self.pm, vpn, write);
        let mut latency = res.wake_at - t0;

        // A *write* that was resolved with the zero page immediately
        // breaks CoW when the guest retries the instruction.
        if write && self.pt.has_flags(vpn, PteFlags::ZERO_PAGE) {
            let before = self.clock.now();
            self.uffd
                .break_cow(&mut self.pt, &mut self.pm, vpn)
                .expect("zero-page mapping breaks cleanly");
            latency += self.clock.now() - before;
        }

        let outcome = match res.resolution {
            Resolution::ZeroFill | Resolution::WriteListSteal | Resolution::CompressedHit => {
                AccessOutcome::MinorFault
            }
            Resolution::RemoteRead | Resolution::InflightWait => AccessOutcome::MajorFault,
        };
        self.counters.record(outcome);
        AccessReport { outcome, latency }
    }

    /// Submits one guest access from `vcpu_pid` to the monitor's staged
    /// pipeline. Hits and CoW breaks resolve inline, as do faults the
    /// pipeline completes without parking (first touch, write-list
    /// steal); a fault that must wait on the store parks in the
    /// in-flight table — the vCPU stays blocked in the (simulated)
    /// userfaultfd until [`FluidMemMemory::complete_next_access`]
    /// resolves its page.
    ///
    /// The caller is responsible for keeping the submission depth within
    /// [`MonitorConfig::max_inflight`] by completing between submits
    /// (see [`Monitor::submit_fault`]).
    pub fn submit_access(&mut self, vcpu_pid: u64, addr: VirtAddr, write: bool) -> PipelineSubmit {
        let vpn = addr.vpn();
        if let Some(report) = self.try_mapped_access(vpn, write) {
            return PipelineSubmit::Ready(report);
        }

        let t0 = self.clock.now();
        self.uffd
            .raise_fault(addr, write, vcpu_pid, self.from_vm)
            .unwrap_or_else(|e| panic!("access to unregistered address {addr}: {e}"));
        let _event = self.uffd.poll().expect("fault was queued");
        match self
            .monitor
            .submit_fault(&mut self.uffd, &mut self.pt, &mut self.pm, vpn, write)
        {
            SubmitOutcome::Completed(res) => {
                let mut latency = res.wake_at - t0;
                // A write resolved with the zero page breaks CoW when the
                // guest retries the instruction — same as the call-return
                // path.
                if write && self.pt.has_flags(vpn, PteFlags::ZERO_PAGE) {
                    let before = self.clock.now();
                    self.uffd
                        .break_cow(&mut self.pt, &mut self.pm, vpn)
                        .expect("zero-page mapping breaks cleanly");
                    latency += self.clock.now() - before;
                }
                let outcome = match res.resolution {
                    Resolution::ZeroFill
                    | Resolution::WriteListSteal
                    | Resolution::CompressedHit => AccessOutcome::MinorFault,
                    Resolution::RemoteRead | Resolution::InflightWait => AccessOutcome::MajorFault,
                };
                self.counters.record(outcome);
                PipelineSubmit::Ready(AccessReport { outcome, latency })
            }
            parked => PipelineSubmit::Pending(parked),
        }
    }

    /// Finishes the earliest in-flight pipelined access: resolves the
    /// page, wakes the blocked vCPU(s), and records one access outcome
    /// per fault sharing the operation (the submitter plus any coalesced
    /// waiters). Returns `None` when nothing is in flight.
    pub fn complete_next_access(&mut self) -> Option<CompletedFault> {
        let done = self
            .monitor
            .complete_next(&mut self.uffd, &mut self.pt, &mut self.pm)?;
        let outcome = match done.resolution {
            Resolution::ZeroFill | Resolution::WriteListSteal | Resolution::CompressedHit => {
                AccessOutcome::MinorFault
            }
            Resolution::RemoteRead | Resolution::InflightWait => AccessOutcome::MajorFault,
        };
        for _ in 0..=done.waiters {
            self.counters.record(outcome);
        }
        Some(done)
    }

    /// Faults currently parked in the monitor's in-flight table.
    pub fn inflight_len(&self) -> usize {
        self.monitor.inflight_len()
    }

    /// Installs any speculative reads (and runs any reclaim work) whose
    /// completion instant has already passed, without blocking on
    /// in-flight demand faults. Pipelined drivers call this between
    /// guest accesses to model the monitor thread running bottom halves
    /// while the vCPUs compute; never advances the clock.
    pub fn poll_ready_completions(&mut self) {
        self.monitor
            .poll_ready(&mut self.uffd, &mut self.pt, &mut self.pm);
    }
}

impl MemoryBackend for FluidMemMemory {
    fn map_region(&mut self, pages: u64, class: PageClass) -> Region {
        let region = Region::new(Vpn::new(self.next_vpn), pages, class);
        self.next_vpn += pages + 16;
        let id = self
            .uffd
            .register(region)
            .expect("bump allocation never overlaps");
        self.regions.insert(region.start().raw(), (id, region));
        region
    }

    fn access(&mut self, addr: VirtAddr, write: bool) -> AccessReport {
        self.do_access(addr, write)
    }

    fn write_page(&mut self, addr: VirtAddr, contents: PageContents) -> AccessReport {
        let report = self.do_access(addr, true);
        let entry = self.pt.get(addr.vpn()).expect("write access maps the page");
        self.pm.store(entry.frame, contents);
        report
    }

    fn read_page(&mut self, addr: VirtAddr) -> (PageContents, AccessReport) {
        let report = self.do_access(addr, false);
        let entry = self.pt.get(addr.vpn()).expect("read access maps the page");
        (self.pm.load(entry.frame).clone(), report)
    }

    fn resident_pages(&self) -> u64 {
        self.monitor.resident_pages()
    }

    fn local_capacity_pages(&self) -> u64 {
        self.monitor.capacity()
    }

    fn set_local_capacity(&mut self, pages: u64) -> Result<(), CapacityError> {
        // FluidMem's defining capability (§III, §VI-E): the operator
        // resizes the buffer with no guest involvement.
        self.monitor
            .resize(&mut self.uffd, &mut self.pt, &mut self.pm, pages);
        Ok(())
    }

    fn balloon_reclaim(&mut self, target_pages: u64) -> u64 {
        // FluidMem needs no balloon: resizing the LRU does strictly more.
        let _ = self.set_local_capacity(target_pages);
        self.resident_pages()
    }

    fn counters(&self) -> AccessCounters {
        self.counters
    }

    fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

impl std::fmt::Debug for FluidMemMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FluidMemMemory")
            .field("label", &self.label)
            .field("resident", &self.resident_pages())
            .field("capacity", &self.local_capacity_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_kv::{DramStore, RamCloudStore};

    fn backend(capacity: u64) -> FluidMemMemory {
        let clock = SimClock::new();
        let store = DramStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(1));
        FluidMemMemory::new(
            MonitorConfig::new(capacity),
            Box::new(store),
            PartitionId::new(0),
            clock,
            SimRng::seed_from_u64(2),
        )
    }

    #[test]
    fn first_touch_then_hit() {
        let mut vm = backend(16);
        let r = vm.map_region(8, PageClass::Anonymous);
        assert_eq!(
            vm.access(r.page(0), false).outcome,
            AccessOutcome::MinorFault
        );
        let hit = vm.access(r.page(0), false);
        assert_eq!(hit.outcome, AccessOutcome::Hit);
        assert!(hit.latency.is_zero());
    }

    #[test]
    fn write_after_zero_fill_breaks_cow() {
        let mut vm = backend(16);
        let r = vm.map_region(8, PageClass::Anonymous);
        vm.access(r.page(0), false); // zero-fill
        let rep = vm.access(r.page(0), true); // CoW break
        assert_eq!(rep.outcome, AccessOutcome::MinorFault);
        assert!(!rep.latency.is_zero());
        assert_eq!(vm.monitor().stats().faults, 1, "CoW is not a uffd fault");
    }

    #[test]
    fn footprint_bounded_and_refaults_are_major() {
        let mut vm = backend(32);
        let r = vm.map_region(128, PageClass::Anonymous);
        for i in 0..128 {
            vm.access(r.page(i), true);
        }
        assert!(vm.resident_pages() <= 32);
        vm.drain_writes();
        let rep = vm.access(r.page(0), false);
        assert_eq!(rep.outcome, AccessOutcome::MajorFault);
    }

    #[test]
    fn any_page_class_disaggregates() {
        // Full disaggregation: kernel and mlocked pages evict like any
        // other (unlike the swap baseline).
        let mut vm = backend(16);
        let kernel = vm.map_region(32, PageClass::KernelText);
        let pinned = vm.map_region(32, PageClass::Unevictable);
        for i in 0..32 {
            vm.access(kernel.page(i), false);
            vm.access(pinned.page(i), true);
        }
        assert!(vm.resident_pages() <= 16, "kernel pages evicted too");
        assert!(vm.monitor().stats().evictions >= 48);
    }

    #[test]
    fn data_integrity_through_ramcloud_round_trip() {
        let clock = SimClock::new();
        let store = RamCloudStore::new(1 << 28, clock.clone(), SimRng::seed_from_u64(7));
        let mut vm = FluidMemMemory::new(
            MonitorConfig::new(4),
            Box::new(store),
            PartitionId::new(3),
            clock,
            SimRng::seed_from_u64(8),
        );
        let r = vm.map_region(64, PageClass::Anonymous);
        for i in 0..16 {
            vm.write_page(r.page(i), PageContents::from_byte_fill(i as u8 + 1));
        }
        vm.drain_writes();
        for i in 0..16 {
            let (contents, _) = vm.read_page(r.page(i));
            assert_eq!(
                contents,
                PageContents::from_byte_fill(i as u8 + 1),
                "page {i} corrupted through evict/refault"
            );
        }
    }

    #[test]
    fn resize_to_near_zero_and_back() {
        let mut vm = backend(4096);
        let r = vm.map_region(4096, PageClass::Anonymous);
        for i in 0..4096 {
            vm.access(r.page(i), false);
        }
        // Shrink to the paper's 180-page SSH-capable footprint.
        vm.set_local_capacity(180).unwrap();
        assert!(vm.resident_pages() <= 180);
        // And instantly back to normal responsiveness.
        vm.set_local_capacity(4096).unwrap();
        vm.drain_writes();
        let rep = vm.access(r.page(0), false);
        assert_eq!(rep.outcome, AccessOutcome::MajorFault);
        assert_eq!(vm.access(r.page(0), false).outcome, AccessOutcome::Hit);
    }

    #[test]
    fn unregister_region_cleans_up() {
        let mut vm = backend(64);
        let r = vm.map_region(32, PageClass::Anonymous);
        for i in 0..32 {
            vm.access(r.page(i), true);
        }
        vm.drain_writes();
        vm.unregister_region(&r);
        assert_eq!(vm.resident_pages(), 0);
        assert_eq!(vm.monitor().seen_pages(), 0);
        assert!(vm.monitor().store().is_empty());
    }

    #[test]
    fn two_vms_share_a_store_without_collisions() {
        let clock = SimClock::new();
        // One store instance shared by giving each VM its own partition.
        // (In the simulation each backend owns its store handle; sharing
        // is exercised at the key level through partitions.)
        let store_a = DramStore::new(1 << 26, clock.clone(), SimRng::seed_from_u64(1));
        let mut vm_a = FluidMemMemory::new(
            MonitorConfig::new(2),
            Box::new(store_a),
            PartitionId::new(1),
            clock.clone(),
            SimRng::seed_from_u64(2),
        );
        let r = vm_a.map_region(8, PageClass::Anonymous);
        for i in 0..8 {
            vm_a.write_page(r.page(i), PageContents::Token(100 + i));
        }
        vm_a.drain_writes();
        // Identical vpn range, different partition => different keys.
        let key_p1 = fluidmem_kv::ExternalKey::new(r.page(0).vpn(), PartitionId::new(1));
        let key_p2 = fluidmem_kv::ExternalKey::new(r.page(0).vpn(), PartitionId::new(2));
        assert!(vm_a.monitor().store().contains(key_p1));
        assert!(!vm_a.monitor().store().contains(key_p2));
    }

    #[test]
    #[should_panic(expected = "unregistered address")]
    fn unregistered_access_panics() {
        let mut vm = backend(4);
        vm.access(VirtAddr::new(0x10), false);
    }

    #[test]
    fn label_names_mechanism_and_store() {
        let vm = backend(4);
        assert_eq!(vm.label(), "FluidMem/dram");
    }
}
