//! The per-VM signals a host-level DRAM arbiter reads.
//!
//! A host agent running N monitors over one shared store (the
//! `fluidmem-host` crate) periodically decides how to split host DRAM
//! between the VMs' LRU buffers. [`VmSignals`] is the snapshot it reads
//! per VM: access/fault counters, residency, and write-back pressure —
//! everything needed to compute fault rates and hit ratios over a
//! rebalance window via [`VmSignals::window_since`].

/// A point-in-time snapshot of one VM's memory behavior, as seen by the
/// backend ([`FluidMemMemory::signals`](crate::FluidMemMemory::signals)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmSignals {
    /// Guest accesses observed in total (hits + faults).
    pub accesses: u64,
    /// Accesses served without any monitor involvement.
    pub hits: u64,
    /// Minor faults (CoW breaks, zero fills, write-list steals).
    pub minor_faults: u64,
    /// Major faults (the monitor had to consult the remote store path).
    pub major_faults: u64,
    /// Faults that performed an actual remote read.
    pub remote_reads: u64,
    /// Pages currently resident in the VM's LRU buffer.
    pub resident_pages: u64,
    /// The LRU capacity currently granted to this VM.
    pub capacity_pages: u64,
    /// Pages waiting on the VM's asynchronous write list.
    pub pending_writes: u64,
    /// Refaults whose shadow entry was live (distance measured).
    pub refaults_measured: u64,
    /// Measured refaults inside the working-set estimate — the faults
    /// extra capacity would actually have avoided. The
    /// refault-proportional arbiter weighs this.
    pub thrash_refaults: u64,
    /// The monitor's working-set-size estimate in pages (a gauge, like
    /// residency/capacity).
    pub wss_estimate_pages: u64,
    /// Pages evicted by the watermark-driven background reclaimer.
    pub background_reclaims: u64,
    /// Pages evicted inline with background reclaim enabled — nonzero
    /// means the evictor fell behind and faults paid for eviction.
    pub direct_reclaims: u64,
    /// Refaults resolved from the compressed local tier (no network
    /// round trip).
    pub tier_hits: u64,
    /// Pages demoted from the compressed tier to the remote store under
    /// pool pressure.
    pub tier_demotions: u64,
    /// Compressed bytes currently charged to the VM's tier pool (a
    /// gauge, like residency/capacity).
    pub tier_pool_bytes: u64,
    /// Speculative reads issued by the VM's prefetch policy.
    pub prefetch_issued: u64,
    /// Prefetched pages the guest actually touched. With
    /// `prefetch_issued` this gives the arbiter the VM's prefetch
    /// accuracy over a window — speculation that isn't paying off is
    /// remote-read bandwidth the host can take back.
    pub prefetch_hits: u64,
}

impl VmSignals {
    /// Fraction of accesses served locally; `1.0` when idle (an idle VM
    /// should look cheap to the arbiter, not pathological).
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Faults per access (minor + major); `0.0` when idle.
    pub fn fault_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            (self.minor_faults + self.major_faults) as f64 / self.accesses as f64
        }
    }

    /// Major faults per access; `0.0` when idle. Major faults are the
    /// signal capacity can actually buy down, so this is what the
    /// fault-rate-proportional arbiter weighs.
    pub fn major_fault_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.major_faults as f64 / self.accesses as f64
        }
    }

    /// The delta of the monotone counters since `baseline`, carrying the
    /// instantaneous gauges (residency, capacity, pending writes) from
    /// `self`. This is the per-window view an arbiter rebalances on.
    pub fn window_since(&self, baseline: &VmSignals) -> VmSignals {
        VmSignals {
            accesses: self.accesses.saturating_sub(baseline.accesses),
            hits: self.hits.saturating_sub(baseline.hits),
            minor_faults: self.minor_faults.saturating_sub(baseline.minor_faults),
            major_faults: self.major_faults.saturating_sub(baseline.major_faults),
            remote_reads: self.remote_reads.saturating_sub(baseline.remote_reads),
            resident_pages: self.resident_pages,
            capacity_pages: self.capacity_pages,
            pending_writes: self.pending_writes,
            refaults_measured: self
                .refaults_measured
                .saturating_sub(baseline.refaults_measured),
            thrash_refaults: self
                .thrash_refaults
                .saturating_sub(baseline.thrash_refaults),
            wss_estimate_pages: self.wss_estimate_pages,
            background_reclaims: self
                .background_reclaims
                .saturating_sub(baseline.background_reclaims),
            direct_reclaims: self
                .direct_reclaims
                .saturating_sub(baseline.direct_reclaims),
            tier_hits: self.tier_hits.saturating_sub(baseline.tier_hits),
            tier_demotions: self.tier_demotions.saturating_sub(baseline.tier_demotions),
            tier_pool_bytes: self.tier_pool_bytes,
            prefetch_issued: self
                .prefetch_issued
                .saturating_sub(baseline.prefetch_issued),
            prefetch_hits: self.prefetch_hits.saturating_sub(baseline.prefetch_hits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_vm_looks_cheap() {
        let s = VmSignals::default();
        assert_eq!(s.hit_ratio(), 1.0);
        assert_eq!(s.fault_rate(), 0.0);
        assert_eq!(s.major_fault_rate(), 0.0);
    }

    #[test]
    fn ratios() {
        let s = VmSignals {
            accesses: 10,
            hits: 6,
            minor_faults: 1,
            major_faults: 3,
            remote_reads: 2,
            ..Default::default()
        };
        assert!((s.hit_ratio() - 0.6).abs() < 1e-12);
        assert!((s.fault_rate() - 0.4).abs() < 1e-12);
        assert!((s.major_fault_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn window_subtracts_counters_and_keeps_gauges() {
        let base = VmSignals {
            accesses: 100,
            hits: 80,
            minor_faults: 5,
            major_faults: 15,
            remote_reads: 12,
            resident_pages: 32,
            capacity_pages: 64,
            pending_writes: 3,
            refaults_measured: 8,
            thrash_refaults: 4,
            wss_estimate_pages: 70,
            background_reclaims: 40,
            direct_reclaims: 2,
            tier_hits: 5,
            tier_demotions: 2,
            tier_pool_bytes: 4096,
            prefetch_issued: 10,
            prefetch_hits: 4,
        };
        let now = VmSignals {
            accesses: 150,
            hits: 110,
            minor_faults: 10,
            major_faults: 30,
            remote_reads: 25,
            resident_pages: 48,
            capacity_pages: 64,
            pending_writes: 1,
            refaults_measured: 20,
            thrash_refaults: 13,
            wss_estimate_pages: 90,
            background_reclaims: 100,
            direct_reclaims: 3,
            tier_hits: 9,
            tier_demotions: 6,
            tier_pool_bytes: 8192,
            prefetch_issued: 25,
            prefetch_hits: 14,
        };
        let w = now.window_since(&base);
        assert_eq!(w.accesses, 50);
        assert_eq!(w.hits, 30);
        assert_eq!(w.major_faults, 15);
        assert_eq!(w.resident_pages, 48);
        assert_eq!(w.capacity_pages, 64);
        assert_eq!(w.pending_writes, 1);
        assert_eq!(w.refaults_measured, 12);
        assert_eq!(w.thrash_refaults, 9);
        assert_eq!(w.wss_estimate_pages, 90, "gauge carried, not subtracted");
        assert_eq!(w.background_reclaims, 60);
        assert_eq!(w.direct_reclaims, 1);
        assert_eq!(w.tier_hits, 4);
        assert_eq!(w.tier_demotions, 4);
        assert_eq!(w.tier_pool_bytes, 8192, "gauge carried, not subtracted");
        assert_eq!(w.prefetch_issued, 15);
        assert_eq!(w.prefetch_hits, 10);
    }
}
