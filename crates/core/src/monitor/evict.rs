//! The evictor and flusher stages: moving pages out of the local buffer
//! and onto the write list, and flushing the write list to the store.
//!
//! These run *during* read flights on the pipelined path (§V-B: the
//! eviction happens "at a time when the vCPU thread was already
//! suspended"), and inline on the call-return path.

use fluidmem_kv::KvError;
use fluidmem_mem::{PageTable, PhysicalMemory};
use fluidmem_sim::SimInstant;
use fluidmem_telemetry::consts;
use fluidmem_uffd::Userfaultfd;

use super::Monitor;
use crate::config::EvictionMechanism;
use crate::profile::CodePath;

impl Monitor {
    /// Evicts while the buffer is at/over capacity ("triggered ... when
    /// the number of pages reaches the configured maximum size and
    /// another page fault arrives").
    ///
    /// Runs *before* the faulted page is inserted, so it compares with
    /// `>=`: an at-capacity buffer makes room for the incoming page. The
    /// capacity is intentionally not clamped to 1 — a zero-page quota
    /// (capability-style revocation, §VI-E) must drain the buffer
    /// completely rather than pinning one resident page forever.
    pub(in crate::monitor) fn evict_while_full(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
    ) {
        // Background-first: give the watermark evictor a chance to have
        // made (or make) room, so the inline loop below is a fallback.
        self.maybe_background_reclaim(uffd, pt, pm);
        while self.lru.len() >= self.lru.capacity() {
            if !self.evict_one(uffd, pt, pm) {
                break;
            }
            if self.reclaim_active() {
                self.stats.direct_reclaims.inc();
            }
        }
    }

    /// Evicts until the buffer is back under capacity (post-resize or
    /// post-insert).
    pub fn evict_to_capacity(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
    ) {
        self.maybe_background_reclaim(uffd, pt, pm);
        while self.lru.over_capacity() {
            if !self.evict_one(uffd, pt, pm) {
                break;
            }
            if self.reclaim_active() {
                self.stats.direct_reclaims.inc();
            }
        }
    }

    /// Pops the eviction victim and performs the bookkeeping that must
    /// happen exactly once per eviction, shared by the inline and
    /// background evictors.
    pub(in crate::monitor) fn pop_victim_for_eviction(&mut self) -> Option<fluidmem_mem::Vpn> {
        let victim = self.lru.pop_victim()?;
        // Shadow entry at pop time, exactly once per eviction: the
        // store write may fail and retry (or the flushed batch may
        // be requeued), but the page leaves the LRU exactly here.
        self.workingset.record_eviction(victim);
        // A prefetched page evicted before the guest ever touched it was
        // a wasted remote read; the emptiness check keeps the policy-off
        // eviction path to a single branch.
        if !self.prefetch_pending_touch.is_empty()
            && self.prefetch_pending_touch.remove(&victim).is_some()
        {
            self.stats.prefetch_wasted.inc();
        }
        self.trace(|| format!("evicting {victim} from the top of the LRU via UFFD_REMAP"));
        Some(victim)
    }

    /// Evicts one page from the top of the LRU. Returns `false` if the
    /// buffer is empty.
    fn evict_one(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
    ) -> bool {
        let Some(victim) = self.pop_victim_for_eviction() else {
            return false;
        };
        let key = self.key(victim);

        let t0 = self.clock.now();
        let span = self
            .telemetry
            .begin_with(consts::TRACK_MONITOR, "UFFD_REMAP", || {
                vec![("vpn", format!("{victim}"))]
            });
        let (contents, handle) = uffd
            .remap(pt, pm, victim)
            .expect("LRU pages are mapped in the VM");
        if self.config.eviction == EvictionMechanism::Remap {
            // The cross-CPU TLB shootdown completes in the background.
            self.telemetry.record_span(
                consts::TRACK_KERNEL,
                "tlb.shootdown",
                t0,
                handle.completes_at(),
            );
        }
        let ready_at = match self.config.eviction {
            EvictionMechanism::Remap => handle.completes_at(),
            EvictionMechanism::Copy => {
                // Zero-copy ablation: UFFD_COPY-style eviction copies the
                // page out instead; no cross-CPU wait, but a 4 KB copy.
                let copy_cost = uffd.costs().copy.sample(&mut self.rng);
                self.clock.advance(copy_cost);
                self.clock.now()
            }
        };
        if !self.config.optimizations.async_write
            && self.config.eviction == EvictionMechanism::Remap
        {
            // Synchronous writes need the shootdown done before staging.
            uffd.wait_remap(handle);
        }
        self.telemetry.end(span);
        self.profile
            .record(CodePath::UffdRemap, self.clock.now() - t0);

        self.stats.evictions.inc();

        if self.config.optimizations.async_write {
            // The compressed tier gets first refusal; only bypassed pages
            // (tier off, thrash gate, incompressible) stage for writeback.
            if let Some(contents) = self.tier_try_admit(key, contents, None) {
                self.charge(&self.config.costs.write_list_push.clone());
                self.write_list.push(key, contents, ready_at);
                self.trace(|| format!("{} queued on the write list", key));
            }
        } else {
            self.charge(&self.config.costs.sync_write_staging.clone());
            let t0 = self.clock.now();
            self.put_with_retries(key, contents);
            self.profile
                .record(CodePath::WritePage, self.clock.now() - t0);
        }
        true
    }

    /// Flushes the write list when it is long enough or stale enough
    /// (§V-B: "a separate thread periodically flushes the write list ...
    /// when its size has reached a configured batch size of pages or a
    /// stale file descriptor has been found").
    pub fn maybe_flush(&mut self) {
        let now = self.clock.now();
        self.write_list.retire(now);
        let stale = self
            .write_list
            .oldest_pending()
            .is_some_and(|t| now.saturating_since(t) > self.config.flush_interval);
        if self.write_list.pending_len() >= self.config.write_batch_size || stale {
            self.flush_batch();
        }
        self.write_list_pending
            .set(self.write_list.pending_len() as i64);
    }

    fn flush_batch(&mut self) {
        let batch = self
            .write_list
            .take_batch(self.config.write_batch_size, self.clock.now());
        if batch.is_empty() {
            return;
        }
        let retained = batch.clone();
        match self.store.begin_multi_write(batch) {
            Ok(pending) => {
                let completes_at = pending.completes_at();
                // The flusher thread owns the bottom half; the critical
                // path only remembers the batch for stealing.
                self.write_list.mark_inflight(retained, completes_at);
                self.stats.flushes.inc();
                self.trace(|| "flusher: batch multi-written to the key-value store".to_string());
            }
            Err(e) if e.is_retryable() => {
                // The batch goes back on the write list (already past its
                // TLB shootdown, so immediately flushable again); the next
                // flush opportunity retries it. Page writes are
                // idempotent, so a timed-out-but-applied batch re-flushing
                // is harmless. No data is lost either way: the freshest
                // copy stays local and stealable — `requeue` skips any key
                // re-evicted with newer contents in the meantime rather
                // than clobbering it with the stale batch copy.
                self.stats.flush_failures.inc();
                self.trace(|| format!("flusher: multi-write failed ({e}); batch requeued"));
                let now = self.clock.now();
                self.write_list.requeue(retained, now);
            }
            Err(e) => panic!("store failure on flush: {e}"),
        }
    }

    /// Flushes and waits for every outstanding write (shutdown, or test
    /// synchronization).
    pub fn drain_writes(&mut self) {
        // A drain must leave every page durable in the store: demote the
        // whole compressed pool onto the write list first (charge-free —
        // shutdown work, not a fault or evictor timeline).
        while let Some((key, contents)) = self.tier.pop_oldest() {
            self.stats.tier_demotions.inc();
            self.write_list.push(key, contents, self.clock.now());
        }
        let policy = self.config.retry;
        loop {
            // Waiting for pending shootdowns makes everything flushable.
            if let Some(t) = self.write_list.oldest_pending() {
                self.clock.advance_to(t);
            }
            let batch = self.write_list.take_batch(usize::MAX, self.clock.now());
            if batch.is_empty() {
                break;
            }
            let mut tries = 0u32;
            let result: Result<(), KvError> = {
                let Monitor {
                    store,
                    clock,
                    rng,
                    stats,
                    tracer,
                    ..
                } = self;
                let clock = &*clock;
                fluidmem_kv::run_with_retries_from(
                    &policy,
                    clock,
                    rng,
                    0,
                    |_, e| {
                        tries += 1;
                        stats.write_retries.inc();
                        tracer.emit(clock.now(), "monitor", || {
                            format!("drain: multi-write failed ({e}); retrying")
                        });
                    },
                    |_| store.multi_write(batch.clone()),
                )
            };
            if let Err(e) = result {
                panic!("store failure on drain after {tries} retries: {e}");
            }
            self.stats.flushes.inc();
        }
        self.write_list.retire(SimInstant::from_nanos(u64::MAX));
        self.update_gauges();
    }
}
