//! The staged fault pipeline: explicit in-flight operations on a
//! deterministic event queue.
//!
//! The call-return path ([`Monitor::handle_fault`]) holds at most one
//! store operation outstanding. FluidMem's real monitor is multi-
//! threaded: several fault handlers block in store reads while the
//! evictor drains the write list. This module models that overlap
//! without threads. [`Monitor::submit_fault`] runs a fault's intake and
//! issue stages and, if the fault needs to wait on the store (or on an
//! in-flight write), parks it in the [`InflightTable`] keyed by its
//! completion instant; [`Monitor::complete_next`] pops the earliest
//! completion off the [`EventQueue`] and runs the placement, wake, and
//! post-wake stages.
//!
//! Determinism: the queue orders strictly by `(completes_at, seq)`, seq
//! being submission order, so the schedule is a pure function of the
//! seed — two runs with the same seed interleave identically. At
//! `max_inflight = 1` every fault completes before the next is
//! submitted, which makes the pipelined path byte-identical (same clock
//! charges, same RNG draws, same telemetry) to `handle_fault`.

use fluidmem_kv::PendingGet;
use fluidmem_mem::{PageContents, PageTable, PhysicalMemory, Vpn};
use fluidmem_sim::{EventQueue, SimInstant};
use fluidmem_telemetry::SpanId;
use fluidmem_uffd::Userfaultfd;

use super::stages::ReadFlight;
use super::{FaultIntake, FaultResolution, Monitor, Resolution};
use crate::write_list::StealOutcome;

/// Where a parked fault is in the pipeline.
enum FaultStage {
    /// The §V-B read top half is issued; the bottom half lands at the
    /// flight's completion instant.
    Fetch(ReadFlight),
    /// The page is in an in-flight write; the fault waits until `until`
    /// and then installs the buffered copy.
    WaitWrite {
        until: SimInstant,
        contents: PageContents,
    },
}

/// A speculative (prefetch) read in flight: no guest vCPU waits on it.
/// Completion installs the page and wakes nothing; a demand fault
/// arriving first adopts the flight and pays only the remaining flight
/// time. Speculative operations live in their own slab and are *not*
/// counted against [`MonitorConfig::max_inflight`](crate::MonitorConfig)
/// — the depth bounds faults holding vCPUs, and nothing blocks on these.
pub(in crate::monitor) struct PrefetchFlight {
    pub(in crate::monitor) vpn: Vpn,
    pub(in crate::monitor) pending: PendingGet,
}

/// A fault that attached to an already-in-flight operation on the same
/// page (a second vCPU touching the page mid-fetch). It shares the
/// operation's outcome and wake instant but keeps its own span and
/// admission time for latency accounting.
struct Waiter {
    t0: SimInstant,
    span: SpanId,
    write: bool,
}

/// One in-flight fault operation.
struct InflightFault {
    id: u64,
    vpn: Vpn,
    write: bool,
    submitted_at: SimInstant,
    span: SpanId,
    stage: FaultStage,
    waiters: Vec<Waiter>,
}

/// An entry on the completion queue: a fault operation finishing, or a
/// background-reclaim activation interleaved into the same total order.
enum QueueItem {
    /// A fault operation: its monotonically increasing id plus the slab
    /// slot it lives in, so completion is an O(1) indexed take (the id
    /// guards against a recycled slot).
    Fault {
        id: u64,
        slot: u32,
    },
    /// A speculative read completing: handled transparently (install,
    /// no wake) while the caller keeps waiting for a demand completion.
    /// Same id-guarded slab addressing as `Fault`, over the prefetch
    /// slab — an adopted flight leaves a stale entry behind.
    Prefetch {
        id: u64,
        slot: u32,
    },
    Reclaim,
}

/// The in-flight operation table: a slab of operation slots plus the
/// completion queue that orders them. Slots and waiter buffers are
/// recycled, so sustained fault traffic at any depth stops allocating
/// once the slab has grown to the peak in-flight depth.
pub(in crate::monitor) struct InflightTable {
    slots: Vec<Option<InflightFault>>,
    free: Vec<u32>,
    live: usize,
    queue: EventQueue<QueueItem>,
    next_id: u64,
    waiter_pool: Vec<Vec<Waiter>>,
    /// Speculative reads in flight, in their own recycled slab (entries
    /// are `(id, flight)`; the id guards against slot reuse exactly as
    /// in the demand slab).
    prefetch_slots: Vec<Option<(u64, PrefetchFlight)>>,
    prefetch_free: Vec<u32>,
    prefetch_live: usize,
}

impl InflightTable {
    pub(in crate::monitor) fn new() -> Self {
        InflightTable {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            queue: EventQueue::new(),
            next_id: 0,
            waiter_pool: Vec::new(),
            prefetch_slots: Vec::new(),
            prefetch_free: Vec::new(),
            prefetch_live: 0,
        }
    }

    /// Live (parked) operations.
    pub(in crate::monitor) fn len(&self) -> usize {
        self.live
    }

    /// Operation slots allocated in the slab (live + pooled): the
    /// table's standing footprint, which plateaus at peak depth.
    #[cfg(test)]
    pub(in crate::monitor) fn pool_slots(&self) -> usize {
        self.slots.len()
    }

    fn park(
        &mut self,
        vpn: Vpn,
        write: bool,
        intake: FaultIntake,
        stage: FaultStage,
        completes_at: SimInstant,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let op = InflightFault {
            id,
            vpn,
            write,
            submitted_at: intake.t0,
            span: intake.span,
            stage,
            waiters: self.waiter_pool.pop().unwrap_or_default(),
        };
        let slot = match self.free.pop() {
            Some(i) => {
                debug_assert!(self.slots[i as usize].is_none());
                self.slots[i as usize] = Some(op);
                i
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(Some(op));
                i
            }
        };
        self.live += 1;
        self.queue.push(completes_at, QueueItem::Fault { id, slot });
        id
    }

    /// Enqueues a background-reclaim activation at `at`; it runs inside
    /// the next [`Monitor::complete_next`] that reaches it.
    pub(in crate::monitor) fn schedule_reclaim(&mut self, at: SimInstant) {
        self.queue.push(at, QueueItem::Reclaim);
    }

    fn by_vpn_mut(&mut self, vpn: Vpn) -> Option<&mut InflightFault> {
        // Slot order differs from submission order, but coalescing keeps
        // at most one live operation per page, so the match is unique.
        self.slots
            .iter_mut()
            .filter_map(Option::as_mut)
            .find(|op| op.vpn == vpn)
    }

    fn take(&mut self, id: u64, slot: u32) -> Option<InflightFault> {
        match self.slots.get_mut(slot as usize) {
            Some(entry @ Some(_)) if entry.as_ref().is_some_and(|op| op.id == id) => {
                let op = entry.take();
                self.free.push(slot);
                self.live -= 1;
                op
            }
            _ => None,
        }
    }

    /// Returns a drained waiter buffer to the pool for the next park.
    fn recycle_waiters(&mut self, mut waiters: Vec<Waiter>) {
        waiters.clear();
        self.waiter_pool.push(waiters);
    }

    /// Parks a speculative read; it completes transparently inside a
    /// later [`Monitor::complete_next`] (or is adopted by a demand fault
    /// first).
    pub(in crate::monitor) fn park_prefetch(&mut self, flight: PrefetchFlight) {
        let completes_at = flight.pending.completes_at();
        let id = self.next_id;
        self.next_id += 1;
        let slot = match self.prefetch_free.pop() {
            Some(i) => {
                debug_assert!(self.prefetch_slots[i as usize].is_none());
                self.prefetch_slots[i as usize] = Some((id, flight));
                i
            }
            None => {
                let i = self.prefetch_slots.len() as u32;
                self.prefetch_slots.push(Some((id, flight)));
                i
            }
        };
        self.prefetch_live += 1;
        self.queue
            .push(completes_at, QueueItem::Prefetch { id, slot });
    }

    /// Takes a queued speculative read; `None` if a demand fault already
    /// adopted it (the queue entry went stale).
    fn take_prefetch(&mut self, id: u64, slot: u32) -> Option<PrefetchFlight> {
        match self.prefetch_slots.get_mut(slot as usize) {
            Some(entry @ Some(_)) if entry.as_ref().is_some_and(|(i, _)| *i == id) => {
                let (_, flight) = entry.take()?;
                self.prefetch_free.push(slot);
                self.prefetch_live -= 1;
                Some(flight)
            }
            _ => None,
        }
    }

    /// Removes and returns the in-flight speculative read for `vpn`, if
    /// any — a demand fault adopting the flight. The flight's queue
    /// entry stays behind and is skipped later by its id guard.
    fn absorb_prefetch(&mut self, vpn: Vpn) -> Option<PrefetchFlight> {
        let slot = self
            .prefetch_slots
            .iter()
            .position(|e| e.as_ref().is_some_and(|(_, f)| f.vpn == vpn))?;
        let (_, flight) = self.prefetch_slots[slot].take()?;
        self.prefetch_free.push(slot as u32);
        self.prefetch_live -= 1;
        Some(flight)
    }

    /// Speculative reads currently in flight.
    pub(in crate::monitor) fn prefetch_len(&self) -> usize {
        self.prefetch_live
    }

    /// Whether any live operation — demand or speculative — already owns
    /// `vpn`. The prefetch candidate filter uses this to never issue a
    /// read that would race a pending install.
    pub(in crate::monitor) fn tracks(&self, vpn: Vpn) -> bool {
        self.slots
            .iter()
            .filter_map(Option::as_ref)
            .any(|op| op.vpn == vpn)
            || self
                .prefetch_slots
                .iter()
                .filter_map(Option::as_ref)
                .any(|(_, f)| f.vpn == vpn)
    }
}

/// What [`Monitor::submit_fault`] did with the fault.
#[derive(Debug, Clone, Copy)]
pub enum SubmitOutcome {
    /// The fault resolved inline (first touch, write-list steal) without
    /// parking; the guest is already woken.
    Completed(FaultResolution),
    /// The fault parked in the in-flight table with this operation id;
    /// a later [`Monitor::complete_next`] finishes it.
    Parked(u64),
    /// The fault attached as a waiter to the already-in-flight operation
    /// with this id (same page, fetch still pending).
    Coalesced(u64),
}

/// A fault operation finished by [`Monitor::complete_next`].
#[derive(Debug, Clone, Copy)]
pub struct CompletedFault {
    /// The operation id [`SubmitOutcome::Parked`] returned.
    pub id: u64,
    /// The faulted page.
    pub vpn: Vpn,
    /// How the fault was resolved.
    pub resolution: Resolution,
    /// When the fault was submitted.
    pub submitted_at: SimInstant,
    /// When the guest vCPU was woken.
    pub wake_at: SimInstant,
    /// How many coalesced waiters shared this operation.
    pub waiters: u32,
}

impl Monitor {
    /// Submits one page fault to the staged pipeline. Inline-resolvable
    /// faults (first touch, write-list steal) complete before returning;
    /// faults that must wait on the store or on an in-flight write park
    /// in the in-flight table and are finished by
    /// [`Monitor::complete_next`] in completion order.
    ///
    /// # Panics
    ///
    /// Panics if the in-flight table is already at
    /// [`MonitorConfig::max_inflight`](crate::MonitorConfig::max_inflight)
    /// — drain with [`Monitor::complete_next`] first.
    pub fn submit_fault(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        vpn: Vpn,
        write: bool,
    ) -> SubmitOutcome {
        let depth = self.config.max_inflight.max(1);
        assert!(
            self.inflight.len() < depth,
            "submit_fault: in-flight table full (depth {depth}); call complete_next first"
        );
        let intake = self.fault_intake(pt, vpn, write);

        // A second vCPU faulting on a page whose fetch is already in
        // flight coalesces onto the pending operation instead of issuing
        // a duplicate read.
        if let Some(op) = self.inflight.by_vpn_mut(vpn) {
            let id = op.id;
            op.waiters.push(Waiter {
                t0: intake.t0,
                span: intake.span,
                write,
            });
            self.stats.coalesced_faults.inc();
            self.trace(|| format!("fault on {vpn} coalesced onto in-flight op {id}"));
            return SubmitOutcome::Coalesced(id);
        }

        if !intake.seen {
            self.trace(|| format!("pagetracker: {vpn} unseen -> zero-page path"));
            let res = self.handle_first_touch(uffd, pt, pm, vpn);
            self.finalize_fault(intake.span, intake.t0, res.resolution, res.wake_at);
            return SubmitOutcome::Completed(res);
        }
        self.trace(|| format!("pagetracker: {vpn} seen before -> read path"));
        // A refault, and not a coalesced one (those returned above):
        // measure it against the shadow table exactly once.
        self.note_refault(vpn);
        let key = self.key(vpn);
        match self.stage_steal_check(key) {
            StealOutcome::Stolen(contents) => {
                self.stats.write_list_steals.inc();
                // Make room (the page is coming back in).
                self.evict_while_full(uffd, pt, pm);
                let wake_at = self.stage_place_and_wake(uffd, pt, pm, vpn, write, contents);
                self.stage_post_wake(uffd, pt, pm, vpn);
                let res = FaultResolution {
                    resolution: Resolution::WriteListSteal,
                    wake_at,
                };
                self.finalize_fault(intake.span, intake.t0, res.resolution, res.wake_at);
                SubmitOutcome::Completed(res)
            }
            StealOutcome::WaitInflight { until, contents } => {
                let id = self.inflight.park(
                    vpn,
                    write,
                    intake,
                    FaultStage::WaitWrite { until, contents },
                    until,
                );
                SubmitOutcome::Parked(id)
            }
            StealOutcome::Miss => {
                // A compressed-tier hit resolves inline, like a steal:
                // the decompress is CPU work, there is no flight to park.
                if let Some(contents) = self.tier_try_promote(key) {
                    // Make room (the page is coming back in).
                    self.evict_while_full(uffd, pt, pm);
                    let wake_at = self.stage_place_and_wake(uffd, pt, pm, vpn, write, contents);
                    self.stage_post_wake(uffd, pt, pm, vpn);
                    let res = FaultResolution {
                        resolution: Resolution::CompressedHit,
                        wake_at,
                    };
                    self.finalize_fault(intake.span, intake.t0, res.resolution, res.wake_at);
                    return SubmitOutcome::Completed(res);
                }
                // A demand fault for a page whose speculative read is
                // still in flight adopts the pending read instead of
                // issuing a duplicate: the guest pays only the flight's
                // remaining time (a prefetch hit resolved early).
                if let Some(pf) = self.inflight.absorb_prefetch(vpn) {
                    let flight = self.stage_adopt_prefetch(uffd, pt, pm, key, pf);
                    let completes_at = flight.completes_at();
                    let id = self.inflight.park(
                        vpn,
                        write,
                        intake,
                        FaultStage::Fetch(flight),
                        completes_at,
                    );
                    return SubmitOutcome::Parked(id);
                }
                let flight = self.stage_issue_read(uffd, pt, pm, key);
                let completes_at = flight.completes_at();
                let id =
                    self.inflight
                        .park(vpn, write, intake, FaultStage::Fetch(flight), completes_at);
                SubmitOutcome::Parked(id)
            }
        }
    }

    /// Finishes the in-flight operation with the earliest completion
    /// instant: runs the read bottom half (or the write wait), installs
    /// the page, wakes the faulting vCPU and every coalesced waiter, and
    /// runs the post-wake stage. Returns `None` when nothing is in
    /// flight.
    pub fn complete_next(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
    ) -> Option<CompletedFault> {
        let (id, slot) = loop {
            let (_, item) = self.inflight.queue.pop_next()?;
            match item {
                // Reclaim activations ride the same queue so the evictor
                // runs in deterministic event order, transparently to
                // the caller waiting on a fault completion.
                QueueItem::Reclaim => self.run_scheduled_reclaim(uffd, pt, pm),
                // Speculative completions are transparent: install (or
                // discard) and keep looking for a demand completion. A
                // stale entry — the flight was adopted — takes nothing.
                QueueItem::Prefetch { id, slot } => {
                    if let Some(flight) = self.inflight.take_prefetch(id, slot) {
                        self.complete_prefetch(uffd, pt, pm, flight);
                    }
                }
                QueueItem::Fault { id, slot } => break (id, slot),
            }
        };
        let op = self
            .inflight
            .take(id, slot)
            .expect("queued operation is live");
        let InflightFault {
            id,
            vpn,
            write,
            submitted_at,
            span,
            stage,
            waiters,
        } = op;

        let (contents, resolution) = match stage {
            FaultStage::WaitWrite { until, contents } => {
                self.stage_wait_write(uffd, pt, pm, until);
                (contents, Resolution::InflightWait)
            }
            FaultStage::Fetch(flight) => {
                let contents = self.stage_complete_read(flight);
                self.stats.remote_reads.inc();
                (contents, Resolution::RemoteRead)
            }
        };

        let effective_write = write || waiters.iter().any(|w| w.write);
        let wake_at = self.stage_place_and_wake(uffd, pt, pm, vpn, effective_write, contents);
        // One UFFDIO_WAKE per coalesced waiter's vCPU.
        for _ in &waiters {
            uffd.wake_page(vpn);
        }
        self.stage_post_wake(uffd, pt, pm, vpn);

        self.finalize_fault(span, submitted_at, resolution, wake_at);
        for w in &waiters {
            self.finalize_fault(w.span, w.t0, resolution, wake_at);
        }
        let n_waiters = waiters.len() as u32;
        self.inflight.recycle_waiters(waiters);
        Some(CompletedFault {
            id,
            vpn,
            resolution,
            submitted_at,
            wake_at,
            waiters: n_waiters,
        })
    }

    /// Runs the bottom halves that are already ripe at the monitor's
    /// current instant without waiting on anything still in flight: due
    /// speculative reads install (or are discarded) and due reclaim
    /// activations run, while the earliest demand-fault completion — a
    /// blocked vCPU's wake — is left for [`Monitor::complete_next`].
    ///
    /// This is the monitor thread's polling loop between fault
    /// arrivals. Without it a driver that only calls `complete_next`
    /// when a fault parks leaves landed prefetches sitting in the queue
    /// — the guest refaults on pages whose bytes already arrived, and
    /// every speculative read degrades into an adopted flight instead
    /// of a mapped-page hit. Never advances the clock.
    pub fn poll_ready(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
    ) {
        loop {
            let now = self.clock.now();
            match self.inflight.queue.peek() {
                Some((at, item)) if at <= now && !matches!(item, QueueItem::Fault { .. }) => {}
                _ => return,
            }
            let (_, item) = self.inflight.queue.pop_next().expect("peeked a live event");
            match item {
                QueueItem::Reclaim => self.run_scheduled_reclaim(uffd, pt, pm),
                QueueItem::Prefetch { id, slot } => {
                    if let Some(flight) = self.inflight.take_prefetch(id, slot) {
                        self.complete_prefetch(uffd, pt, pm, flight);
                    }
                }
                QueueItem::Fault { .. } => unreachable!("fault completions are not polled"),
            }
        }
    }

    /// Finishes every in-flight operation, in completion order.
    pub fn drain_inflight(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
    ) -> Vec<CompletedFault> {
        let mut done = Vec::new();
        while let Some(c) = self.complete_next(uffd, pt, pm) {
            done.push(c);
        }
        done
    }

    /// Faults currently parked in the in-flight table.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Speculative (prefetch) reads currently in flight. Not counted by
    /// [`Monitor::inflight_len`]: the depth bound applies to faults
    /// holding vCPUs, and nothing blocks on these. They finish inside
    /// [`Monitor::complete_next`] / [`Monitor::drain_inflight`] calls.
    pub fn inflight_prefetch_len(&self) -> usize {
        self.inflight.prefetch_len()
    }

    /// The virtual instant the next in-flight operation completes.
    pub fn next_completion_at(&self) -> Option<SimInstant> {
        self.inflight.queue.peek_time()
    }
}
