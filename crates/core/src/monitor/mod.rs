//! The monitor process: FluidMem's user-space page-fault handler.
//!
//! The monitor is decomposed into pipeline stages, mirroring the paper's
//! thread split (fault handlers, the evictor draining the write list,
//! and the §V-B asynchronous read whose store round trip overlaps
//! `UFFD_REMAP`/bookkeeping):
//!
//! * `stages` — fault intake, first-touch and refault resolution, the
//!   split top/bottom-half read, and prefetch.
//! * `evict` — the evictor: `UFFD_REMAP` eviction, write-list flushes,
//!   and the shutdown drain.
//! * `pipeline` — the staged entry points
//!   ([`Monitor::submit_fault`] / [`Monitor::complete_next`]) that hold
//!   up to [`MonitorConfig::max_inflight`] faults in flight on a
//!   deterministic [`EventQueue`](fluidmem_sim::EventQueue).
//!
//! [`Monitor::handle_fault`] remains the call-return path: intake,
//! resolution, and wake in one call, with at most one store operation
//! outstanding. It is byte-identical to a pipelined run at
//! `max_inflight = 1` because both are built from the same stage
//! functions, invoked in the same order.

mod evict;
mod pipeline;
mod reclaim;
mod stages;
#[cfg(test)]
mod tests;

pub use pipeline::{CompletedFault, SubmitOutcome};

use fluidmem_coord::PartitionId;
use fluidmem_kv::{ExternalKey, KeyValueStore, PendingGet};
use fluidmem_mem::{PageTable, PhysicalMemory, Region, Vpn};
use fluidmem_sim::{SimClock, SimInstant, SimRng, Tracer};
use fluidmem_uffd::Userfaultfd;

use crate::config::{MonitorConfig, PrefetchPolicy};
use crate::lru_buffer::LruBuffer;
use crate::page_tracker::PageTracker;
use crate::prefetch::StrideDetector;
use crate::profile::ProfileTable;
use crate::stats::{MonitorCounters, MonitorStats};
use crate::tier::{CompressedTier, TierAudit};
use crate::workingset::WorkingSetEstimator;
use crate::write_list::WriteList;
use fluidmem_telemetry::{consts, Gauge, Histogram, SpanId, Telemetry};

use pipeline::InflightTable;

/// How a fault was resolved by the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// First access: `UFFD_ZEROPAGE`, no remote read (Figure 2).
    ZeroFill,
    /// Page read back from the key-value store.
    RemoteRead,
    /// Page stolen from the pending write list (§V-B).
    WriteListSteal,
    /// Page was in an in-flight write; the fault waited for the write to
    /// complete and then used the buffered copy (§V-B).
    InflightWait,
    /// Page promoted from the compressed local tier: resolved for the
    /// cost of a decompress, no network round trip.
    CompressedHit,
}

impl Resolution {
    /// The `resolution` label value this kind is exported under.
    pub fn label(self) -> &'static str {
        match self {
            Resolution::ZeroFill => "zero_fill",
            Resolution::RemoteRead => "remote_read",
            Resolution::WriteListSteal => "write_list_steal",
            Resolution::InflightWait => "inflight_wait",
            Resolution::CompressedHit => "compressed_hit",
        }
    }

    /// Every resolution kind, in label order.
    pub const ALL: [Resolution; 5] = [
        Resolution::ZeroFill,
        Resolution::RemoteRead,
        Resolution::WriteListSteal,
        Resolution::InflightWait,
        Resolution::CompressedHit,
    ];

    fn index(self) -> usize {
        match self {
            Resolution::ZeroFill => 0,
            Resolution::RemoteRead => 1,
            Resolution::WriteListSteal => 2,
            Resolution::InflightWait => 3,
            Resolution::CompressedHit => 4,
        }
    }
}

/// The outcome of [`Monitor::handle_fault`].
#[derive(Debug, Clone, Copy)]
pub struct FaultResolution {
    /// How the fault was resolved.
    pub resolution: Resolution,
    /// The instant the guest vCPU was woken. Work the monitor performs
    /// after this (asynchronous eviction, flushes) advances the clock but
    /// does not extend the guest-observed fault latency.
    pub wake_at: SimInstant,
}

/// The result of the fault-intake stage: the admission timestamp, the
/// open fault span, and whether the page has been seen before.
pub(in crate::monitor) struct FaultIntake {
    pub(in crate::monitor) t0: SimInstant,
    pub(in crate::monitor) span: SpanId,
    pub(in crate::monitor) seen: bool,
}

/// FluidMem's monitor process (paper §V).
///
/// "Its primary responsibility is to watch for page faults and resolve
/// them before waking up the faulting process." The monitor owns the
/// page tracker, the resizable LRU buffer, the write list, and the
/// key-value store client; the kernel-side objects (userfaultfd, page
/// table, physical memory) are passed in per call because they belong to
/// the hypervisor.
///
/// See [`FluidMemMemory`](crate::FluidMemMemory) for the packaged
/// `MemoryBackend`, which is the usual way to drive a monitor.
pub struct Monitor {
    pub(in crate::monitor) config: MonitorConfig,
    pub(in crate::monitor) tracker: PageTracker,
    pub(in crate::monitor) lru: LruBuffer,
    pub(in crate::monitor) write_list: WriteList,
    pub(in crate::monitor) store: Box<dyn KeyValueStore>,
    partition: PartitionId,
    /// Per-region partition overrides (multi-VM hosting): region start →
    /// (region, partition).
    region_partitions: std::collections::BTreeMap<u64, (Region, PartitionId)>,
    /// In-flight operation table for the pipelined entry points.
    pub(in crate::monitor) inflight: InflightTable,
    /// Background-evictor thread state (watermark reclaim).
    pub(in crate::monitor) reclaim: reclaim::ReclaimState,
    pub(in crate::monitor) profile: ProfileTable,
    pub(in crate::monitor) stats: MonitorCounters,
    pub(in crate::monitor) telemetry: Telemetry,
    /// Shadow-entry refault-distance tracking (working-set estimation).
    pub(in crate::monitor) workingset: WorkingSetEstimator,
    /// The compressed local tier between the LRU and the remote store.
    pub(in crate::monitor) tier: CompressedTier,
    /// Guest-observed fault latency, one histogram per [`Resolution`].
    pub(in crate::monitor) fault_latency: [Histogram; 5],
    /// Refault distances in eviction counts (recorded unit-less).
    pub(in crate::monitor) refault_distance: Histogram,
    /// The current working-set-size estimate.
    wss_estimate: Gauge,
    lru_resident: Gauge,
    lru_capacity: Gauge,
    lru_headroom: Gauge,
    /// Compressed bytes currently charged to the tier pool.
    tier_pool_bytes: Gauge,
    /// Live entries in the tier pool.
    tier_pool_pages: Gauge,
    pub(in crate::monitor) write_list_pending: Gauge,
    /// Per-structure occupancy: slab nodes allocated by the LRU buffer.
    lru_slab_nodes: Gauge,
    /// Per-structure occupancy: bitmap chunks held by the page tracker.
    tracker_chunks: Gauge,
    /// Per-structure occupancy: operations parked in the in-flight table.
    inflight_parked_ops: Gauge,
    /// Pooled buffer for the `ScanReferenced` head scan.
    pub(in crate::monitor) scan_buf: Vec<Vpn>,
    /// Pooled buffer for prefetch flights issued in one batch.
    pub(in crate::monitor) prefetch_buf: Vec<(Vpn, PendingGet)>,
    /// Pooled buffer for prefetch candidate pages per fault.
    pub(in crate::monitor) prefetch_candidates: Vec<Vpn>,
    /// Majority-vote stride detector over the fault VPN stream — the
    /// trend source for [`PrefetchPolicy::Stride`]. Only fed while that
    /// policy is configured.
    pub(in crate::monitor) stride: StrideDetector,
    /// Prefetched pages installed but not yet touched by the guest,
    /// mapped to their issue instant: the accuracy panel's ledger. A
    /// first guest touch resolves to a hit (and a timeliness sample); an
    /// eviction or region removal first resolves to a waste.
    pub(in crate::monitor) prefetch_pending_touch: std::collections::BTreeMap<Vpn, SimInstant>,
    /// Issue→first-touch distance of prefetched pages that were used.
    pub(in crate::monitor) prefetch_timeliness: Histogram,
    pub(in crate::monitor) tracer: Tracer,
    pub(in crate::monitor) clock: SimClock,
    pub(in crate::monitor) rng: SimRng,
}

impl Monitor {
    /// Creates a monitor over a key-value store, using `partition` for
    /// this VM's keys.
    pub fn new(
        config: MonitorConfig,
        store: Box<dyn KeyValueStore>,
        partition: PartitionId,
        clock: SimClock,
        rng: SimRng,
    ) -> Self {
        let lru = LruBuffer::new(config.lru_capacity);
        let telemetry = Telemetry::new(clock.clone());
        let workingset = WorkingSetEstimator::new(config.workingset);
        let stride = match config.prefetch {
            PrefetchPolicy::Stride { window, .. } => StrideDetector::new(window),
            _ => StrideDetector::new(16),
        };
        let monitor = Monitor {
            config,
            tracker: PageTracker::new(),
            lru,
            write_list: WriteList::new(),
            store,
            partition,
            region_partitions: std::collections::BTreeMap::new(),
            inflight: InflightTable::new(),
            reclaim: reclaim::ReclaimState::new(),
            profile: ProfileTable::new(),
            stats: MonitorCounters::new(),
            telemetry,
            workingset,
            tier: CompressedTier::new(),
            fault_latency: Default::default(),
            refault_distance: Histogram::new(),
            wss_estimate: Gauge::new(),
            lru_resident: Gauge::new(),
            lru_capacity: Gauge::new(),
            lru_headroom: Gauge::new(),
            tier_pool_bytes: Gauge::new(),
            tier_pool_pages: Gauge::new(),
            write_list_pending: Gauge::new(),
            lru_slab_nodes: Gauge::new(),
            tracker_chunks: Gauge::new(),
            inflight_parked_ops: Gauge::new(),
            scan_buf: Vec::new(),
            prefetch_buf: Vec::new(),
            prefetch_candidates: Vec::new(),
            stride,
            prefetch_pending_touch: std::collections::BTreeMap::new(),
            prefetch_timeliness: Histogram::new(),
            tracer: Tracer::disabled(),
            clock,
            rng,
        };
        monitor.update_gauges();
        monitor
    }

    /// Swaps in a shared telemetry handle and registers every live
    /// instrument in its registry: the monitor's event counters, the
    /// Table I code-path profile, the fault-latency histograms, the LRU
    /// and write-list gauges, and the store's own counters. Accumulated
    /// values carry over.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        let telemetry = telemetry.clone();
        {
            let registry = telemetry.registry();
            self.stats.register(registry);
            self.profile.register(registry);
            self.store.instrument(registry);
            registry.adopt_gauge(consts::LRU_RESIDENT_PAGES, &[], &self.lru_resident);
            registry.adopt_gauge(consts::LRU_CAPACITY_PAGES, &[], &self.lru_capacity);
            registry.adopt_gauge(consts::LRU_HEADROOM_PAGES, &[], &self.lru_headroom);
            registry.adopt_gauge(consts::TIER_POOL_BYTES, &[], &self.tier_pool_bytes);
            registry.adopt_gauge(consts::TIER_POOL_PAGES, &[], &self.tier_pool_pages);
            registry.adopt_gauge(consts::WRITE_LIST_PENDING, &[], &self.write_list_pending);
            registry.adopt_gauge(consts::LRU_SLAB_NODES, &[], &self.lru_slab_nodes);
            registry.adopt_gauge(consts::TRACKER_CHUNKS, &[], &self.tracker_chunks);
            registry.adopt_gauge(consts::INFLIGHT_PARKED_OPS, &[], &self.inflight_parked_ops);
            registry.adopt_gauge(consts::WSS_ESTIMATE_PAGES, &[], &self.wss_estimate);
            registry.adopt_histogram(consts::REFAULT_DISTANCE_PAGES, &[], &self.refault_distance);
            // The prefetch accuracy panel: dedicated names aliasing the
            // same counter handles the event-labeled export already
            // carries, plus the issue→first-touch timeliness histogram.
            registry.adopt_counter(consts::PREFETCH_ISSUED, &[], &self.stats.prefetch_issued);
            registry.adopt_counter(consts::PREFETCH_HITS, &[], &self.stats.prefetch_hits);
            registry.adopt_counter(consts::PREFETCH_WASTED, &[], &self.stats.prefetch_wasted);
            registry.adopt_histogram(
                consts::PREFETCH_TIMELINESS_US,
                &[],
                &self.prefetch_timeliness,
            );
            for r in Resolution::ALL {
                registry.adopt_histogram(
                    consts::FAULT_LATENCY_US,
                    &[(consts::LABEL_RESOLUTION, r.label())],
                    &self.fault_latency[r.index()],
                );
            }
        }
        self.telemetry = telemetry;
        self.update_gauges();
    }

    /// Like [`Monitor::attach_telemetry`], but every monitor-owned
    /// instrument is additionally keyed by a `vm` label so N monitors can
    /// share one registry (multi-VM hosting) without clobbering each
    /// other — adoption replaces identically-keyed entries, so unlabeled
    /// registration from several monitors would leave only the last one
    /// visible.
    ///
    /// The Table I code-path profile is *not* registered here: its rows
    /// are monitor-global by construction and only meaningful when a
    /// single monitor owns the registry.
    pub fn attach_telemetry_labeled(&mut self, telemetry: &Telemetry, vm: &str) {
        let telemetry = telemetry.clone();
        {
            let registry = telemetry.registry();
            self.stats.register_labeled(registry, vm);
            self.store.instrument(registry);
            let vm_label = [(consts::LABEL_VM, vm)];
            registry.adopt_gauge(consts::LRU_RESIDENT_PAGES, &vm_label, &self.lru_resident);
            registry.adopt_gauge(consts::LRU_CAPACITY_PAGES, &vm_label, &self.lru_capacity);
            registry.adopt_gauge(consts::LRU_HEADROOM_PAGES, &vm_label, &self.lru_headroom);
            registry.adopt_gauge(consts::TIER_POOL_BYTES, &vm_label, &self.tier_pool_bytes);
            registry.adopt_gauge(consts::TIER_POOL_PAGES, &vm_label, &self.tier_pool_pages);
            registry.adopt_gauge(
                consts::WRITE_LIST_PENDING,
                &vm_label,
                &self.write_list_pending,
            );
            registry.adopt_gauge(consts::LRU_SLAB_NODES, &vm_label, &self.lru_slab_nodes);
            registry.adopt_gauge(consts::TRACKER_CHUNKS, &vm_label, &self.tracker_chunks);
            registry.adopt_gauge(
                consts::INFLIGHT_PARKED_OPS,
                &vm_label,
                &self.inflight_parked_ops,
            );
            registry.adopt_gauge(consts::WSS_ESTIMATE_PAGES, &vm_label, &self.wss_estimate);
            registry.adopt_histogram(
                consts::REFAULT_DISTANCE_PAGES,
                &vm_label,
                &self.refault_distance,
            );
            registry.adopt_counter(
                consts::PREFETCH_ISSUED,
                &vm_label,
                &self.stats.prefetch_issued,
            );
            registry.adopt_counter(consts::PREFETCH_HITS, &vm_label, &self.stats.prefetch_hits);
            registry.adopt_counter(
                consts::PREFETCH_WASTED,
                &vm_label,
                &self.stats.prefetch_wasted,
            );
            registry.adopt_histogram(
                consts::PREFETCH_TIMELINESS_US,
                &vm_label,
                &self.prefetch_timeliness,
            );
            for r in Resolution::ALL {
                registry.adopt_histogram(
                    consts::FAULT_LATENCY_US,
                    &[
                        (consts::LABEL_RESOLUTION, r.label()),
                        (consts::LABEL_VM, vm),
                    ],
                    &self.fault_latency[r.index()],
                );
            }
        }
        self.telemetry = telemetry;
        self.update_gauges();
    }

    /// The telemetry handle spans and metrics flow through.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    pub(in crate::monitor) fn update_gauges(&self) {
        self.lru_resident.set(self.lru.len() as i64);
        self.lru_capacity.set(self.lru.capacity() as i64);
        self.lru_headroom.set(self.headroom() as i64);
        self.tier_pool_bytes.set(self.tier.bytes() as i64);
        self.tier_pool_pages.set(self.tier.len() as i64);
        self.write_list_pending
            .set(self.write_list.pending_len() as i64);
        self.lru_slab_nodes.set(self.lru.slab_nodes() as i64);
        self.tracker_chunks.set(self.tracker.chunk_count() as i64);
        self.inflight_parked_ops.set(self.inflight.len() as i64);
    }

    /// Turns on event tracing (for the Figure 2 timeline and debugging).
    pub fn enable_tracing(&mut self) {
        self.tracer = Tracer::enabled();
    }

    /// The recorded trace events.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    pub(in crate::monitor) fn trace(&mut self, message: impl FnOnce() -> String) {
        let now = self.clock.now();
        self.tracer.emit(now, "monitor", message);
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// A snapshot of the monitor's counters.
    pub fn stats(&self) -> MonitorStats {
        self.stats.snapshot()
    }

    /// Per-code-path profile (Table I).
    pub fn profile(&self) -> &ProfileTable {
        &self.profile
    }

    /// Clears the profile (e.g. after warm-up).
    pub fn clear_profile(&mut self) {
        self.profile.clear();
    }

    /// The working-set estimator (shadow entries, refault distances).
    pub fn workingset(&self) -> &WorkingSetEstimator {
        &self.workingset
    }

    /// The current working-set-size estimate, in pages.
    pub fn wss_estimate_pages(&self) -> u64 {
        self.workingset.wss_estimate()
    }

    /// Whether `vpn` is currently resident in the LRU buffer.
    pub fn is_resident(&self, vpn: Vpn) -> bool {
        self.lru.contains(vpn)
    }

    /// Shadow-entry bookkeeping on the refault path. Pure bookkeeping —
    /// no clock advance, no RNG draw — so the default passive mode
    /// leaves the monitor's observable behavior bit-for-bit unchanged.
    pub(in crate::monitor) fn note_refault(&mut self, vpn: Vpn) {
        let resident = self.lru.len();
        if let Some(r) = self.workingset.note_refault(vpn, resident) {
            self.stats.refaults_measured.inc();
            if r.thrash {
                self.stats.thrash_refaults.inc();
            }
            self.refault_distance.observe_value(r.distance);
            self.wss_estimate.set(self.workingset.wss_estimate() as i64);
        }
    }

    /// The stride the prefetch detector currently believes the fault
    /// stream is following, in pages per fault (`None` while the stream
    /// looks random, or when [`PrefetchPolicy::Stride`] is not
    /// configured).
    pub fn prefetch_trend(&self) -> Option<i64> {
        self.stride.trend()
    }

    /// Notes a mapped (non-faulting) guest access: the first touch of a
    /// prefetched page resolves its accuracy-ledger entry to a hit and
    /// records the issue→touch timeliness. Pure bookkeeping on a map
    /// that is empty unless prefetch has installed pages, so the hot hit
    /// path pays one branch.
    pub fn note_mapped_touch(&mut self, vpn: Vpn) {
        if self.prefetch_pending_touch.is_empty() {
            return;
        }
        if let Some(issued_at) = self.prefetch_pending_touch.remove(&vpn) {
            self.stats.prefetch_hits.inc();
            self.prefetch_timeliness
                .observe(self.clock.now().saturating_since(issued_at));
        }
    }

    /// Applies a pending adaptive-capacity decision; a no-op in passive
    /// mode. The caller's following `evict_to_capacity` performs any
    /// shrink this sets up.
    pub(in crate::monitor) fn maybe_adapt(&mut self) {
        let Some(target) = self
            .workingset
            .take_adaptive_target(self.lru.len(), self.lru.capacity())
        else {
            return;
        };
        let from = self.lru.capacity();
        let wss = self.workingset.wss_estimate();
        if target > from {
            self.stats.adaptive_grows.inc();
        } else {
            self.stats.adaptive_shrinks.inc();
        }
        self.trace(|| format!("workingset: adaptive capacity {from} -> {target} (wss {wss})"));
        self.lru.set_capacity(target);
    }

    /// Pages currently resident (the VM's footprint).
    pub fn resident_pages(&self) -> u64 {
        self.lru.len()
    }

    /// The LRU capacity.
    pub fn capacity(&self) -> u64 {
        self.lru.capacity()
    }

    /// Pages the monitor has ever seen.
    pub fn seen_pages(&self) -> usize {
        self.tracker.len()
    }

    /// Pages awaiting writeback.
    pub fn pending_writes(&self) -> usize {
        self.write_list.pending_len()
    }

    /// The store (for inspection in tests and benches).
    pub fn store(&self) -> &dyn KeyValueStore {
        self.store.as_ref()
    }

    /// This VM's partition.
    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Routes a region's keys to a specific partition (one hypervisor
    /// monitor serving several VMs, paper §IV).
    pub fn register_partition(&mut self, region: Region, partition: PartitionId) {
        self.region_partitions
            .insert(region.start().raw(), (region, partition));
    }

    /// The partition a page's key falls under.
    pub fn partition_of(&self, vpn: Vpn) -> PartitionId {
        if let Some((_, (region, partition))) =
            self.region_partitions.range(..=vpn.raw()).next_back()
        {
            if region.contains(vpn) {
                return *partition;
            }
        }
        self.partition
    }

    /// How many of `region`'s pages are currently resident.
    pub fn resident_in(&self, region: &Region) -> u64 {
        self.lru.count_in(region.start(), region.end())
    }

    pub(in crate::monitor) fn key(&self, vpn: Vpn) -> ExternalKey {
        ExternalKey::new(vpn, self.partition_of(vpn))
    }

    pub(in crate::monitor) fn charge(&mut self, model: &fluidmem_sim::LatencyModel) {
        let d = model.sample(&mut self.rng);
        self.clock.advance(d);
    }

    // --- the compressed local tier ------------------------------------

    /// Whether the compressed tier participates in eviction/refault. Like
    /// background reclaim, it requires `async_write`: demotions stage
    /// onto the write list. With this false the monitor is byte-identical
    /// to one without the feature — no RNG draw, clock charge, counter,
    /// or span differs.
    pub(in crate::monitor) fn tier_active(&self) -> bool {
        self.config.tier.enabled && self.config.optimizations.async_write
    }

    /// Compressed bytes currently charged to the tier pool.
    pub fn tier_bytes(&self) -> usize {
        self.tier.bytes()
    }

    /// Pages currently held in the tier pool.
    pub fn tier_pages(&self) -> usize {
        self.tier.len()
    }

    /// Offers an evicted page to the compressed tier.
    ///
    /// Returns `None` if the tier absorbed it (the caller is done — no
    /// write-list push) or `Some(contents)` if the page must take the
    /// ordinary writeback path: tier inactive, the thrash gate tripped,
    /// or the page is incompressible (the zswap
    /// `reject_compress_poor` bypass — a full page of pool for zero win
    /// is worse than going remote).
    ///
    /// `background` carries the background evictor's private timeline
    /// when admission happens off the fault path; CPU costs (the
    /// compression attempt, demotion write-list pushes) are charged
    /// there instead of the caller's clock.
    pub(in crate::monitor) fn tier_try_admit(
        &mut self,
        key: ExternalKey,
        contents: fluidmem_mem::PageContents,
        mut background: Option<&mut SimInstant>,
    ) -> Option<fluidmem_mem::PageContents> {
        if !self.tier_active() {
            return Some(contents);
        }
        // Refault-distance thrash gate: when the working-set estimate
        // says DRAM plus the whole pool still cannot hold this VM's hot
        // set, admitted pages would only churn (admit, demote, refault
        // from remote anyway) — skip straight to the remote path. Pure
        // bookkeeping, no RNG or clock.
        if self.config.tier.thrash_gate
            && self.workingset.wss_estimate()
                > self.lru.capacity() + self.config.tier.pool_pages_estimate()
        {
            self.stats.tier_bypass_thrash.inc();
            self.trace(|| format!("tier: {key} bypassed (thrash gate)"));
            return Some(contents);
        }
        // The compression attempt is how incompressibility is
        // discovered: its CPU cost is charged whether or not the page
        // admits (zram's reject path, satellite fix #2).
        let cost = self.config.tier.compress.sample(&mut self.rng);
        match background.as_deref_mut() {
            Some(t) => *t += cost,
            None => {
                self.clock.advance(cost);
            }
        }
        let compressed = fluidmem_kv::stored_page_size(&contents)
            .filter(|&bytes| bytes <= self.config.tier.max_bytes);
        let Some(bytes) = compressed else {
            self.stats.tier_bypass_incompressible.inc();
            self.trace(|| format!("tier: {key} bypassed (incompressible)"));
            return Some(contents);
        };
        self.tier.admit(key, contents, bytes);
        self.stats.tier_admits.inc();
        self.trace(|| format!("tier: {key} admitted ({bytes} compressed bytes)"));
        // Watermark hysteresis: crossing the high mark demotes a batch
        // down to the low mark, not one page per admission.
        if self.tier.bytes() > self.config.tier.high_bytes() {
            let target = self.config.tier.low_bytes();
            self.tier_demote_excess(target, background);
        }
        None
    }

    /// Demotes oldest-first until the pool holds at most `target_bytes`,
    /// staging each demoted page onto the write list (it flows to the
    /// remote store through the ordinary batched flush path).
    pub(in crate::monitor) fn tier_demote_excess(
        &mut self,
        target_bytes: usize,
        mut background: Option<&mut SimInstant>,
    ) {
        while self.tier.bytes() > target_bytes {
            let Some((key, contents)) = self.tier.pop_oldest() else {
                break;
            };
            let push = self.config.costs.write_list_push.sample(&mut self.rng);
            let ready_at = match background.as_deref_mut() {
                Some(t) => {
                    *t += push;
                    *t
                }
                None => {
                    self.clock.advance(push);
                    self.clock.now()
                }
            };
            self.write_list.push(key, contents, ready_at);
            self.stats.tier_demotions.inc();
            self.trace(|| format!("tier: {key} demoted to the write list"));
        }
    }

    /// Attempts to resolve a refault from the compressed tier. A hit
    /// removes the entry, charges the decompress cost, and returns the
    /// contents; a miss (or an inactive tier) returns `None`.
    pub(in crate::monitor) fn tier_try_promote(
        &mut self,
        key: ExternalKey,
    ) -> Option<fluidmem_mem::PageContents> {
        if !self.tier_active() {
            return None;
        }
        match self.tier.promote(key) {
            Some(contents) => {
                self.charge(&self.config.tier.decompress.clone());
                self.stats.tier_hits.inc();
                self.trace(|| format!("tier: {key} promoted to DRAM"));
                Some(contents)
            }
            None => {
                self.stats.tier_misses.inc();
                None
            }
        }
    }

    /// Retargets the tier's compressed-byte budget (the host arbiter's
    /// per-VM pool quota). Shrinking below current occupancy demotes
    /// oldest-first down to the new budget's low watermark and flushes.
    pub fn set_tier_budget(&mut self, max_bytes: usize) {
        if self.config.tier.max_bytes == max_bytes {
            return;
        }
        self.config.tier.max_bytes = max_bytes.max(1);
        if !self.tier_active() {
            return;
        }
        if self.tier.bytes() > self.config.tier.max_bytes {
            self.tier_demote_excess(self.config.tier.low_bytes(), None);
            self.maybe_flush();
        }
        self.update_gauges();
    }

    /// Cross-checks every tracked page against the LRU, the tier pool,
    /// the write list, and the store: nothing may be lost (in no tier at
    /// all) or duplicated (pooled *and* resident / pending writeback),
    /// and the pool's internal accounting must balance. Read-only and
    /// deterministic (the tracker export is sorted).
    pub fn tier_audit(&self) -> TierAudit {
        let mut lost_pages = 0u64;
        let mut duplicated_pages = 0u64;
        for vpn in self.tracker.export() {
            let key = self.key(vpn);
            let resident = self.lru.contains(vpn);
            let pooled = self.tier.contains(key);
            let pending = self.write_list.is_tracked(key);
            if !resident && !pooled && !pending && !self.store.contains(key) {
                lost_pages += 1;
            }
            if pooled && (resident || pending) {
                duplicated_pages += 1;
            }
        }
        TierAudit {
            lost_pages,
            duplicated_pages,
            balanced: self.tier.accounting_balances(),
        }
    }

    /// Handles one page fault for `vpn` on the call-return path: intake,
    /// resolution, and wake complete before the call returns, with at
    /// most one store operation in flight. The caller (the backend) has
    /// already charged fault-trap and event-delivery costs via the
    /// userfaultfd object.
    ///
    /// This is the `max_inflight = 1` degenerate case of the staged
    /// pipeline: it runs the same stage functions as
    /// [`Monitor::submit_fault`] / [`Monitor::complete_next`], in the
    /// same order.
    pub fn handle_fault(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        vpn: Vpn,
        write: bool,
    ) -> FaultResolution {
        let intake = self.fault_intake(pt, vpn, write);
        let res = if !intake.seen {
            self.trace(|| format!("pagetracker: {vpn} unseen -> zero-page path"));
            self.handle_first_touch(uffd, pt, pm, vpn)
        } else {
            self.trace(|| format!("pagetracker: {vpn} seen before -> read path"));
            self.handle_refault(uffd, pt, pm, vpn, write)
        };
        self.finalize_fault(intake.span, intake.t0, res.resolution, res.wake_at);
        res
    }

    /// Resizes the local buffer (the §VI-E capability swap lacks),
    /// evicting down to the new capacity on the spot.
    ///
    /// With background reclaim active, the shrink work is routed through
    /// the background evictor: capacity retargets (e.g. from the host
    /// arbiter) wake it and it evicts batch-wise on its own timeline
    /// instead of inline on the caller's.
    pub fn resize(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        capacity: u64,
    ) {
        self.lru.set_capacity(capacity);
        self.stats.resizes.inc();
        if self.reclaim_active() {
            // A shrink leaves headroom at 0 (below any low watermark), so
            // the evictor runs batch after batch until the buffer is back
            // under capacity — or nothing is evictable (it went to sleep
            // without making progress).
            while self.lru.over_capacity() {
                let before = self.lru.len();
                self.maybe_background_reclaim(uffd, pt, pm);
                if self.lru.len() == before {
                    break;
                }
            }
        } else {
            self.evict_to_capacity(uffd, pt, pm);
        }
        self.maybe_flush();
        self.update_gauges();
    }

    /// Forgets all monitor state for a region (VM shutdown) and drops its
    /// pages from the store. Returns how many pages were forgotten.
    ///
    /// The store cleanup must be scoped to *this region's* keys: bulk
    /// `drop_partition` is only safe when the region owned a dedicated
    /// registered partition no other region still routes to; otherwise
    /// (the region shares the monitor's default partition, or a sibling
    /// region shares the registered one) dropping the partition would
    /// wipe other regions' pages, so the region's keys are deleted
    /// individually instead.
    pub fn remove_region(&mut self, region: &Region) -> usize {
        // Regions are contiguous, so the tracker drops whole bitmap
        // chunks: the cost depends on this region's span, not on how
        // many pages the other regions track.
        let removed = self.tracker.remove_range(region.start(), region.end());
        for vpn in region.iter_pages() {
            self.lru.remove(vpn);
        }
        // Their refaults can never happen; drop the shadow entries so
        // the nonresident accounting stays balanced.
        self.workingset.forget_region(region);
        // Prefetched pages the guest never got to touch die with the
        // region: resolve their ledger entries to wasted.
        if !self.prefetch_pending_touch.is_empty() {
            let before = self.prefetch_pending_touch.len();
            self.prefetch_pending_touch
                .retain(|vpn, _| !region.contains(*vpn));
            let dropped = (before - self.prefetch_pending_touch.len()) as u64;
            self.stats.prefetch_wasted.add(dropped);
        }
        // Pooled pages die with the region too.
        self.tier.remove_matching(|key| region.contains(key.vpn()));
        let dedicated = self
            .region_partitions
            .remove(&region.start().raw())
            .map(|(_, partition)| partition);
        match dedicated {
            Some(partition)
                if partition != self.partition
                    && !self
                        .region_partitions
                        .values()
                        .any(|(_, p)| *p == partition) =>
            {
                self.store.drop_partition(partition);
            }
            Some(partition) => {
                for vpn in region.iter_pages() {
                    self.store.delete(ExternalKey::new(vpn, partition));
                }
            }
            None => {
                for vpn in region.iter_pages() {
                    self.store.delete(ExternalKey::new(vpn, self.partition));
                }
            }
        }
        removed
    }

    /// Exports the page-tracker state for live migration: the set of
    /// pages the monitor has seen (everything else is first-touch on the
    /// destination). Call after evicting to zero and draining, so every
    /// page is in the shared store.
    pub fn export_seen(&self) -> Vec<Vpn> {
        self.tracker.export()
    }

    /// Imports a migrated page-tracker state on the destination monitor.
    pub fn import_seen(&mut self, pages: impl IntoIterator<Item = Vpn>) {
        for vpn in pages {
            self.tracker.insert(vpn);
        }
    }
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("store", &self.store.name())
            .field("resident", &self.lru.len())
            .field("capacity", &self.lru.capacity())
            .field("seen", &self.tracker.len())
            .field("pending_writes", &self.write_list.pending_len())
            .field("inflight", &self.inflight.len())
            .finish()
    }
}
