//! Fault-handler stages.
//!
//! Each stage is one step of the fault pipeline: intake, first-touch
//! resolution, the steal check, the split top/bottom-half read, page
//! placement + wake, and post-wake work. [`Monitor::handle_fault`] runs
//! them back-to-back (the call-return path); the `pipeline` module runs
//! the same functions with the read flight parked in the in-flight table
//! between the issue and completion stages. Sharing the stage bodies is
//! what makes a `max_inflight = 1` pipelined run byte-identical to the
//! call-return path.

use fluidmem_kv::{ExternalKey, KvError, PendingGet};
use fluidmem_mem::{PageContents, PageTable, PhysicalMemory, PteFlags, Vpn};
use fluidmem_sim::SimInstant;
use fluidmem_telemetry::{consts, SpanId};
use fluidmem_uffd::Userfaultfd;

use super::pipeline::PrefetchFlight;
use super::{FaultIntake, FaultResolution, Monitor, Resolution};
use crate::config::{LruPolicy, PrefetchPolicy};
use crate::profile::CodePath;
use crate::write_list::StealOutcome;

/// A store read in flight: the §V-B top half has been issued and the
/// overlapped evictor work has run; the bottom half completes at
/// [`ReadFlight::completes_at`].
pub(in crate::monitor) struct ReadFlight {
    t0: SimInstant,
    span: SpanId,
    key: ExternalKey,
    pending: PendingGet,
}

impl ReadFlight {
    /// When the store round trip completes.
    pub(in crate::monitor) fn completes_at(&self) -> SimInstant {
        self.pending.completes_at()
    }
}

impl Monitor {
    /// Fault intake: opens the fault span, retires completed writes,
    /// runs the LRU policy's per-fault maintenance, and looks the page
    /// up in the page tracker.
    pub(in crate::monitor) fn fault_intake(
        &mut self,
        pt: &mut PageTable,
        vpn: Vpn,
        write: bool,
    ) -> FaultIntake {
        let t0 = self.clock.now();
        let span = self
            .telemetry
            .begin_with(consts::TRACK_MONITOR, "fault", || {
                vec![("vpn", format!("{vpn}")), ("write", write.to_string())]
            });
        self.stats.faults.inc();
        // Feed the stride detector. Pure bookkeeping — no clock advance,
        // no RNG draw, no counter — so a configured-but-trendless (or
        // zero-depth) Stride policy leaves the run byte-identical to
        // `PrefetchPolicy::None`.
        if matches!(self.config.prefetch, PrefetchPolicy::Stride { .. }) {
            self.stride.observe(vpn);
        }
        self.write_list.retire(self.clock.now());
        self.run_lru_policy(pt);

        // "The monitor keeps a list of already seen pages to avoid reads
        // from the remote key-value store for first-time accesses."
        self.trace(|| format!("userfaultfd event: fault at {vpn} (write={write})"));
        let lookup = self
            .telemetry
            .begin(consts::TRACK_MONITOR, "page_hash_lookup");
        self.charge(&self.config.costs.hash_lookup.clone());
        let seen = self.tracker.contains(vpn);
        self.telemetry.end(lookup);
        FaultIntake { t0, span, seen }
    }

    /// Fault completion: closes the fault span at the wake instant and
    /// records the guest-observed latency.
    pub(in crate::monitor) fn finalize_fault(
        &mut self,
        span: SpanId,
        t0: SimInstant,
        resolution: Resolution,
        wake_at: SimInstant,
    ) {
        // The guest-observed latency ends at the wake, not at the end of
        // post-wake work (which has already advanced the clock).
        self.telemetry.end_at(span, wake_at);
        self.telemetry
            .instant_at(consts::TRACK_GUEST, "wake", wake_at);
        self.fault_latency[resolution.index()].observe(wake_at - t0);
        self.update_gauges();
    }

    /// Figure 2's fast path: zero-fill, wake, then evict asynchronously.
    pub(in crate::monitor) fn handle_first_touch(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        vpn: Vpn,
    ) -> FaultResolution {
        let t0 = self.clock.now();
        let span = self.telemetry.begin(consts::TRACK_MONITOR, "UFFD_ZEROPAGE");
        uffd.zeropage(pt, vpn).expect("first touch maps cleanly");
        self.telemetry.end(span);
        self.profile
            .record(CodePath::UffdZeropage, self.clock.now() - t0);

        let t0 = self.clock.now();
        let span = self
            .telemetry
            .begin(consts::TRACK_MONITOR, "insert_page_hash");
        self.charge(&self.config.costs.insert_page_hash.clone());
        self.tracker.insert(vpn);
        self.telemetry.end(span);
        self.profile
            .record(CodePath::InsertPageHashNode, self.clock.now() - t0);

        let t0 = self.clock.now();
        let span = self.telemetry.begin(consts::TRACK_MONITOR, "insert_lru");
        self.charge(&self.config.costs.insert_lru.clone());
        self.lru.insert(vpn);
        self.telemetry.end(span);
        self.profile
            .record(CodePath::InsertLruCacheNode, self.clock.now() - t0);

        uffd.wake_page(vpn);
        let wake_at = self.clock.now();
        self.trace(|| format!("UFFD_ZEROPAGE resolved {vpn}; guest woken (end of critical path)"));
        self.stats.zero_fills.inc();

        // Asynchronous (post-wake) eviction — the blue path of Figure 2.
        self.evict_to_capacity(uffd, pt, pm);
        self.maybe_flush();
        FaultResolution {
            resolution: Resolution::ZeroFill,
            wake_at,
        }
    }

    /// The read path: the page was evicted earlier and must come back.
    pub(in crate::monitor) fn handle_refault(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        vpn: Vpn,
        write: bool,
    ) -> FaultResolution {
        // A seen page faulting again is a refault: measure its distance
        // against the shadow table before any resolution work.
        self.note_refault(vpn);
        let key = self.key(vpn);
        let steal = self.stage_steal_check(key);
        let (contents, resolution) = match steal {
            StealOutcome::Stolen(contents) => {
                self.stats.write_list_steals.inc();
                // Make room (the page is coming back in).
                self.evict_while_full(uffd, pt, pm);
                (contents, Resolution::WriteListSteal)
            }
            StealOutcome::WaitInflight { until, contents } => {
                self.stage_wait_write(uffd, pt, pm, until);
                (contents, Resolution::InflightWait)
            }
            StealOutcome::Miss => {
                // The compressed local tier sits between the write list
                // and the remote store: a pool hit resolves for a
                // decompress, no network round trip.
                if let Some(contents) = self.tier_try_promote(key) {
                    // Make room (the page is coming back in).
                    self.evict_while_full(uffd, pt, pm);
                    (contents, Resolution::CompressedHit)
                } else {
                    let contents = if self.config.optimizations.async_read {
                        let flight = self.stage_issue_read(uffd, pt, pm, key);
                        self.stage_complete_read(flight)
                    } else {
                        self.read_sync(uffd, pt, pm, key)
                    };
                    self.stats.remote_reads.inc();
                    (contents, Resolution::RemoteRead)
                }
            }
        };
        let wake_at = self.stage_place_and_wake(uffd, pt, pm, vpn, write, contents);
        self.stage_post_wake(uffd, pt, pm, vpn);
        FaultResolution {
            resolution,
            wake_at,
        }
    }

    /// §V-B: "the page fault handler can steal pages from the pending
    /// write list ... and shortcut two round trips".
    pub(in crate::monitor) fn stage_steal_check(&mut self, key: ExternalKey) -> StealOutcome {
        let span = self.telemetry.begin(consts::TRACK_MONITOR, "steal_check");
        self.charge(&self.config.costs.steal_check.clone());
        let steal = self.write_list.steal(key, self.clock.now());
        self.telemetry.end(span);
        steal
    }

    /// Waits out an in-flight write of the faulted page: "there is no
    /// other choice than to wait for the write to complete", after which
    /// the buffered copy is used.
    pub(in crate::monitor) fn stage_wait_write(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        until: SimInstant,
    ) {
        self.clock.advance_to(until);
        self.write_list.retire(self.clock.now());
        self.stats.inflight_waits.inc();
        self.evict_while_full(uffd, pt, pm);
    }

    /// Issues the asynchronous read's top half (§V-B) and runs the work
    /// that overlaps the flight: eviction (`UFFD_REMAP` "at a time when
    /// the vCPU thread was already suspended") and cache bookkeeping —
    /// the evictor stage running during the store round trip.
    pub(in crate::monitor) fn stage_issue_read(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        key: ExternalKey,
    ) -> ReadFlight {
        let t0 = self.clock.now();
        let span = self.telemetry.begin(consts::TRACK_MONITOR, "kv.read");
        self.trace(|| format!("async read top half issued for {key}"));
        let pending = self.store.begin_get(key);
        // The in-flight window on the kv track: its span visibly overlaps
        // the UFFD_REMAP / bookkeeping the monitor does meanwhile (§V-B).
        self.telemetry.record_span(
            consts::TRACK_KV,
            "kv.read.flight",
            pending.issued_at(),
            pending.completes_at(),
        );

        self.evict_while_full(uffd, pt, pm);
        self.bookkeeping_update_cache();
        ReadFlight {
            t0,
            span,
            key,
            pending,
        }
    }

    /// Completes a read flight's bottom half. A retryable failure falls
    /// back to synchronous retries with backoff — the extra wait lands on
    /// this fault's latency, as it would in reality.
    pub(in crate::monitor) fn stage_complete_read(&mut self, flight: ReadFlight) -> PageContents {
        let ReadFlight {
            t0,
            span,
            key,
            pending,
        } = flight;
        let contents = match self.store.finish_get(pending) {
            Ok(c) => c,
            Err(KvError::NotFound(_)) => {
                self.stats.lost_pages.inc();
                PageContents::Zero
            }
            Err(e) if e.is_retryable() => {
                self.stats.read_retries.inc();
                self.trace(|| format!("async read of {key} failed ({e}); retrying"));
                let wait = self.config.retry.backoff(0, &mut self.rng);
                self.clock.advance(wait);
                self.fetch_with_retries(key, 1)
            }
            Err(e) => panic!("store failure on read: {e}"),
        };
        self.telemetry.end(span);
        self.profile
            .record(CodePath::ReadPage, self.clock.now() - t0);
        contents
    }

    /// Installs the page with `UFFD_COPY`, inserts it into the LRU, and
    /// wakes the faulting vCPU. Returns the wake instant (the end of the
    /// guest-observed critical path).
    pub(in crate::monitor) fn stage_place_and_wake(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        vpn: Vpn,
        write: bool,
        contents: PageContents,
    ) -> SimInstant {
        let t0 = self.clock.now();
        let span = self.telemetry.begin(consts::TRACK_MONITOR, "UFFD_COPY");
        uffd.copy(pt, pm, vpn, contents)
            .expect("refault destination is unmapped");
        self.telemetry.end(span);
        self.profile
            .record(CodePath::UffdCopy, self.clock.now() - t0);
        if write {
            pt.set_flags(vpn, PteFlags::DIRTY);
        }

        let t0 = self.clock.now();
        let span = self.telemetry.begin(consts::TRACK_MONITOR, "insert_lru");
        self.charge(&self.config.costs.insert_lru.clone());
        self.lru.insert(vpn);
        self.telemetry.end(span);
        self.profile
            .record(CodePath::InsertLruCacheNode, self.clock.now() - t0);

        uffd.wake_page(vpn);
        let wake_at = self.clock.now();
        self.trace(|| format!("{vpn} installed via UFFD_COPY; guest woken (end of critical path)"));
        wake_at
    }

    /// Post-wake work on the read path: honor the capacity budget, then
    /// prefetch and flush.
    pub(in crate::monitor) fn stage_post_wake(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        vpn: Vpn,
    ) {
        // Adaptive working-set sizing (off in the default passive mode):
        // any shrink it sets up is carried out by the eviction below.
        self.maybe_adapt();
        // A zero (or just-shrunk) quota must be honored on the read path
        // too: the refault insert may have pushed the buffer over budget
        // with no later fault guaranteed to correct it. A no-op whenever
        // the buffer is within capacity.
        self.evict_to_capacity(uffd, pt, pm);
        // Post-wake proactive work: prefetch successors of the faulting
        // page (overlapping asynchronous reads), then flush.
        self.maybe_prefetch(uffd, pt, pm, vpn);
        self.maybe_flush();
    }

    /// Proactive prefetch after a refault wake: pulls pages the guest is
    /// predicted to touch next back from the store before it asks.
    ///
    /// `Sequential` pulls the next `window` successors of the faulting
    /// page. `Stride` asks the majority-vote detector for the stream's
    /// trend and pulls up to `max_depth` pages ahead at that stride,
    /// gated by the working-set estimator: a thrash-flagged VM (working
    /// set over capacity) or one whose free headroom is below the depth
    /// gets no speculation. With the pipeline enabled the reads park as
    /// real in-flight operations on the completion queue; on the
    /// call-return path they are issued as one overlapped batch and
    /// completed in place.
    fn maybe_prefetch(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        vpn: Vpn,
    ) {
        // The candidate list is a pooled buffer: prefetch runs after
        // every remote fault, and per-call Vec churn at 256 VMs adds up.
        let mut candidates = std::mem::take(&mut self.prefetch_candidates);
        debug_assert!(candidates.is_empty());
        match self.config.prefetch {
            PrefetchPolicy::None => {
                self.prefetch_candidates = candidates;
                return;
            }
            PrefetchPolicy::Sequential { window } => {
                // Issue is capped at current headroom: a page past the
                // cap would only be re-evicted by the trailing
                // `evict_to_capacity` — a wasted remote read that can
                // push warm pages out on its way through.
                let cap = self.headroom();
                for i in 1..=window {
                    if candidates.len() as u64 == cap {
                        break;
                    }
                    let candidate = vpn.offset(i);
                    if self.prefetchable(uffd, pt, candidate) {
                        candidates.push(candidate);
                    }
                }
            }
            PrefetchPolicy::Stride { max_depth, .. } => {
                // max_depth = 0 is the policy's off switch: no gate
                // counters, no eviction pass, no RNG or clock effects —
                // byte-identical to `PrefetchPolicy::None`.
                if max_depth == 0 {
                    self.prefetch_candidates = candidates;
                    return;
                }
                let Some(stride) = self.stride.trend() else {
                    self.prefetch_candidates = candidates;
                    return;
                };
                // Thrash gate: with the working set over capacity every
                // speculative insert evicts a page the guest still
                // wants. The detector keeps watching; issue stops.
                let wss = self.workingset.wss_estimate();
                let capacity = self.lru.capacity();
                if wss > capacity {
                    self.stats.prefetch_suppressed_thrash.inc();
                    self.trace(|| {
                        format!("prefetch suppressed: thrashing (wss {wss} > capacity {capacity})")
                    });
                    self.prefetch_candidates = candidates;
                    return;
                }
                // Headroom gate: fewer free slots than the depth means
                // speculation would immediately evict its own fetches.
                let headroom = self.headroom();
                if headroom < max_depth {
                    self.stats.prefetch_suppressed_headroom.inc();
                    self.trace(|| {
                        format!("prefetch suppressed: headroom {headroom} < depth {max_depth}")
                    });
                    self.prefetch_candidates = candidates;
                    return;
                }
                for k in 1..=max_depth {
                    if let Some(candidate) = crate::prefetch::project(vpn, stride, k) {
                        if self.prefetchable(uffd, pt, candidate) {
                            candidates.push(candidate);
                        }
                    }
                }
                if candidates.is_empty() {
                    // Nothing issuable at this stride: return with zero
                    // side effects. (The Sequential arm falls through
                    // even when empty to keep its legacy shape — its
                    // trailing eviction pass has always run.)
                    self.prefetch_candidates = candidates;
                    return;
                }
            }
        }

        // Pipelined monitors issue speculation as real in-flight
        // operations: the read rides the completion queue, installs on
        // completion without waking anyone, and a demand fault arriving
        // mid-flight adopts the pending read instead of re-issuing it.
        if self.config.max_inflight > 1 {
            for &candidate in &candidates {
                let key = self.key(candidate);
                self.stats.prefetch_issued.inc();
                let pending = self.store.begin_get(key);
                self.telemetry.record_span(
                    consts::TRACK_KV,
                    "kv.read.flight",
                    pending.issued_at(),
                    pending.completes_at(),
                );
                self.trace(|| format!("speculative read in flight for {candidate}"));
                self.inflight.park_prefetch(PrefetchFlight {
                    vpn: candidate,
                    pending,
                });
            }
            candidates.clear();
            self.prefetch_candidates = candidates;
            return;
        }

        // Call-return shape: issue every read first so the flights
        // overlap, then complete them in place off a pooled buffer.
        let mut pendings = std::mem::take(&mut self.prefetch_buf);
        debug_assert!(pendings.is_empty());
        for &candidate in &candidates {
            let key = self.key(candidate);
            self.stats.prefetch_issued.inc();
            pendings.push((candidate, self.store.begin_get(key)));
        }
        candidates.clear();
        self.prefetch_candidates = candidates;
        for (candidate, pending) in pendings.drain(..) {
            let issued_at = pending.issued_at();
            let result = self.store.finish_get(pending);
            self.note_prefetch_result(uffd, pt, pm, candidate, issued_at, result);
        }
        self.prefetch_buf = pendings;
        self.evict_to_capacity(uffd, pt, pm);
    }

    /// Whether a page may be speculatively fetched: evicted-but-seen, in
    /// a registered region, not already resident or mapped, no fresher
    /// local copy (write list / compressed tier), and not already owned
    /// by an in-flight operation (demand or speculative).
    fn prefetchable(&self, uffd: &Userfaultfd, pt: &PageTable, candidate: Vpn) -> bool {
        if !self.tracker.contains(candidate)
            || self.lru.contains(candidate)
            || pt.get(candidate).is_some()
            || uffd.region_containing(candidate).is_none()
        {
            return false;
        }
        let key = self.key(candidate);
        if self.write_list.is_tracked(key) || self.tier.contains(key) {
            return false; // its freshest copy is local, not in the store
        }
        // A duplicate read would race the pending install: the first
        // completion maps the page and the second copy-in fails — or
        // worse, maps under a parked demand fault about to wake.
        !self.inflight.tracks(candidate)
    }

    /// Lands one finished speculative read: installs the page and
    /// stamps the accuracy ledger on success, otherwise counts the
    /// failure by kind. Never panics — speculation must not take the
    /// monitor down (the demand path surfaces persistent errors with the
    /// full retry budget).
    pub(in crate::monitor) fn note_prefetch_result(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        candidate: Vpn,
        issued_at: SimInstant,
        result: Result<PageContents, KvError>,
    ) {
        match result {
            Ok(contents) => {
                if uffd.copy(pt, pm, candidate, contents).is_ok() {
                    self.lru.insert(candidate);
                    // The page came back without a fault, so its
                    // refault distance will never be measured; drop
                    // any shadow entry (counted as forgotten) so the
                    // nonresident accounting stays balanced.
                    self.workingset.forget(candidate);
                    self.stats.prefetched_pages.inc();
                    // Open an accuracy-ledger entry: the guest's first
                    // touch resolves it to a hit, an eviction first
                    // resolves it to a waste.
                    self.prefetch_pending_touch.insert(candidate, issued_at);
                } else {
                    // The page got mapped while the read was in
                    // flight; the fetched copy is redundant, not
                    // lost, but it must not vanish unaccounted.
                    self.stats.prefetch_copy_skips.inc();
                    self.trace(|| format!("prefetch of {candidate} skipped: page already mapped"));
                }
            }
            Err(KvError::NotFound(_)) => {
                self.stats.prefetch_misses.inc();
            }
            Err(e) if e.is_retryable() => {
                // Speculative work doesn't spend the retry budget: if
                // the guest actually faults on the page it is fetched
                // with full retries; here the attempt is just dropped
                // and counted as transient, not as a miss.
                self.stats.prefetch_transient_errors.inc();
                self.trace(|| format!("prefetch of {candidate} hit a transient error ({e})"));
            }
            Err(e) => {
                // Non-retryable (corruption, capacity): dropping the
                // guess costs nothing — the data is exactly where it
                // was — so degrade instead of panicking like the demand
                // read path does.
                self.stats.prefetch_fatal_errors.inc();
                self.trace(|| {
                    format!("prefetch of {candidate} dropped on fatal store error ({e})")
                });
            }
        }
    }

    /// Completes a parked speculative read popped off the pipeline's
    /// queue. Installs the page if the quota still has room; wakes
    /// nothing and finalizes nothing — no guest is waiting.
    pub(in crate::monitor) fn complete_prefetch(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        flight: PrefetchFlight,
    ) {
        let PrefetchFlight { vpn, pending } = flight;
        let issued_at = pending.issued_at();
        let result = self.store.finish_get(pending);
        if result.is_ok() && self.headroom() == 0 {
            // The LRU filled (or shrank) while the read was in flight:
            // installing now would evict a demand-loaded page for a
            // guess. Drop the fetched copy and count the flight wasted.
            self.stats.prefetch_wasted.inc();
            self.trace(|| format!("prefetch of {vpn} discarded: no LRU headroom at completion"));
            return;
        }
        self.note_prefetch_result(uffd, pt, pm, vpn, issued_at, result);
    }

    /// Converts an in-flight speculative read into a demand fault's read
    /// flight: the guest asked for the page mid-flight and pays only the
    /// remaining flight time (a prefetch hit, resolved early). Runs the
    /// same overlapped evictor work as [`Monitor::stage_issue_read`].
    pub(in crate::monitor) fn stage_adopt_prefetch(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        key: ExternalKey,
        flight: PrefetchFlight,
    ) -> ReadFlight {
        let t0 = self.clock.now();
        let span = self.telemetry.begin(consts::TRACK_MONITOR, "kv.read");
        self.stats.prefetch_hits.inc();
        self.prefetch_timeliness
            .observe(t0.saturating_since(flight.pending.issued_at()));
        self.trace(|| {
            format!(
                "fault on {} adopted its in-flight speculative read",
                flight.vpn
            )
        });
        self.evict_while_full(uffd, pt, pm);
        self.bookkeeping_update_cache();
        ReadFlight {
            t0,
            span,
            key,
            pending: flight.pending,
        }
    }

    /// Synchronous read (Table II "Default"): the full store round trip
    /// sits on the critical path, then the eviction runs.
    fn read_sync(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        key: ExternalKey,
    ) -> PageContents {
        self.charge(&self.config.costs.sync_read_staging.clone());
        let t0 = self.clock.now();
        let span = self.telemetry.begin(consts::TRACK_MONITOR, "kv.read");
        let contents = self.fetch_with_retries(key, 0);
        self.telemetry.end(span);
        self.profile
            .record(CodePath::ReadPage, self.clock.now() - t0);

        self.evict_while_full(uffd, pt, pm);
        self.bookkeeping_update_cache();
        contents
    }

    /// Reads `key` synchronously, retrying retryable store failures
    /// under the configured policy via [`fluidmem_kv::run_with_retries_from`].
    /// `prior_attempts` counts tries already spent on this fault (the
    /// async top-half path).
    pub(in crate::monitor) fn fetch_with_retries(
        &mut self,
        key: ExternalKey,
        prior_attempts: u32,
    ) -> PageContents {
        let policy = self.config.retry;
        let mut tries = 0u32;
        let result = {
            let Monitor {
                store,
                clock,
                rng,
                stats,
                tracer,
                ..
            } = self;
            let clock = &*clock;
            fluidmem_kv::run_with_retries_from(
                &policy,
                clock,
                rng,
                prior_attempts,
                |attempt, e| {
                    tries += 1;
                    stats.read_retries.inc();
                    tracer.emit(clock.now(), "monitor", || {
                        format!("read of {key} failed ({e}); retry {}", attempt + 1)
                    });
                },
                |_| store.get(key),
            )
        };
        match result {
            Ok(c) => c,
            Err(KvError::NotFound(_)) => {
                self.stats.lost_pages.inc();
                PageContents::Zero
            }
            Err(e) => panic!("store failure on read after {tries} retries: {e}"),
        }
    }

    /// Writes `key` synchronously with retries (the sync-eviction path),
    /// via the same shared retry helper.
    pub(in crate::monitor) fn put_with_retries(
        &mut self,
        key: ExternalKey,
        contents: PageContents,
    ) {
        let policy = self.config.retry;
        let mut tries = 0u32;
        let result = {
            let Monitor {
                store,
                clock,
                rng,
                stats,
                tracer,
                ..
            } = self;
            let clock = &*clock;
            fluidmem_kv::run_with_retries_from(
                &policy,
                clock,
                rng,
                0,
                |attempt, e| {
                    tries += 1;
                    stats.write_retries.inc();
                    tracer.emit(clock.now(), "monitor", || {
                        format!("write of {key} failed ({e}); retry {}", attempt + 1)
                    });
                },
                |_| store.put(key, contents.clone()),
            )
        };
        if let Err(e) = result {
            panic!("store failure on eviction write after {tries} retries: {e}");
        }
    }

    pub(in crate::monitor) fn bookkeeping_update_cache(&mut self) {
        let t0 = self.clock.now();
        let span = self
            .telemetry
            .begin(consts::TRACK_MONITOR, "update_page_cache");
        self.charge(&self.config.costs.update_page_cache.clone());
        self.telemetry.end(span);
        self.profile
            .record(CodePath::UpdatePageCache, self.clock.now() - t0);
    }

    /// Applies the configured LRU policy's per-fault maintenance.
    fn run_lru_policy(&mut self, pt: &mut PageTable) {
        if let LruPolicy::ScanReferenced { scan_batch } = self.config.lru_policy {
            // The scan batch reuses one pooled buffer: this runs on
            // every fault intake, so a fresh Vec per fault is pure churn.
            let mut head = std::mem::take(&mut self.scan_buf);
            self.lru.peek_head_into(scan_batch, &mut head);
            for &vpn in &head {
                // Sample-and-clear the guest referenced bit; hot pages
                // rotate away from the eviction end.
                if pt.has_flags(vpn, PteFlags::REFERENCED) {
                    pt.clear_flags(vpn, PteFlags::REFERENCED);
                    self.lru.rotate_to_tail(vpn);
                }
            }
            self.scan_buf = head;
        }
    }
}
