//! The watermark-driven background reclaimer: the monitor's kswapd.
//!
//! FluidMem's real monitor is multi-threaded: a dedicated evictor keeps
//! the LRU below capacity while fault handlers block in store reads.
//! Inline eviction (`evict_while_full` on the fault path) serializes
//! that work onto the fault handler's timeline instead — every fault at
//! a full buffer pays `UFFD_REMAP` CPU plus write-list staging before
//! its read can complete. This module models the evictor as its own
//! virtual thread, exactly like `fluidmem-swap`'s `kswapd()` models the
//! kernel's:
//!
//! * **Watermarks.** The evictor watches free headroom
//!   (`capacity − resident`). It wakes when headroom drops below the
//!   low watermark and stays awake — evicting in batches — until
//!   headroom reaches the high watermark or nothing is evictable, then
//!   sleeps.
//! * **A private timeline.** Background eviction performs its state
//!   changes (page-table unmap, frame free, write-list staging)
//!   immediately but accounts the CPU it spends on a private cursor
//!   that never advances the shared clock: the work happens *while
//!   vCPUs are suspended on read flights*, which is precisely the §V-B
//!   window the paper hides eviction in. The TLB-shootdown handle and
//!   the write-list `ready_at` are stamped from that cursor, so the
//!   pages stay unflushable until their shootdowns genuinely complete.
//! * **Deterministic scheduling.** When faults are parked in the
//!   in-flight table, an activation is enqueued on the same
//!   [`EventQueue`](fluidmem_sim::EventQueue) that orders fault
//!   completions ([`Monitor::complete_next`] runs it transparently);
//!   with nothing in flight the activation runs on the spot. Either
//!   way the schedule is a pure function of the seed.
//! * **Direct reclaim as fallback.** If the evictor falls behind and a
//!   fault still finds the buffer full, the inline path evicts as
//!   before — counted as `direct_reclaim`, the analogue of
//!   `SwapBackend::ensure_frames`.
//!
//! Everything here is gated on [`Monitor::reclaim_active`]: with the
//! feature off (the default) no RNG draw, clock charge, counter, or
//! span differs from a monitor built without it.

use fluidmem_mem::{PageTable, PhysicalMemory};
use fluidmem_sim::SimInstant;
use fluidmem_telemetry::consts;
use fluidmem_uffd::Userfaultfd;

use super::Monitor;
use crate::config::EvictionMechanism;

/// The background evictor's thread state.
#[derive(Debug)]
pub(in crate::monitor) struct ReclaimState {
    /// The evictor thread's private timeline: where its CPU accounting
    /// has reached. Activations start at `cursor.max(now)`.
    cursor: SimInstant,
    /// Whether the evictor is awake (woken below the low watermark, not
    /// yet back above the high one).
    awake: bool,
    /// Whether an activation is already queued on the completion event
    /// queue (dedup so at most one is pending).
    scheduled: bool,
}

impl ReclaimState {
    pub(in crate::monitor) fn new() -> Self {
        ReclaimState {
            cursor: SimInstant::EPOCH,
            awake: false,
            scheduled: false,
        }
    }
}

impl Monitor {
    /// Whether background reclaim is in effect. Requires `async_write`:
    /// background batches stage onto the write list, which does not
    /// exist on the synchronous-write path.
    pub(in crate::monitor) fn reclaim_active(&self) -> bool {
        self.config.reclaim.enabled && self.config.optimizations.async_write
    }

    /// Free headroom in the LRU: `capacity − resident`, zero when at or
    /// over capacity.
    pub fn headroom(&self) -> u64 {
        self.lru.capacity().saturating_sub(self.lru.len())
    }

    /// The watermark check, run before any inline eviction loop: wakes
    /// the evictor when headroom has dropped below the low watermark and
    /// gives it a chance to run (or schedules it) so the inline path
    /// finds the buffer already below capacity. A single-branch no-op
    /// when reclaim is inactive.
    pub(in crate::monitor) fn maybe_background_reclaim(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
    ) {
        if !self.reclaim_active() {
            return;
        }
        if !self.reclaim.awake {
            let low = self.config.reclaim.low_pages(self.lru.capacity());
            if self.headroom() >= low {
                return;
            }
            self.reclaim.awake = true;
            let headroom = self.headroom();
            self.trace(|| format!("reclaim: woke (headroom {headroom} < low watermark {low})"));
        }
        // A buffer at (or over) capacity would force the caller's inline
        // loop to evict on the fault path: the evictor preempts and runs
        // its batches right now instead of waiting for its queued
        // activation. Below that point, lazy wakeups suffice.
        while self.reclaim.awake && self.headroom() == 0 {
            let before = self.lru.len();
            self.run_background_reclaim(uffd, pt, pm);
            if self.lru.len() == before {
                break;
            }
        }
        if self.reclaim.awake {
            self.kick_reclaim(uffd, pt, pm);
        }
    }

    /// Runs the awake evictor batch-by-batch until it sleeps, or — when
    /// faults are parked in the in-flight table, so
    /// [`Monitor::complete_next`] is guaranteed to be called — enqueues
    /// one activation on the completion queue to run in event order.
    fn kick_reclaim(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
    ) {
        while self.reclaim.awake {
            if self.inflight.len() > 0 {
                if !self.reclaim.scheduled {
                    self.reclaim.scheduled = true;
                    self.inflight.schedule_reclaim(self.clock.now());
                }
                return;
            }
            self.run_background_reclaim(uffd, pt, pm);
        }
    }

    /// A queued activation popped off the completion queue by
    /// [`Monitor::complete_next`].
    pub(in crate::monitor) fn run_scheduled_reclaim(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
    ) {
        self.reclaim.scheduled = false;
        if self.reclaim.awake {
            self.run_background_reclaim(uffd, pt, pm);
            // Still awake (batch cap hit, headroom below high): line up
            // the next activation rather than monopolizing this event.
            self.kick_reclaim(uffd, pt, pm);
        }
    }

    /// One evictor activation: evicts up to one batch on the private
    /// timeline, staging onto the write list, until headroom reaches
    /// the high watermark or the LRU runs dry — then sleeps. Flushes
    /// through the ordinary batched `begin_multi_write` path.
    pub(in crate::monitor) fn run_background_reclaim(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
    ) {
        let high = self.config.reclaim.high_pages(self.lru.capacity());
        let start = self.reclaim.cursor.max(self.clock.now());
        let mut thread_now = start;
        let mut evicted = 0usize;
        while evicted < self.config.reclaim.batch && self.headroom() < high {
            if !self.evict_one_background(uffd, pt, pm, &mut thread_now) {
                // Nothing evictable: sleep rather than spin awake.
                self.reclaim.awake = false;
                break;
            }
            evicted += 1;
        }
        if self.headroom() >= high {
            self.reclaim.awake = false;
        }
        if evicted > 0 {
            self.telemetry
                .record_span(consts::TRACK_MONITOR, "reclaim", start, thread_now);
            self.reclaim.cursor = thread_now;
            let headroom = self.headroom();
            let asleep = !self.reclaim.awake;
            self.trace(|| {
                format!(
                    "reclaim: batch of {evicted} evicted (headroom {headroom}, high {high}{})",
                    if asleep { "; sleeping" } else { "" }
                )
            });
            self.maybe_flush();
            self.update_gauges();
        }
    }

    /// Evicts one page on the evictor's timeline: the state changes
    /// happen now, the CPU lands on `thread_now`, and the shootdown
    /// handle completes relative to the evictor, not the fault path.
    fn evict_one_background(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        thread_now: &mut SimInstant,
    ) -> bool {
        let Some(victim) = self.pop_victim_for_eviction() else {
            return false;
        };
        let key = self.key(victim);
        let t0 = *thread_now;
        let (contents, handle, cpu) = uffd
            .remap_detached(pt, pm, victim, t0)
            .expect("LRU pages are mapped in the VM");
        *thread_now = t0 + cpu;
        if self.config.eviction == EvictionMechanism::Remap {
            self.telemetry.record_span(
                consts::TRACK_KERNEL,
                "tlb.shootdown",
                t0,
                handle.completes_at(),
            );
        }
        let ready_at = match self.config.eviction {
            EvictionMechanism::Remap => handle.completes_at(),
            EvictionMechanism::Copy => {
                *thread_now += uffd.costs().copy.sample(&mut self.rng);
                *thread_now
            }
        };
        self.stats.evictions.inc();
        self.stats.background_reclaims.inc();
        // The compressed tier gets first refusal, with its CPU charged to
        // the evictor's own timeline. Bypassed pages stage onto the write
        // list as before — reclaim_active implies async_write — and stay
        // stealable until the batch flush retires them.
        if let Some(contents) = self.tier_try_admit(key, contents, Some(thread_now)) {
            *thread_now += self.config.costs.write_list_push.sample(&mut self.rng);
            self.write_list.push(key, contents, ready_at);
        }
        true
    }
}
