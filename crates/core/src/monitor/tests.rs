//! Unit tests for the monitor (call-return path, stages, evictor,
//! and the staged pipeline).

use super::*;
use crate::config::LruPolicy;
use fluidmem_kv::DramStore;
use fluidmem_mem::{PageClass, PageContents, PteFlags, Region};
use fluidmem_sim::SimDuration;

struct Rig {
    uffd: Userfaultfd,
    pt: PageTable,
    pm: PhysicalMemory,
    monitor: Monitor,
    region: Region,
    clock: SimClock,
}

fn rig(capacity: u64, config: Option<MonitorConfig>) -> Rig {
    let clock = SimClock::new();
    let mut uffd = Userfaultfd::new(clock.clone(), SimRng::seed_from_u64(1));
    let region = Region::new(Vpn::new(0x1000), 4096, PageClass::Anonymous);
    uffd.register(region).unwrap();
    let store = DramStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(2));
    let monitor = Monitor::new(
        config.unwrap_or_else(|| MonitorConfig::new(capacity)),
        Box::new(store),
        PartitionId::new(0),
        clock.clone(),
        SimRng::seed_from_u64(3),
    );
    Rig {
        uffd,
        pt: PageTable::new(),
        pm: PhysicalMemory::new(1 << 24),
        monitor,
        region,
        clock,
    }
}

fn fault(r: &mut Rig, i: u64, write: bool) -> FaultResolution {
    let vpn = r.region.page(i).vpn();
    r.monitor
        .handle_fault(&mut r.uffd, &mut r.pt, &mut r.pm, vpn, write)
}

#[test]
fn first_touch_resolves_with_zero_page_no_store_read() {
    let mut r = rig(16, None);
    let res = fault(&mut r, 0, false);
    assert_eq!(res.resolution, Resolution::ZeroFill);
    assert_eq!(r.monitor.stats().zero_fills, 1);
    assert_eq!(r.monitor.store().stats().gets, 0, "no remote read");
    assert!(r.pt.has_flags(r.region.page(0).vpn(), PteFlags::ZERO_PAGE));
}

#[test]
fn capacity_bound_is_enforced() {
    let mut r = rig(8, None);
    for i in 0..64 {
        fault(&mut r, i, true);
    }
    assert!(r.monitor.resident_pages() <= 8);
    assert!(r.monitor.stats().evictions >= 56);
}

#[test]
fn refault_reads_from_store_after_drain() {
    let mut r = rig(4, None);
    for i in 0..8 {
        fault(&mut r, i, true);
    }
    r.monitor.drain_writes();
    let res = fault(&mut r, 0, false);
    assert_eq!(res.resolution, Resolution::RemoteRead);
    assert_eq!(r.monitor.stats().remote_reads, 1);
}

#[test]
fn write_list_steal_shortcuts_the_store() {
    let mut r = rig(4, MonitorConfig::new(4).write_batch(1000).into());
    for i in 0..6 {
        fault(&mut r, i, true);
    }
    // Pages 0..2 were evicted to the (unflushed) write list; a
    // refault must steal, not read.
    let gets_before = r.monitor.store().stats().gets;
    let res = fault(&mut r, 0, false);
    assert_eq!(res.resolution, Resolution::WriteListSteal);
    assert_eq!(r.monitor.store().stats().gets, gets_before);
    assert!(r.monitor.stats().write_list_steals == 1);
}

#[test]
fn inflight_write_forces_wait() {
    let mut r = rig(4, MonitorConfig::new(4).write_batch(2).into());
    for i in 0..8 {
        fault(&mut r, i, true);
    }
    // Find a page that is in flight right now: flush just happened;
    // batches complete a few µs in the future. Fault one immediately.
    // (Evictions are in first-touch order: page 0 went out first.)
    let res = fault(&mut r, 0, false);
    assert!(
        matches!(
            res.resolution,
            Resolution::InflightWait | Resolution::RemoteRead | Resolution::WriteListSteal
        ),
        "got {:?}",
        res.resolution
    );
}

#[test]
fn wake_precedes_post_fault_work_on_zero_path() {
    let mut r = rig(2, None);
    fault(&mut r, 0, false);
    fault(&mut r, 1, false);
    // Third fault: insert + wake, then async eviction after wake.
    let res = fault(&mut r, 2, false);
    assert!(
        res.wake_at <= r.clock.now(),
        "eviction work may continue past the wake"
    );
}

#[test]
fn data_round_trips_through_store() {
    let mut r = rig(2, None);
    // Touch page 0 and give it real contents via CoW + frame store.
    fault(&mut r, 0, true);
    let vpn = r.region.page(0).vpn();
    let frame = {
        // Break the CoW so the page has a private frame.
        r.uffd.break_cow(&mut r.pt, &mut r.pm, vpn).unwrap()
    };
    r.pm.store(frame, PageContents::from_byte_fill(0x7E));
    // Push it out.
    fault(&mut r, 1, true);
    fault(&mut r, 2, true);
    fault(&mut r, 3, true);
    assert!(r.pt.get(vpn).is_none(), "page 0 must be evicted");
    r.monitor.drain_writes();
    // Bring it back and check the bytes survived.
    let res = fault(&mut r, 0, false);
    assert_eq!(res.resolution, Resolution::RemoteRead);
    let entry = r.pt.get(vpn).unwrap();
    assert_eq!(r.pm.load(entry.frame), &PageContents::from_byte_fill(0x7E));
}

#[test]
fn async_read_is_faster_than_sync() {
    let run = |opts: crate::Optimizations| {
        let clock = SimClock::new();
        let mut uffd = Userfaultfd::new(clock.clone(), SimRng::seed_from_u64(1));
        let region = Region::new(Vpn::new(0x1000), 512, PageClass::Anonymous);
        uffd.register(region).unwrap();
        // RAMCloud-class latency makes the overlap matter.
        let store =
            fluidmem_kv::RamCloudStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(2));
        let mut monitor = Monitor::new(
            MonitorConfig::new(64).optimizations(opts),
            Box::new(store),
            PartitionId::new(0),
            clock.clone(),
            SimRng::seed_from_u64(3),
        );
        let mut pt = PageTable::new();
        let mut pm = PhysicalMemory::new(1 << 20);
        // Warm: touch 256 pages (cap 64) then measure refaults.
        for i in 0..256 {
            monitor.handle_fault(&mut uffd, &mut pt, &mut pm, region.page(i).vpn(), true);
        }
        monitor.drain_writes();
        let mut total = fluidmem_sim::SimDuration::ZERO;
        let mut n = 0u32;
        for i in 0..128 {
            let t0 = clock.now();
            let res =
                monitor.handle_fault(&mut uffd, &mut pt, &mut pm, region.page(i).vpn(), false);
            if res.resolution == Resolution::RemoteRead {
                total += res.wake_at - t0;
                n += 1;
            }
        }
        total.as_micros_f64() / n.max(1) as f64
    };
    let sync_us = run(crate::Optimizations::none());
    let async_us = run(crate::Optimizations::full());
    assert!(
        async_us + 5.0 < sync_us,
        "async {async_us:.1}µs should beat sync {sync_us:.1}µs by several µs"
    );
}

#[test]
fn resize_down_evicts_then_recovers() {
    let mut r = rig(64, None);
    for i in 0..64 {
        fault(&mut r, i, false);
    }
    assert_eq!(r.monitor.resident_pages(), 64);
    r.monitor.resize(&mut r.uffd, &mut r.pt, &mut r.pm, 8);
    assert!(r.monitor.resident_pages() <= 8);
    assert_eq!(r.monitor.stats().resizes, 1);
    // Size back up: no eviction needed, future faults fill it again.
    r.monitor.resize(&mut r.uffd, &mut r.pt, &mut r.pm, 64);
    r.monitor.drain_writes();
    let res = fault(&mut r, 0, false);
    assert!(matches!(
        res.resolution,
        Resolution::RemoteRead | Resolution::WriteListSteal
    ));
}

#[test]
fn scan_referenced_policy_protects_hot_pages() {
    let config = MonitorConfig::new(8).lru_policy(LruPolicy::ScanReferenced { scan_batch: 4 });
    let mut r = rig(8, Some(config));
    for i in 0..8 {
        fault(&mut r, i, false);
    }
    // Keep page 0 hot via its referenced bit, then overflow the
    // buffer; page 0 should survive longer than FIFO would allow.
    for i in 8..12 {
        r.pt.set_flags(r.region.page(0).vpn(), PteFlags::REFERENCED);
        fault(&mut r, i, false);
    }
    assert!(
        r.pt.get(r.region.page(0).vpn()).is_some(),
        "hot page rotated away from eviction"
    );
}

#[test]
fn lost_page_detected_as_zero_fill() {
    // A tiny memcached evicts pages; the monitor must notice.
    let clock = SimClock::new();
    let mut uffd = Userfaultfd::new(clock.clone(), SimRng::seed_from_u64(1));
    let region = Region::new(Vpn::new(0x1000), 256, PageClass::Anonymous);
    uffd.register(region).unwrap();
    let store =
        fluidmem_kv::MemcachedStore::new(40 * 4096, clock.clone(), SimRng::seed_from_u64(2));
    let mut monitor = Monitor::new(
        MonitorConfig::new(8).write_batch(4),
        Box::new(store),
        PartitionId::new(0),
        clock.clone(),
        SimRng::seed_from_u64(3),
    );
    let mut pt = PageTable::new();
    let mut pm = PhysicalMemory::new(1 << 20);
    for i in 0..256 {
        monitor.handle_fault(&mut uffd, &mut pt, &mut pm, region.page(i).vpn(), true);
    }
    monitor.drain_writes();
    // 248 pages went to a 40-page cache: most are gone.
    let mut lost_seen = false;
    for i in 0..64 {
        monitor.handle_fault(&mut uffd, &mut pt, &mut pm, region.page(i).vpn(), false);
        if monitor.stats().lost_pages > 0 {
            lost_seen = true;
            break;
        }
    }
    assert!(lost_seen, "memcached eviction must surface as lost pages");
}

#[test]
fn sequential_prefetch_pulls_successors() {
    let clock = SimClock::new();
    let mut uffd = Userfaultfd::new(clock.clone(), SimRng::seed_from_u64(1));
    let region = Region::new(Vpn::new(0x1000), 256, PageClass::Anonymous);
    uffd.register(region).unwrap();
    let store = DramStore::new(1 << 26, clock.clone(), SimRng::seed_from_u64(2));
    let mut monitor = Monitor::new(
        MonitorConfig::new(16).prefetch(crate::PrefetchPolicy::Sequential { window: 4 }),
        Box::new(store),
        PartitionId::new(0),
        clock,
        SimRng::seed_from_u64(3),
    );
    let mut pt = PageTable::new();
    let mut pm = PhysicalMemory::new(1 << 20);
    // Populate and spill 64 pages, then drain so the store has them.
    for i in 0..64 {
        monitor.handle_fault(&mut uffd, &mut pt, &mut pm, region.page(i).vpn(), true);
    }
    monitor.drain_writes();
    // Grow the buffer so there is headroom: prefetch is capped at current
    // headroom (issuing into a full buffer would just churn the LRU).
    monitor.resize(&mut uffd, &mut pt, &mut pm, 32);
    // Refault page 0: pages 1..=4 should be prefetched.
    monitor.handle_fault(&mut uffd, &mut pt, &mut pm, region.page(0).vpn(), false);
    assert!(
        monitor.stats().prefetched_pages >= 3,
        "{:?}",
        monitor.stats()
    );
    // A sequential walk now mostly hits.
    for i in 1..4 {
        assert!(
            pt.get(region.page(i).vpn()).is_some(),
            "page {i} should be resident after prefetch"
        );
    }
}

fn faulty_rig(config: MonitorConfig, plan: fluidmem_sim::FaultPlan) -> Rig {
    let clock = SimClock::new();
    let mut uffd = Userfaultfd::new(clock.clone(), SimRng::seed_from_u64(1));
    let region = Region::new(Vpn::new(0x1000), 4096, PageClass::Anonymous);
    uffd.register(region).unwrap();
    let inner = DramStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(2));
    let store = fluidmem_kv::FaultInjectingStore::new(Box::new(inner), plan, clock.clone());
    let monitor = Monitor::new(
        config,
        Box::new(store),
        PartitionId::new(0),
        clock.clone(),
        SimRng::seed_from_u64(3),
    );
    Rig {
        uffd,
        pt: PageTable::new(),
        pm: PhysicalMemory::new(1 << 24),
        monitor,
        region,
        clock,
    }
}

#[test]
fn failed_flush_requeues_the_batch() {
    use fluidmem_sim::{FaultEvent, FaultKind, FaultPlan};
    // The first store op is the first flush's multi-write: refuse it.
    let plan = FaultPlan::new(SimRng::seed_from_u64(11)).script(FaultEvent {
        at_op: 0,
        kind: FaultKind::TransientError,
    });
    let mut r = faulty_rig(MonitorConfig::new(4).write_batch(2), plan);
    for i in 0..8 {
        fault(&mut r, i, true);
    }
    assert!(
        r.monitor.stats().flush_failures >= 1,
        "{:?}",
        r.monitor.stats()
    );
    // Nothing was lost: the refused batch went back on the write list
    // and a later flush (or the drain) writes it out.
    r.monitor.drain_writes();
    assert_eq!(r.monitor.pending_writes(), 0);
    let evicted_and_stored = r.monitor.store().len();
    assert!(
        evicted_and_stored >= 4,
        "refused pages must reach the store eventually, got {evicted_and_stored}"
    );
}

#[test]
fn reads_retry_through_transport_faults() {
    use fluidmem_sim::FaultPlan;
    let plan = FaultPlan::new(SimRng::seed_from_u64(21))
        .with_drop(0.15)
        .with_transient_error(0.15)
        .with_slow_replica(0.10);
    let mut r = faulty_rig(MonitorConfig::new(4), plan);
    for i in 0..16 {
        fault(&mut r, i, true);
    }
    r.monitor.drain_writes();
    for i in 0..16 {
        fault(&mut r, i, false);
    }
    let stats = r.monitor.stats();
    assert!(stats.remote_reads > 0, "{stats:?}");
    assert!(
        stats.read_retries > 0,
        "a ~30% fault rate must force read retries: {stats:?}"
    );
    assert_eq!(stats.lost_pages, 0, "transport faults are not data loss");
}

#[test]
fn sync_eviction_writes_retry_instead_of_panicking() {
    use fluidmem_sim::{FaultEvent, FaultKind, FaultPlan};
    let plan = FaultPlan::new(SimRng::seed_from_u64(31)).script(FaultEvent {
        at_op: 0,
        kind: FaultKind::Timeout,
    });
    let config = MonitorConfig::new(2).optimizations(crate::Optimizations::none());
    let mut r = faulty_rig(config, plan);
    // Three first touches: the third evicts synchronously; its put
    // times out once (op 0) and the retry succeeds.
    for i in 0..3 {
        fault(&mut r, i, true);
    }
    assert!(
        r.monitor.stats().write_retries >= 1,
        "{:?}",
        r.monitor.stats()
    );
    assert!(!r.monitor.store().is_empty(), "the eviction must land");
}

#[test]
fn drain_retries_failed_multi_writes() {
    use fluidmem_sim::FaultPlan;
    let plan = FaultPlan::new(SimRng::seed_from_u64(41))
        .with_drop(0.3)
        .with_transient_error(0.2);
    let mut r = faulty_rig(MonitorConfig::new(4).write_batch(64), plan);
    for i in 0..32 {
        fault(&mut r, i, true);
    }
    r.monitor.drain_writes();
    assert_eq!(r.monitor.pending_writes(), 0, "drain must finish the list");
    // Every evicted page is durable despite the ~50% fault rate.
    assert_eq!(r.monitor.store().len(), 32 - 4);
}

#[test]
fn flush_interval_forces_stale_flush() {
    let mut config = MonitorConfig::new(4).write_batch(1000);
    config.flush_interval = SimDuration::from_micros(50);
    let mut r = rig(4, Some(config));
    for i in 0..6 {
        fault(&mut r, i, true);
    }
    assert!(r.monitor.pending_writes() > 0);
    // Let virtual time pass, then any fault triggers the stale flush.
    r.clock.advance(SimDuration::from_millis(1));
    fault(&mut r, 20, false);
    assert!(
        r.monitor.stats().flushes > 0,
        "stale timer should have flushed"
    );
}

#[test]
fn prefetch_transients_are_counted_apart_from_misses() {
    use fluidmem_sim::FaultPlan;
    // The inner DRAM store never loses data, so any prefetch failure
    // is transport-injected, never a genuine miss.
    let plan = FaultPlan::new(SimRng::seed_from_u64(51))
        .with_timeout(0.25)
        .with_transient_error(0.15);
    let config = MonitorConfig::new(16).prefetch(crate::PrefetchPolicy::Sequential { window: 4 });
    let mut r = faulty_rig(config, plan);
    for i in 0..64 {
        fault(&mut r, i, true);
    }
    r.monitor.drain_writes();
    // Grow the buffer so the headroom cap does not suppress prefetch.
    r.monitor.resize(&mut r.uffd, &mut r.pt, &mut r.pm, 48);
    // Spread refaults so each one has evicted successors to prefetch.
    for i in [0, 8, 16, 24, 32, 40] {
        fault(&mut r, i, false);
    }
    let stats = r.monitor.stats();
    assert!(
        stats.prefetch_transient_errors > 0,
        "a ~40% fault rate must hit some prefetch reads: {stats:?}"
    );
    assert_eq!(
        stats.prefetch_misses, 0,
        "transport faults must not masquerade as misses: {stats:?}"
    );
    assert!(stats.prefetched_pages > 0, "{stats:?}");
}

#[test]
fn adjacent_regions_route_to_their_own_partitions() {
    let mut r = rig(64, None);
    let a = Region::new(Vpn::new(0x1000), 32, PageClass::Anonymous);
    let b = Region::new(Vpn::new(0x1020), 32, PageClass::Anonymous);
    r.monitor.register_partition(a, PartitionId::new(1));
    r.monitor.register_partition(b, PartitionId::new(2));
    // Interior and both boundaries of each region.
    assert_eq!(
        r.monitor.partition_of(Vpn::new(0x1000)),
        PartitionId::new(1)
    );
    assert_eq!(
        r.monitor.partition_of(Vpn::new(0x101f)),
        PartitionId::new(1)
    );
    assert_eq!(
        r.monitor.partition_of(Vpn::new(0x1020)),
        PartitionId::new(2)
    );
    assert_eq!(
        r.monitor.partition_of(Vpn::new(0x103f)),
        PartitionId::new(2)
    );
    // Past the last region: the range lookup finds `b`, but the
    // containment check must reject it and fall back to the default.
    assert_eq!(
        r.monitor.partition_of(Vpn::new(0x1040)),
        PartitionId::new(0)
    );
}

#[test]
fn fault_past_removed_region_uses_default_partition() {
    let mut r = rig(4, None);
    let a = Region::new(Vpn::new(0x1000), 8, PageClass::Anonymous);
    let b = Region::new(Vpn::new(0x1008), 8, PageClass::Anonymous);
    r.monitor.register_partition(a, PartitionId::new(3));
    r.monitor.register_partition(b, PartitionId::new(4));
    r.monitor.remove_region(&a);
    // VPNs inside and past the removed region must not resolve to a
    // neighboring (or stale) partition.
    assert_eq!(
        r.monitor.partition_of(Vpn::new(0x1002)),
        PartitionId::new(0)
    );
    assert_eq!(
        r.monitor.partition_of(Vpn::new(0x1009)),
        PartitionId::new(4)
    );
    // A fault in the removed range is a fresh first touch whose key,
    // once evicted and drained, lands in the default partition.
    for i in 0..6 {
        fault(&mut r, i, true);
    }
    r.monitor.drain_writes();
    assert!(r
        .monitor
        .store()
        .contains(ExternalKey::new(Vpn::new(0x1000), PartitionId::new(0))));
    assert!(!r
        .monitor
        .store()
        .contains(ExternalKey::new(Vpn::new(0x1000), PartitionId::new(3))));
}

#[test]
fn remove_region_spares_siblings_on_the_shared_partition() {
    let mut r = rig(4, None);
    // Two sub-ranges, both keyed under the monitor's default
    // partition (no register_partition call — the FluidMemMemory
    // shape).
    let a = Region::new(Vpn::new(0x1000), 8, PageClass::Anonymous);
    let b = Region::new(Vpn::new(0x1008), 8, PageClass::Anonymous);
    for i in 0..16 {
        fault(&mut r, i, true);
    }
    r.monitor.drain_writes();
    // Pages 0..12 were evicted: all 8 of `a`'s and 4 of `b`'s.
    assert_eq!(r.monitor.store().len(), 12);
    r.monitor.remove_region(&a);
    assert_eq!(
        r.monitor.store().len(),
        4,
        "removing `a` must not wipe `b`'s pages off the shared partition"
    );
    // `b`'s evicted pages are still readable.
    assert!(r
        .monitor
        .store()
        .contains(ExternalKey::new(b.start(), PartitionId::new(0))));
    let res = fault(&mut r, 8, false);
    assert_eq!(res.resolution, Resolution::RemoteRead);
    assert_eq!(r.monitor.stats().lost_pages, 0);
}

#[test]
fn remove_region_drops_a_dedicated_partition_wholesale() {
    let mut r = rig(4, None);
    let a = Region::new(Vpn::new(0x1000), 8, PageClass::Anonymous);
    let b = Region::new(Vpn::new(0x1008), 8, PageClass::Anonymous);
    r.monitor.register_partition(a, PartitionId::new(5));
    r.monitor.register_partition(b, PartitionId::new(6));
    for i in 0..16 {
        fault(&mut r, i, true);
    }
    r.monitor.drain_writes();
    assert_eq!(r.monitor.store().len(), 12);
    r.monitor.remove_region(&a);
    // Partition 5 was `a`'s alone: bulk-dropped. Partition 6 intact.
    assert_eq!(r.monitor.store().len(), 4);
    assert!(r
        .monitor
        .store()
        .contains(ExternalKey::new(Vpn::new(0x1008), PartitionId::new(6))));
}

// ---------------------------------------------------------------------------
// Staged pipeline (submit_fault / complete_next) and the capacity clamp.
// ---------------------------------------------------------------------------

/// Drives one fault through the staged pipeline, completing parked
/// operations first whenever the in-flight table is at depth.
fn pipelined_fault(r: &mut Rig, i: u64, write: bool) -> SubmitOutcome {
    let vpn = r.region.page(i).vpn();
    while r.monitor.inflight_len() >= r.monitor.config().max_inflight {
        r.monitor.complete_next(&mut r.uffd, &mut r.pt, &mut r.pm);
    }
    r.monitor
        .submit_fault(&mut r.uffd, &mut r.pt, &mut r.pm, vpn, write)
}

#[test]
fn zero_capacity_quota_evicts_the_refaulted_page() {
    // Regression: a refault under a zero-page quota used to leave the
    // page resident forever — the read path only made room *before* its
    // LRU insert, never after, so the last fault's page leaked past a
    // full revocation (§VI-E capability-style resize to zero).
    let mut r = rig(2, None);
    for i in 0..4 {
        fault(&mut r, i, true);
    }
    r.monitor.drain_writes();
    r.monitor.resize(&mut r.uffd, &mut r.pt, &mut r.pm, 0);
    assert_eq!(r.monitor.resident_pages(), 0, "resize drains the buffer");

    let res = fault(&mut r, 0, false);
    assert_eq!(res.resolution, Resolution::RemoteRead);
    assert_eq!(
        r.monitor.resident_pages(),
        0,
        "a zero quota must evict the refaulted page post-wake, not pin it"
    );
    r.monitor.drain_writes();
    assert_eq!(r.monitor.resident_pages(), 0);
}

#[test]
fn depth_one_pipeline_is_byte_identical_to_call_return() {
    // The same fault schedule through handle_fault and through
    // submit/complete at max_inflight = 1 must produce identical stats,
    // an identical virtual clock, and byte-identical telemetry exports:
    // the pipeline is a pure re-staging of the call-return path.
    let drive = |pipelined: bool| {
        let mut r = rig(4, None);
        r.monitor.telemetry().enable_spans();
        let schedule: Vec<(u64, bool)> = (0..12)
            .map(|i| (i, i % 3 == 0))
            .chain((0..12).map(|i| (i, i % 2 == 0)))
            .collect();
        for (i, write) in schedule {
            if pipelined {
                pipelined_fault(&mut r, i, write);
                r.monitor.drain_inflight(&mut r.uffd, &mut r.pt, &mut r.pm);
            } else {
                fault(&mut r, i, write);
            }
        }
        r.monitor.drain_writes();
        (
            r.monitor.stats(),
            r.clock.now(),
            r.monitor.telemetry().export_prometheus(),
            r.monitor.telemetry().export_chrome_trace(),
        )
    };
    let (sync_stats, sync_now, sync_prom, sync_trace) = drive(false);
    let (pipe_stats, pipe_now, pipe_prom, pipe_trace) = drive(true);
    assert_eq!(sync_stats, pipe_stats);
    assert_eq!(sync_now, pipe_now);
    assert_eq!(sync_prom, pipe_prom);
    assert_eq!(sync_trace, pipe_trace);
}

#[test]
fn deeper_pipeline_overlaps_store_reads() {
    let deep = MonitorConfig::new(16).inflight(4);
    let mut r = rig(16, Some(deep));
    for i in 0..8 {
        fault(&mut r, i, true);
    }
    // Push every page out to the store so refaults take the read path.
    r.monitor.resize(&mut r.uffd, &mut r.pt, &mut r.pm, 0);
    r.monitor.drain_writes();
    r.monitor.resize(&mut r.uffd, &mut r.pt, &mut r.pm, 16);

    let a = pipelined_fault(&mut r, 0, false);
    let b = pipelined_fault(&mut r, 1, false);
    let c = pipelined_fault(&mut r, 2, false);
    assert!(matches!(a, SubmitOutcome::Parked(_)));
    assert!(matches!(b, SubmitOutcome::Parked(_)));
    assert!(matches!(c, SubmitOutcome::Parked(_)));
    assert_eq!(r.monitor.inflight_len(), 3, "three reads in flight at once");
    assert!(r.monitor.next_completion_at().is_some());

    let done = r.monitor.drain_inflight(&mut r.uffd, &mut r.pt, &mut r.pm);
    assert_eq!(done.len(), 3);
    assert!(done.iter().all(|c| c.resolution == Resolution::RemoteRead));
    // Completion order is completion-time order: wakes never go backwards.
    assert!(done.windows(2).all(|w| w[0].wake_at <= w[1].wake_at));
    assert_eq!(r.monitor.inflight_len(), 0);
    assert_eq!(r.monitor.stats().remote_reads, 3);
    // The op slab plateaus at peak depth: draining frees slots to the
    // pool rather than shrinking, and further parking reuses them.
    assert_eq!(r.monitor.inflight.pool_slots(), 3);
    let d = pipelined_fault(&mut r, 3, false);
    assert!(matches!(d, SubmitOutcome::Parked(_)));
    r.monitor.drain_inflight(&mut r.uffd, &mut r.pt, &mut r.pm);
    assert_eq!(
        r.monitor.inflight.pool_slots(),
        3,
        "slab reuses pooled slots"
    );
}

#[test]
fn fault_on_inflight_page_coalesces_onto_the_pending_read() {
    let deep = MonitorConfig::new(16).inflight(4);
    let mut r = rig(16, Some(deep));
    for i in 0..4 {
        fault(&mut r, i, true);
    }
    r.monitor.resize(&mut r.uffd, &mut r.pt, &mut r.pm, 0);
    r.monitor.drain_writes();
    r.monitor.resize(&mut r.uffd, &mut r.pt, &mut r.pm, 16);

    let first = pipelined_fault(&mut r, 0, false);
    let SubmitOutcome::Parked(id) = first else {
        panic!("first fault should park on the store read");
    };
    // A second vCPU touches the same page while the fetch is in flight —
    // and with a write, so the shared completion must dirty the page.
    let second = pipelined_fault(&mut r, 0, true);
    assert!(matches!(second, SubmitOutcome::Coalesced(got) if got == id));
    assert_eq!(r.monitor.stats().coalesced_faults, 1);
    assert_eq!(r.monitor.inflight_len(), 1, "no duplicate read was issued");

    let done = r.monitor.drain_inflight(&mut r.uffd, &mut r.pt, &mut r.pm);
    assert_eq!(done.len(), 1);
    assert_eq!(done[0].waiters, 1);
    assert_eq!(r.monitor.stats().remote_reads, 1);
    assert!(
        r.pt.has_flags(r.region.page(0).vpn(), PteFlags::DIRTY),
        "the coalesced writer's dirty bit lands on the shared install"
    );
}
