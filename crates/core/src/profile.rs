//! Per-code-path profiling (Table I).
//!
//! The table is a thin view over eight telemetry [`Histogram`]s — one
//! per instrumented code path. Registering them in a [`Registry`] under
//! [`consts::CODEPATH_LATENCY_US`] exports the same data as Prometheus
//! buckets, so Table I and the metrics endpoint read one source of
//! truth. The histogram's exact moments and bounded percentile
//! subsample reproduce the previous profiler's numbers bit for bit.

use std::fmt;

use fluidmem_sim::SimDuration;
use fluidmem_telemetry::{consts, Histogram, Registry};

/// The instrumented sections of the monitor's fault-handling path — the
/// exact row set of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodePath {
    /// Updating the monitor's page-cache metadata.
    UpdatePageCache,
    /// Inserting into the page-tracker hash.
    InsertPageHashNode,
    /// Inserting into the LRU list.
    InsertLruCacheNode,
    /// The `UFFD_ZEROPAGE` ioctl.
    UffdZeropage,
    /// The `UFFD_REMAP` ioctl (including any TLB wait actually paid).
    UffdRemap,
    /// The `UFFD_COPY` ioctl.
    UffdCopy,
    /// Reading a page from the key-value store.
    ReadPage,
    /// Writing a page to the key-value store.
    WritePage,
}

impl CodePath {
    /// All paths, in Table I's row order.
    pub const ALL: [CodePath; 8] = [
        CodePath::UpdatePageCache,
        CodePath::InsertPageHashNode,
        CodePath::InsertLruCacheNode,
        CodePath::UffdZeropage,
        CodePath::UffdRemap,
        CodePath::UffdCopy,
        CodePath::ReadPage,
        CodePath::WritePage,
    ];

    fn index(self) -> usize {
        match self {
            CodePath::UpdatePageCache => 0,
            CodePath::InsertPageHashNode => 1,
            CodePath::InsertLruCacheNode => 2,
            CodePath::UffdZeropage => 3,
            CodePath::UffdRemap => 4,
            CodePath::UffdCopy => 5,
            CodePath::ReadPage => 6,
            CodePath::WritePage => 7,
        }
    }
}

impl fmt::Display for CodePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CodePath::UpdatePageCache => "UPDATE_PAGE_CACHE",
            CodePath::InsertPageHashNode => "INSERT_PAGE_HASH_NODE",
            CodePath::InsertLruCacheNode => "INSERT_LRU_CACHE_NODE",
            CodePath::UffdZeropage => "UFFD_ZEROPAGE",
            CodePath::UffdRemap => "UFFD_REMAP",
            CodePath::UffdCopy => "UFFD_COPY",
            CodePath::ReadPage => "READ_PAGE",
            CodePath::WritePage => "WRITE_PAGE",
        };
        f.write_str(s)
    }
}

/// The statistics reported per code path: average, standard deviation,
/// and 99th percentile, in microseconds (Table I's columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStats {
    /// Number of spans recorded.
    pub count: u64,
    /// Mean latency (µs).
    pub avg_us: f64,
    /// Standard deviation (µs).
    pub stdev_us: f64,
    /// 99th percentile (µs).
    pub p99_us: f64,
}

/// Collects span durations for each [`CodePath`].
///
/// # Example
///
/// ```
/// use fluidmem_core::{CodePath, ProfileTable};
/// use fluidmem_sim::SimDuration;
///
/// let profile = ProfileTable::new();
/// profile.record(CodePath::ReadPage, SimDuration::from_micros(15));
/// let stats = profile.stats(CodePath::ReadPage);
/// assert_eq!(stats.count, 1);
/// assert!((stats.avg_us - 15.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProfileTable {
    histograms: [Histogram; 8],
}

impl ProfileTable {
    /// Creates an empty table (detached histograms).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers each path's histogram in `registry` under
    /// [`consts::CODEPATH_LATENCY_US`], labeled by the Table I row name.
    /// Spans already recorded carry over (the registry adopts the live
    /// handles).
    pub fn register(&self, registry: &Registry) {
        for path in CodePath::ALL {
            registry.adopt_histogram(
                consts::CODEPATH_LATENCY_US,
                &[(consts::LABEL_PATH, &path.to_string())],
                &self.histograms[path.index()],
            );
        }
    }

    /// Records one span. Summaries are exact; the percentile sample is
    /// systematically subsampled past its cap to bound memory.
    pub fn record(&self, path: CodePath, duration: SimDuration) {
        self.histograms[path.index()].observe(duration);
    }

    /// Statistics for one path.
    pub fn stats(&self, path: CodePath) -> PathStats {
        let snap = self.histograms[path.index()].snapshot();
        PathStats {
            count: snap.count,
            avg_us: snap.mean_us,
            stdev_us: snap.stdev_us,
            p99_us: snap.p99_us,
        }
    }

    /// Rows for every path with at least one span, in Table I order.
    pub fn rows(&self) -> Vec<(CodePath, PathStats)> {
        CodePath::ALL
            .iter()
            .map(|&p| (p, self.stats(p)))
            .filter(|(_, s)| s.count > 0)
            .collect()
    }

    /// Drops all recorded spans. Registered histograms stay registered
    /// (the handles reset in place).
    pub fn clear(&self) {
        for h in &self.histograms {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE_CAP: u64 = fluidmem_telemetry::consts::HIST_SAMPLE_CAP;

    #[test]
    fn records_per_path_independently() {
        let p = ProfileTable::new();
        p.record(CodePath::ReadPage, SimDuration::from_micros(10));
        p.record(CodePath::ReadPage, SimDuration::from_micros(20));
        p.record(CodePath::WritePage, SimDuration::from_micros(5));
        assert_eq!(p.stats(CodePath::ReadPage).count, 2);
        assert!((p.stats(CodePath::ReadPage).avg_us - 15.0).abs() < 1e-9);
        assert_eq!(p.stats(CodePath::WritePage).count, 1);
        assert_eq!(p.stats(CodePath::UffdCopy).count, 0);
    }

    #[test]
    fn rows_skip_empty_paths_and_keep_order() {
        let p = ProfileTable::new();
        p.record(CodePath::WritePage, SimDuration::from_micros(1));
        p.record(CodePath::UffdZeropage, SimDuration::from_micros(1));
        let rows = p.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, CodePath::UffdZeropage, "table order preserved");
        assert_eq!(rows[1].0, CodePath::WritePage);
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(CodePath::UffdRemap.to_string(), "UFFD_REMAP");
        assert_eq!(
            CodePath::InsertLruCacheNode.to_string(),
            "INSERT_LRU_CACHE_NODE"
        );
    }

    #[test]
    fn sample_retention_is_bounded_but_stats_exact() {
        let p = ProfileTable::new();
        let n = (SAMPLE_CAP * 3) as usize;
        for i in 0..n {
            p.record(
                CodePath::ReadPage,
                SimDuration::from_micros((i % 100) as u64),
            );
        }
        let stats = p.stats(CodePath::ReadPage);
        assert_eq!(stats.count, n as u64, "summary counts every span");
        assert!(
            (stats.avg_us - 49.5).abs() < 0.5,
            "exact mean {}",
            stats.avg_us
        );
        assert!(
            (stats.p99_us - 99.0).abs() < 2.0,
            "subsampled p99 {}",
            stats.p99_us
        );
    }

    #[test]
    fn clear_resets() {
        let p = ProfileTable::new();
        p.record(CodePath::ReadPage, SimDuration::from_micros(10));
        p.clear();
        assert!(p.rows().is_empty());
    }

    #[test]
    fn registered_table_exports_through_the_registry() {
        let p = ProfileTable::new();
        p.record(CodePath::UffdRemap, SimDuration::from_micros(3));
        let reg = Registry::new();
        p.register(&reg);
        // Pre-registration spans carry over…
        let h = reg.histogram(
            consts::CODEPATH_LATENCY_US,
            &[(consts::LABEL_PATH, "UFFD_REMAP")],
        );
        assert_eq!(h.snapshot().count, 1);
        // …and the registry's handle IS the table's handle.
        h.observe(SimDuration::from_micros(5));
        assert_eq!(p.stats(CodePath::UffdRemap).count, 2);
    }
}
