//! The monitor process: FluidMem's user-space page-fault handler.

use fluidmem_coord::PartitionId;
use fluidmem_kv::{ExternalKey, KeyValueStore, KvError};
use fluidmem_mem::{PageContents, PageTable, PhysicalMemory, PteFlags, Region, Vpn};
use fluidmem_sim::{SimClock, SimInstant, SimRng, Tracer};
use fluidmem_uffd::Userfaultfd;

use crate::config::{EvictionMechanism, LruPolicy, MonitorConfig, PrefetchPolicy};
use crate::lru_buffer::LruBuffer;
use crate::page_tracker::PageTracker;
use crate::profile::{CodePath, ProfileTable};
use crate::stats::{MonitorCounters, MonitorStats};
use crate::write_list::{StealOutcome, WriteList};
use fluidmem_telemetry::{consts, Gauge, Histogram, Telemetry};

/// How a fault was resolved by the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resolution {
    /// First access: `UFFD_ZEROPAGE`, no remote read (Figure 2).
    ZeroFill,
    /// Page read back from the key-value store.
    RemoteRead,
    /// Page stolen from the pending write list (§V-B).
    WriteListSteal,
    /// Page was in an in-flight write; the fault waited for the write to
    /// complete and then used the buffered copy (§V-B).
    InflightWait,
}

impl Resolution {
    /// The `resolution` label value this kind is exported under.
    pub fn label(self) -> &'static str {
        match self {
            Resolution::ZeroFill => "zero_fill",
            Resolution::RemoteRead => "remote_read",
            Resolution::WriteListSteal => "write_list_steal",
            Resolution::InflightWait => "inflight_wait",
        }
    }

    /// Every resolution kind, in label order.
    pub const ALL: [Resolution; 4] = [
        Resolution::ZeroFill,
        Resolution::RemoteRead,
        Resolution::WriteListSteal,
        Resolution::InflightWait,
    ];

    fn index(self) -> usize {
        match self {
            Resolution::ZeroFill => 0,
            Resolution::RemoteRead => 1,
            Resolution::WriteListSteal => 2,
            Resolution::InflightWait => 3,
        }
    }
}

/// The outcome of [`Monitor::handle_fault`].
#[derive(Debug, Clone, Copy)]
pub struct FaultResolution {
    /// How the fault was resolved.
    pub resolution: Resolution,
    /// The instant the guest vCPU was woken. Work the monitor performs
    /// after this (asynchronous eviction, flushes) advances the clock but
    /// does not extend the guest-observed fault latency.
    pub wake_at: SimInstant,
}

/// FluidMem's monitor process (paper §V).
///
/// "Its primary responsibility is to watch for page faults and resolve
/// them before waking up the faulting process." The monitor owns the
/// page tracker, the resizable LRU buffer, the write list, and the
/// key-value store client; the kernel-side objects (userfaultfd, page
/// table, physical memory) are passed in per call because they belong to
/// the hypervisor.
///
/// See [`FluidMemMemory`](crate::FluidMemMemory) for the packaged
/// `MemoryBackend`, which is the usual way to drive a monitor.
pub struct Monitor {
    config: MonitorConfig,
    tracker: PageTracker,
    lru: LruBuffer,
    write_list: WriteList,
    store: Box<dyn KeyValueStore>,
    partition: PartitionId,
    /// Per-region partition overrides (multi-VM hosting): region start →
    /// (region, partition).
    region_partitions: std::collections::BTreeMap<u64, (Region, PartitionId)>,
    profile: ProfileTable,
    stats: MonitorCounters,
    telemetry: Telemetry,
    /// Guest-observed fault latency, one histogram per [`Resolution`].
    fault_latency: [Histogram; 4],
    lru_resident: Gauge,
    lru_capacity: Gauge,
    write_list_pending: Gauge,
    tracer: Tracer,
    clock: SimClock,
    rng: SimRng,
}

impl Monitor {
    /// Creates a monitor over a key-value store, using `partition` for
    /// this VM's keys.
    pub fn new(
        config: MonitorConfig,
        store: Box<dyn KeyValueStore>,
        partition: PartitionId,
        clock: SimClock,
        rng: SimRng,
    ) -> Self {
        let lru = LruBuffer::new(config.lru_capacity);
        let telemetry = Telemetry::new(clock.clone());
        let monitor = Monitor {
            config,
            tracker: PageTracker::new(),
            lru,
            write_list: WriteList::new(),
            store,
            partition,
            region_partitions: std::collections::BTreeMap::new(),
            profile: ProfileTable::new(),
            stats: MonitorCounters::new(),
            telemetry,
            fault_latency: Default::default(),
            lru_resident: Gauge::new(),
            lru_capacity: Gauge::new(),
            write_list_pending: Gauge::new(),
            tracer: Tracer::disabled(),
            clock,
            rng,
        };
        monitor.update_gauges();
        monitor
    }

    /// Swaps in a shared telemetry handle and registers every live
    /// instrument in its registry: the monitor's event counters, the
    /// Table I code-path profile, the fault-latency histograms, the LRU
    /// and write-list gauges, and the store's own counters. Accumulated
    /// values carry over.
    pub fn attach_telemetry(&mut self, telemetry: &Telemetry) {
        let telemetry = telemetry.clone();
        {
            let registry = telemetry.registry();
            self.stats.register(registry);
            self.profile.register(registry);
            self.store.instrument(registry);
            registry.adopt_gauge(consts::LRU_RESIDENT_PAGES, &[], &self.lru_resident);
            registry.adopt_gauge(consts::LRU_CAPACITY_PAGES, &[], &self.lru_capacity);
            registry.adopt_gauge(consts::WRITE_LIST_PENDING, &[], &self.write_list_pending);
            for r in Resolution::ALL {
                registry.adopt_histogram(
                    consts::FAULT_LATENCY_US,
                    &[(consts::LABEL_RESOLUTION, r.label())],
                    &self.fault_latency[r.index()],
                );
            }
        }
        self.telemetry = telemetry;
        self.update_gauges();
    }

    /// Like [`Monitor::attach_telemetry`], but every monitor-owned
    /// instrument is additionally keyed by a `vm` label so N monitors can
    /// share one registry (multi-VM hosting) without clobbering each
    /// other — adoption replaces identically-keyed entries, so unlabeled
    /// registration from several monitors would leave only the last one
    /// visible.
    ///
    /// The Table I code-path profile is *not* registered here: its rows
    /// are monitor-global by construction and only meaningful when a
    /// single monitor owns the registry.
    pub fn attach_telemetry_labeled(&mut self, telemetry: &Telemetry, vm: &str) {
        let telemetry = telemetry.clone();
        {
            let registry = telemetry.registry();
            self.stats.register_labeled(registry, vm);
            self.store.instrument(registry);
            let vm_label = [(consts::LABEL_VM, vm)];
            registry.adopt_gauge(consts::LRU_RESIDENT_PAGES, &vm_label, &self.lru_resident);
            registry.adopt_gauge(consts::LRU_CAPACITY_PAGES, &vm_label, &self.lru_capacity);
            registry.adopt_gauge(
                consts::WRITE_LIST_PENDING,
                &vm_label,
                &self.write_list_pending,
            );
            for r in Resolution::ALL {
                registry.adopt_histogram(
                    consts::FAULT_LATENCY_US,
                    &[
                        (consts::LABEL_RESOLUTION, r.label()),
                        (consts::LABEL_VM, vm),
                    ],
                    &self.fault_latency[r.index()],
                );
            }
        }
        self.telemetry = telemetry;
        self.update_gauges();
    }

    /// The telemetry handle spans and metrics flow through.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    fn update_gauges(&self) {
        self.lru_resident.set(self.lru.len() as i64);
        self.lru_capacity.set(self.lru.capacity() as i64);
        self.write_list_pending
            .set(self.write_list.pending_len() as i64);
    }

    /// Turns on event tracing (for the Figure 2 timeline and debugging).
    pub fn enable_tracing(&mut self) {
        self.tracer = Tracer::enabled();
    }

    /// The recorded trace events.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    fn trace(&mut self, message: impl FnOnce() -> String) {
        let now = self.clock.now();
        self.tracer.emit(now, "monitor", message);
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &MonitorConfig {
        &self.config
    }

    /// A snapshot of the monitor's counters.
    pub fn stats(&self) -> MonitorStats {
        self.stats.snapshot()
    }

    /// Per-code-path profile (Table I).
    pub fn profile(&self) -> &ProfileTable {
        &self.profile
    }

    /// Clears the profile (e.g. after warm-up).
    pub fn clear_profile(&mut self) {
        self.profile.clear();
    }

    /// Pages currently resident (the VM's footprint).
    pub fn resident_pages(&self) -> u64 {
        self.lru.len()
    }

    /// The LRU capacity.
    pub fn capacity(&self) -> u64 {
        self.lru.capacity()
    }

    /// Pages the monitor has ever seen.
    pub fn seen_pages(&self) -> usize {
        self.tracker.len()
    }

    /// Pages awaiting writeback.
    pub fn pending_writes(&self) -> usize {
        self.write_list.pending_len()
    }

    /// The store (for inspection in tests and benches).
    pub fn store(&self) -> &dyn KeyValueStore {
        self.store.as_ref()
    }

    /// This VM's partition.
    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Routes a region's keys to a specific partition (one hypervisor
    /// monitor serving several VMs, paper §IV).
    pub fn register_partition(&mut self, region: Region, partition: PartitionId) {
        self.region_partitions
            .insert(region.start().raw(), (region, partition));
    }

    /// The partition a page's key falls under.
    pub fn partition_of(&self, vpn: Vpn) -> PartitionId {
        if let Some((_, (region, partition))) =
            self.region_partitions.range(..=vpn.raw()).next_back()
        {
            if region.contains(vpn) {
                return *partition;
            }
        }
        self.partition
    }

    /// How many of `region`'s pages are currently resident.
    pub fn resident_in(&self, region: &Region) -> u64 {
        self.lru.count_in(region.start(), region.end())
    }

    fn key(&self, vpn: Vpn) -> ExternalKey {
        ExternalKey::new(vpn, self.partition_of(vpn))
    }

    fn charge(&mut self, model: &fluidmem_sim::LatencyModel) {
        let d = model.sample(&mut self.rng);
        self.clock.advance(d);
    }

    /// Handles one page fault for `vpn`. The caller (the backend) has
    /// already charged fault-trap and event-delivery costs via the
    /// userfaultfd object.
    pub fn handle_fault(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        vpn: Vpn,
        write: bool,
    ) -> FaultResolution {
        let t0 = self.clock.now();
        let fault_span = self
            .telemetry
            .begin_with(consts::TRACK_MONITOR, "fault", || {
                vec![("vpn", format!("{vpn}")), ("write", write.to_string())]
            });
        self.stats.faults.inc();
        self.write_list.retire(self.clock.now());
        self.run_lru_policy(pt);

        // "The monitor keeps a list of already seen pages to avoid reads
        // from the remote key-value store for first-time accesses."
        self.trace(|| format!("userfaultfd event: fault at {vpn} (write={write})"));
        let lookup = self
            .telemetry
            .begin(consts::TRACK_MONITOR, "page_hash_lookup");
        self.charge(&self.config.costs.hash_lookup.clone());
        let seen = self.tracker.contains(vpn);
        self.telemetry.end(lookup);
        let res = if !seen {
            self.trace(|| format!("pagetracker: {vpn} unseen -> zero-page path"));
            self.handle_first_touch(uffd, pt, pm, vpn)
        } else {
            self.trace(|| format!("pagetracker: {vpn} seen before -> read path"));
            self.handle_refault(uffd, pt, pm, vpn, write)
        };
        // The guest-observed latency ends at the wake, not at the end of
        // post-wake work (which has already advanced the clock).
        self.telemetry.end_at(fault_span, res.wake_at);
        self.telemetry
            .instant_at(consts::TRACK_GUEST, "wake", res.wake_at);
        self.fault_latency[res.resolution.index()].observe(res.wake_at - t0);
        self.update_gauges();
        res
    }

    /// Figure 2's fast path: zero-fill, wake, then evict asynchronously.
    fn handle_first_touch(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        vpn: Vpn,
    ) -> FaultResolution {
        let t0 = self.clock.now();
        let span = self.telemetry.begin(consts::TRACK_MONITOR, "UFFD_ZEROPAGE");
        uffd.zeropage(pt, vpn).expect("first touch maps cleanly");
        self.telemetry.end(span);
        self.profile
            .record(CodePath::UffdZeropage, self.clock.now() - t0);

        let t0 = self.clock.now();
        let span = self
            .telemetry
            .begin(consts::TRACK_MONITOR, "insert_page_hash");
        self.charge(&self.config.costs.insert_page_hash.clone());
        self.tracker.insert(vpn);
        self.telemetry.end(span);
        self.profile
            .record(CodePath::InsertPageHashNode, self.clock.now() - t0);

        let t0 = self.clock.now();
        let span = self.telemetry.begin(consts::TRACK_MONITOR, "insert_lru");
        self.charge(&self.config.costs.insert_lru.clone());
        self.lru.insert(vpn);
        self.telemetry.end(span);
        self.profile
            .record(CodePath::InsertLruCacheNode, self.clock.now() - t0);

        uffd.wake();
        let wake_at = self.clock.now();
        self.trace(|| format!("UFFD_ZEROPAGE resolved {vpn}; guest woken (end of critical path)"));
        self.stats.zero_fills.inc();

        // Asynchronous (post-wake) eviction — the blue path of Figure 2.
        self.evict_to_capacity(uffd, pt, pm);
        self.maybe_flush();
        FaultResolution {
            resolution: Resolution::ZeroFill,
            wake_at,
        }
    }

    /// The read path: the page was evicted earlier and must come back.
    fn handle_refault(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        vpn: Vpn,
        write: bool,
    ) -> FaultResolution {
        let key = self.key(vpn);

        // §V-B: "the page fault handler can steal pages from the pending
        // write list ... and shortcut two round trips".
        let span = self.telemetry.begin(consts::TRACK_MONITOR, "steal_check");
        self.charge(&self.config.costs.steal_check.clone());
        let steal = self.write_list.steal(key, self.clock.now());
        self.telemetry.end(span);
        let (contents, resolution) = match steal {
            StealOutcome::Stolen(contents) => {
                self.stats.write_list_steals.inc();
                // Make room (the page is coming back in).
                self.evict_while_full(uffd, pt, pm);
                (contents, Resolution::WriteListSteal)
            }
            StealOutcome::WaitInflight { until, contents } => {
                // "There is no other choice than to wait for the write to
                // complete", after which the buffered copy is used.
                self.clock.advance_to(until);
                self.write_list.retire(self.clock.now());
                self.stats.inflight_waits.inc();
                self.evict_while_full(uffd, pt, pm);
                (contents, Resolution::InflightWait)
            }
            StealOutcome::Miss => {
                let contents = if self.config.optimizations.async_read {
                    self.read_async(uffd, pt, pm, key)
                } else {
                    self.read_sync(uffd, pt, pm, key)
                };
                self.stats.remote_reads.inc();
                (contents, Resolution::RemoteRead)
            }
        };

        // Install the page and wake the guest.
        let t0 = self.clock.now();
        let span = self.telemetry.begin(consts::TRACK_MONITOR, "UFFD_COPY");
        uffd.copy(pt, pm, vpn, contents)
            .expect("refault destination is unmapped");
        self.telemetry.end(span);
        self.profile
            .record(CodePath::UffdCopy, self.clock.now() - t0);
        if write {
            pt.set_flags(vpn, PteFlags::DIRTY);
        }

        let t0 = self.clock.now();
        let span = self.telemetry.begin(consts::TRACK_MONITOR, "insert_lru");
        self.charge(&self.config.costs.insert_lru.clone());
        self.lru.insert(vpn);
        self.telemetry.end(span);
        self.profile
            .record(CodePath::InsertLruCacheNode, self.clock.now() - t0);

        uffd.wake();
        let wake_at = self.clock.now();
        self.trace(|| format!("{vpn} installed via UFFD_COPY; guest woken (end of critical path)"));
        // Post-wake proactive work: prefetch successors of the faulting
        // page (overlapping asynchronous reads), then flush.
        self.maybe_prefetch(uffd, pt, pm, vpn);
        self.maybe_flush();
        FaultResolution {
            resolution,
            wake_at,
        }
    }

    /// Pulls sequential successors of a refaulted page back from the
    /// store before the guest asks for them.
    fn maybe_prefetch(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        vpn: Vpn,
    ) {
        let PrefetchPolicy::Sequential { window } = self.config.prefetch else {
            return;
        };
        // Issue every read first so the flights overlap.
        let mut pendings = Vec::new();
        for i in 1..=window {
            let candidate = vpn.offset(i);
            if !self.tracker.contains(candidate)
                || self.lru.contains(candidate)
                || pt.get(candidate).is_some()
                || uffd.region_containing(candidate).is_none()
            {
                continue;
            }
            let key = self.key(candidate);
            if self.write_list.is_tracked(key) {
                continue; // its freshest copy is local, not in the store
            }
            pendings.push((candidate, self.store.begin_get(key)));
        }
        for (candidate, pending) in pendings {
            match self.store.finish_get(pending) {
                Ok(contents) => {
                    if uffd.copy(pt, pm, candidate, contents).is_ok() {
                        self.lru.insert(candidate);
                        self.stats.prefetched_pages.inc();
                    } else {
                        // The page got mapped while the read was in
                        // flight; the fetched copy is redundant, not
                        // lost, but it must not vanish unaccounted.
                        self.stats.prefetch_copy_skips.inc();
                        self.trace(|| {
                            format!("prefetch of {candidate} skipped: page already mapped")
                        });
                    }
                }
                Err(KvError::NotFound(_)) => {
                    self.stats.prefetch_misses.inc();
                }
                Err(e) if e.is_retryable() => {
                    // Speculative work doesn't spend the retry budget: if
                    // the guest actually faults on the page it is fetched
                    // with full retries; here the attempt is just dropped
                    // and counted as transient, not as a miss.
                    self.stats.prefetch_transient_errors.inc();
                    self.trace(|| format!("prefetch of {candidate} hit a transient error ({e})"));
                }
                Err(e) => panic!("store failure on prefetch: {e}"),
            }
        }
        self.evict_to_capacity(uffd, pt, pm);
    }

    /// Synchronous read (Table II "Default"): the full store round trip
    /// sits on the critical path, then the eviction runs.
    fn read_sync(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        key: ExternalKey,
    ) -> PageContents {
        self.charge(&self.config.costs.sync_read_staging.clone());
        let t0 = self.clock.now();
        let span = self.telemetry.begin(consts::TRACK_MONITOR, "kv.read");
        let contents = self.fetch_with_retries(key, 0);
        self.telemetry.end(span);
        self.profile
            .record(CodePath::ReadPage, self.clock.now() - t0);

        self.evict_while_full(uffd, pt, pm);
        self.bookkeeping_update_cache();
        contents
    }

    /// Asynchronous read (§V-B): issue the top half, run the eviction and
    /// bookkeeping during the flight, then complete the bottom half.
    fn read_async(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        key: ExternalKey,
    ) -> PageContents {
        let t0 = self.clock.now();
        let span = self.telemetry.begin(consts::TRACK_MONITOR, "kv.read");
        self.trace(|| format!("async read top half issued for {key}"));
        let pending = self.store.begin_get(key);
        // The in-flight window on the kv track: its span visibly overlaps
        // the UFFD_REMAP / bookkeeping the monitor does meanwhile (§V-B).
        self.telemetry.record_span(
            consts::TRACK_KV,
            "kv.read.flight",
            pending.issued_at(),
            pending.completes_at(),
        );

        // Overlapped work: eviction (UFFD_REMAP "at a time when the vCPU
        // thread was already suspended") and cache bookkeeping.
        self.evict_while_full(uffd, pt, pm);
        self.bookkeeping_update_cache();

        let contents = match self.store.finish_get(pending) {
            Ok(c) => c,
            Err(KvError::NotFound(_)) => {
                self.stats.lost_pages.inc();
                PageContents::Zero
            }
            Err(e) if e.is_retryable() => {
                // The overlapped attempt was lost; fall back to
                // synchronous retries with backoff. The extra wait lands
                // on this fault's latency, as it would in reality.
                self.stats.read_retries.inc();
                self.trace(|| format!("async read of {key} failed ({e}); retrying"));
                let wait = self.config.retry.backoff(0, &mut self.rng);
                self.clock.advance(wait);
                self.fetch_with_retries(key, 1)
            }
            Err(e) => panic!("store failure on read: {e}"),
        };
        self.telemetry.end(span);
        self.profile
            .record(CodePath::ReadPage, self.clock.now() - t0);
        contents
    }

    /// Reads `key` synchronously, retrying retryable store failures
    /// under the configured policy. `prior_attempts` counts tries
    /// already spent on this fault (the async top-half path).
    fn fetch_with_retries(&mut self, key: ExternalKey, prior_attempts: u32) -> PageContents {
        let policy = self.config.retry;
        let budget = policy
            .max_attempts
            .max(1)
            .saturating_sub(prior_attempts)
            .max(1);
        let mut attempt = 0u32;
        loop {
            match self.store.get(key) {
                Ok(c) => return c,
                Err(KvError::NotFound(_)) => {
                    self.stats.lost_pages.inc();
                    return PageContents::Zero;
                }
                Err(e) if e.is_retryable() && attempt + 1 < budget => {
                    self.stats.read_retries.inc();
                    self.trace(|| format!("read of {key} failed ({e}); retry {}", attempt + 1));
                    let wait = policy.backoff(prior_attempts + attempt, &mut self.rng);
                    self.clock.advance(wait);
                    attempt += 1;
                }
                Err(e) => panic!("store failure on read after {attempt} retries: {e}"),
            }
        }
    }

    /// Writes `key` synchronously with retries (the sync-eviction path).
    fn put_with_retries(&mut self, key: ExternalKey, contents: PageContents) {
        let policy = self.config.retry;
        let mut attempt = 0u32;
        loop {
            match self.store.put(key, contents.clone()) {
                Ok(()) => return,
                Err(e) if e.is_retryable() && attempt + 1 < policy.max_attempts.max(1) => {
                    self.stats.write_retries.inc();
                    self.trace(|| format!("write of {key} failed ({e}); retry {}", attempt + 1));
                    let wait = policy.backoff(attempt, &mut self.rng);
                    self.clock.advance(wait);
                    attempt += 1;
                }
                Err(e) => panic!("store failure on eviction write after {attempt} retries: {e}"),
            }
        }
    }

    fn bookkeeping_update_cache(&mut self) {
        let t0 = self.clock.now();
        let span = self
            .telemetry
            .begin(consts::TRACK_MONITOR, "update_page_cache");
        self.charge(&self.config.costs.update_page_cache.clone());
        self.telemetry.end(span);
        self.profile
            .record(CodePath::UpdatePageCache, self.clock.now() - t0);
    }

    /// Evicts while the buffer is at/over capacity ("triggered ... when
    /// the number of pages reaches the configured maximum size and
    /// another page fault arrives").
    fn evict_while_full(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
    ) {
        while self.lru.len() >= self.lru.capacity().max(1) {
            if !self.evict_one(uffd, pt, pm) {
                break;
            }
        }
    }

    /// Evicts until the buffer is back under capacity (post-resize or
    /// post-insert).
    pub fn evict_to_capacity(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
    ) {
        while self.lru.over_capacity() {
            if !self.evict_one(uffd, pt, pm) {
                break;
            }
        }
    }

    /// Evicts one page from the top of the LRU. Returns `false` if the
    /// buffer is empty.
    fn evict_one(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
    ) -> bool {
        let Some(victim) = self.lru.pop_victim() else {
            return false;
        };
        self.trace(|| format!("evicting {victim} from the top of the LRU via UFFD_REMAP"));
        let key = self.key(victim);

        let t0 = self.clock.now();
        let span = self
            .telemetry
            .begin_with(consts::TRACK_MONITOR, "UFFD_REMAP", || {
                vec![("vpn", format!("{victim}"))]
            });
        let (contents, handle) = uffd
            .remap(pt, pm, victim)
            .expect("LRU pages are mapped in the VM");
        if self.config.eviction == EvictionMechanism::Remap {
            // The cross-CPU TLB shootdown completes in the background.
            self.telemetry.record_span(
                consts::TRACK_KERNEL,
                "tlb.shootdown",
                t0,
                handle.completes_at(),
            );
        }
        let ready_at = match self.config.eviction {
            EvictionMechanism::Remap => handle.completes_at(),
            EvictionMechanism::Copy => {
                // Zero-copy ablation: UFFD_COPY-style eviction copies the
                // page out instead; no cross-CPU wait, but a 4 KB copy.
                let copy_cost = uffd.costs().copy.sample(&mut self.rng);
                self.clock.advance(copy_cost);
                self.clock.now()
            }
        };
        if !self.config.optimizations.async_write
            && self.config.eviction == EvictionMechanism::Remap
        {
            // Synchronous writes need the shootdown done before staging.
            uffd.wait_remap(handle);
        }
        self.telemetry.end(span);
        self.profile
            .record(CodePath::UffdRemap, self.clock.now() - t0);

        self.stats.evictions.inc();

        if self.config.optimizations.async_write {
            self.charge(&self.config.costs.write_list_push.clone());
            self.write_list.push(key, contents, ready_at);
            self.trace(|| format!("{} queued on the write list", key));
        } else {
            self.charge(&self.config.costs.sync_write_staging.clone());
            let t0 = self.clock.now();
            self.put_with_retries(key, contents);
            self.profile
                .record(CodePath::WritePage, self.clock.now() - t0);
        }
        true
    }

    /// Flushes the write list when it is long enough or stale enough
    /// (§V-B: "a separate thread periodically flushes the write list ...
    /// when its size has reached a configured batch size of pages or a
    /// stale file descriptor has been found").
    pub fn maybe_flush(&mut self) {
        let now = self.clock.now();
        self.write_list.retire(now);
        let stale = self
            .write_list
            .oldest_pending()
            .is_some_and(|t| now.saturating_since(t) > self.config.flush_interval);
        if self.write_list.pending_len() >= self.config.write_batch_size || stale {
            self.flush_batch();
        }
        self.write_list_pending
            .set(self.write_list.pending_len() as i64);
    }

    fn flush_batch(&mut self) {
        let batch = self
            .write_list
            .take_batch(self.config.write_batch_size, self.clock.now());
        if batch.is_empty() {
            return;
        }
        let retained = batch.clone();
        match self.store.begin_multi_write(batch) {
            Ok(pending) => {
                let completes_at = pending.completes_at();
                // The flusher thread owns the bottom half; the critical
                // path only remembers the batch for stealing.
                self.write_list.mark_inflight(retained, completes_at);
                self.stats.flushes.inc();
                self.trace(|| "flusher: batch multi-written to the key-value store".to_string());
            }
            Err(e) if e.is_retryable() => {
                // The batch goes back on the write list (already past its
                // TLB shootdown, so immediately flushable again); the next
                // flush opportunity retries it. Page writes are
                // idempotent, so a timed-out-but-applied batch re-flushing
                // is harmless. No data is lost either way: the freshest
                // copy stays local and stealable.
                self.stats.flush_failures.inc();
                self.trace(|| format!("flusher: multi-write failed ({e}); batch requeued"));
                let now = self.clock.now();
                for (key, contents) in retained {
                    self.write_list.push(key, contents, now);
                }
            }
            Err(e) => panic!("store failure on flush: {e}"),
        }
    }

    /// Flushes and waits for every outstanding write (shutdown, or test
    /// synchronization).
    pub fn drain_writes(&mut self) {
        let policy = self.config.retry;
        loop {
            // Waiting for pending shootdowns makes everything flushable.
            if let Some(t) = self.write_list.oldest_pending() {
                self.clock.advance_to(t);
            }
            let batch = self.write_list.take_batch(usize::MAX, self.clock.now());
            if batch.is_empty() {
                break;
            }
            let mut attempt = 0u32;
            loop {
                match self.store.multi_write(batch.clone()) {
                    Ok(()) => break,
                    Err(e) if e.is_retryable() && attempt + 1 < policy.max_attempts.max(1) => {
                        self.stats.write_retries.inc();
                        self.trace(|| format!("drain: multi-write failed ({e}); retrying"));
                        let wait = policy.backoff(attempt, &mut self.rng);
                        self.clock.advance(wait);
                        attempt += 1;
                    }
                    Err(e) => panic!("store failure on drain after {attempt} retries: {e}"),
                }
            }
            self.stats.flushes.inc();
        }
        self.write_list.retire(SimInstant::from_nanos(u64::MAX));
        self.update_gauges();
    }

    /// Resizes the local buffer (the §VI-E capability swap lacks),
    /// evicting down to the new capacity on the spot.
    pub fn resize(
        &mut self,
        uffd: &mut Userfaultfd,
        pt: &mut PageTable,
        pm: &mut PhysicalMemory,
        capacity: u64,
    ) {
        self.lru.set_capacity(capacity);
        self.stats.resizes.inc();
        self.evict_to_capacity(uffd, pt, pm);
        self.maybe_flush();
        self.update_gauges();
    }

    /// Forgets all monitor state for a region (VM shutdown) and drops its
    /// pages from the store. Returns how many pages were forgotten.
    ///
    /// The store cleanup must be scoped to *this region's* keys: bulk
    /// `drop_partition` is only safe when the region owned a dedicated
    /// registered partition no other region still routes to; otherwise
    /// (the region shares the monitor's default partition, or a sibling
    /// region shares the registered one) dropping the partition would
    /// wipe other regions' pages, so the region's keys are deleted
    /// individually instead.
    pub fn remove_region(&mut self, region: &Region) -> usize {
        let removed = self.tracker.remove_where(|vpn| region.contains(vpn));
        for vpn in region.iter_pages() {
            self.lru.remove(vpn);
        }
        let dedicated = self
            .region_partitions
            .remove(&region.start().raw())
            .map(|(_, partition)| partition);
        match dedicated {
            Some(partition)
                if partition != self.partition
                    && !self
                        .region_partitions
                        .values()
                        .any(|(_, p)| *p == partition) =>
            {
                self.store.drop_partition(partition);
            }
            Some(partition) => {
                for vpn in region.iter_pages() {
                    self.store.delete(ExternalKey::new(vpn, partition));
                }
            }
            None => {
                for vpn in region.iter_pages() {
                    self.store.delete(ExternalKey::new(vpn, self.partition));
                }
            }
        }
        removed
    }

    /// Exports the page-tracker state for live migration: the set of
    /// pages the monitor has seen (everything else is first-touch on the
    /// destination). Call after evicting to zero and draining, so every
    /// page is in the shared store.
    pub fn export_seen(&self) -> Vec<Vpn> {
        self.tracker.export()
    }

    /// Imports a migrated page-tracker state on the destination monitor.
    pub fn import_seen(&mut self, pages: impl IntoIterator<Item = Vpn>) {
        for vpn in pages {
            self.tracker.insert(vpn);
        }
    }

    /// Applies the configured LRU policy's per-fault maintenance.
    fn run_lru_policy(&mut self, pt: &mut PageTable) {
        if let LruPolicy::ScanReferenced { scan_batch } = self.config.lru_policy {
            let head = self.lru.peek_head(scan_batch);
            for vpn in head {
                // Sample-and-clear the guest referenced bit; hot pages
                // rotate away from the eviction end.
                if pt.has_flags(vpn, PteFlags::REFERENCED) {
                    pt.clear_flags(vpn, PteFlags::REFERENCED);
                    self.lru.rotate_to_tail(vpn);
                }
            }
        }
    }
}

impl std::fmt::Debug for Monitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Monitor")
            .field("store", &self.store.name())
            .field("resident", &self.lru.len())
            .field("capacity", &self.lru.capacity())
            .field("seen", &self.tracker.len())
            .field("pending_writes", &self.write_list.pending_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fluidmem_kv::DramStore;
    use fluidmem_mem::{PageClass, Region};
    use fluidmem_sim::SimDuration;

    struct Rig {
        uffd: Userfaultfd,
        pt: PageTable,
        pm: PhysicalMemory,
        monitor: Monitor,
        region: Region,
        clock: SimClock,
    }

    fn rig(capacity: u64, config: Option<MonitorConfig>) -> Rig {
        let clock = SimClock::new();
        let mut uffd = Userfaultfd::new(clock.clone(), SimRng::seed_from_u64(1));
        let region = Region::new(Vpn::new(0x1000), 4096, PageClass::Anonymous);
        uffd.register(region).unwrap();
        let store = DramStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(2));
        let monitor = Monitor::new(
            config.unwrap_or_else(|| MonitorConfig::new(capacity)),
            Box::new(store),
            PartitionId::new(0),
            clock.clone(),
            SimRng::seed_from_u64(3),
        );
        Rig {
            uffd,
            pt: PageTable::new(),
            pm: PhysicalMemory::new(1 << 24),
            monitor,
            region,
            clock,
        }
    }

    fn fault(r: &mut Rig, i: u64, write: bool) -> FaultResolution {
        let vpn = r.region.page(i).vpn();
        r.monitor
            .handle_fault(&mut r.uffd, &mut r.pt, &mut r.pm, vpn, write)
    }

    #[test]
    fn first_touch_resolves_with_zero_page_no_store_read() {
        let mut r = rig(16, None);
        let res = fault(&mut r, 0, false);
        assert_eq!(res.resolution, Resolution::ZeroFill);
        assert_eq!(r.monitor.stats().zero_fills, 1);
        assert_eq!(r.monitor.store().stats().gets, 0, "no remote read");
        assert!(r.pt.has_flags(r.region.page(0).vpn(), PteFlags::ZERO_PAGE));
    }

    #[test]
    fn capacity_bound_is_enforced() {
        let mut r = rig(8, None);
        for i in 0..64 {
            fault(&mut r, i, true);
        }
        assert!(r.monitor.resident_pages() <= 8);
        assert!(r.monitor.stats().evictions >= 56);
    }

    #[test]
    fn refault_reads_from_store_after_drain() {
        let mut r = rig(4, None);
        for i in 0..8 {
            fault(&mut r, i, true);
        }
        r.monitor.drain_writes();
        let res = fault(&mut r, 0, false);
        assert_eq!(res.resolution, Resolution::RemoteRead);
        assert_eq!(r.monitor.stats().remote_reads, 1);
    }

    #[test]
    fn write_list_steal_shortcuts_the_store() {
        let mut r = rig(4, MonitorConfig::new(4).write_batch(1000).into());
        for i in 0..6 {
            fault(&mut r, i, true);
        }
        // Pages 0..2 were evicted to the (unflushed) write list; a
        // refault must steal, not read.
        let gets_before = r.monitor.store().stats().gets;
        let res = fault(&mut r, 0, false);
        assert_eq!(res.resolution, Resolution::WriteListSteal);
        assert_eq!(r.monitor.store().stats().gets, gets_before);
        assert!(r.monitor.stats().write_list_steals == 1);
    }

    #[test]
    fn inflight_write_forces_wait() {
        let mut r = rig(4, MonitorConfig::new(4).write_batch(2).into());
        for i in 0..8 {
            fault(&mut r, i, true);
        }
        // Find a page that is in flight right now: flush just happened;
        // batches complete a few µs in the future. Fault one immediately.
        // (Evictions are in first-touch order: page 0 went out first.)
        let res = fault(&mut r, 0, false);
        assert!(
            matches!(
                res.resolution,
                Resolution::InflightWait | Resolution::RemoteRead | Resolution::WriteListSteal
            ),
            "got {:?}",
            res.resolution
        );
    }

    #[test]
    fn wake_precedes_post_fault_work_on_zero_path() {
        let mut r = rig(2, None);
        fault(&mut r, 0, false);
        fault(&mut r, 1, false);
        // Third fault: insert + wake, then async eviction after wake.
        let res = fault(&mut r, 2, false);
        assert!(
            res.wake_at <= r.clock.now(),
            "eviction work may continue past the wake"
        );
    }

    #[test]
    fn data_round_trips_through_store() {
        let mut r = rig(2, None);
        // Touch page 0 and give it real contents via CoW + frame store.
        fault(&mut r, 0, true);
        let vpn = r.region.page(0).vpn();
        let frame = {
            // Break the CoW so the page has a private frame.
            r.uffd.break_cow(&mut r.pt, &mut r.pm, vpn).unwrap()
        };
        r.pm.store(frame, PageContents::from_byte_fill(0x7E));
        // Push it out.
        fault(&mut r, 1, true);
        fault(&mut r, 2, true);
        fault(&mut r, 3, true);
        assert!(r.pt.get(vpn).is_none(), "page 0 must be evicted");
        r.monitor.drain_writes();
        // Bring it back and check the bytes survived.
        let res = fault(&mut r, 0, false);
        assert_eq!(res.resolution, Resolution::RemoteRead);
        let entry = r.pt.get(vpn).unwrap();
        assert_eq!(r.pm.load(entry.frame), &PageContents::from_byte_fill(0x7E));
    }

    #[test]
    fn async_read_is_faster_than_sync() {
        let run = |opts: crate::Optimizations| {
            let clock = SimClock::new();
            let mut uffd = Userfaultfd::new(clock.clone(), SimRng::seed_from_u64(1));
            let region = Region::new(Vpn::new(0x1000), 512, PageClass::Anonymous);
            uffd.register(region).unwrap();
            // RAMCloud-class latency makes the overlap matter.
            let store =
                fluidmem_kv::RamCloudStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(2));
            let mut monitor = Monitor::new(
                MonitorConfig::new(64).optimizations(opts),
                Box::new(store),
                PartitionId::new(0),
                clock.clone(),
                SimRng::seed_from_u64(3),
            );
            let mut pt = PageTable::new();
            let mut pm = PhysicalMemory::new(1 << 20);
            // Warm: touch 256 pages (cap 64) then measure refaults.
            for i in 0..256 {
                monitor.handle_fault(&mut uffd, &mut pt, &mut pm, region.page(i).vpn(), true);
            }
            monitor.drain_writes();
            let mut total = fluidmem_sim::SimDuration::ZERO;
            let mut n = 0u32;
            for i in 0..128 {
                let t0 = clock.now();
                let res =
                    monitor.handle_fault(&mut uffd, &mut pt, &mut pm, region.page(i).vpn(), false);
                if res.resolution == Resolution::RemoteRead {
                    total += res.wake_at - t0;
                    n += 1;
                }
            }
            total.as_micros_f64() / n.max(1) as f64
        };
        let sync_us = run(crate::Optimizations::none());
        let async_us = run(crate::Optimizations::full());
        assert!(
            async_us + 5.0 < sync_us,
            "async {async_us:.1}µs should beat sync {sync_us:.1}µs by several µs"
        );
    }

    #[test]
    fn resize_down_evicts_then_recovers() {
        let mut r = rig(64, None);
        for i in 0..64 {
            fault(&mut r, i, false);
        }
        assert_eq!(r.monitor.resident_pages(), 64);
        r.monitor.resize(&mut r.uffd, &mut r.pt, &mut r.pm, 8);
        assert!(r.monitor.resident_pages() <= 8);
        assert_eq!(r.monitor.stats().resizes, 1);
        // Size back up: no eviction needed, future faults fill it again.
        r.monitor.resize(&mut r.uffd, &mut r.pt, &mut r.pm, 64);
        r.monitor.drain_writes();
        let res = fault(&mut r, 0, false);
        assert!(matches!(
            res.resolution,
            Resolution::RemoteRead | Resolution::WriteListSteal
        ));
    }

    #[test]
    fn scan_referenced_policy_protects_hot_pages() {
        let config = MonitorConfig::new(8).lru_policy(LruPolicy::ScanReferenced { scan_batch: 4 });
        let mut r = rig(8, Some(config));
        for i in 0..8 {
            fault(&mut r, i, false);
        }
        // Keep page 0 hot via its referenced bit, then overflow the
        // buffer; page 0 should survive longer than FIFO would allow.
        for i in 8..12 {
            r.pt.set_flags(r.region.page(0).vpn(), PteFlags::REFERENCED);
            fault(&mut r, i, false);
        }
        assert!(
            r.pt.get(r.region.page(0).vpn()).is_some(),
            "hot page rotated away from eviction"
        );
    }

    #[test]
    fn lost_page_detected_as_zero_fill() {
        // A tiny memcached evicts pages; the monitor must notice.
        let clock = SimClock::new();
        let mut uffd = Userfaultfd::new(clock.clone(), SimRng::seed_from_u64(1));
        let region = Region::new(Vpn::new(0x1000), 256, PageClass::Anonymous);
        uffd.register(region).unwrap();
        let store =
            fluidmem_kv::MemcachedStore::new(40 * 4096, clock.clone(), SimRng::seed_from_u64(2));
        let mut monitor = Monitor::new(
            MonitorConfig::new(8).write_batch(4),
            Box::new(store),
            PartitionId::new(0),
            clock.clone(),
            SimRng::seed_from_u64(3),
        );
        let mut pt = PageTable::new();
        let mut pm = PhysicalMemory::new(1 << 20);
        for i in 0..256 {
            monitor.handle_fault(&mut uffd, &mut pt, &mut pm, region.page(i).vpn(), true);
        }
        monitor.drain_writes();
        // 248 pages went to a 40-page cache: most are gone.
        let mut lost_seen = false;
        for i in 0..64 {
            monitor.handle_fault(&mut uffd, &mut pt, &mut pm, region.page(i).vpn(), false);
            if monitor.stats().lost_pages > 0 {
                lost_seen = true;
                break;
            }
        }
        assert!(lost_seen, "memcached eviction must surface as lost pages");
    }

    #[test]
    fn sequential_prefetch_pulls_successors() {
        let clock = SimClock::new();
        let mut uffd = Userfaultfd::new(clock.clone(), SimRng::seed_from_u64(1));
        let region = Region::new(Vpn::new(0x1000), 256, PageClass::Anonymous);
        uffd.register(region).unwrap();
        let store = DramStore::new(1 << 26, clock.clone(), SimRng::seed_from_u64(2));
        let mut monitor = Monitor::new(
            MonitorConfig::new(16).prefetch(crate::PrefetchPolicy::Sequential { window: 4 }),
            Box::new(store),
            PartitionId::new(0),
            clock,
            SimRng::seed_from_u64(3),
        );
        let mut pt = PageTable::new();
        let mut pm = PhysicalMemory::new(1 << 20);
        // Populate and spill 64 pages, then drain so the store has them.
        for i in 0..64 {
            monitor.handle_fault(&mut uffd, &mut pt, &mut pm, region.page(i).vpn(), true);
        }
        monitor.drain_writes();
        // Refault page 0: pages 1..=4 should be prefetched.
        monitor.handle_fault(&mut uffd, &mut pt, &mut pm, region.page(0).vpn(), false);
        assert!(
            monitor.stats().prefetched_pages >= 3,
            "{:?}",
            monitor.stats()
        );
        // A sequential walk now mostly hits.
        for i in 1..4 {
            assert!(
                pt.get(region.page(i).vpn()).is_some(),
                "page {i} should be resident after prefetch"
            );
        }
    }

    fn faulty_rig(config: MonitorConfig, plan: fluidmem_sim::FaultPlan) -> Rig {
        let clock = SimClock::new();
        let mut uffd = Userfaultfd::new(clock.clone(), SimRng::seed_from_u64(1));
        let region = Region::new(Vpn::new(0x1000), 4096, PageClass::Anonymous);
        uffd.register(region).unwrap();
        let inner = DramStore::new(1 << 30, clock.clone(), SimRng::seed_from_u64(2));
        let store = fluidmem_kv::FaultInjectingStore::new(Box::new(inner), plan, clock.clone());
        let monitor = Monitor::new(
            config,
            Box::new(store),
            PartitionId::new(0),
            clock.clone(),
            SimRng::seed_from_u64(3),
        );
        Rig {
            uffd,
            pt: PageTable::new(),
            pm: PhysicalMemory::new(1 << 24),
            monitor,
            region,
            clock,
        }
    }

    #[test]
    fn failed_flush_requeues_the_batch() {
        use fluidmem_sim::{FaultEvent, FaultKind, FaultPlan};
        // The first store op is the first flush's multi-write: refuse it.
        let plan = FaultPlan::new(SimRng::seed_from_u64(11)).script(FaultEvent {
            at_op: 0,
            kind: FaultKind::TransientError,
        });
        let mut r = faulty_rig(MonitorConfig::new(4).write_batch(2), plan);
        for i in 0..8 {
            fault(&mut r, i, true);
        }
        assert!(
            r.monitor.stats().flush_failures >= 1,
            "{:?}",
            r.monitor.stats()
        );
        // Nothing was lost: the refused batch went back on the write list
        // and a later flush (or the drain) writes it out.
        r.monitor.drain_writes();
        assert_eq!(r.monitor.pending_writes(), 0);
        let evicted_and_stored = r.monitor.store().len();
        assert!(
            evicted_and_stored >= 4,
            "refused pages must reach the store eventually, got {evicted_and_stored}"
        );
    }

    #[test]
    fn reads_retry_through_transport_faults() {
        use fluidmem_sim::FaultPlan;
        let plan = FaultPlan::new(SimRng::seed_from_u64(21))
            .with_drop(0.15)
            .with_transient_error(0.15)
            .with_slow_replica(0.10);
        let mut r = faulty_rig(MonitorConfig::new(4), plan);
        for i in 0..16 {
            fault(&mut r, i, true);
        }
        r.monitor.drain_writes();
        for i in 0..16 {
            fault(&mut r, i, false);
        }
        let stats = r.monitor.stats();
        assert!(stats.remote_reads > 0, "{stats:?}");
        assert!(
            stats.read_retries > 0,
            "a ~30% fault rate must force read retries: {stats:?}"
        );
        assert_eq!(stats.lost_pages, 0, "transport faults are not data loss");
    }

    #[test]
    fn sync_eviction_writes_retry_instead_of_panicking() {
        use fluidmem_sim::{FaultEvent, FaultKind, FaultPlan};
        let plan = FaultPlan::new(SimRng::seed_from_u64(31)).script(FaultEvent {
            at_op: 0,
            kind: FaultKind::Timeout,
        });
        let config = MonitorConfig::new(2).optimizations(crate::Optimizations::none());
        let mut r = faulty_rig(config, plan);
        // Three first touches: the third evicts synchronously; its put
        // times out once (op 0) and the retry succeeds.
        for i in 0..3 {
            fault(&mut r, i, true);
        }
        assert!(
            r.monitor.stats().write_retries >= 1,
            "{:?}",
            r.monitor.stats()
        );
        assert!(!r.monitor.store().is_empty(), "the eviction must land");
    }

    #[test]
    fn drain_retries_failed_multi_writes() {
        use fluidmem_sim::FaultPlan;
        let plan = FaultPlan::new(SimRng::seed_from_u64(41))
            .with_drop(0.3)
            .with_transient_error(0.2);
        let mut r = faulty_rig(MonitorConfig::new(4).write_batch(64), plan);
        for i in 0..32 {
            fault(&mut r, i, true);
        }
        r.monitor.drain_writes();
        assert_eq!(r.monitor.pending_writes(), 0, "drain must finish the list");
        // Every evicted page is durable despite the ~50% fault rate.
        assert_eq!(r.monitor.store().len(), 32 - 4);
    }

    #[test]
    fn flush_interval_forces_stale_flush() {
        let mut config = MonitorConfig::new(4).write_batch(1000);
        config.flush_interval = SimDuration::from_micros(50);
        let mut r = rig(4, Some(config));
        for i in 0..6 {
            fault(&mut r, i, true);
        }
        assert!(r.monitor.pending_writes() > 0);
        // Let virtual time pass, then any fault triggers the stale flush.
        r.clock.advance(SimDuration::from_millis(1));
        fault(&mut r, 20, false);
        assert!(
            r.monitor.stats().flushes > 0,
            "stale timer should have flushed"
        );
    }

    #[test]
    fn prefetch_transients_are_counted_apart_from_misses() {
        use fluidmem_sim::FaultPlan;
        // The inner DRAM store never loses data, so any prefetch failure
        // is transport-injected, never a genuine miss.
        let plan = FaultPlan::new(SimRng::seed_from_u64(51))
            .with_timeout(0.25)
            .with_transient_error(0.15);
        let config =
            MonitorConfig::new(16).prefetch(crate::PrefetchPolicy::Sequential { window: 4 });
        let mut r = faulty_rig(config, plan);
        for i in 0..64 {
            fault(&mut r, i, true);
        }
        r.monitor.drain_writes();
        // Spread refaults so each one has evicted successors to prefetch.
        for i in [0, 8, 16, 24, 32, 40] {
            fault(&mut r, i, false);
        }
        let stats = r.monitor.stats();
        assert!(
            stats.prefetch_transient_errors > 0,
            "a ~40% fault rate must hit some prefetch reads: {stats:?}"
        );
        assert_eq!(
            stats.prefetch_misses, 0,
            "transport faults must not masquerade as misses: {stats:?}"
        );
        assert!(stats.prefetched_pages > 0, "{stats:?}");
    }

    #[test]
    fn adjacent_regions_route_to_their_own_partitions() {
        let mut r = rig(64, None);
        let a = Region::new(Vpn::new(0x1000), 32, PageClass::Anonymous);
        let b = Region::new(Vpn::new(0x1020), 32, PageClass::Anonymous);
        r.monitor.register_partition(a, PartitionId::new(1));
        r.monitor.register_partition(b, PartitionId::new(2));
        // Interior and both boundaries of each region.
        assert_eq!(
            r.monitor.partition_of(Vpn::new(0x1000)),
            PartitionId::new(1)
        );
        assert_eq!(
            r.monitor.partition_of(Vpn::new(0x101f)),
            PartitionId::new(1)
        );
        assert_eq!(
            r.monitor.partition_of(Vpn::new(0x1020)),
            PartitionId::new(2)
        );
        assert_eq!(
            r.monitor.partition_of(Vpn::new(0x103f)),
            PartitionId::new(2)
        );
        // Past the last region: the range lookup finds `b`, but the
        // containment check must reject it and fall back to the default.
        assert_eq!(
            r.monitor.partition_of(Vpn::new(0x1040)),
            PartitionId::new(0)
        );
    }

    #[test]
    fn fault_past_removed_region_uses_default_partition() {
        let mut r = rig(4, None);
        let a = Region::new(Vpn::new(0x1000), 8, PageClass::Anonymous);
        let b = Region::new(Vpn::new(0x1008), 8, PageClass::Anonymous);
        r.monitor.register_partition(a, PartitionId::new(3));
        r.monitor.register_partition(b, PartitionId::new(4));
        r.monitor.remove_region(&a);
        // VPNs inside and past the removed region must not resolve to a
        // neighboring (or stale) partition.
        assert_eq!(
            r.monitor.partition_of(Vpn::new(0x1002)),
            PartitionId::new(0)
        );
        assert_eq!(
            r.monitor.partition_of(Vpn::new(0x1009)),
            PartitionId::new(4)
        );
        // A fault in the removed range is a fresh first touch whose key,
        // once evicted and drained, lands in the default partition.
        for i in 0..6 {
            fault(&mut r, i, true);
        }
        r.monitor.drain_writes();
        assert!(r
            .monitor
            .store()
            .contains(ExternalKey::new(Vpn::new(0x1000), PartitionId::new(0))));
        assert!(!r
            .monitor
            .store()
            .contains(ExternalKey::new(Vpn::new(0x1000), PartitionId::new(3))));
    }

    #[test]
    fn remove_region_spares_siblings_on_the_shared_partition() {
        let mut r = rig(4, None);
        // Two sub-ranges, both keyed under the monitor's default
        // partition (no register_partition call — the FluidMemMemory
        // shape).
        let a = Region::new(Vpn::new(0x1000), 8, PageClass::Anonymous);
        let b = Region::new(Vpn::new(0x1008), 8, PageClass::Anonymous);
        for i in 0..16 {
            fault(&mut r, i, true);
        }
        r.monitor.drain_writes();
        // Pages 0..12 were evicted: all 8 of `a`'s and 4 of `b`'s.
        assert_eq!(r.monitor.store().len(), 12);
        r.monitor.remove_region(&a);
        assert_eq!(
            r.monitor.store().len(),
            4,
            "removing `a` must not wipe `b`'s pages off the shared partition"
        );
        // `b`'s evicted pages are still readable.
        assert!(r
            .monitor
            .store()
            .contains(ExternalKey::new(b.start(), PartitionId::new(0))));
        let res = fault(&mut r, 8, false);
        assert_eq!(res.resolution, Resolution::RemoteRead);
        assert_eq!(r.monitor.stats().lost_pages, 0);
    }

    #[test]
    fn remove_region_drops_a_dedicated_partition_wholesale() {
        let mut r = rig(4, None);
        let a = Region::new(Vpn::new(0x1000), 8, PageClass::Anonymous);
        let b = Region::new(Vpn::new(0x1008), 8, PageClass::Anonymous);
        r.monitor.register_partition(a, PartitionId::new(5));
        r.monitor.register_partition(b, PartitionId::new(6));
        for i in 0..16 {
            fault(&mut r, i, true);
        }
        r.monitor.drain_writes();
        assert_eq!(r.monitor.store().len(), 12);
        r.monitor.remove_region(&a);
        // Partition 5 was `a`'s alone: bulk-dropped. Partition 6 intact.
        assert_eq!(r.monitor.store().len(), 4);
        assert!(r
            .monitor
            .store()
            .contains(ExternalKey::new(Vpn::new(0x1008), PartitionId::new(6))));
    }
}
