//! A deterministic discrete-event queue over virtual time.
//!
//! The pipeline refactor turns call-return interactions (a store fetch,
//! a TLB shootdown, a write-list batch) into *events* that complete at a
//! known [`SimInstant`]. [`EventQueue`] is the scheduler substrate: a
//! priority queue ordered by `(virtual_time, seq)` where `seq` is a
//! monotonically increasing insertion counter. The tiebreak makes the
//! pop order a pure function of the push history — two runs that push
//! the same events in the same order pop them in the same order, which
//! is what keeps pipelined experiments bit-for-bit reproducible.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimInstant;

/// One scheduled entry: the payload is excluded from the ordering so it
/// needs no `Ord` of its own.
struct Entry<T> {
    at: SimInstant,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A deterministic min-queue of `(SimInstant, payload)` events.
///
/// Events at equal instants pop in push order (FIFO), so the schedule is
/// fully determined by the sequence of pushes — no dependence on heap
/// internals, hash order, or wall-clock time.
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to complete at `at`. Returns the event's
    /// sequence number (its FIFO rank among same-instant events).
    pub fn push(&mut self, at: SimInstant, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, payload }));
        seq
    }

    /// The completion time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimInstant> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Removes and returns the earliest event as `(completes_at,
    /// payload)`. Ties pop in push order.
    pub fn pop_next(&mut self) -> Option<(SimInstant, T)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.payload))
    }

    /// Removes and returns the earliest event only if it completes at or
    /// before `now` (a non-blocking poll).
    pub fn pop_ready(&mut self, now: SimInstant) -> Option<(SimInstant, T)> {
        if self.peek_time()? <= now {
            self.pop_next()
        } else {
            None
        }
    }

    /// How many events are scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimInstant::from_nanos(30), "c");
        q.push(SimInstant::from_nanos(10), "a");
        q.push(SimInstant::from_nanos(20), "b");
        assert_eq!(q.pop_next(), Some((SimInstant::from_nanos(10), "a")));
        assert_eq!(q.pop_next(), Some((SimInstant::from_nanos(20), "b")));
        assert_eq!(q.pop_next(), Some((SimInstant::from_nanos(30), "c")));
        assert_eq!(q.pop_next(), None);
    }

    #[test]
    fn equal_instants_pop_in_push_order() {
        let mut q = EventQueue::new();
        let t = SimInstant::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop_next(), Some((t, i)));
        }
    }

    #[test]
    fn pop_ready_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimInstant::from_nanos(100), 1u32);
        assert_eq!(q.pop_ready(SimInstant::from_nanos(99)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pop_ready(SimInstant::from_nanos(100)),
            Some((SimInstant::from_nanos(100), 1))
        );
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimInstant::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimInstant::from_nanos(7)));
        assert_eq!(q.len(), 1);
    }
}
