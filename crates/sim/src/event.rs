//! A deterministic discrete-event queue over virtual time.
//!
//! The pipeline refactor turns call-return interactions (a store fetch,
//! a TLB shootdown, a write-list batch) into *events* that complete at a
//! known [`SimInstant`]. [`EventQueue`] is the scheduler substrate: a
//! priority queue ordered by `(virtual_time, seq)` where `seq` is a
//! monotonically increasing insertion counter. The tiebreak makes the
//! pop order a pure function of the push history — two runs that push
//! the same events in the same order pop them in the same order, which
//! is what keeps pipelined experiments bit-for-bit reproducible.
//!
//! Payloads live in a slab of reusable slots, not in the heap entries:
//! the heap holds small `Copy` records `(at, seq, slot, gen)` and a
//! freed slot is recycled by the next push, so sustained push/pop
//! traffic at any in-flight depth stops allocating once the slab has
//! grown to the peak depth. The slot indirection is also what makes
//! O(1)-amortized cancellation possible: [`EventQueue::push_keyed`]
//! returns an [`EventToken`] (slot + generation), and
//! [`EventQueue::cancel`] / [`EventQueue::reschedule`] just bump the
//! slot's generation — the orphaned heap record is skipped lazily when
//! it surfaces, never searched for.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimInstant;

/// One scheduled heap record. The payload is *not* here (it lives in
/// the slot slab), so the record is `Copy` and needs no `Ord` from `T`.
#[derive(Clone, Copy)]
struct HeapRecord {
    at: SimInstant,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl PartialEq for HeapRecord {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for HeapRecord {}

impl PartialOrd for HeapRecord {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapRecord {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One payload slot: the generation invalidates stale heap records
/// after a cancel or reschedule.
struct Slot<T> {
    gen: u32,
    payload: Option<T>,
}

/// A handle to a scheduled event, returned by
/// [`EventQueue::push_keyed`]. Passing it to [`EventQueue::cancel`] or
/// [`EventQueue::reschedule`] after the event already popped (or was
/// cancelled) is safe: the generation check makes the call a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventToken {
    slot: u32,
    gen: u32,
}

/// A deterministic min-queue of `(SimInstant, payload)` events.
///
/// Events at equal instants pop in push order (FIFO), so the schedule is
/// fully determined by the sequence of pushes — no dependence on heap
/// internals, hash order, or wall-clock time. Cancelling or
/// rescheduling an event never disturbs the relative order of the
/// others.
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<HeapRecord>>,
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    live: usize,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            next_seq: 0,
        }
    }

    fn alloc_slot(&mut self, payload: T) -> (u32, u32) {
        match self.free.pop() {
            Some(i) => {
                let slot = &mut self.slots[i as usize];
                debug_assert!(slot.payload.is_none());
                slot.payload = Some(payload);
                (i, slot.gen)
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(Slot {
                    gen: 0,
                    payload: Some(payload),
                });
                (i, 0)
            }
        }
    }

    /// Bumps a slot's generation (orphaning any heap record that points
    /// at the old one) and returns it to the free list.
    fn release_slot(&mut self, i: u32) -> Option<T> {
        let slot = &mut self.slots[i as usize];
        slot.gen = slot.gen.wrapping_add(1);
        let payload = slot.payload.take();
        if payload.is_some() {
            self.free.push(i);
        }
        payload
    }

    /// Pops orphaned records off the top of the heap so `peek_time` can
    /// stay `&self`: the invariant is that the heap's minimum is always
    /// a live event (or the heap is empty).
    fn drop_stale_top(&mut self) {
        while let Some(Reverse(rec)) = self.heap.peek() {
            let slot = &self.slots[rec.slot as usize];
            if slot.gen == rec.gen && slot.payload.is_some() {
                return;
            }
            self.heap.pop();
        }
    }

    /// Schedules `payload` to complete at `at`. Returns the event's
    /// sequence number (its FIFO rank among same-instant events).
    pub fn push(&mut self, at: SimInstant, payload: T) -> u64 {
        self.push_keyed(at, payload).0
    }

    /// Schedules `payload` to complete at `at`, returning both the
    /// sequence number and a token for later [`cancel`] /
    /// [`reschedule`].
    ///
    /// [`cancel`]: EventQueue::cancel
    /// [`reschedule`]: EventQueue::reschedule
    pub fn push_keyed(&mut self, at: SimInstant, payload: T) -> (u64, EventToken) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let (slot, gen) = self.alloc_slot(payload);
        self.heap.push(Reverse(HeapRecord { at, seq, slot, gen }));
        self.live += 1;
        (seq, EventToken { slot, gen })
    }

    /// Cancels a scheduled event, returning its payload, or `None` if
    /// the token is stale (the event already popped, was cancelled, or
    /// was rescheduled — a reschedule issues a fresh token). O(1)
    /// amortized: the heap record is orphaned in place, not removed.
    pub fn cancel(&mut self, token: EventToken) -> Option<T> {
        if self
            .slots
            .get(token.slot as usize)
            .is_none_or(|s| s.gen != token.gen || s.payload.is_none())
        {
            return None;
        }
        let payload = self.release_slot(token.slot);
        self.live -= 1;
        self.drop_stale_top();
        payload
    }

    /// Moves a scheduled event to a new completion instant, keeping its
    /// payload in place. Returns the replacement token, or `None` if
    /// the original token is stale. The event's FIFO rank among ties is
    /// its *new* push order (a rescheduled event behaves exactly like a
    /// cancel followed by a push).
    pub fn reschedule(&mut self, token: EventToken, at: SimInstant) -> Option<EventToken> {
        let slot = self.slots.get_mut(token.slot as usize)?;
        if slot.gen != token.gen || slot.payload.is_none() {
            return None;
        }
        // Orphan the old heap record; the payload stays in the slot, so
        // nothing is moved or reallocated.
        slot.gen = slot.gen.wrapping_add(1);
        let gen = slot.gen;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(HeapRecord {
            at,
            seq,
            slot: token.slot,
            gen,
        }));
        self.drop_stale_top();
        Some(EventToken {
            slot: token.slot,
            gen,
        })
    }

    /// The completion time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<SimInstant> {
        // `drop_stale_top` runs after every mutation, so the heap's
        // minimum is live whenever one exists.
        self.heap.peek().map(|Reverse(rec)| rec.at)
    }

    /// The earliest event as `(completes_at, &payload)` without
    /// removing it; the payload is the one [`pop_next`] would return.
    /// Lets a poller decide whether to consume an event based on what
    /// it is, not just when it lands.
    ///
    /// [`pop_next`]: EventQueue::pop_next
    pub fn peek(&self) -> Option<(SimInstant, &T)> {
        let Reverse(rec) = self.heap.peek()?;
        let slot = &self.slots[rec.slot as usize];
        debug_assert!(
            slot.gen == rec.gen && slot.payload.is_some(),
            "the heap minimum is always live"
        );
        Some((rec.at, slot.payload.as_ref()?))
    }

    /// Removes and returns the earliest event as `(completes_at,
    /// payload)`. Ties pop in push order.
    pub fn pop_next(&mut self) -> Option<(SimInstant, T)> {
        loop {
            let Reverse(rec) = self.heap.pop()?;
            let slot = &self.slots[rec.slot as usize];
            if slot.gen == rec.gen && slot.payload.is_some() {
                let payload = self.release_slot(rec.slot).expect("slot checked live");
                self.live -= 1;
                self.drop_stale_top();
                return Some((rec.at, payload));
            }
        }
    }

    /// Removes and returns the earliest event only if it completes at or
    /// before `now` (a non-blocking poll).
    pub fn pop_ready(&mut self, now: SimInstant) -> Option<(SimInstant, T)> {
        if self.peek_time()? <= now {
            self.pop_next()
        } else {
            None
        }
    }

    /// How many events are scheduled (cancelled events excluded).
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the queue has no scheduled events.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Payload slots currently allocated in the slab (live + pooled):
    /// the queue's standing memory footprint, which plateaus at the peak
    /// in-flight depth instead of growing with churn.
    pub fn slab_slots(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimInstant::from_nanos(30), "c");
        q.push(SimInstant::from_nanos(10), "a");
        q.push(SimInstant::from_nanos(20), "b");
        assert_eq!(q.pop_next(), Some((SimInstant::from_nanos(10), "a")));
        assert_eq!(q.pop_next(), Some((SimInstant::from_nanos(20), "b")));
        assert_eq!(q.pop_next(), Some((SimInstant::from_nanos(30), "c")));
        assert_eq!(q.pop_next(), None);
    }

    #[test]
    fn peek_sees_what_pop_returns_even_past_a_cancel() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek(), None);
        let (_, tok) = q.push_keyed(SimInstant::from_nanos(10), "a");
        q.push(SimInstant::from_nanos(20), "b");
        assert_eq!(q.peek(), Some((SimInstant::from_nanos(10), &"a")));
        // Cancelling the minimum must not leave a stale record visible.
        q.cancel(tok);
        assert_eq!(q.peek(), Some((SimInstant::from_nanos(20), &"b")));
        assert_eq!(q.pop_next(), Some((SimInstant::from_nanos(20), "b")));
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn equal_instants_pop_in_push_order() {
        let mut q = EventQueue::new();
        let t = SimInstant::from_nanos(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop_next(), Some((t, i)));
        }
    }

    #[test]
    fn pop_ready_respects_now() {
        let mut q = EventQueue::new();
        q.push(SimInstant::from_nanos(100), 1u32);
        assert_eq!(q.pop_ready(SimInstant::from_nanos(99)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pop_ready(SimInstant::from_nanos(100)),
            Some((SimInstant::from_nanos(100), 1))
        );
        assert!(q.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(SimInstant::from_nanos(7), ());
        assert_eq!(q.peek_time(), Some(SimInstant::from_nanos(7)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn cancel_removes_exactly_one_event() {
        let mut q = EventQueue::new();
        q.push(SimInstant::from_nanos(10), "keep-a");
        let (_, tok) = q.push_keyed(SimInstant::from_nanos(20), "drop");
        q.push(SimInstant::from_nanos(30), "keep-b");
        assert_eq!(q.cancel(tok), Some("drop"));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_next(), Some((SimInstant::from_nanos(10), "keep-a")));
        assert_eq!(q.pop_next(), Some((SimInstant::from_nanos(30), "keep-b")));
        assert_eq!(q.pop_next(), None);
    }

    #[test]
    fn stale_tokens_are_noops() {
        let mut q = EventQueue::new();
        let (_, tok) = q.push_keyed(SimInstant::from_nanos(1), 7u32);
        assert_eq!(q.pop_next(), Some((SimInstant::from_nanos(1), 7)));
        // Popped: the token is dead.
        assert_eq!(q.cancel(tok), None);
        assert_eq!(q.reschedule(tok, SimInstant::from_nanos(9)), None);
        // Double-cancel is dead too, even after the slot is reused.
        let (_, tok2) = q.push_keyed(SimInstant::from_nanos(2), 8u32);
        assert_eq!(q.cancel(tok2), Some(8));
        assert_eq!(q.cancel(tok2), None);
        let (_, tok3) = q.push_keyed(SimInstant::from_nanos(3), 9u32);
        assert_eq!(
            q.cancel(tok),
            None,
            "old token must not hit the reused slot"
        );
        assert_eq!(q.pop_next(), Some((SimInstant::from_nanos(3), 9)));
        assert_eq!(q.cancel(tok3), None);
    }

    #[test]
    fn cancel_at_the_top_keeps_peek_live() {
        let mut q = EventQueue::new();
        let (_, tok) = q.push_keyed(SimInstant::from_nanos(1), "front");
        q.push(SimInstant::from_nanos(5), "behind");
        assert_eq!(q.peek_time(), Some(SimInstant::from_nanos(1)));
        q.cancel(tok);
        // peek_time is &self, so the cancel itself must restore the
        // heap-top invariant.
        assert_eq!(q.peek_time(), Some(SimInstant::from_nanos(5)));
    }

    #[test]
    fn reschedule_moves_without_reordering_others() {
        let mut q = EventQueue::new();
        q.push(SimInstant::from_nanos(10), "a");
        let (_, tok) = q.push_keyed(SimInstant::from_nanos(20), "moved");
        q.push(SimInstant::from_nanos(30), "b");
        let tok = q.reschedule(tok, SimInstant::from_nanos(40)).unwrap();
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_next(), Some((SimInstant::from_nanos(10), "a")));
        assert_eq!(q.pop_next(), Some((SimInstant::from_nanos(30), "b")));
        assert_eq!(q.pop_next(), Some((SimInstant::from_nanos(40), "moved")));
        // The replacement token died with the pop.
        assert_eq!(q.cancel(tok), None);
    }

    #[test]
    fn reschedule_to_equal_instant_requeues_behind_ties() {
        let mut q = EventQueue::new();
        let t = SimInstant::from_nanos(5);
        let (_, tok) = q.push_keyed(t, "first");
        q.push(t, "second");
        // Rescheduling to the same instant is a cancel + push: the event
        // moves behind existing ties, exactly as a fresh push would.
        q.reschedule(tok, t).unwrap();
        assert_eq!(q.pop_next(), Some((t, "second")));
        assert_eq!(q.pop_next(), Some((t, "first")));
    }

    #[test]
    fn slab_plateaus_at_peak_depth_under_churn() {
        let mut q = EventQueue::new();
        for round in 0..1_000u64 {
            for k in 0..8 {
                q.push(SimInstant::from_nanos(round * 10 + k), (round, k));
            }
            for _ in 0..8 {
                q.pop_next().unwrap();
            }
        }
        assert!(q.is_empty());
        assert!(
            q.slab_slots() <= 8,
            "slab grew past peak depth: {}",
            q.slab_slots()
        );
    }

    #[test]
    fn cancel_churn_does_not_grow_the_slab() {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            let (_, tok) = q.push_keyed(SimInstant::from_nanos(i), i);
            if i % 2 == 0 {
                assert_eq!(q.cancel(tok), Some(i));
            } else {
                assert_eq!(q.pop_next(), Some((SimInstant::from_nanos(i), i)));
            }
        }
        assert!(q.is_empty());
        assert!(q.slab_slots() <= 2, "slab leaked: {}", q.slab_slots());
    }

    #[test]
    fn interleaved_keyed_ops_match_a_model() {
        crate::prop::forall("event-queue-keyed-ops", 64, |rng| {
            let mut q = EventQueue::new();
            // Model: live events as (at, seq, id), popped in (at, seq).
            let mut model: Vec<(u64, u64, u64)> = Vec::new();
            let mut tokens: Vec<(EventToken, u64)> = Vec::new();
            let mut next_seq = 0u64;
            let mut next_id = 0u64;
            for _ in 0..300 {
                match rng.gen_index(4) {
                    0 | 1 => {
                        let at = rng.gen_index(50);
                        let id = next_id;
                        next_id += 1;
                        let (_, tok) = q.push_keyed(SimInstant::from_nanos(at), id);
                        model.push((at, next_seq, id));
                        next_seq += 1;
                        tokens.push((tok, id));
                    }
                    2 if !tokens.is_empty() => {
                        let k = rng.gen_index(tokens.len() as u64) as usize;
                        let (tok, id) = tokens.swap_remove(k);
                        let live = model.iter().any(|&(_, _, i)| i == id);
                        assert_eq!(q.cancel(tok).is_some(), live);
                        model.retain(|&(_, _, i)| i != id);
                    }
                    _ => {
                        model.sort();
                        let expect = if model.is_empty() {
                            None
                        } else {
                            let (at, _, id) = model.remove(0);
                            Some((SimInstant::from_nanos(at), id))
                        };
                        assert_eq!(q.pop_next(), expect);
                    }
                }
                assert_eq!(q.len(), model.len());
            }
            model.sort();
            for (at, _, id) in model {
                assert_eq!(q.pop_next(), Some((SimInstant::from_nanos(at), id)));
            }
            assert_eq!(q.pop_next(), None);
        });
    }
}
