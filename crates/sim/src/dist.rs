//! Latency distributions used to calibrate component cost models.

use crate::{SimDuration, SimRng};

/// A sampleable latency distribution.
///
/// Cost models throughout the reproduction are expressed as `LatencyModel`s
/// so that each component (userfaultfd ioctls, network transports, flash
/// reads, ...) can be calibrated independently against the paper's Table I
/// and Table II measurements.
///
/// # Example
///
/// ```
/// use fluidmem_sim::{LatencyModel, SimRng};
///
/// // UFFD_REMAP per the paper's Table I: 1.65µs on average, but with a
/// // heavy 99th percentile (18µs) caused by TLB-shootdown IPIs.
/// let remap = LatencyModel::normal_us(1.2, 0.3).with_spike(0.02, LatencyModel::uniform_us(8.0, 20.0));
/// let mut rng = SimRng::seed_from_u64(1);
/// let d = remap.sample(&mut rng);
/// assert!(d.as_micros_f64() < 25.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Always the same latency.
    Constant(SimDuration),
    /// Uniform between two bounds (inclusive of the lower bound).
    Uniform {
        /// Lower bound.
        lo: SimDuration,
        /// Upper bound.
        hi: SimDuration,
    },
    /// Normal distribution clipped below at `floor`.
    Normal {
        /// Mean in nanoseconds.
        mean_ns: f64,
        /// Standard deviation in nanoseconds.
        stdev_ns: f64,
        /// Samples are clamped to at least this value.
        floor: SimDuration,
    },
    /// Log-normal distribution (natural parameters) plus a constant shift.
    LogNormal {
        /// Mean of the underlying normal (of ln nanoseconds).
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
        /// Constant added to every sample.
        shift: SimDuration,
    },
    /// A base distribution with an occasional additive spike — models tail
    /// events such as TLB-shootdown IPIs or SSD garbage collection.
    Spiked {
        /// The common case.
        base: Box<LatencyModel>,
        /// The extra latency added when a spike occurs.
        spike: Box<LatencyModel>,
        /// Probability of a spike on any one sample.
        probability: f64,
    },
    /// The sum of two component distributions.
    Sum(Box<LatencyModel>, Box<LatencyModel>),
}

impl LatencyModel {
    /// A constant latency of `us` microseconds.
    pub fn constant_us(us: f64) -> Self {
        LatencyModel::Constant(SimDuration::from_micros_f64(us))
    }

    /// A constant latency of `ns` nanoseconds.
    pub fn constant_ns(ns: u64) -> Self {
        LatencyModel::Constant(SimDuration::from_nanos(ns))
    }

    /// Zero latency; useful to disable a cost in ablations.
    pub fn zero() -> Self {
        LatencyModel::Constant(SimDuration::ZERO)
    }

    /// A uniform latency between `lo_us` and `hi_us` microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `lo_us > hi_us`.
    pub fn uniform_us(lo_us: f64, hi_us: f64) -> Self {
        assert!(lo_us <= hi_us, "uniform_us requires lo <= hi");
        LatencyModel::Uniform {
            lo: SimDuration::from_micros_f64(lo_us),
            hi: SimDuration::from_micros_f64(hi_us),
        }
    }

    /// A normal latency with the given mean and standard deviation in
    /// microseconds, clipped below at 10% of the mean.
    pub fn normal_us(mean_us: f64, stdev_us: f64) -> Self {
        LatencyModel::Normal {
            mean_ns: mean_us * 1_000.0,
            stdev_ns: stdev_us * 1_000.0,
            floor: SimDuration::from_micros_f64(mean_us * 0.1),
        }
    }

    /// A log-normal latency parameterized by its mean and 99th percentile
    /// in microseconds — the form in which the paper's Table I reports its
    /// code-path latencies.
    ///
    /// Falls back to a clipped normal if the pair is not representable
    /// (requires `p99 > mean > 0`).
    pub fn lognormal_mean_p99_us(mean_us: f64, p99_us: f64) -> Self {
        const Z99: f64 = 2.326_347_874_040_841;
        if mean_us <= 0.0 || p99_us <= mean_us {
            return LatencyModel::normal_us(mean_us.max(0.001), mean_us.max(0.001) * 0.05);
        }
        let mean_ns = mean_us * 1_000.0;
        let p99_ns = p99_us * 1_000.0;
        let m = mean_ns.ln();
        let q = p99_ns.ln();
        // mean = exp(mu + sigma^2/2); p99 = exp(mu + Z99*sigma)
        // => sigma^2/2 - Z99*sigma + (q - m) has root sigma.
        let disc = Z99 * Z99 - 2.0 * (q - m);
        if disc < 0.0 {
            // p99 too far above the mean for a log-normal; approximate with
            // the wider of the two roots pinned at sigma = Z99.
            return LatencyModel::LogNormal {
                mu: q - Z99 * Z99,
                sigma: Z99,
                shift: SimDuration::ZERO,
            };
        }
        let sigma = Z99 - disc.sqrt();
        let mu = m - sigma * sigma / 2.0;
        LatencyModel::LogNormal {
            mu,
            sigma,
            shift: SimDuration::ZERO,
        }
    }

    /// Adds an occasional additive spike with the given probability.
    pub fn with_spike(self, probability: f64, spike: LatencyModel) -> Self {
        LatencyModel::Spiked {
            base: Box::new(self),
            spike: Box::new(spike),
            probability: probability.clamp(0.0, 1.0),
        }
    }

    /// The sum of this distribution and another.
    pub fn plus(self, other: LatencyModel) -> Self {
        LatencyModel::Sum(Box::new(self), Box::new(other))
    }

    /// Draws one latency sample.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { lo, hi } => {
                let span = hi.as_nanos().saturating_sub(lo.as_nanos());
                if span == 0 {
                    *lo
                } else {
                    SimDuration::from_nanos(lo.as_nanos() + rng.gen_index(span + 1))
                }
            }
            LatencyModel::Normal {
                mean_ns,
                stdev_ns,
                floor,
            } => {
                let x = mean_ns + stdev_ns * rng.gen_standard_normal();
                let ns = if x.is_finite() && x > 0.0 {
                    x as u64
                } else {
                    0
                };
                SimDuration::from_nanos(ns).max(*floor)
            }
            LatencyModel::LogNormal { mu, sigma, shift } => {
                let x = (mu + sigma * rng.gen_standard_normal()).exp();
                let ns = if x.is_finite() && x > 0.0 {
                    x.min(1e15) as u64
                } else {
                    0
                };
                SimDuration::from_nanos(ns) + *shift
            }
            LatencyModel::Spiked {
                base,
                spike,
                probability,
            } => {
                let mut d = base.sample(rng);
                if rng.gen_bool(*probability) {
                    d += spike.sample(rng);
                }
                d
            }
            LatencyModel::Sum(a, b) => a.sample(rng) + b.sample(rng),
        }
    }

    /// The analytic mean of the distribution, in microseconds.
    pub fn mean_us(&self) -> f64 {
        match self {
            LatencyModel::Constant(d) => d.as_micros_f64(),
            LatencyModel::Uniform { lo, hi } => (lo.as_micros_f64() + hi.as_micros_f64()) / 2.0,
            LatencyModel::Normal { mean_ns, .. } => mean_ns / 1_000.0,
            LatencyModel::LogNormal { mu, sigma, shift } => {
                (mu + sigma * sigma / 2.0).exp() / 1_000.0 + shift.as_micros_f64()
            }
            LatencyModel::Spiked {
                base,
                spike,
                probability,
            } => base.mean_us() + probability * spike.mean_us(),
            LatencyModel::Sum(a, b) => a.mean_us() + b.mean_us(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Sample;

    fn empirical(model: &LatencyModel, n: usize, seed: u64) -> Sample {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut s = Sample::new();
        for _ in 0..n {
            s.record(model.sample(&mut rng).as_micros_f64());
        }
        s
    }

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::constant_us(5.0);
        let mut rng = SimRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_micros(5));
        }
        assert_eq!(m.mean_us(), 5.0);
    }

    #[test]
    fn uniform_respects_bounds() {
        let m = LatencyModel::uniform_us(2.0, 4.0);
        let mut rng = SimRng::seed_from_u64(0);
        for _ in 0..1000 {
            let d = m.sample(&mut rng).as_micros_f64();
            assert!((2.0..=4.0).contains(&d), "{d} out of bounds");
        }
        assert!((m.mean_us() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn normal_empirical_mean_matches() {
        let m = LatencyModel::normal_us(10.0, 1.0);
        let s = empirical(&m, 20_000, 42);
        assert!((s.mean() - 10.0).abs() < 0.1, "mean {}", s.mean());
    }

    #[test]
    fn normal_never_goes_below_floor() {
        let m = LatencyModel::normal_us(1.0, 5.0); // wild stdev
        let mut rng = SimRng::seed_from_u64(9);
        for _ in 0..5000 {
            assert!(m.sample(&mut rng).as_micros_f64() >= 0.1 - 1e-9);
        }
    }

    #[test]
    fn lognormal_hits_mean_and_p99() {
        // Table I READ_PAGE: mean 15.62µs, p99 20.90µs.
        let m = LatencyModel::lognormal_mean_p99_us(15.62, 20.90);
        let mut s = empirical(&m, 50_000, 7);
        assert!(
            (s.mean() - 15.62).abs() < 0.4,
            "mean {} vs expected 15.62",
            s.mean()
        );
        let p99 = s.percentile(0.99);
        assert!((p99 - 20.90).abs() < 1.5, "p99 {p99} vs expected 20.90");
    }

    #[test]
    fn lognormal_analytic_mean_matches_request() {
        let m = LatencyModel::lognormal_mean_p99_us(2.56, 3.32);
        assert!((m.mean_us() - 2.56).abs() < 0.01, "{}", m.mean_us());
    }

    #[test]
    fn lognormal_degenerate_falls_back() {
        // p99 <= mean is not representable; should not panic and should
        // stay near the mean.
        let m = LatencyModel::lognormal_mean_p99_us(10.0, 5.0);
        let s = empirical(&m, 2_000, 3);
        assert!((s.mean() - 10.0).abs() < 0.5);
    }

    #[test]
    fn spike_raises_tail_not_median() {
        let base = LatencyModel::constant_us(2.0);
        let m = base.with_spike(0.02, LatencyModel::constant_us(16.0));
        let mut s = empirical(&m, 50_000, 5);
        assert!((s.percentile(0.50) - 2.0).abs() < 1e-6);
        assert!((s.percentile(0.995) - 18.0).abs() < 1e-6);
        assert!((m.mean_us() - 2.32).abs() < 1e-9);
    }

    #[test]
    fn sum_adds_means() {
        let m = LatencyModel::constant_us(3.0).plus(LatencyModel::uniform_us(1.0, 3.0));
        assert!((m.mean_us() - 5.0).abs() < 1e-9);
        let s = empirical(&m, 5_000, 8);
        assert!((s.mean() - 5.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn uniform_rejects_inverted_bounds() {
        LatencyModel::uniform_us(4.0, 2.0);
    }
}
