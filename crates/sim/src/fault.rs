//! Deterministic fault-injection schedules for the remote-memory path.
//!
//! A [`FaultPlan`] decides, per remote operation, whether the transport or
//! the server misbehaves and how. Decisions are drawn from a seeded
//! [`SimRng`], so a given `(seed, probabilities)` pair always produces the
//! same schedule — chaos tests are bit-for-bit reproducible. Scripted
//! one-shot events can be layered on top for regression tests that need a
//! fault at an exact operation index.
//!
//! The memory-disaggregation surveys (Maruf & Chowdhury; Yelam) both name
//! remote-memory failure handling as the gap between research prototypes
//! and production systems; this module is the reproduction's model of
//! those failures.
//!
//! # Example
//!
//! ```
//! use fluidmem_sim::{FaultKind, FaultPlan, SimRng};
//!
//! let mut plan = FaultPlan::new(SimRng::seed_from_u64(7))
//!     .with_drop(0.2)
//!     .with_transient_error(0.1);
//! let mut injected = 0;
//! for op in 0..1000 {
//!     if plan.decide(op).is_some() {
//!         injected += 1;
//!     }
//! }
//! assert!(injected > 150 && injected < 450, "injected {injected}");
//! ```

use crate::SimRng;

/// The kinds of faults the plan can inject into a remote operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The request is lost on the wire: it never reaches the server and
    /// the client observes a timeout after its per-op deadline.
    Drop,
    /// The request reaches the server and takes effect, but the response
    /// is delayed past the client's deadline — the client observes a
    /// timeout even though the side effect happened.
    Timeout,
    /// The request is delivered twice (a retransmit race). Page-store
    /// operations are idempotent, so this costs extra server work and
    /// wire time but must never corrupt data.
    Duplicate,
    /// A straggling server: the operation succeeds but its flight time is
    /// inflated by the plan's slowdown factor.
    SlowReplica,
    /// The server refuses the request with a transient, retryable error
    /// (overload, leader change, ...). No side effect.
    TransientError,
    /// The server refuses the request with a *non-retryable* error
    /// (checksum mismatch, corrupted object, ...). No side effect, and no
    /// amount of retrying helps — the caller must degrade or surface it.
    Fatal,
}

impl FaultKind {
    /// All *recoverable* fault kinds, for sweeps. [`FaultKind::Fatal`] is
    /// deliberately excluded: sweeps drive retry loops, and a fatal error
    /// is defined as the one retrying can't fix (scripted regression
    /// tests inject it explicitly instead).
    pub const ALL: [FaultKind; 5] = [
        FaultKind::Drop,
        FaultKind::Timeout,
        FaultKind::Duplicate,
        FaultKind::SlowReplica,
        FaultKind::TransientError,
    ];

    /// A short label for traces and result tables.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Timeout => "timeout",
            FaultKind::Duplicate => "duplicate",
            FaultKind::SlowReplica => "slow-replica",
            FaultKind::TransientError => "transient-error",
            FaultKind::Fatal => "fatal",
        }
    }
}

/// A scripted fault: fire `kind` at exactly the `at_op`-th operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Zero-based operation index the fault fires at.
    pub at_op: u64,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// Counters of what a plan actually injected (proof the chaos fired).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultPlanStats {
    /// Requests lost on the wire.
    pub drops: u64,
    /// Responses delayed past the deadline.
    pub timeouts: u64,
    /// Requests delivered twice.
    pub duplicates: u64,
    /// Operations served by a straggler.
    pub slow_replicas: u64,
    /// Transient server refusals.
    pub transient_errors: u64,
    /// Non-retryable server refusals (scripted only; see
    /// [`FaultKind::Fatal`]).
    pub fatals: u64,
}

impl FaultPlanStats {
    /// Total injected faults of any kind.
    pub fn total(&self) -> u64 {
        self.drops
            + self.timeouts
            + self.duplicates
            + self.slow_replicas
            + self.transient_errors
            + self.fatals
    }

    fn count(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::Drop => self.drops += 1,
            FaultKind::Timeout => self.timeouts += 1,
            FaultKind::Duplicate => self.duplicates += 1,
            FaultKind::SlowReplica => self.slow_replicas += 1,
            FaultKind::TransientError => self.transient_errors += 1,
            FaultKind::Fatal => self.fatals += 1,
        }
    }
}

/// A deterministic, seeded schedule of injected faults.
///
/// Build one with [`FaultPlan::new`] and the `with_*` probability setters,
/// optionally add scripted [`FaultEvent`]s, and hand it to a
/// fault-injecting store wrapper. Each remote operation calls
/// [`decide`](FaultPlan::decide) once; scripted events win over the
/// probabilistic draw at their operation index.
#[derive(Debug)]
pub struct FaultPlan {
    rng: SimRng,
    drop_p: f64,
    timeout_p: f64,
    duplicate_p: f64,
    slow_p: f64,
    transient_p: f64,
    /// Flight-time multiplier for [`FaultKind::SlowReplica`].
    slowdown: f64,
    scripted: Vec<FaultEvent>,
    stats: FaultPlanStats,
}

impl FaultPlan {
    /// A plan that injects nothing (all probabilities zero).
    pub fn disabled() -> Self {
        FaultPlan::new(SimRng::seed_from_u64(0))
    }

    /// Creates an empty plan over a seeded generator. Until probabilities
    /// are set or events scripted, it injects nothing.
    pub fn new(rng: SimRng) -> Self {
        FaultPlan {
            rng,
            drop_p: 0.0,
            timeout_p: 0.0,
            duplicate_p: 0.0,
            slow_p: 0.0,
            transient_p: 0.0,
            slowdown: 8.0,
            scripted: Vec::new(),
            stats: FaultPlanStats::default(),
        }
    }

    /// Sets the per-op probability of a request drop.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop_p = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-op probability of a late (post-deadline) response.
    pub fn with_timeout(mut self, p: f64) -> Self {
        self.timeout_p = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-op probability of duplicate delivery.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate_p = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-op probability of a straggling server, and optionally
    /// the flight-time multiplier via [`with_slowdown`](Self::with_slowdown).
    pub fn with_slow_replica(mut self, p: f64) -> Self {
        self.slow_p = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the flight-time multiplier applied by
    /// [`FaultKind::SlowReplica`] (default 8x).
    pub fn with_slowdown(mut self, factor: f64) -> Self {
        self.slowdown = factor.max(1.0);
        self
    }

    /// Sets the per-op probability of a transient server error.
    pub fn with_transient_error(mut self, p: f64) -> Self {
        self.transient_p = p.clamp(0.0, 1.0);
        self
    }

    /// Scripts a one-shot fault at an exact operation index (wins over
    /// the probabilistic draw for that op).
    pub fn script(mut self, event: FaultEvent) -> Self {
        self.scripted.push(event);
        self
    }

    /// The flight-time multiplier for slow-replica faults.
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Whether this plan can ever inject anything.
    pub fn is_active(&self) -> bool {
        !self.scripted.is_empty()
            || self.drop_p > 0.0
            || self.timeout_p > 0.0
            || self.duplicate_p > 0.0
            || self.slow_p > 0.0
            || self.transient_p > 0.0
    }

    /// What actually fired so far.
    pub fn stats(&self) -> FaultPlanStats {
        self.stats
    }

    /// Decides the fate of the `op`-th remote operation.
    ///
    /// Scripted events for this index win; otherwise one probabilistic
    /// draw runs per fault kind, in a fixed order, and the first hit is
    /// returned. One call consumes the same number of RNG samples
    /// regardless of outcome, so interleaving different op types does not
    /// perturb the schedule.
    pub fn decide(&mut self, op: u64) -> Option<FaultKind> {
        // Fixed RNG consumption: always draw all five.
        let draws = [
            (FaultKind::Drop, self.drop_p, self.rng.gen_f64()),
            (FaultKind::Timeout, self.timeout_p, self.rng.gen_f64()),
            (FaultKind::Duplicate, self.duplicate_p, self.rng.gen_f64()),
            (FaultKind::SlowReplica, self.slow_p, self.rng.gen_f64()),
            (
                FaultKind::TransientError,
                self.transient_p,
                self.rng.gen_f64(),
            ),
        ];
        if let Some(pos) = self.scripted.iter().position(|e| e.at_op == op) {
            let kind = self.scripted.remove(pos).kind;
            self.stats.count(kind);
            return Some(kind);
        }
        for (kind, p, draw) in draws {
            if draw < p {
                self.stats.count(kind);
                return Some(kind);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(seed: u64) -> FaultPlan {
        FaultPlan::new(SimRng::seed_from_u64(seed))
            .with_drop(0.1)
            .with_timeout(0.1)
            .with_duplicate(0.05)
            .with_slow_replica(0.1)
            .with_transient_error(0.1)
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = plan(3);
        let mut b = plan(3);
        for op in 0..500 {
            assert_eq!(a.decide(op), b.decide(op));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = plan(1);
        let mut b = plan(2);
        let sa: Vec<_> = (0..200).map(|op| a.decide(op)).collect();
        let sb: Vec<_> = (0..200).map(|op| b.decide(op)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn disabled_plan_injects_nothing() {
        let mut p = FaultPlan::disabled();
        assert!(!p.is_active());
        for op in 0..1000 {
            assert_eq!(p.decide(op), None);
        }
        assert_eq!(p.stats().total(), 0);
    }

    #[test]
    fn scripted_event_fires_exactly_once_at_its_index() {
        let mut p = FaultPlan::new(SimRng::seed_from_u64(1)).script(FaultEvent {
            at_op: 5,
            kind: FaultKind::TransientError,
        });
        for op in 0..20 {
            let got = p.decide(op);
            if op == 5 {
                assert_eq!(got, Some(FaultKind::TransientError));
            } else {
                assert_eq!(got, None);
            }
        }
        assert_eq!(p.stats().transient_errors, 1);
    }

    #[test]
    fn rates_track_probabilities() {
        let mut p = FaultPlan::new(SimRng::seed_from_u64(9)).with_drop(0.25);
        let n = 20_000;
        let mut drops = 0;
        for op in 0..n {
            if p.decide(op) == Some(FaultKind::Drop) {
                drops += 1;
            }
        }
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "drop rate {rate}");
        assert_eq!(p.stats().drops, drops);
    }

    #[test]
    fn every_kind_can_fire() {
        let mut p = plan(12);
        let mut seen = std::collections::HashSet::new();
        for op in 0..2000 {
            if let Some(k) = p.decide(op) {
                seen.insert(k);
            }
        }
        for kind in FaultKind::ALL {
            assert!(seen.contains(&kind), "{} never fired", kind.label());
        }
    }

    #[test]
    fn decision_stream_is_independent_of_outcome_inspection() {
        // Fixed RNG consumption per call: two plans with the same seed but
        // different scripted events still agree on probabilistic draws.
        let mut a = plan(4);
        let mut b = plan(4).script(FaultEvent {
            at_op: 0,
            kind: FaultKind::Drop,
        });
        let _ = a.decide(0);
        let _ = b.decide(0);
        for op in 1..200 {
            assert_eq!(a.decide(op), b.decide(op));
        }
    }
}
