//! Time-bucketed series recording (for the paper's Figure 5 time courses).

use crate::stats::Summary;
use crate::{SimDuration, SimInstant};

/// Records `(time, value)` observations into fixed-width virtual-time
/// buckets and reports the per-bucket mean — the form in which the paper's
/// Figure 5 plots YCSB read latency over the run's lifetime.
///
/// # Example
///
/// ```
/// use fluidmem_sim::{TimeSeries, SimDuration, SimInstant};
///
/// let mut ts = TimeSeries::new(SimDuration::from_secs(10));
/// ts.record(SimInstant::EPOCH + SimDuration::from_secs(1), 100.0);
/// ts.record(SimInstant::EPOCH + SimDuration::from_secs(2), 200.0);
/// ts.record(SimInstant::EPOCH + SimDuration::from_secs(15), 300.0);
/// let points = ts.points();
/// assert_eq!(points.len(), 2);
/// assert_eq!(points[0], (0.0, 150.0));
/// assert_eq!(points[1], (10.0, 300.0));
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeries {
    bucket: SimDuration,
    buckets: Vec<Summary>,
    overall: Summary,
}

impl TimeSeries {
    /// Creates a series with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        TimeSeries {
            bucket,
            buckets: Vec::new(),
            overall: Summary::new(),
        }
    }

    /// Records an observation at virtual time `at`.
    pub fn record(&mut self, at: SimInstant, value: f64) {
        let idx = (at.as_nanos() / self.bucket.as_nanos()) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, Summary::new());
        }
        self.buckets[idx].record(value);
        self.overall.record(value);
    }

    /// Per-bucket `(bucket_start_secs, mean_value)` points; empty buckets
    /// are skipped.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, s)| s.count() > 0)
            .map(|(i, s)| (self.bucket.as_secs_f64() * i as f64, s.mean()))
            .collect()
    }

    /// Overall statistics across every observation.
    pub fn overall(&self) -> &Summary {
        &self.overall
    }

    /// Total number of observations recorded.
    pub fn count(&self) -> u64 {
        self.overall.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_by_time() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        for s in 0..5u64 {
            ts.record(
                SimInstant::EPOCH + SimDuration::from_millis(s * 1000 + 500),
                s as f64,
            );
        }
        let pts = ts.points();
        assert_eq!(pts.len(), 5);
        assert_eq!(pts[3], (3.0, 3.0));
        assert_eq!(ts.count(), 5);
    }

    #[test]
    fn skips_empty_buckets() {
        let mut ts = TimeSeries::new(SimDuration::from_secs(1));
        ts.record(SimInstant::EPOCH, 1.0);
        ts.record(SimInstant::EPOCH + SimDuration::from_secs(9), 2.0);
        assert_eq!(ts.points().len(), 2);
    }

    #[test]
    #[should_panic(expected = "bucket width must be positive")]
    fn zero_bucket_rejected() {
        TimeSeries::new(SimDuration::ZERO);
    }
}
