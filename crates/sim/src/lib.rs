//! Deterministic virtual-time simulation substrate for the FluidMem
//! reproduction.
//!
//! Every latency-bearing component of the reproduction (the userfaultfd
//! mechanism, key-value stores, block devices, the swap subsystem, the
//! FluidMem monitor itself) charges its costs to a shared [`SimClock`]
//! rather than to wall-clock time. Combined with the seeded [`SimRng`],
//! this makes every experiment **bit-for-bit reproducible**: the same seed
//! always yields the same latency CDFs, the same TEPS figures, and the same
//! eviction decisions.
//!
//! The crate provides:
//!
//! * [`SimInstant`] / [`SimDuration`] — nanosecond-precision virtual time
//!   newtypes with ordinary arithmetic.
//! * [`SimClock`] — a cheaply-clonable shared clock handle.
//! * [`SimRng`] — a seedable, forkable random number generator.
//! * [`EventQueue`] — a deterministic discrete-event queue ordered by
//!   `(virtual_time, seq)`, the substrate for pipelined (multiple
//!   outstanding operations) experiments.
//! * [`LatencyModel`] — composable latency distributions (constant, uniform,
//!   normal, log-normal, spiked) used to calibrate component costs to the
//!   paper's Table I/II measurements.
//! * [`stats`] — streaming summaries, percentile samples, log-spaced latency
//!   histograms (for the paper's Figure 3 CDFs), and harmonic means (for the
//!   Graph500 TEPS metric of Figure 4).
//!
//! # Example
//!
//! ```
//! use fluidmem_sim::{SimClock, SimRng, SimDuration, LatencyModel};
//!
//! let clock = SimClock::new();
//! let mut rng = SimRng::seed_from_u64(42);
//! let network = LatencyModel::normal_us(10.0, 1.0);
//!
//! let start = clock.now();
//! clock.advance(network.sample(&mut rng));
//! let elapsed = clock.now() - start;
//! assert!(elapsed >= SimDuration::from_micros(5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod dist;
mod event;
mod fault;
pub mod prop;
mod rng;
mod series;
pub mod stats;
mod time;
mod trace;

pub use clock::SimClock;
pub use dist::LatencyModel;
pub use event::EventQueue;
pub use fault::{FaultEvent, FaultKind, FaultPlan, FaultPlanStats};
pub use rng::SimRng;
pub use series::TimeSeries;
pub use time::{SimDuration, SimInstant};
pub use trace::{TraceEvent, Tracer, DEFAULT_TRACE_CAPACITY};
