//! Virtual-time newtypes.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of virtual time with nanosecond precision.
///
/// `SimDuration` is the unit in which every simulated component expresses
/// its costs. It deliberately mirrors the arithmetic surface of
/// [`std::time::Duration`] but is a plain `u64` of nanoseconds underneath,
/// which keeps the simulation hot paths allocation- and branch-free.
///
/// # Example
///
/// ```
/// use fluidmem_sim::SimDuration;
///
/// let fault = SimDuration::from_micros(25) + SimDuration::from_nanos(500);
/// assert_eq!(fault.as_nanos(), 25_500);
/// assert!((fault.as_micros_f64() - 25.5).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from a fractional count of microseconds.
    ///
    /// Negative or non-finite inputs saturate to zero.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        if us.is_finite() && us > 0.0 {
            SimDuration((us * 1_000.0).round() as u64)
        } else {
            SimDuration::ZERO
        }
    }

    /// Creates a duration from a fractional count of seconds.
    ///
    /// Negative or non-finite inputs saturate to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_finite() && s > 0.0 {
            SimDuration((s * 1_000_000_000.0).round() as u64)
        } else {
            SimDuration::ZERO
        }
    }

    /// The duration in whole nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in whole microseconds (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration as fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration as fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Whether the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Subtraction that clamps at zero instead of panicking.
    #[inline]
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Addition that clamps at `u64::MAX` instead of panicking.
    #[inline]
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}µs", self.as_micros_f64())
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

/// A point in virtual time, measured from the start of the simulation.
///
/// # Example
///
/// ```
/// use fluidmem_sim::{SimDuration, SimInstant};
///
/// let t0 = SimInstant::EPOCH;
/// let t1 = t0 + SimDuration::from_micros(10);
/// assert_eq!(t1 - t0, SimDuration::from_micros(10));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant(u64);

impl SimInstant {
    /// The beginning of simulated time.
    pub const EPOCH: SimInstant = SimInstant(0);

    /// Constructs an instant from raw nanoseconds since the epoch.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimInstant(ns)
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Virtual time elapsed since `earlier`, clamping at zero if `earlier`
    /// is in the future.
    #[inline]
    pub const fn saturating_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimInstant) -> SimInstant {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimInstant {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<SimDuration> for SimInstant {
    type Output = SimInstant;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimInstant {
        SimInstant(self.0 - rhs.as_nanos())
    }
}

impl Sub for SimInstant {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimInstant) -> SimDuration {
        SimDuration::from_nanos(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration::from_nanos(self.0))
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration::from_nanos(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
    }

    #[test]
    fn duration_float_round_trip() {
        let d = SimDuration::from_micros_f64(12.345);
        assert_eq!(d.as_nanos(), 12_345);
        assert!((d.as_micros_f64() - 12.345).abs() < 1e-9);
    }

    #[test]
    fn duration_float_saturates_on_bad_input() {
        assert_eq!(SimDuration::from_micros_f64(-5.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_micros(10);
        let b = SimDuration::from_micros(3);
        assert_eq!(a + b, SimDuration::from_micros(13));
        assert_eq!(a - b, SimDuration::from_micros(7));
        assert_eq!(a * 2, SimDuration::from_micros(20));
        assert_eq!(a / 2, SimDuration::from_micros(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }

    #[test]
    fn instant_arithmetic() {
        let t = SimInstant::EPOCH + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        assert_eq!(t - SimInstant::EPOCH, SimDuration::from_micros(5));
        assert_eq!(
            SimInstant::EPOCH.saturating_since(t),
            SimDuration::ZERO,
            "saturating_since clamps when earlier is in the future"
        );
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000µs");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(format!("{:?}", SimDuration::from_micros(1)), "1.000µs");
    }
}
