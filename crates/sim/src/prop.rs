//! A tiny, self-contained property-testing harness.
//!
//! The reproduction builds with zero external crates, so it cannot use
//! `proptest`. This module provides the small slice the test suites need:
//! run a property over many seeded random cases, and on failure report the
//! exact case seed so the run can be reproduced with
//! [`run_case`](forall) (`FLUIDMEM_PROP_SEED=<seed> cargo test ...`).
//!
//! There is no shrinking; instead every failure message carries the case
//! seed and the property is expected to rebuild its inputs from it
//! deterministically via [`SimRng`].
//!
//! # Example
//!
//! ```
//! use fluidmem_sim::prop;
//!
//! prop::forall("addition-commutes", 64, |rng| {
//!     let a = rng.gen_index(1000);
//!     let b = rng.gen_index(1000);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

use crate::SimRng;

/// Derives the deterministic seed of one case of a named property.
pub fn case_seed(label: &str, case: u64) -> u64 {
    // FNV-1a over the label, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ case.rotate_left(31)
}

/// Runs `body` for `cases` deterministic random cases.
///
/// Each case gets a fresh [`SimRng`] seeded from the property label and
/// the case index. If the body panics, the panic is re-raised with the
/// case seed attached, and `FLUIDMEM_PROP_SEED` can be set to re-run just
/// that case.
pub fn forall(label: &str, cases: u64, mut body: impl FnMut(&mut SimRng)) {
    if let Ok(seed) = std::env::var("FLUIDMEM_PROP_SEED") {
        if let Ok(seed) = seed.parse::<u64>() {
            run_case(label, seed, &mut body);
            return;
        }
    }
    for case in 0..cases {
        run_case(label, case_seed(label, case), &mut body);
    }
}

/// Runs a single case of a property from an explicit seed.
pub fn run_case(label: &str, seed: u64, body: &mut impl FnMut(&mut SimRng)) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut rng = SimRng::seed_from_u64(seed);
        body(&mut rng);
    }));
    if let Err(payload) = result {
        let message = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("<non-string panic>");
        panic!("property '{label}' failed (re-run with FLUIDMEM_PROP_SEED={seed}): {message}");
    }
}

/// Generates a random-length vector using `gen` for each element.
pub fn vec_of<T>(
    rng: &mut SimRng,
    min_len: usize,
    max_len: usize,
    mut gen: impl FnMut(&mut SimRng) -> T,
) -> Vec<T> {
    let len = rng.gen_range(min_len as u64, max_len as u64 + 1) as usize;
    (0..len).map(|_| gen(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forall_runs_every_case() {
        let mut count = 0u64;
        forall("count-cases", 17, |_| count += 1);
        assert_eq!(count, 17);
    }

    #[test]
    fn case_seeds_are_stable_and_distinct() {
        assert_eq!(case_seed("p", 3), case_seed("p", 3));
        assert_ne!(case_seed("p", 3), case_seed("p", 4));
        assert_ne!(case_seed("p", 3), case_seed("q", 3));
    }

    #[test]
    fn failure_reports_case_seed() {
        let caught = std::panic::catch_unwind(|| {
            forall("always-fails", 3, |_| panic!("inner message"));
        });
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.contains("FLUIDMEM_PROP_SEED="), "{msg}");
        assert!(msg.contains("inner message"), "{msg}");
    }

    #[test]
    fn vec_of_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = vec_of(&mut rng, 2, 9, |r| r.gen_index(10));
            assert!((2..=9).contains(&v.len()));
        }
    }
}
