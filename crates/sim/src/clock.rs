//! The shared virtual clock.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{SimDuration, SimInstant};

/// A cheaply clonable handle to the simulation's virtual clock.
///
/// All components of a single experiment share one `SimClock` (clones share
/// the underlying counter). Components *charge* costs by calling
/// [`advance`](SimClock::advance); asynchronous completions are modeled by
/// remembering a completion [`SimInstant`] and calling
/// [`advance_to`](SimClock::advance_to) when the critical path must wait.
///
/// # Example
///
/// ```
/// use fluidmem_sim::{SimClock, SimDuration};
///
/// let clock = SimClock::new();
/// let view = clock.clone(); // shares the same virtual time
///
/// clock.advance(SimDuration::from_micros(3));
/// assert_eq!(view.now().as_nanos(), 3_000);
///
/// // Waiting on an async completion that finishes at t=10µs:
/// let completes_at = view.now() + SimDuration::from_micros(7);
/// let waited = clock.advance_to(completes_at);
/// assert_eq!(waited, SimDuration::from_micros(7));
/// // advance_to never rewinds:
/// assert_eq!(clock.advance_to(completes_at), SimDuration::ZERO);
/// ```
#[derive(Clone, Default)]
pub struct SimClock {
    now_ns: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a new clock at the epoch.
    pub fn new() -> Self {
        SimClock {
            now_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The current virtual time.
    #[inline]
    pub fn now(&self) -> SimInstant {
        SimInstant::from_nanos(self.now_ns.load(Ordering::Relaxed))
    }

    /// Charges `cost` to the clock, returning the new time.
    #[inline]
    pub fn advance(&self, cost: SimDuration) -> SimInstant {
        let ns = self.now_ns.fetch_add(cost.as_nanos(), Ordering::Relaxed) + cost.as_nanos();
        SimInstant::from_nanos(ns)
    }

    /// Moves the clock forward to `deadline` if it is in the future and
    /// returns how long the caller waited (zero if the deadline already
    /// passed). The clock never moves backwards.
    #[inline]
    pub fn advance_to(&self, deadline: SimInstant) -> SimDuration {
        let now = self.now();
        if deadline > now {
            let wait = deadline - now;
            self.advance(wait);
            wait
        } else {
            SimDuration::ZERO
        }
    }

    /// Virtual time elapsed since `start`.
    #[inline]
    pub fn elapsed_since(&self, start: SimInstant) -> SimDuration {
        self.now().saturating_since(start)
    }

    /// Whether two handles observe the same underlying clock.
    pub fn same_clock(&self, other: &SimClock) -> bool {
        Arc::ptr_eq(&self.now_ns, &other.now_ns)
    }
}

impl fmt::Debug for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimClock")
            .field("now", &self.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(SimDuration::from_micros(5));
        assert_eq!(b.now().as_nanos(), 5_000);
        assert!(a.same_clock(&b));
        assert!(!a.same_clock(&SimClock::new()));
    }

    #[test]
    fn advance_to_never_rewinds() {
        let c = SimClock::new();
        c.advance(SimDuration::from_micros(10));
        let waited = c.advance_to(SimInstant::from_nanos(3_000));
        assert_eq!(waited, SimDuration::ZERO);
        assert_eq!(c.now().as_nanos(), 10_000);
    }

    #[test]
    fn advance_to_waits_exactly() {
        let c = SimClock::new();
        let deadline = SimInstant::from_nanos(42_000);
        assert_eq!(c.advance_to(deadline), SimDuration::from_micros(42));
        assert_eq!(c.now(), deadline);
    }

    #[test]
    fn elapsed_since_tracks_advances() {
        let c = SimClock::new();
        let start = c.now();
        c.advance(SimDuration::from_micros(7));
        assert_eq!(c.elapsed_since(start), SimDuration::from_micros(7));
    }

    #[test]
    fn clock_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimClock>();
    }
}
