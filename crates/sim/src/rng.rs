//! Seedable, forkable randomness.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The simulation's random number generator.
///
/// Experiments construct one root `SimRng` from an explicit seed and then
/// [`fork`](SimRng::fork) independent child generators for each component
/// (one for the network transport, one for the workload, ...). Forking keeps
/// components statistically independent while preserving determinism: adding
/// samples in one component does not perturb the stream seen by another.
///
/// # Example
///
/// ```
/// use fluidmem_sim::SimRng;
///
/// let mut root = SimRng::seed_from_u64(7);
/// let mut net = root.fork("network");
/// let mut wl = root.fork("workload");
/// let a: u64 = net.gen_u64();
/// let b: u64 = wl.gen_u64();
/// assert_ne!(a, b);
///
/// // Same seed, same fork labels => identical streams.
/// let mut root2 = SimRng::seed_from_u64(7);
/// assert_eq!(root2.fork("network").gen_u64(), a);
/// ```
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator from a string label.
    ///
    /// The child's seed depends only on this generator's *seed* and the
    /// label, never on how many samples have been drawn, so components can
    /// be forked in any order.
    pub fn fork(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with the parent seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed.rotate_left(17);
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimRng::seed_from_u64(h)
    }

    /// A uniformly random `u64`.
    #[inline]
    pub fn gen_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// A uniformly random `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        self.inner.gen()
    }

    /// A uniformly random integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn gen_index(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_index bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen_bool(p)
    }

    /// A standard-normal sample (Box–Muller; no extra dependencies).
    pub fn gen_standard_normal(&mut self) -> f64 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - self.gen_f64();
        let u2: f64 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl fmt::Debug for SimRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimRng").field("seed", &self.seed).finish()
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(1);
        for _ in 0..32 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn forks_are_order_independent() {
        let root = SimRng::seed_from_u64(99);
        let x = {
            let mut r = root.fork("a");
            r.gen_u64()
        };
        // Fork "b" first this time; "a" must still see the same stream.
        let root2 = SimRng::seed_from_u64(99);
        let _ = root2.fork("b");
        let mut a2 = root2.fork("a");
        assert_eq!(a2.gen_u64(), x);
    }

    #[test]
    fn forks_with_distinct_labels_differ() {
        let root = SimRng::seed_from_u64(5);
        assert_ne!(root.fork("x").gen_u64(), root.fork("y").gen_u64());
    }

    #[test]
    fn gen_index_stays_in_bounds() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(r.gen_index(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_index_rejects_zero_bound() {
        SimRng::seed_from_u64(0).gen_index(0);
    }

    #[test]
    fn standard_normal_moments_are_sane() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gen_standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn gen_bool_clamps_probability() {
        let mut r = SimRng::seed_from_u64(2);
        assert!(!r.gen_bool(-1.0));
        assert!(r.gen_bool(2.0));
    }
}
