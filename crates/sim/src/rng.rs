//! Seedable, forkable randomness.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna),
//! seeded through SplitMix64 — no external crates, so the simulation
//! builds offline and the streams are stable across toolchains.

use std::fmt;

/// The simulation's random number generator.
///
/// Experiments construct one root `SimRng` from an explicit seed and then
/// [`fork`](SimRng::fork) independent child generators for each component
/// (one for the network transport, one for the workload, ...). Forking keeps
/// components statistically independent while preserving determinism: adding
/// samples in one component does not perturb the stream seen by another.
///
/// # Example
///
/// ```
/// use fluidmem_sim::SimRng;
///
/// let mut root = SimRng::seed_from_u64(7);
/// let mut net = root.fork("network");
/// let mut wl = root.fork("workload");
/// let a: u64 = net.gen_u64();
/// let b: u64 = wl.gen_u64();
/// assert_ne!(a, b);
///
/// // Same seed, same fork labels => identical streams.
/// let mut root2 = SimRng::seed_from_u64(7);
/// assert_eq!(root2.fork("network").gen_u64(), a);
/// ```
pub struct SimRng {
    state: [u64; 4],
    seed: u64,
}

/// SplitMix64: expands a 64-bit seed into well-mixed state words.
#[inline]
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator from a string label.
    ///
    /// The child's seed depends only on this generator's *seed* and the
    /// label, never on how many samples have been drawn, so components can
    /// be forked in any order.
    pub fn fork(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with the parent seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed.rotate_left(17);
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimRng::seed_from_u64(h)
    }

    /// A uniformly random `u64` (xoshiro256++ step).
    #[inline]
    pub fn gen_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniformly random `f64` in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.gen_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniformly random integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn gen_index(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_index bound must be positive");
        // Lemire's widening-multiply range reduction (bias < 2^-64).
        ((u128::from(self.gen_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// A uniformly random integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range requires lo < hi");
        lo + self.gen_index(hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.gen_f64() < p
    }

    /// A standard-normal sample (Box–Muller; no extra dependencies).
    pub fn gen_standard_normal(&mut self) -> f64 {
        // Draw u1 in (0, 1] to avoid ln(0).
        let u1: f64 = 1.0 - self.gen_f64();
        let u2: f64 = self.gen_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl fmt::Debug for SimRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimRng").field("seed", &self.seed).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(1);
        for _ in 0..32 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn forks_are_order_independent() {
        let root = SimRng::seed_from_u64(99);
        let x = {
            let mut r = root.fork("a");
            r.gen_u64()
        };
        // Fork "b" first this time; "a" must still see the same stream.
        let root2 = SimRng::seed_from_u64(99);
        let _ = root2.fork("b");
        let mut a2 = root2.fork("a");
        assert_eq!(a2.gen_u64(), x);
    }

    #[test]
    fn forks_with_distinct_labels_differ() {
        let root = SimRng::seed_from_u64(5);
        assert_ne!(root.fork("x").gen_u64(), root.fork("y").gen_u64());
    }

    #[test]
    fn gen_index_stays_in_bounds() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(r.gen_index(7) < 7);
        }
    }

    #[test]
    fn gen_index_covers_small_ranges() {
        let mut r = SimRng::seed_from_u64(8);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_index(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SimRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = r.gen_range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn gen_index_rejects_zero_bound() {
        SimRng::seed_from_u64(0).gen_index(0);
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut r = SimRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn standard_normal_moments_are_sane() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gen_standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");
    }

    #[test]
    fn gen_bool_clamps_probability() {
        let mut r = SimRng::seed_from_u64(2);
        assert!(!r.gen_bool(-1.0));
        assert!(r.gen_bool(2.0));
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = SimRng::seed_from_u64(0);
        let mut b = SimRng::seed_from_u64(1);
        // Even adjacent seeds must decorrelate immediately (SplitMix64).
        assert_ne!(a.gen_u64(), b.gen_u64());
    }
}
